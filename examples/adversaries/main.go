// Adversary comparison: run Algorithm 2 against every Byzantine strategy
// on the same network and compare outcomes — the empirical Theorem 1.
//
// Expected shape: honest/suppress/inflate/chain-faker leave ≥ (1−ε) of
// honest nodes with constant-factor estimates; topology-liar and combo
// convert their audience into crashes (Lemma 15) but never fool survivors.
package main

import (
	"fmt"
	"log"

	byzcount "repro"
	"repro/internal/adversary"
)

func main() {
	const (
		n     = 2048
		delta = 0.75
	)
	net, err := byzcount.NewNetwork(byzcount.Params{N: n, D: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	bCount := byzcount.ByzantineBudget(n, delta)
	byz := byzcount.PlaceByzantine(n, bCount, 8)

	fmt.Printf("n=%d, B=n^%.2g=%d Byzantine nodes, Algorithm 2\n\n", n, 1-delta, bCount)
	fmt.Printf("%-14s %10s %10s %9s %10s %8s\n",
		"adversary", "correct", "survivors", "crashed", "undecided", "rounds")

	for _, adv := range adversary.All() {
		res, err := byzcount.Run(net, byz, adv, byzcount.Config{
			Algorithm: byzcount.AlgorithmByzantine,
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := byzcount.Summarize(res, byzcount.DefaultBand)
		fmt.Printf("%-14s %9.1f%% %9.1f%% %9d %10d %8d\n",
			adv.Name(), 100*s.CorrectFraction, 100*s.SurvivorCorrectFraction,
			s.Crashed, s.Undecided, s.Rounds)
	}

	fmt.Println("\ncorrect    = honest nodes within the constant-factor band (crashes count against)")
	fmt.Println("survivors  = same, but among uncrashed nodes only (Lemma 15: crash, don't fool)")
}
