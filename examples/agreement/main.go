// Agreement composition: the paper's motivating pipeline, end to end.
//
// Counting protocols exist so that downstream protocols (agreement, leader
// election) have the log n estimate they all assume. This example runs the
// pipeline: (1) estimate log n with Algorithm 2 under Byzantine faults,
// (2) use the estimate to budget an almost-everywhere majority consensus,
// (3) compare against an unbudgeted (constant-round) run.
package main

import (
	"fmt"
	"log"

	byzcount "repro"
	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/rng"
)

func main() {
	const n = 4096

	// Stage 1: Byzantine counting.
	net, err := byzcount.NewNetwork(byzcount.Params{N: n, D: 8, Seed: 101})
	if err != nil {
		log.Fatal(err)
	}
	byz := byzcount.PlaceByzantine(n, byzcount.ByzantineBudget(n, 0.75), 102)
	res, err := byzcount.Run(net, byz, &adversary.Inflate{}, byzcount.Config{
		Algorithm: byzcount.AlgorithmByzantine, Seed: 103,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := byzcount.Summarize(res, byzcount.DefaultBand)

	// Take the modal estimate as "the network's" log n estimate.
	counts := map[int32]int{}
	for v := 0; v < n; v++ {
		if e := res.Estimates[v]; e > 0 {
			counts[e]++
		}
	}
	var modal int32
	for e, c := range counts {
		if c > counts[modal] {
			modal = e
		}
	}
	fmt.Printf("stage 1 — counting under %d Byzantine nodes:\n", res.ByzantineCount)
	fmt.Printf("  true log2 n = %.1f, modal estimate = %d, correct fraction = %.1f%%\n\n",
		res.LogN, modal, 100*sum.CorrectFraction)

	// Stage 2: majority consensus with the counting-derived budget.
	initial := agreement.BiasedInitial(n, 0.62, rng.New(104))
	budget := agreement.RoundsFromEstimate(int(modal))
	withEstimate, err := agreement.Run(net.H, initial, byz, agreement.Config{Rounds: budget, Seed: 105})
	if err != nil {
		log.Fatal(err)
	}

	// Stage 3: what happens without a size estimate (constant budget).
	blind, err := agreement.Run(net.H, initial, byz, agreement.Config{Rounds: 2, Seed: 105})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stage 2 — majority consensus (initial bias 62%% ones):\n")
	fmt.Printf("  budget from estimate (%d rounds): %.2f%% agree\n",
		budget, 100*withEstimate.AgreeFraction)
	fmt.Printf("  blind constant budget (2 rounds): %.2f%% agree\n\n", 100*blind.AgreeFraction)

	// Stage 4: why leader-election-first approaches fail (§1.2 / footnote 5):
	// min-ID flooding also needs the budget, and one Byzantine node
	// hijacks it outright.
	honestElect, err := agreement.ElectLeader(net.H, net.IDs, nil, 0, budget)
	if err != nil {
		log.Fatal(err)
	}
	hijacked, err := agreement.ElectLeader(net.H, net.IDs, byz, 1, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 3 — min-ID leader election with the same budget:\n")
	fmt.Printf("  honest network: %.1f%% agree on the leader (byzantine winner: %v)\n",
		100*honestElect.AgreeFraction, honestElect.WinnerByzantine)
	fmt.Printf("  one faked ID:   %.1f%% agree — on a BYZANTINE leader: %v\n\n",
		100*hijacked.AgreeFraction, hijacked.WinnerByzantine)

	fmt.Println("The counting estimate is what makes round budgets principled (the")
	fmt.Println("paper's \"building block\" claim) — while the election hijack shows why")
	fmt.Println("\"elect a leader first, then count\" does not work under Byzantine faults.")
}
