// Baseline collapse: the protocols from the paper's §1.2/§1.3 against a
// single Byzantine node, side by side with Algorithm 2 against n^(1−δ) of
// them. This is the motivating experiment for the whole paper.
package main

import (
	"fmt"
	"log"

	byzcount "repro"
	"repro/internal/adversary"
	"repro/internal/baseline"
)

func main() {
	const n = 2048
	net, err := byzcount.NewNetwork(byzcount.Params{N: n, D: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	band := byzcount.DefaultBand

	one := make([]bool, n)
	one[n/2] = true

	fmt.Printf("n = %d — fraction of honest nodes with a constant-factor estimate of log n\n\n", n)
	fmt.Printf("%-34s %6s %9s\n", "protocol", "byz", "correct")

	report := func(name string, byzCount int, frac float64) {
		fmt.Printf("%-34s %6d %8.1f%%\n", name, byzCount, 100*frac)
	}

	gm := baseline.GeoMax(net.H, nil, 0, 11)
	report("geometric max-flooding (§1.2)", 0, gm.CorrectFraction(n, nil, band.Lo, band.Hi))
	gmBad := baseline.GeoMax(net.H, one, 1<<40, 12)
	report("geometric max-flooding (§1.2)", 1, gmBad.CorrectFraction(n, one, band.Lo, band.Hi))

	se := baseline.SupportEstimation(net.H, nil, 64, false, 13)
	report("support estimation [SODA'12]", 0, se.CorrectFraction(n, nil, band.Lo, band.Hi))
	seBad := baseline.SupportEstimation(net.H, one, 64, true, 14)
	report("support estimation [SODA'12]", 1, seBad.CorrectFraction(n, one, band.Lo, band.Hi))

	tc := baseline.TreeCount(net.H, nil, 0, 0)
	report("BFS-tree count (oracle leader)", 0, tc.CorrectFraction(n, nil, band.Lo, band.Hi))
	tcBad := baseline.TreeCount(net.H, one, 0, 1<<40)
	report("BFS-tree count (oracle leader)", 1, tcBad.CorrectFraction(n, one, band.Lo, band.Hi))

	bCount := byzcount.ByzantineBudget(n, 0.75)
	many := byzcount.PlaceByzantine(n, bCount, 15)
	res, err := byzcount.Run(net, many, &adversary.Inflate{}, byzcount.Config{
		Algorithm: byzcount.AlgorithmByzantine, Seed: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := byzcount.Summarize(res, band)
	report("Algorithm 2 (this paper)", bCount, s.CorrectFraction)

	fmt.Println("\nEvery baseline fails completely with one Byzantine node;")
	fmt.Printf("Algorithm 2 holds the Theorem 1 guarantee against %d of them.\n", bCount)
}
