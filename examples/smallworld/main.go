// Small-world structure: why the protocol needs BOTH the expander H and
// the lattice overlay L. Compares clustering (needed for chain
// verification) and expansion/diameter (needed for flooding-time bounds)
// across H, G = H ∪ L, and a Watts–Strogatz reference.
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	const n, d = 2048, 8

	net := hgraph.MustNew(hgraph.Params{N: n, D: d, Seed: 21})
	ws := hgraph.WattsStrogatz(n, 4, 0.1, rng.New(22))

	fmt.Printf("n = %d\n\n", n)
	fmt.Printf("%-12s %9s %11s %9s %8s %7s\n",
		"graph", "max deg", "clustering", "diameter", "λ", "gap")
	row("H(n,8)", net.H)
	row(fmt.Sprintf("G (k=%d)", net.K), net.G)
	row("WS(4,0.1)", ws)

	ltlR := hgraph.LTLRadius(n, d)
	_, ltl := hgraph.LocallyTreeLike(net.H, ltlR)
	fmt.Printf("\nlocally tree-like nodes in H (radius %d): %d/%d (%.1f%%)\n",
		ltlR, ltl, n, 100*float64(ltl)/float64(n))

	byz := hgraph.PlaceByzantine(n, hgraph.ByzantineBudget(n, 0.5), rng.New(23))
	chain := hgraph.LongestByzantineChain(net.H, byz, net.K+2)
	fmt.Printf("longest all-Byzantine chain at B=n^0.5 (k=%d): %d nodes\n", net.K, chain)

	fmt.Println("\nH gives the expansion (fast flooding, Byzantine dilution);")
	fmt.Println("L gives the clustering (neighbors can cross-check provenance chains);")
	fmt.Println("the protocol provably needs both (§1.2 of the paper).")
}

func row(name string, g *graph.Graph) {
	m := spectral.Measure(g, spectral.Options{})
	fmt.Printf("%-12s %9d %11.4f %9d %8.3f %7.3f\n",
		name, g.Degrees().Max, g.AvgClustering(), g.DiameterLowerBound(4), m.Lambda, m.Gap)
}
