// Quickstart: estimate the size of a network whose size nobody knows.
//
// A 2048-node small-world network is generated, 8 of its nodes are made
// Byzantine (with the strongest injection strategy), and every honest node
// runs the paper's Algorithm 2. The program reports how well the honest
// majority estimated log₂ n.
package main

import (
	"fmt"
	"log"

	byzcount "repro"
	"repro/internal/adversary"
)

func main() {
	const n = 2048

	net, err := byzcount.NewNetwork(byzcount.Params{N: n, D: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	byz := byzcount.PlaceByzantine(n, byzcount.ByzantineBudget(n, 0.75), 43)
	res, err := byzcount.Run(net, byz, &adversary.Inflate{}, byzcount.Config{
		Algorithm: byzcount.AlgorithmByzantine,
		Seed:      44,
	})
	if err != nil {
		log.Fatal(err)
	}

	sum := byzcount.Summarize(res, byzcount.DefaultBand)
	fmt.Printf("true log2(n)          : %.2f\n", res.LogN)
	fmt.Printf("median estimate       : %.2f (ratio %.2f)\n", sum.RatioMedian*res.LogN, sum.RatioMedian)
	fmt.Printf("honest nodes correct  : %.1f%%\n", 100*sum.CorrectFraction)
	fmt.Printf("rounds                : %d\n", sum.Rounds)
	fmt.Printf("largest message       : %d bits\n", sum.MaxMessageBits)
	fmt.Printf("adversary             : inflate (%d Byzantine nodes)\n", res.ByzantineCount)
}
