// Command sweep runs a scenario grid through the parallel sweep
// scheduler: cartesian products over network size, degree, fault
// exponent δ, placement, adversary, algorithm, ε, churn model, message
// loss, and churn/join fractions expand into content-hashed jobs, execute
// across a bounded worker set with a shared network cache, and stream
// into a JSONL result store. Re-running with the same -store skips every
// job already recorded, so interrupted full-scale sweeps resume where
// they stopped.
//
// Usage:
//
//	sweep -n 256,512 -delta 0.75 -adv none,inflate,oracle -trials 8
//	sweep -n 1024 -loss 0,0.05,0.1 -adv inflate -trials 8     # lossy links
//	sweep -n 1024 -fault join -join 0.1,0.2 -trials 8         # dynamic churn
//	sweep -n 512 -delta 0.5 -placement random,degree,chain -adv chain-faker
//	sweep -spec grid.json -store results.jsonl -workers 8
//	sweep -spec grid.json -store results.jsonl            # resume
//
// Aggregates are identical for any -workers value: execution order never
// reaches the fold.
//
// Observability: -http :8765 serves a live /status JSON document
// (progress, ETA, stage-time breakdown, cache hit rates, telemetry
// snapshot) plus expvar and net/http/pprof while the sweep runs; -store
// sweeps also write a JSONL run-log of scheduler lifecycle events beside
// the result store (override with -runlog); -telemetry writes the final
// registry snapshot as JSON; -cpuprofile/-memprofile capture
// runtime/pprof artifacts for offline diagnosis.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// main delegates to run so run's defers (store close+sync, run-log
// close, profile and snapshot flushes) execute before the process exits
// — including on a SIGINT/SIGTERM abort, which drains in-flight jobs
// and leaves a resumable store behind instead of vanishing mid-write.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath   = flag.String("spec", "", "JSON spec file (flags below are ignored when set)")
		sizes      = flag.String("n", "256,512", "comma-separated network sizes")
		degrees    = flag.String("d", "8", "comma-separated H-degrees")
		deltas     = flag.String("delta", "0.75", "comma-separated fault exponents (0 = no faults)")
		placements = flag.String("placement", "random", "comma-separated placements (random|clustered|spread|degree|chain)")
		advs       = flag.String("adv", "none,inflate,suppress,oracle,topology-liar,chain-faker,combo", "comma-separated adversaries")
		algs       = flag.String("alg", "byzantine", "comma-separated algorithms (basic|byzantine)")
		epsilons   = flag.String("eps", "0", "comma-separated error parameters (0 = default)")
		churns     = flag.String("churn", "0", "comma-separated crash-churn fractions")
		faults     = flag.String("fault", "crash", "comma-separated churn fault models (crash|join)")
		joins      = flag.String("join", "0", "comma-separated join/rejoin churn fractions (join model)")
		losses     = flag.String("loss", "0", "comma-separated per-edge message loss probabilities")
		trials     = flag.Int("trials", 8, "trials per grid cell")
		seed       = flag.Uint64("seed", 1, "base seed")
		workers    = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		runWorkers = flag.Int("run-workers", 0, "sim workers per job (0 = auto)")
		cacheCap   = flag.Int("cache", 0, "network cache capacity (0 = default)")
		netstore   = flag.String("netstore", "", "topology store: a root directory, \"on\" (user cache dir), or \"off\" (default: $REPRO_NETSTORE)")
		batch      = flag.String("batch", "", "lockstep batched execution: \"on\" (16 lanes), \"off\", or a lane width 1..64 (default: $REPRO_BATCH)")
		storePath  = flag.String("store", "", "JSONL result store (enables resume)")
		format     = flag.String("format", "md", "aggregate output format: md | csv")
		outPath    = flag.String("o", "", "write aggregates to this file (default: stdout)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		httpAddr   = flag.String("http", "", "serve live /status, expvar, and pprof on this address (e.g. :8765)")
		runlogPath = flag.String("runlog", "", "JSONL run-log path (default: <store>.runlog beside -store; \"off\" disables)")
		telePath   = flag.String("telemetry", "", "write the final telemetry snapshot (JSON) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}
	defer flushProfiles(*memProfile)

	var spec sweep.Spec
	if *specPath != "" {
		var err error
		spec, err = sweep.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
	} else {
		spec = sweep.Spec{
			Name:        "cli",
			Sizes:       parseInts(*sizes),
			Degrees:     parseInts(*degrees),
			Deltas:      parseFloats(*deltas),
			Placements:  splitList(*placements),
			Adversaries: splitList(*advs),
			Algorithms:  splitList(*algs),
			Epsilons:    parseFloats(*epsilons),
			ChurnFracs:  parseFloats(*churns),
			FaultModels: splitList(*faults),
			JoinFracs:   parseFloats(*joins),
			LossProbs:   parseFloats(*losses),
			Trials:      *trials,
			Seed:        *seed,
		}
	}

	expandStart := time.Now()
	jobs, err := spec.Jobs()
	if err != nil {
		fatal(err)
	}
	expand := time.Since(expandStart)
	fmt.Fprintf(os.Stderr, "spec %q: %d jobs\n", spec.Name, len(jobs))

	// The -netstore flag overrides the REPRO_NETSTORE environment
	// default with the same vocabulary (on/off/0/1/dir), and is resolved
	// before any cache exists so an override never opens (or mkdirs) the
	// environment's store as a side effect. An explicitly requested
	// store that cannot be opened is an error — silently sweeping
	// without it would regenerate every topology the user asked to
	// serve from disk. (The environment path stays best-effort:
	// EnvNetStore degrades to nil.)
	var cache *sweep.NetCache
	if *netstore != "" {
		ns, err := sweep.ResolveNetStore(*netstore)
		if err != nil {
			fatal(err)
		}
		cache = sweep.NewNetCacheWithStore(*cacheCap, ns)
	} else {
		cache = sweep.NewNetCache(*cacheCap)
	}
	opts := sweep.Options{
		Workers:    *workers,
		RunWorkers: *runWorkers,
		Cache:      cache,
	}
	// The -batch flag overrides the REPRO_BATCH environment default with
	// the same vocabulary (on/off/width); an unparseable explicit
	// selection is an error rather than a silent scalar sweep.
	if *batch != "" {
		width, err := sweep.ResolveBatch(*batch)
		if err != nil {
			fatal(err)
		}
		opts.Batch = width
	}
	if *storePath != "" {
		store, err := sweep.OpenStore(*storePath)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		fmt.Fprintf(os.Stderr, "store %s: %d results on disk\n", *storePath, store.Len())
		opts.Store = store
	}

	// The run-log lives beside the result store by default: a resumed
	// sweep appends to both, so the store's results and the log of how
	// they were produced travel together.
	logPath := *runlogPath
	if logPath == "" && *storePath != "" {
		logPath = *storePath + ".runlog"
	}
	if logPath != "" && logPath != "off" {
		runlog, err := obs.OpenRunLog(logPath)
		if err != nil {
			fatal(err)
		}
		defer runlog.Close()
		fmt.Fprintf(os.Stderr, "run-log %s\n", logPath)
		opts.RunLog = runlog
	}

	// Live observability: the monitor folds every completed outcome; the
	// -http endpoint renders its Status (plus expvar and pprof) while
	// workers are mid-grid.
	mon := sweep.NewMonitor(spec.Name, len(jobs), opts.Cache, nil)
	mon.SetExpand(expand)
	opts.Progress = func(done, total int, out sweep.Outcome) {
		mon.Observe(done, total, out)
		if !*quiet {
			state := "ran"
			if out.FromStore {
				state = "skip"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", done, total, state, out.Job.Label())
		}
	}
	if *httpAddr != "" {
		// /debug/vars carries the registry too, for expvar-speaking
		// scrapers; /status embeds the same snapshot with progress.
		expvar.Publish("obs", obs.Default.ExpvarFunc())
		srv, err := obs.Serve(*httpAddr, obs.Handler(nil, func() any { return mon.Status() }))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry http://%s/status (expvar: /debug/vars, pprof: /debug/pprof/)\n", srv.Addr())
	}

	// Ctrl-C (or a SIGTERM from a supervisor — sweepd workers that lose
	// a lease reuse this same drain path) cancels the sweep context: the
	// scheduler stops dispatching, in-flight jobs drain into the store,
	// the run-log gets its sweep_end with aborted:true, and the deferred
	// closers flush the telemetry snapshot and pprof artifacts below. A
	// second signal kills the process immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	start := time.Now()
	outs, err := sweep.RunContext(ctx, jobs, opts)
	aborted := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !aborted {
		fatal(err)
	}
	ran, skipped := 0, 0
	for _, o := range outs {
		if o.FromStore {
			skipped++
		} else if o.Err == nil {
			ran++
		}
	}
	hits, misses := opts.Cache.Stats()
	diskHits, diskOn := opts.Cache.DiskStats()
	disk := ""
	if diskOn {
		disk = fmt.Sprintf(" (%d misses served from the topology store)", diskHits)
	}
	fmt.Fprintf(os.Stderr, "ran %d, resumed %d, %s; network cache %d hits / %d misses%s\n",
		ran, skipped, time.Since(start).Round(time.Millisecond), hits, misses, disk)
	if ran > 0 {
		fmt.Fprint(os.Stderr, mon.Breakdown())
	}
	if *telePath != "" {
		snap, err := json.MarshalIndent(mon.Status(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*telePath, append(snap, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote telemetry snapshot %s\n", *telePath)
	}
	if aborted {
		// Drained: everything that ran is in the store, the snapshot and
		// profiles flush on the way out. Partial aggregates would
		// masquerade as the grid's answer, so none are rendered — the
		// store resumes this sweep instead.
		fmt.Fprintf(os.Stderr, "aborted: %v; re-run with the same -store to resume\n", err)
		return 130
	}

	groups := sweep.Aggregate(outs)
	var rendered string
	switch *format {
	case "md":
		rendered = sweep.Markdown(fmt.Sprintf("Sweep %s", spec.Name), groups)
	case "csv":
		rendered = sweep.CSV(groups)
	default:
		fatal(fmt.Errorf("unknown format %q (want md|csv)", *format))
	}
	if *outPath == "" {
		fmt.Print(rendered)
		return 0
	}
	if err := os.WriteFile(*outPath, []byte(rendered), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *outPath, len(groups))
	return 0
}

// stopCPUProfile, when profiling, flushes and closes the CPU profile;
// fatal runs it so an error exit still leaves a readable artifact.
var stopCPUProfile func()

// flushProfiles finalizes the pprof artifacts on the way out.
func flushProfiles(memPath string) {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

func fatal(err error) {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad integer %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fatal(fmt.Errorf("bad number %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}
