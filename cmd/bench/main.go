// Command bench runs the protocol-engine and sweep benchmarks outside
// `go test` and maintains a machine-readable perf trajectory (default
// BENCH_core.json): one append-only entry per engine milestone, keyed by
// `git describe`, each holding ns/op, allocs/op, bytes/op, and runs/sec
// per benchmark. Regenerate after engine work:
//
//	go run ./cmd/bench -o BENCH_core.json   # append a new entry
//	go run ./cmd/bench -quick               # small sizes, for smoke
//	go run ./cmd/bench -quick -compare BENCH_core.json
//	                                        # CI regression gate: re-measure
//	                                        # the core/run cases present in
//	                                        # the last committed entry and
//	                                        # fail on >15% ns/op regression
//
// The benchmarks mirror internal/core/bench_test.go: "fresh" entries pay
// arena construction per run, "arena" entries reuse one World with a
// cached Topology (the sweep scheduler's cache-hit path), and the
// "hiphase" pair drives the engine into the high-phase regime the
// frontier scheduler exploits — a final-round injection timing attack
// keeps a handful of nodes active to the MaxPhase cap while the flood
// quiesces, measured with the frontier engine and with the dense
// reference loop so the speedup is visible inside each trajectory entry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sweep"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	Iterations  int     `json:"iterations"`
}

// entry is one trajectory data point: the benchmarks of one engine state.
type entry struct {
	Label      string        `json:"label"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// trajectory is the committed BENCH_core.json shape: append-only series,
// one entry per PR that touched the engine.
type trajectory struct {
	Series []entry `json:"series"`
}

// legacyReport parses the pre-trajectory single-entry format (PR 2).
type legacyReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// loadTrajectory reads path, migrating the legacy single-entry format
// into a one-entry series. A missing file is an empty trajectory.
func loadTrajectory(path string) (trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return trajectory{}, nil
	}
	if err != nil {
		return trajectory{}, err
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err == nil && tr.Series != nil {
		return tr, nil
	}
	var legacy legacyReport
	if err := json.Unmarshal(data, &legacy); err != nil {
		return trajectory{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(legacy.Benchmarks) == 0 {
		// Unmarshal into the legacy shape "succeeds" on any JSON object
		// (unknown fields are ignored), so an empty benchmark list means
		// the file is neither format — refuse rather than fabricate an
		// entry and clobber a possibly hand-mangled committed series.
		return trajectory{}, fmt.Errorf("parse %s: neither trajectory nor legacy bench format", path)
	}
	return trajectory{Series: []entry{{
		Label:      "pr2-arena",
		GoVersion:  legacy.GoVersion,
		GOOS:       legacy.GOOS,
		GOARCH:     legacy.GOARCH,
		NumCPU:     legacy.NumCPU,
		Note:       legacy.Note,
		Benchmarks: legacy.Benchmarks,
	}}}, nil
}

func measure(c benchCase) benchResult {
	fmt.Fprintf(os.Stderr, "bench %-34s ", c.name)
	r := testing.Benchmark(c.fn)
	// Batched cases time one multi-lane invocation per op; dividing by the
	// lane count records per-run figures, so RunsPerSec is the aggregate
	// lane throughput and ns/op is directly comparable to the scalar case.
	lanes := int64(1)
	if c.lanes > 1 {
		lanes = int64(c.lanes)
	}
	out := benchResult{
		Name:        c.name,
		NsPerOp:     float64(r.NsPerOp()) / float64(lanes),
		AllocsPerOp: r.AllocsPerOp() / lanes,
		BytesPerOp:  r.AllocedBytesPerOp() / lanes,
		Iterations:  r.N * int(lanes),
	}
	if out.NsPerOp > 0 {
		out.RunsPerSec = 1e9 / out.NsPerOp
	}
	fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op\n", out.NsPerOp, out.BytesPerOp, out.AllocsPerOp)
	return out
}

// benchCase is one named benchmark the tool can run (and re-run in
// compare mode). lanes > 1 marks a batched case whose op is one
// invocation of that many lockstep runs; measure folds it back to
// per-run units.
type benchCase struct {
	name  string
	lanes int
	fn    func(b *testing.B)
}

// cases builds the benchmark registry for the selected scale.
func cases(quick bool) []benchCase {
	sizes := []int{512, 1024, 4096, 16384}
	hiphase := []struct{ n, maxPhase int }{{4096, 28}, {16384, 28}}
	genSizes := []int{16384, 65536}
	genRefSizes := []int{16384} // the seed path at 65536 is prohibitively slow
	loadSizes := []int{16384, 65536}
	if quick {
		sizes = []int{512}
		hiphase = []struct{ n, maxPhase int }{{512, 14}}
		genSizes = []int{1024}
		genRefSizes = []int{1024}
		loadSizes = []int{1024}
	}

	nets := map[int]*hgraph.Network{}
	byzs := map[int][]bool{}
	topos := map[int]*core.Topology{}
	prime := func(n int) {
		if _, ok := nets[n]; ok {
			return
		}
		nets[n] = hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: 11})
		byzs[n] = hgraph.PlaceByzantine(n, hgraph.ByzantineBudget(n, 0.75), rng.New(12))
		topos[n] = core.NewTopology(nets[n])
	}
	cfg := core.Config{Algorithm: core.AlgorithmByzantine, Seed: 13, Workers: 1}

	// batchLanes is the lockstep width of the batched cases — the sweep
	// scheduler's DefaultBatchLanes, so the bench measures the width the
	// runner actually uses.
	const batchLanes = sweep.DefaultBatchLanes

	var cs []benchCase
	for _, n := range sizes {
		n := n
		prime(n)
		if n < 16384 {
			// Fresh-arena construction stops being interesting at the
			// largest size; the arena path is what the sweep runs.
			cs = append(cs, benchCase{name: fmt.Sprintf("core/run-fresh/n=%d", n), fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(nets[n], byzs[n], nil, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
		cs = append(cs, benchCase{name: fmt.Sprintf("core/run-arena/n=%d", n), fn: func(b *testing.B) {
			w := core.NewWorld()
			defer w.Close()
			if _, err := w.RunTopology(topos[n], byzs[n], nil, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunTopology(topos[n], byzs[n], nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	// Batched lockstep execution over the largest arena: batchLanes
	// Byzantine runs (seeds varied per lane, the sweep's trial axis) share
	// one CSR traversal per round. One op is one invocation; measure folds
	// the figures back to per-run units, so the ns/op ratio against
	// core/run-arena at the same n IS the aggregate throughput gain.
	nb := sizes[len(sizes)-1]
	cs = append(cs, benchCase{name: fmt.Sprintf("core/run-batch/n=%d", nb), lanes: batchLanes, fn: func(b *testing.B) {
		specs := make([]core.LaneSpec, batchLanes)
		for l := range specs {
			lcfg := cfg
			lcfg.Seed = cfg.Seed + uint64(l)
			specs[l] = core.LaneSpec{Byz: byzs[nb], Cfg: lcfg}
		}
		bw := core.NewBatchWorld()
		defer bw.Close()
		if _, err := bw.RunTopology(topos[nb], specs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bw.RunTopology(topos[nb], specs); err != nil {
				b.Fatal(err)
			}
		}
	}})

	for _, hp := range hiphase {
		hp := hp
		prime(hp.n)
		// One injector is enough to keep its neighborhood active to the
		// cap; more injectors mean more straggler-generated waves and
		// less quiescence to exploit.
		byzOne := hgraph.PlaceByzantine(hp.n, 1, rng.New(12))
		for _, mode := range []struct {
			suffix string
			fm     core.FrontierMode
		}{{"", core.FrontierOn}, {"-dense", core.FrontierOff}} {
			mode := mode
			name := fmt.Sprintf("core/run-hiphase%s/n=%d", mode.suffix, hp.n)
			cs = append(cs, benchCase{name: name, fn: func(b *testing.B) {
				hcfg := core.Config{
					Algorithm:      core.AlgorithmBasic,
					Seed:           13,
					Workers:        1,
					MaxPhase:       hp.maxPhase,
					FrontierRounds: mode.fm,
				}
				w := core.NewWorld()
				defer w.Close()
				if _, err := w.RunTopology(topos[hp.n], byzOne, adversary.FinalRoundInflate{}, hcfg); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.RunTopology(topos[hp.n], byzOne, adversary.FinalRoundInflate{}, hcfg); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
		// The batched variant of the same high-phase regime: here the
		// shared CSR traversal has the most to amortize — long quiescent
		// tails where every lane's frontier has collapsed to the same
		// injector neighborhood.
		cs = append(cs, benchCase{name: fmt.Sprintf("core/run-hiphase-batch/n=%d", hp.n), lanes: batchLanes, fn: func(b *testing.B) {
			specs := make([]core.LaneSpec, batchLanes)
			for l := range specs {
				specs[l] = core.LaneSpec{Byz: byzOne, Adv: adversary.FinalRoundInflate{}, Cfg: core.Config{
					Algorithm:      core.AlgorithmBasic,
					Seed:           uint64(13 + l),
					Workers:        1,
					MaxPhase:       hp.maxPhase,
					FrontierRounds: core.FrontierOn,
				}}
			}
			bw := core.NewBatchWorld()
			defer bw.Close()
			if _, err := bw.RunTopology(topos[hp.n], specs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bw.RunTopology(topos[hp.n], specs); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	// Topology pipeline: cold generation on the fast path (what a cache
	// miss without a disk tier costs), the seed reference generator
	// (same machine, so each entry records the speedup ratio), and a
	// disk-tier hit (what a warm store turns that miss into).
	for _, n := range genSizes {
		n := n
		cs = append(cs, benchCase{name: fmt.Sprintf("hgraph/gen/n=%d", n), fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 11}); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	for _, n := range genRefSizes {
		n := n
		cs = append(cs, benchCase{name: fmt.Sprintf("hgraph/gen-ref/n=%d", n), fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hgraph.NewReference(hgraph.Params{N: n, D: 8, Seed: 11}); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	for _, n := range loadSizes {
		n := n
		cs = append(cs, benchCase{name: fmt.Sprintf("graphio/load/n=%d", n), fn: func(b *testing.B) {
			store, err := graphio.OpenNetStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			p := hgraph.Params{N: n, D: 8, Seed: 11}
			net, err := hgraph.New(p)
			if err != nil {
				b.Fatal(err)
			}
			if err := store.Save(net, core.NewTopology(net)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := store.Load(p); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	// The sweep scheduler's steady state: a warmed network cache, one
	// arena per worker, grid cells streaming through.
	sweepN := sizes[0]
	cs = append(cs, benchCase{name: fmt.Sprintf("sweep/cached/n=%d", sweepN), fn: func(b *testing.B) {
		spec := sweep.Spec{
			Name:        "bench",
			Sizes:       []int{sweepN},
			Deltas:      []float64{0.75},
			Adversaries: []string{"none", "inflate", "suppress", "oracle"},
			Trials:      2,
			Seed:        41,
		}
		jobs, err := spec.Jobs()
		if err != nil {
			b.Fatal(err)
		}
		cache := sweep.NewNetCache(0)
		opts := sweep.Options{Workers: 1, Cache: cache, Band: metrics.DefaultBand}
		if _, err := sweep.Run(jobs, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Run(jobs, opts); err != nil {
				b.Fatal(err)
			}
		}
	}})
	return cs
}

// gitLabel derives the trajectory key for a new entry.
func gitLabel() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// measureBest runs a benchmark several times and keeps the fastest
// ns/op sample (the standard noise-robust statistic for a gate — a slow
// sample is load, a fast sample is the machine). Alloc/byte counts are
// deterministic and taken from the last run.
func measureBest(c benchCase) benchResult {
	best := measure(c)
	for i := 0; i < 2; i++ {
		if r := measure(c); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// minSpeedup is the floor compare enforces on the same-run
// dense-vs-frontier ratio of each hiphase pair available at the current
// scale. The committed full-scale entries show 2.3×; the quick n=512
// configuration measures ~1.4×; 1.1 leaves noise room while still
// catching any change that erases the frontier engine's win.
const minSpeedup = 1.1

// minGenSpeedup is the floor on the same-run reference-vs-fast topology
// generation ratio (hgraph/gen-ref over hgraph/gen at the same n).
// Measured on a single core: 2.1× at n=16384, 1.7× at the quick n=1024;
// machines with more cores add the pooled fan-out on top. 1.3 leaves
// noise room while catching any change that erases the fast path's win.
const minGenSpeedup = 1.3

// minBatchSpeedup is the floor on the same-run scalar-vs-batched ratio
// of the hiphase pair: per-run ns/op of the scalar frontier case over
// the per-lane ns/op of its 16-lane batched counterpart at the same n.
// The high-phase regime is where the shared traversal amortizes — the
// full-scale entry shows the headline multiple, the quick n=512 case
// measures ~1.7×; 1.4 leaves noise room while catching any change that
// erases lockstep execution's win. The Byzantine-arena batch case is
// reported but not gated: its runtime is dominated by per-lane
// verification reruns that batching cannot amortize, so its ratio
// hovers near 1 and below at small n.
const minBatchSpeedup = 1.4

// compare re-measures the core/run benchmarks of the baseline's last
// entry that are available at the current scale and writes a
// benchstat-style table. Two machine-independent checks always gate:
// allocs/op may not grow (beyond a 0.5% slack absorbing GC-cadence
// noise in the setup-heavy cases), and each hiphase frontier/dense pair
// measured in THIS run must keep a ≥ minSpeedup dense-to-frontier ratio. The
// absolute ns/op threshold (maxRegress) additionally gates only when the
// baseline entry was recorded on matching hardware — absolute
// nanoseconds from a different machine are not a regression signal, so
// elsewhere the delta column is informational. Skipped baseline cases
// are listed, and comparing nothing is an error, not a pass.
func compare(baseline trajectory, cs []benchCase, maxRegress float64, out *strings.Builder) error {
	if len(baseline.Series) == 0 {
		return fmt.Errorf("baseline has no entries")
	}
	last := baseline.Series[len(baseline.Series)-1]
	byName := map[string]benchCase{}
	for _, c := range cs {
		byName[c.name] = c
	}
	sameMachine := last.GOOS == runtime.GOOS && last.GOARCH == runtime.GOARCH && last.NumCPU == runtime.NumCPU()
	fmt.Fprintf(out, "baseline entry: %s (%s, %s/%s, %d cpu)\n", last.Label, last.GoVersion, last.GOOS, last.GOARCH, last.NumCPU)
	if sameMachine {
		fmt.Fprintf(out, "hardware matches: ns/op gated at %+.0f%%\n\n", maxRegress*100)
	} else {
		fmt.Fprintf(out, "hardware differs (this machine: %s/%s, %d cpu): ns/op informational; gating allocs/op and the frontier speedup ratio\n\n", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	}
	fmt.Fprintf(out, "%-36s %14s %14s %8s %12s %12s\n", "name", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	var failures []string
	compared := 0
	measured := map[string]benchResult{}
	for _, old := range last.Benchmarks {
		if !strings.HasPrefix(old.Name, "core/run") {
			continue
		}
		c, ok := byName[old.Name]
		if !ok {
			fmt.Fprintf(out, "%-36s skipped: not available at this scale\n", old.Name)
			continue
		}
		now := measureBest(c)
		measured[c.name] = now
		compared++
		delta := now.NsPerOp/old.NsPerOp - 1
		fmt.Fprintf(out, "%-36s %14.0f %14.0f %+7.1f%% %12d %12d\n",
			old.Name, old.NsPerOp, now.NsPerOp, delta*100, old.AllocsPerOp, now.AllocsPerOp)
		if sameMachine && delta > maxRegress {
			failures = append(failures, fmt.Sprintf("%s: ns/op %+.1f%% (limit %+.0f%%)", old.Name, delta*100, maxRegress*100))
		}
		// Alloc counts of the setup-heavy fresh/arena cases are not
		// perfectly deterministic: a run's total includes runtime
		// activity whose cadence tracks GC frequency, and the quick
		// gate's process primes a far smaller heap than the full-scale
		// record run, shifting that cadence (observed ±2 on ~1550
		// allocs/op). A 0.5% slack absorbs it; integer division keeps
		// the gate exact for the lean cases — the 5-alloc hiphase paths
		// (and any future 0-alloc case) get zero slack.
		if slack := old.AllocsPerOp / 200; now.AllocsPerOp > old.AllocsPerOp+slack {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d", old.Name, old.AllocsPerOp, now.AllocsPerOp))
		}
	}
	if compared == 0 {
		return fmt.Errorf("no baseline core/run case is available at this scale — the gate compared nothing")
	}

	// Same-run frontier-vs-dense ratio: machine-independent, and the
	// invariant the engine exists for. Measure any hiphase pair the
	// current scale provides that the baseline loop did not already run.
	for _, c := range cs {
		if !strings.HasPrefix(c.name, "core/run-hiphase/") {
			continue
		}
		denseName := strings.Replace(c.name, "core/run-hiphase/", "core/run-hiphase-dense/", 1)
		dc, ok := byName[denseName]
		if !ok {
			continue
		}
		fr, ok := measured[c.name]
		if !ok {
			fr = measureBest(c)
			measured[c.name] = fr
		}
		dn, ok := measured[denseName]
		if !ok {
			dn = measureBest(dc)
			measured[denseName] = dn
		}
		ratio := dn.NsPerOp / fr.NsPerOp
		fmt.Fprintf(out, "\n%-36s dense/frontier = %.2fx (floor %.2fx)\n", c.name, ratio, minSpeedup)
		if ratio < minSpeedup {
			failures = append(failures, fmt.Sprintf("%s: frontier speedup %.2fx below %.2fx floor", c.name, ratio, minSpeedup))
		}
	}

	// Same-run batched-vs-scalar ratio: per-lane batched throughput over
	// the scalar engine on the identical workload, machine-independent
	// like the frontier ratio. The high-phase pair gates (traversal-bound,
	// the regime batching exists for); the Byzantine-arena pair is
	// informational (verification-bound — see minBatchSpeedup).
	for _, c := range cs {
		var scalarName string
		gated := false
		switch {
		case strings.HasPrefix(c.name, "core/run-batch/"):
			scalarName = strings.Replace(c.name, "core/run-batch/", "core/run-arena/", 1)
		case strings.HasPrefix(c.name, "core/run-hiphase-batch/"):
			scalarName = strings.Replace(c.name, "core/run-hiphase-batch/", "core/run-hiphase/", 1)
			gated = true
		default:
			continue
		}
		sc, ok := byName[scalarName]
		if !ok {
			continue
		}
		bt, ok := measured[c.name]
		if !ok {
			bt = measureBest(c)
		}
		sr, ok := measured[scalarName]
		if !ok {
			sr = measureBest(sc)
			measured[scalarName] = sr
		}
		ratio := sr.NsPerOp / bt.NsPerOp
		if gated {
			fmt.Fprintf(out, "\n%-36s scalar/batched = %.2fx (floor %.2fx)\n", c.name, ratio, minBatchSpeedup)
			if ratio < minBatchSpeedup {
				failures = append(failures, fmt.Sprintf("%s: batch speedup %.2fx below %.2fx floor", c.name, ratio, minBatchSpeedup))
			}
		} else {
			fmt.Fprintf(out, "\n%-36s scalar/batched = %.2fx (informational)\n", c.name, ratio)
		}
	}

	// Same-run topology-generation ratio: the fast path vs the in-tree
	// seed reference, machine-independent like the frontier ratio. The
	// disk-tier cost is reported alongside (informational: it measures
	// the page cache as much as the codec).
	for _, c := range cs {
		if !strings.HasPrefix(c.name, "hgraph/gen/") {
			continue
		}
		refName := strings.Replace(c.name, "hgraph/gen/", "hgraph/gen-ref/", 1)
		rc, ok := byName[refName]
		if !ok {
			continue
		}
		fast := measureBest(c)
		ref := measureBest(rc)
		ratio := ref.NsPerOp / fast.NsPerOp
		fmt.Fprintf(out, "\n%-36s ref/fast = %.2fx (floor %.2fx)\n", c.name, ratio, minGenSpeedup)
		if ratio < minGenSpeedup {
			failures = append(failures, fmt.Sprintf("%s: generation speedup %.2fx below %.2fx floor", c.name, ratio, minGenSpeedup))
		}
		if lc, ok := byName[strings.Replace(c.name, "hgraph/gen/", "graphio/load/", 1)]; ok {
			load := measureBest(lc)
			fmt.Fprintf(out, "%-36s gen/load = %.2fx (informational)\n", lc.name, fast.NsPerOp/load.NsPerOp)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(out, "\nREGRESSIONS:\n  %s\n", strings.Join(failures, "\n  "))
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	fmt.Fprintf(out, "\nno regressions (%d cases compared)\n", compared)
	return nil
}

func main() {
	var (
		outPath     = flag.String("o", "BENCH_core.json", "trajectory file to append to (- for stdout)")
		quick       = flag.Bool("quick", false, "small sizes only (CI smoke)")
		note        = flag.String("note", "", "annotation recorded in the new entry")
		label       = flag.String("label", "", "trajectory key for the new entry (default: git describe)")
		comparePath = flag.String("compare", "", "compare against this baseline trajectory instead of appending")
		compareOut  = flag.String("compare-out", "", "also write the comparison table to this file")
		maxRegress  = flag.Float64("max-regress", 0.15, "ns/op regression threshold for -compare")
		cpuProfile  = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the benchmark run to this file")
		memProfile  = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file at exit")
	)
	flag.Parse()

	// Profiles turn a BENCH_core.json regression into an artifact to
	// diagnose instead of a run to reproduce: re-run the offending case
	// with -cpuprofile and read the flame graph.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}
	defer flushProfiles(*memProfile)

	cs := cases(*quick)

	if *comparePath != "" {
		baseline, err := loadTrajectory(*comparePath)
		if err != nil {
			fatal(err)
		}
		var report strings.Builder
		cmpErr := compare(baseline, cs, *maxRegress, &report)
		fmt.Print(report.String())
		if *compareOut != "" {
			if err := os.WriteFile(*compareOut, []byte(report.String()), 0o644); err != nil {
				fatal(err)
			}
		}
		if cmpErr != nil {
			fatal(cmpErr)
		}
		return
	}

	e := entry{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Note:      *note,
	}
	if e.Label == "" {
		e.Label = gitLabel()
	}
	for _, c := range cs {
		e.Benchmarks = append(e.Benchmarks, measure(c))
	}

	tr := trajectory{}
	if *outPath != "-" {
		var err error
		if tr, err = loadTrajectory(*outPath); err != nil {
			fatal(err)
		}
	}
	tr.Series = append(tr.Series, e)

	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "appended entry %q to %s (%d entries)\n", e.Label, *outPath, len(tr.Series))
}

// stopCPUProfile, when profiling, flushes and closes the CPU profile;
// fatal runs it so a failed regression gate still leaves the artifact.
var stopCPUProfile func()

// flushProfiles finalizes the pprof artifacts on the way out.
func flushProfiles(memPath string) {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
	}
}

func fatal(err error) {
	if stopCPUProfile != nil {
		stopCPUProfile()
		stopCPUProfile = nil
	}
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
