// Command bench runs the protocol-engine and sweep benchmarks outside
// `go test` and writes a machine-readable perf snapshot (default
// BENCH_core.json): ns/op, allocs/op, bytes/op, and runs/sec per
// benchmark. The committed file is the perf trajectory's data series —
// regenerate after engine work and compare:
//
//	go run ./cmd/bench -o BENCH_core.json
//	go run ./cmd/bench -quick        # fewer/smaller cases, for smoke
//
// The benchmarks mirror internal/core/bench_test.go: the "fresh" entries
// pay arena construction per run (the seed engine's only mode), the
// "arena" entries reuse one World with a cached Topology — the sweep
// scheduler's cache-hit path and the configuration the acceptance
// criterion tracks at n=4096.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sweep"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func measure(name string, fn func(b *testing.B)) benchResult {
	fmt.Fprintf(os.Stderr, "bench %-28s ", name)
	r := testing.Benchmark(fn)
	out := benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if out.NsPerOp > 0 {
		out.RunsPerSec = 1e9 / out.NsPerOp
	}
	fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op\n", out.NsPerOp, out.BytesPerOp, out.AllocsPerOp)
	return out
}

func main() {
	var (
		outPath = flag.String("o", "BENCH_core.json", "output file (- for stdout)")
		quick   = flag.Bool("quick", false, "small sizes only (CI smoke)")
		note    = flag.String("note", "", "annotation recorded in the report")
	)
	flag.Parse()

	sizes := []int{1024, 4096}
	if *quick {
		sizes = []int{512}
	}

	nets := map[int]*hgraph.Network{}
	byzs := map[int][]bool{}
	topos := map[int]*core.Topology{}
	for _, n := range sizes {
		nets[n] = hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: 11})
		byzs[n] = hgraph.PlaceByzantine(n, hgraph.ByzantineBudget(n, 0.75), rng.New(12))
		topos[n] = core.NewTopology(nets[n])
	}
	cfg := core.Config{Algorithm: core.AlgorithmByzantine, Seed: 13, Workers: 1}

	var rep report
	rep.GoVersion = runtime.Version()
	rep.GOOS = runtime.GOOS
	rep.GOARCH = runtime.GOARCH
	rep.NumCPU = runtime.NumCPU()
	rep.Note = *note

	for _, n := range sizes {
		n := n
		rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("core/run-fresh/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(nets[n], byzs[n], nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}))
		rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("core/run-arena/n=%d", n), func(b *testing.B) {
			w := core.NewWorld()
			defer w.Close()
			if _, err := w.RunTopology(topos[n], byzs[n], nil, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunTopology(topos[n], byzs[n], nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// The sweep scheduler's steady state: a warmed network cache, one
	// arena per worker, grid cells streaming through.
	spec := sweep.Spec{
		Name:        "bench",
		Sizes:       []int{sizes[0]},
		Deltas:      []float64{0.75},
		Adversaries: []string{"none", "inflate", "suppress", "oracle"},
		Trials:      2,
		Seed:        41,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		fatal(err)
	}
	cache := sweep.NewNetCache(0)
	opts := sweep.Options{Workers: 1, Cache: cache, Band: metrics.DefaultBand}
	if _, err := sweep.Run(jobs, opts); err != nil {
		fatal(err)
	}
	rep.Benchmarks = append(rep.Benchmarks, measure(fmt.Sprintf("sweep/cached/n=%d", sizes[0]), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Run(jobs, opts); err != nil {
				b.Fatal(err)
			}
		}
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
