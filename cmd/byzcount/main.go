// Command byzcount runs the Byzantine counting protocol on a generated
// small-world network and reports per-node estimates of log n.
//
// Usage:
//
//	byzcount -n 2048 -delta 0.75 -adversary inflate -alg byzantine
//	byzcount -n 1024 -placement clustered -adversary chain-faker
//	byzcount -n 4096 -churn 0.05 -trace 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "network size (hidden from the nodes)")
		d         = flag.Int("d", 8, "H-degree (even, >= 4; the paper assumes >= 8)")
		delta     = flag.Float64("delta", 0.75, "Byzantine tolerance exponent: B = n^(1-delta); 1 disables faults")
		advName   = flag.String("adversary", "honest", "honest | inflate | suppress | topology-liar | chain-faker | combo")
		algName   = flag.String("alg", "byzantine", "basic | byzantine")
		placeName = flag.String("placement", "random", "random | clustered | spread (Byzantine placement)")
		eps       = flag.Float64("epsilon", 0.1, "error parameter ε")
		seed      = flag.Uint64("seed", 1, "run seed")
		trials    = flag.Int("trials", 1, "independent trials")
		churn     = flag.Float64("churn", 0, "fraction of honest nodes to crash-fail mid-run")
		calibrate = flag.Bool("calibrate", false, "show degree-calibrated estimates (extension)")
		traceN    = flag.Int("trace", 0, "print the last N protocol trace events")
	)
	flag.Parse()

	var alg core.Algorithm
	switch *algName {
	case "basic":
		alg = core.AlgorithmBasic
	case "byzantine":
		alg = core.AlgorithmByzantine
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	var adv core.Adversary
	for _, a := range adversary.All() {
		if a.Name() == *advName {
			adv = a
			break
		}
	}
	if adv == nil {
		fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *advName)
		os.Exit(2)
	}

	var place hgraph.PlacementFunc
	for _, p := range hgraph.Placements() {
		if p.Name == *placeName {
			place = p
		}
	}
	if place.Place == nil {
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placeName)
		os.Exit(2)
	}

	bCount := 0
	if *delta < 1 {
		bCount = hgraph.ByzantineBudget(*n, *delta)
	}
	fmt.Printf("byzcount: n=%d d=%d B=%d (%s) adversary=%s algorithm=%s ε=%g churn=%.0f%%\n\n",
		*n, *d, bCount, place.Name, adv.Name(), alg, *eps, 100**churn)

	var agg metrics.Aggregate
	// One arena reused across trials: per-run state is rewound by Reset
	// rather than reallocated.
	arena := core.NewWorld()
	defer arena.Close()
	for trial := 0; trial < *trials; trial++ {
		s := *seed + uint64(trial)*101
		net, err := hgraph.New(hgraph.Params{N: *n, D: *d, Seed: s})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var byz []bool
		if bCount > 0 {
			byz = place.Place(net.H, bCount, rng.New(s+13))
		}
		var rec *trace.Recorder
		cfg := core.Config{Algorithm: alg, Epsilon: *eps, Seed: s + 29}
		if *traceN > 0 {
			rec = trace.New(1 << 16)
			cfg.Observer = rec
		}
		if *churn > 0 {
			cfg.Churn = core.ChurnConfig{Crashes: int(*churn * float64(*n)), Seed: s + 31}
		}
		res, err := arena.Run(net, byz, adv, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sum := metrics.Summarize(res, metrics.DefaultBand)
		agg.Add(sum)
		fmt.Printf("trial %d: %s\n", trial, sum)
		if trial == 0 {
			printHistogram(res, *calibrate)
			if rec != nil {
				fmt.Printf("\ntrace (%d events total, %d decides):\n%s",
					len(rec.Events())+rec.Dropped(), rec.Count(trace.KindDecide), rec.Dump(*traceN))
			}
		}
	}
	if *trials > 1 {
		fmt.Printf("\nacross %d trials: correct %.3f±%.3f, rounds %.0f±%.0f\n",
			agg.Trials, agg.CorrectFraction.Mean(), agg.CorrectFraction.StdErr(),
			agg.Rounds.Mean(), agg.Rounds.StdErr())
	}
}

// printHistogram renders the estimate distribution of one run.
func printHistogram(res *core.Result, calibrate bool) {
	counts := map[int]int{}
	crashed, undecided := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Byzantine[v] {
			continue
		}
		switch {
		case res.Crashed[v]:
			crashed++
		case res.Estimates[v] == 0:
			undecided++
		default:
			counts[int(res.Estimates[v])]++
		}
	}
	var keys []int
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("  estimate histogram (true log2 n = %.2f):\n", res.LogN)
	for _, k := range keys {
		label := fmt.Sprintf("est=%2d", k)
		if calibrate {
			label = fmt.Sprintf("est=%2d → ĉ=%5.2f", k, core.CalibratedEstimate(k, res.D))
		}
		fmt.Printf("    %s  %6d nodes  %s\n", label, counts[k], bar(counts[k], res.HonestCount))
	}
	if crashed > 0 {
		fmt.Printf("    crashed    %6d nodes\n", crashed)
	}
	if undecided > 0 {
		fmt.Printf("    undecided  %6d nodes\n", undecided)
	}
}

func bar(count, total int) string {
	width := count * 50 / total
	out := make([]byte, width)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
