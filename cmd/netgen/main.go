// Command netgen generates the paper's network models and reports their
// structural properties: degrees, clustering, diameter, expansion, and the
// locally-tree-like fraction.
//
// Usage:
//
//	netgen -n 2048 -d 8            # H(n,d) and G = H ∪ L
//	netgen -n 2048 -model ws       # Watts–Strogatz reference
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	var (
		n        = flag.Int("n", 2048, "number of nodes")
		d        = flag.Int("d", 8, "H-degree (or 2k for Watts-Strogatz)")
		model    = flag.String("model", "paper", "paper | ws")
		beta     = flag.Float64("beta", 0.1, "Watts-Strogatz rewiring probability")
		seed     = flag.Uint64("seed", 1, "generator seed")
		dotPath  = flag.String("dot", "", "write the H graph in Graphviz DOT to this file")
		edgePath = flag.String("edges", "", "write the H graph as an edge list to this file")
	)
	flag.Parse()

	var h *graph.Graph
	switch *model {
	case "paper":
		net, err := hgraph.New(hgraph.Params{N: *n, D: *d, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("H(n=%d, d=%d), lattice radius k=%d\n\n", *n, *d, net.K)
		describe("H", net.H)
		ltlR := hgraph.LTLRadius(*n, *d)
		_, ltl := hgraph.LocallyTreeLike(net.H, ltlR)
		fmt.Printf("  locally tree-like (r=%d): %d / %d (%.2f%%)\n\n", ltlR, ltl, *n, 100*float64(ltl)/float64(*n))
		describe("G = H ∪ L", net.G)
		h = net.H
	case "ws":
		g := hgraph.WattsStrogatz(*n, *d/2, *beta, rng.New(*seed))
		fmt.Printf("Watts-Strogatz(n=%d, k=%d, beta=%.2f)\n\n", *n, *d/2, *beta)
		describe("WS", g)
		h = g
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	if *dotPath != "" {
		writeFile(*dotPath, func(f *os.File) error {
			return graphio.WriteDOT(f, h, graphio.DOTOptions{Name: "H", MaxNodes: 2000})
		})
	}
	if *edgePath != "" {
		writeFile(*edgePath, func(f *os.File) error {
			return graphio.WriteEdgeList(f, h)
		})
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func describe(name string, g *graph.Graph) {
	st := g.Degrees()
	fmt.Printf("%s: %d nodes, %d edges\n", name, g.N(), g.NumEdges())
	fmt.Printf("  degree: min=%d mean=%.2f max=%d\n", st.Min, st.Mean, st.Max)
	fmt.Printf("  connected: %v\n", g.IsConnected())
	fmt.Printf("  clustering coefficient: %.4f\n", g.AvgClustering())
	fmt.Printf("  diameter (2-sweep lower bound): %d\n", g.DiameterLowerBound(4))
	m := spectral.Measure(g, spectral.Options{})
	fmt.Printf("  spectral: λ=%.4f (Ramanujan ref %.4f), gap=%.4f, edge expansion=%.3f, mix bound=%.1f rounds\n\n",
		m.Lambda, m.RamanujanRef, m.Gap, m.EdgeExpansion, m.MixingBound)
}
