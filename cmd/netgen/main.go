// Command netgen generates the paper's network models and reports their
// structural properties: degrees, clustering, diameter, expansion, and the
// locally-tree-like fraction. With -pregen it instead fills the
// persistent topology store for a whole sweep grid, so later sweeps pay
// disk reads instead of generation.
//
// Usage:
//
//	netgen -n 2048 -d 8            # H(n,d) and G = H ∪ L
//	netgen -n 2048 -model ws       # Watts–Strogatz reference
//	netgen -pregen -spec grid.json -store ./netstore [-workers 4]
//	                               # pregenerate every distinct topology
//	                               # the spec's grid touches
//	netgen -pregen -n 4096 -seed 7 -store ./netstore
//	                               # pregenerate a single instance
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/sweep"
)

func main() {
	var (
		n        = flag.Int("n", 2048, "number of nodes")
		d        = flag.Int("d", 8, "H-degree (or 2k for Watts-Strogatz)")
		model    = flag.String("model", "paper", "paper | ws")
		beta     = flag.Float64("beta", 0.1, "Watts-Strogatz rewiring probability")
		seed     = flag.Uint64("seed", 1, "generator seed")
		dotPath  = flag.String("dot", "", "write the H graph in Graphviz DOT to this file")
		edgePath = flag.String("edges", "", "write the H graph as an edge list to this file")
		pregen   = flag.Bool("pregen", false, "fill the topology store instead of describing a network")
		specPath = flag.String("spec", "", "with -pregen: sweep spec whose grid to pregenerate")
		storeDir = flag.String("store", "", "with -pregen: topology store root (default: the REPRO_NETSTORE directory)")
		workers  = flag.Int("workers", 0, "with -pregen: concurrent generations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *pregen {
		if err := runPregen(*specPath, *storeDir, *workers, hgraph.Params{N: *n, D: *d, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var h *graph.Graph
	switch *model {
	case "paper":
		net, err := hgraph.New(hgraph.Params{N: *n, D: *d, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("H(n=%d, d=%d), lattice radius k=%d\n\n", *n, *d, net.K)
		describe("H", net.H)
		ltlR := hgraph.LTLRadius(*n, *d)
		_, ltl := hgraph.LocallyTreeLike(net.H, ltlR)
		fmt.Printf("  locally tree-like (r=%d): %d / %d (%.2f%%)\n\n", ltlR, ltl, *n, 100*float64(ltl)/float64(*n))
		describe("G = H ∪ L", net.G)
		h = net.H
	case "ws":
		g := hgraph.WattsStrogatz(*n, *d/2, *beta, rng.New(*seed))
		fmt.Printf("Watts-Strogatz(n=%d, k=%d, beta=%.2f)\n\n", *n, *d/2, *beta)
		describe("WS", g)
		h = g
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	if *dotPath != "" {
		writeFile(*dotPath, func(f *os.File) error {
			return graphio.WriteDOT(f, h, graphio.DOTOptions{Name: "H", MaxNodes: 2000})
		})
	}
	if *edgePath != "" {
		writeFile(*edgePath, func(f *os.File) error {
			return graphio.WriteEdgeList(f, h)
		})
	}
}

// runPregen fills the topology store with every distinct canonical
// (n, d, k, seed) the spec's grid expands to (or the single fallback
// instance when no spec is given), generating missing entries in
// parallel. Already-present blobs are skipped, so pregen is incremental
// and restartable.
func runPregen(specPath, storeDir string, workers int, fallback hgraph.Params) error {
	var store *graphio.NetStore
	if storeDir != "" {
		var err error
		if store, err = graphio.OpenNetStore(storeDir); err != nil {
			return err
		}
	} else if store = sweep.EnvNetStore(); store == nil {
		return fmt.Errorf("netgen: -pregen needs -store (or REPRO_NETSTORE)")
	}

	var params []hgraph.Params
	seen := map[hgraph.Params]bool{}
	add := func(p hgraph.Params) {
		p = p.Canonical()
		if !seen[p] {
			seen[p] = true
			params = append(params, p)
		}
	}
	if specPath != "" {
		spec, err := sweep.LoadSpec(specPath)
		if err != nil {
			return err
		}
		jobs, err := spec.Jobs()
		if err != nil {
			return err
		}
		for _, j := range jobs {
			add(j.Net)
		}
	} else {
		add(fallback)
	}

	var todo []hgraph.Params
	for _, p := range params {
		if !store.Has(p) {
			todo = append(todo, p)
		}
	}
	fmt.Fprintf(os.Stderr, "pregen: %d distinct topologies, %d already stored, %d to generate\n",
		len(params), len(params)-len(todo), len(todo))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	// Split the machine between concurrent generations and within-
	// generation parallelism, mirroring the sweep scheduler's division.
	poolSize := runtime.GOMAXPROCS(0) / max(workers, 1)
	if poolSize < 1 {
		poolSize = 1
	}

	start := time.Now()
	var (
		work = make(chan hgraph.Params)
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := sim.NewPool(poolSize)
			defer pool.Close()
			for p := range work {
				net, err := hgraph.NewWith(p, pool)
				if err == nil {
					err = store.Save(net, core.NewTopology(net))
				}
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("pregen %+v: %w", p, err))
				} else {
					done++
					fmt.Fprintf(os.Stderr, "[%d/%d] n=%d d=%d k=%d seed=%d\n", done, len(todo), p.N, p.D, p.K, p.Seed)
				}
				mu.Unlock()
			}
		}()
	}
	for _, p := range todo {
		work <- p
	}
	close(work)
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintf(os.Stderr, "pregen: stored %d topologies in %s (store %s: %d blobs)\n",
		done, time.Since(start).Round(time.Millisecond), store.Dir(), store.Len())
	return nil
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func describe(name string, g *graph.Graph) {
	st := g.Degrees()
	fmt.Printf("%s: %d nodes, %d edges\n", name, g.N(), g.NumEdges())
	fmt.Printf("  degree: min=%d mean=%.2f max=%d\n", st.Min, st.Mean, st.Max)
	fmt.Printf("  connected: %v\n", g.IsConnected())
	fmt.Printf("  clustering coefficient: %.4f\n", g.AvgClustering())
	fmt.Printf("  diameter (2-sweep lower bound): %d\n", g.DiameterLowerBound(4))
	m := spectral.Measure(g, spectral.Options{})
	fmt.Printf("  spectral: λ=%.4f (Ramanujan ref %.4f), gap=%.4f, edge expansion=%.3f, mix bound=%.1f rounds\n\n",
		m.Lambda, m.RamanujanRef, m.Gap, m.EdgeExpansion, m.MixingBound)
}
