// Command sweepd runs a scenario grid across machines: a coordinator
// expands the grid once, partitions pending jobs into content-key-range
// shards, and serves them over HTTP with lease-based assignment; worker
// processes (the same binary with -worker) claim shards, run them
// through the ordinary sweep scheduler, stream records back, and
// heartbeat. A worker that dies mid-shard simply stops heartbeating —
// its lease expires, the shard reassigns, and the replacement worker
// recomputes only the jobs the dead worker never reported. Aggregates
// fold in expansion order from the one merged store, so the output is
// byte-identical to a single-process `sweep` run of the same grid, for
// any shard count, worker count, or number of mid-sweep deaths.
//
// Usage:
//
//	sweepd -n 1024 -delta 0.75 -adv none,inflate -trials 8 \
//	       -store merged.jsonl -shards 8 -http :9900        # coordinator
//	sweepd -worker http://host:9900 -name w1                # worker (×N)
//	sweepd -spec grid.json -store merged.jsonl -http :9900  # spec file
//
// The coordinator resolves store hits before serving anything, so
// re-running with the same -store resumes the fleet where it stopped.
// /status on the coordinator's address serves the familiar sweep
// Monitor document plus shard and worker-liveness tallies; -telemetry
// writes that document as JSON on exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweepd"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		// Worker mode.
		workerURL  = flag.String("worker", "", "run as a worker against this coordinator URL")
		name       = flag.String("name", "", "worker name for leases and /status (default host.pid)")
		workers    = flag.Int("workers", 0, "concurrent jobs per worker (0 = GOMAXPROCS)")
		runWorkers = flag.Int("run-workers", 0, "sim workers per job (0 = auto)")
		cacheCap   = flag.Int("cache", 0, "network cache capacity (0 = default)")
		netstore   = flag.String("netstore", "", "topology store: dir, \"on\", or \"off\" (default: $REPRO_NETSTORE)")
		batch      = flag.String("batch", "", "lockstep batched execution: \"on\", \"off\", or width (default: $REPRO_BATCH)")
		retries    = flag.Int("retries", 0, "transient coordinator-call retries per request (0 = default)")
		backoff    = flag.Duration("backoff", 0, "first retry delay, doubled per attempt (0 = default)")
		maxOffline = flag.Duration("max-offline", 0, "drain and exit after the coordinator is unreachable this long (0 = 90s, negative = wait forever)")
		chaosDelay = flag.Duration("chaos-delay", 0, "inject a random delay up to this duration before every coordinator call (straggler simulation; 0 = off)")

		// Coordinator mode: the grid (cmd/sweep's vocabulary).
		specPath = flag.String("spec", "", "JSON spec file (grid flags below are ignored when set)")
		sizes    = flag.String("n", "256,512", "comma-separated network sizes")
		degrees  = flag.String("d", "8", "comma-separated H-degrees")
		deltas   = flag.String("delta", "0.75", "comma-separated fault exponents (0 = no faults)")
		places   = flag.String("placement", "random", "comma-separated placements")
		advs     = flag.String("adv", "none,inflate,suppress,oracle,topology-liar,chain-faker,combo", "comma-separated adversaries")
		algs     = flag.String("alg", "byzantine", "comma-separated algorithms (basic|byzantine)")
		epsilons = flag.String("eps", "0", "comma-separated error parameters")
		churns   = flag.String("churn", "0", "comma-separated crash-churn fractions")
		faults   = flag.String("fault", "crash", "comma-separated churn fault models (crash|join)")
		joins    = flag.String("join", "0", "comma-separated join/rejoin churn fractions")
		losses   = flag.String("loss", "0", "comma-separated message loss probabilities")
		trials   = flag.Int("trials", 8, "trials per grid cell")
		seed     = flag.Uint64("seed", 1, "base seed")

		// Coordinator mode: the service.
		storePath  = flag.String("store", "", "merged JSONL result store (required; enables resume)")
		journal    = flag.String("journal", "", "coordinator crash-recovery journal (default: <store>.journal; \"off\" disables epoch fencing)")
		shards     = flag.Int("shards", 0, "content-key-range shard count (0 = default)")
		lease      = flag.Duration("lease", 0, "lease TTL before a silent worker's shard reassigns (0 = default)")
		steal      = flag.String("steal", "", "work stealing: split straggling shards for idle workers, \"on\" or \"off\" (default: $REPRO_STEAL)")
		stealMin   = flag.Int("steal-min", 0, "minimum unreported jobs a shard must hold to be split (0 = default)")
		stealAfter = flag.Duration("steal-after", 0, "how long a shard may stall before it is steal-eligible (0 = half the lease TTL)")
		httpAddr   = flag.String("http", ":9900", "coordinator listen address")
		runlogPath = flag.String("runlog", "", "JSONL run-log path (default: <store>.runlog; \"off\" disables)")
		telePath   = flag.String("telemetry", "", "write the final coordinator status (JSON) to this file")
		format     = flag.String("format", "md", "aggregate output format: md | csv")
		outPath    = flag.String("o", "", "write aggregates to this file (default: stdout)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	// Either mode drains cleanly on SIGINT/SIGTERM: a worker abandons
	// its shard (the lease reassigns), a coordinator writes sweep_end
	// with aborted:true and leaves a resumable store. A second signal
	// kills immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	if *workerURL != "" {
		return runWorker(ctx, workerConfig{
			url: *workerURL, name: *name, workers: *workers, runWorkers: *runWorkers,
			cacheCap: *cacheCap, netstore: *netstore, batch: *batch,
			retries: *retries, backoff: *backoff, maxOffline: *maxOffline,
			chaosDelay: *chaosDelay,
		})
	}
	return runCoordinator(ctx, coordinatorConfig{
		specPath: *specPath, sizes: *sizes, degrees: *degrees, deltas: *deltas,
		places: *places, advs: *advs, algs: *algs, epsilons: *epsilons,
		churns: *churns, faults: *faults, joins: *joins, losses: *losses,
		trials: *trials, seed: *seed,
		storePath: *storePath, journalPath: *journal, shards: *shards, lease: *lease,
		steal: *steal, stealMin: *stealMin, stealAfter: *stealAfter,
		httpAddr: *httpAddr, runlogPath: *runlogPath, telePath: *telePath,
		format: *format, outPath: *outPath, quiet: *quiet,
	})
}

type workerConfig struct {
	url, name           string
	workers, runWorkers int
	cacheCap            int
	netstore, batch     string
	retries             int
	backoff, maxOffline time.Duration
	chaosDelay          time.Duration
}

func runWorker(ctx context.Context, cfg workerConfig) int {
	opts := sweep.Options{Workers: cfg.workers, RunWorkers: cfg.runWorkers}
	if cfg.netstore != "" {
		ns, err := sweep.ResolveNetStore(cfg.netstore)
		if err != nil {
			return fail(err)
		}
		opts.Cache = sweep.NewNetCacheWithStore(cfg.cacheCap, ns)
	} else if cfg.cacheCap != 0 {
		opts.Cache = sweep.NewNetCache(cfg.cacheCap)
	}
	if cfg.batch != "" {
		width, err := sweep.ResolveBatch(cfg.batch)
		if err != nil {
			return fail(err)
		}
		opts.Batch = width
	}
	var hc *http.Client
	if cfg.chaosDelay > 0 {
		// A degraded machine, on demand: every coordinator call waits a
		// seeded-random slice of -chaos-delay first, so this worker
		// claims, reports, and heartbeats like a straggler. CI's steal
		// smoke leg uses it to force a shard split deterministically.
		hc = &http.Client{Transport: &chaos.Transport{
			Plan: chaos.NetPlan{Seed: 1, Delay: 1, MaxDelay: cfg.chaosDelay},
		}}
		fmt.Fprintf(os.Stderr, "chaos: delaying every coordinator call by up to %s\n", cfg.chaosDelay)
	}
	w := sweepd.NewWorker(sweepd.WorkerOptions{
		Coordinator: cfg.url,
		Name:        cfg.name,
		Opts:        opts,
		Client:      hc,
		Retries:     cfg.retries,
		Backoff:     cfg.backoff,
		MaxOffline:  cfg.maxOffline,
	})
	fmt.Fprintf(os.Stderr, "worker %s -> %s\n", w.Name(), cfg.url)
	if err := w.Run(ctx); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "worker %s: aborted (%v), shard lease will reassign\n", w.Name(), err)
			return 130
		}
		if errors.Is(err, sweepd.ErrUnreachable) {
			// Distinct from a hard failure: everything this worker
			// reported is safe in the coordinator's store, and a
			// restarted worker resumes the sweep where the fleet is.
			fmt.Fprintf(os.Stderr, "worker %s: %v; drained cleanly — restart this worker to resume\n", w.Name(), err)
			return 130
		}
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "worker %s: sweep done (%d shards completed here)\n", w.Name(), w.ShardsCompleted())
	return 0
}

type coordinatorConfig struct {
	specPath, sizes, degrees, deltas, places, advs, algs, epsilons string
	churns, faults, joins, losses                                  string
	trials                                                         int
	seed                                                           uint64
	storePath, journalPath                                         string
	shards                                                         int
	lease                                                          time.Duration
	steal                                                          string
	stealMin                                                       int
	stealAfter                                                     time.Duration
	httpAddr, runlogPath, telePath, format, outPath                string
	quiet                                                          bool
}

func runCoordinator(ctx context.Context, cfg coordinatorConfig) int {
	if cfg.storePath == "" {
		return fail(fmt.Errorf("sweepd: coordinator needs -store (the merged result store)"))
	}
	var spec sweep.Spec
	if cfg.specPath != "" {
		var err error
		spec, err = sweep.LoadSpec(cfg.specPath)
		if err != nil {
			return fail(err)
		}
	} else {
		spec = sweep.Spec{
			Name:        "cli",
			Sizes:       parseInts(cfg.sizes),
			Degrees:     parseInts(cfg.degrees),
			Deltas:      parseFloats(cfg.deltas),
			Placements:  splitList(cfg.places),
			Adversaries: splitList(cfg.advs),
			Algorithms:  splitList(cfg.algs),
			Epsilons:    parseFloats(cfg.epsilons),
			ChurnFracs:  parseFloats(cfg.churns),
			FaultModels: splitList(cfg.faults),
			JoinFracs:   parseFloats(cfg.joins),
			LossProbs:   parseFloats(cfg.losses),
			Trials:      cfg.trials,
			Seed:        cfg.seed,
		}
	}
	expandStart := time.Now()
	jobs, err := spec.Jobs()
	if err != nil {
		return fail(err)
	}
	expand := time.Since(expandStart)
	fmt.Fprintf(os.Stderr, "spec %q: %d jobs\n", spec.Name, len(jobs))

	store, err := sweep.OpenStore(cfg.storePath)
	if err != nil {
		return fail(err)
	}
	defer store.Close()
	fmt.Fprintf(os.Stderr, "store %s: %d results on disk\n", cfg.storePath, store.Len())

	logPath := cfg.runlogPath
	if logPath == "" {
		logPath = cfg.storePath + ".runlog"
	}
	var runlog *obs.RunLog
	if logPath != "off" {
		runlog, err = obs.OpenRunLog(logPath)
		if err != nil {
			return fail(err)
		}
		defer runlog.Close()
		fmt.Fprintf(os.Stderr, "run-log %s\n", logPath)
	}

	journalPath := cfg.journalPath
	if journalPath == "" {
		journalPath = cfg.storePath + ".journal"
	}
	var journal *sweepd.Journal
	if journalPath != "off" {
		journal, err = sweepd.OpenJournal(journalPath)
		if err != nil {
			return fail(err)
		}
	}

	stealOn := sweepd.EnvSteal()
	if cfg.steal != "" {
		stealOn, err = sweepd.ResolveSteal(cfg.steal)
		if err != nil {
			return fail(err)
		}
	}

	mon := sweep.NewMonitor(spec.Name, len(jobs), nil, nil)
	mon.SetExpand(expand)
	coord, err := sweepd.NewCoordinator(jobs, sweepd.Config{
		Name:       spec.Name,
		Store:      store,
		Shards:     cfg.shards,
		LeaseTTL:   cfg.lease,
		Monitor:    mon,
		RunLog:     runlog,
		Journal:    journal,
		Steal:      stealOn,
		StealMin:   cfg.stealMin,
		StealAfter: cfg.stealAfter,
	})
	if err != nil {
		return fail(err)
	}
	if stealOn {
		fmt.Fprintln(os.Stderr, "work stealing on: straggling shards split for idle workers")
	}
	if journal != nil {
		fmt.Fprintf(os.Stderr, "journal %s (epoch %d): a restarted coordinator resumes this sweep and fences stale leases\n",
			journalPath, journal.Epoch)
	}

	srv, err := obs.Serve(cfg.httpAddr, coord.Handler())
	if err != nil {
		return fail(err)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "coordinator http://%s (claim/heartbeat/report/complete, /status)\n", srv.Addr())

	if !cfg.quiet {
		go progressLoop(ctx, coord)
	}

	aborted := false
	select {
	case <-coord.Done():
	case <-ctx.Done():
		coord.Abort()
		aborted = true
	}

	writeStatus := func() {
		if cfg.telePath == "" {
			return
		}
		snap, err := json.MarshalIndent(coord.Status(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		if err := os.WriteFile(cfg.telePath, append(snap, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Fprintf(os.Stderr, "wrote status snapshot %s\n", cfg.telePath)
	}

	if aborted {
		writeStatus()
		fmt.Fprintf(os.Stderr, "aborted; store %s has %d records, re-run to resume\n",
			cfg.storePath, store.Len())
		return 130
	}

	outs := coord.Outcomes()
	ran, resumed := 0, 0
	for _, o := range outs {
		if o.FromStore {
			resumed++
		} else if o.Err == nil {
			ran++
		}
	}
	fmt.Fprintf(os.Stderr, "fleet ran %d, resumed %d, errors %d\n", ran, resumed, coord.Errors())
	if ran > 0 {
		fmt.Fprint(os.Stderr, mon.Breakdown())
	}
	if st := coord.Status(); st.Shards.Split > 0 || st.Shards.StealsRejected > 0 {
		fmt.Fprintf(os.Stderr, "  steals: %d shards split, %d jobs stolen, %d evaluations declined\n",
			st.Shards.Split, st.Shards.JobsStolen, st.Shards.StealsRejected)
	}
	writeStatus()

	groups := sweep.Aggregate(outs)
	var rendered string
	switch cfg.format {
	case "md":
		rendered = sweep.Markdown(fmt.Sprintf("Sweep %s", spec.Name), groups)
	case "csv":
		rendered = sweep.CSV(groups)
	default:
		return fail(fmt.Errorf("unknown format %q (want md|csv)", cfg.format))
	}
	if cfg.outPath == "" {
		fmt.Print(rendered)
	} else {
		if err := os.WriteFile(cfg.outPath, []byte(rendered), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", cfg.outPath, len(groups))
	}
	if coord.Errors() > 0 {
		return 1
	}
	return 0
}

// progressLoop prints a heartbeat line while the fleet works.
func progressLoop(ctx context.Context, coord *sweepd.Coordinator) {
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-coord.Done():
			return
		case <-t.C:
			s := coord.Status()
			fmt.Fprintf(os.Stderr, "[%d/%d] shards %d/%d done (%d active), %d workers alive\n",
				s.Sweep.Done, s.Sweep.Total, s.Shards.Completed, s.Shards.Total,
				s.Shards.Active, len(s.Workers))
		}
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q: %v\n", part, err)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad number %q: %v\n", part, err)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}
