package byzcount

import (
	"math"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	net, err := NewNetwork(Params{N: 512, D: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byz := PlaceByzantine(512, ByzantineBudget(512, 0.75), 2)
	res, err := Run(net, byz, nil, Config{Algorithm: AlgorithmByzantine, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res, DefaultBand)
	if sum.CorrectFraction < 0.85 {
		t.Fatalf("correct fraction %v", sum.CorrectFraction)
	}
}

func TestEstimateLogN(t *testing.T) {
	est, err := EstimateLogN(1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(1024)
	if est < 0.15*logN || est > 3*logN {
		t.Fatalf("EstimateLogN(1024) = %v, want within the constant band of %v", est, logN)
	}
}

func TestByzantineBudgetAPI(t *testing.T) {
	if b := ByzantineBudget(4096, 0.75); b != 8 {
		t.Fatalf("budget = %d, want 8", b)
	}
}
