// bench_test.go regenerates every experiment table (DESIGN.md §3) under
// `go test -bench=.` — one Benchmark per experiment E1–E12, each reporting
// its headline metric through b.ReportMetric so the shape claims are
// visible straight from the bench output:
//
//	go test -bench=E07 -benchmem          # Theorem 1 headline
//	go test -bench=. -benchmem            # the full suite
//
// Protocol-level micro-benches (BenchmarkRun*) measure the simulator
// itself (rounds/sec, allocations).
package byzcount

import (
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// benchScale keeps experiment benches bounded; the full tables are
// produced by cmd/experiments -scale full.
func benchScale() expt.Scale {
	return expt.Scale{Sizes: []int{256, 512, 1024}, Trials: 1, Seed: 1}
}

func firstFloat(t *expt.Table, col int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	f, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][col], 64)
	return f
}

func BenchmarkE01LocallyTreeLike(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		t := expt.E01LocallyTreeLike(benchScale())
		frac = firstFloat(t, 3)
	}
	b.ReportMetric(frac, "LTL-fraction")
}

func BenchmarkE02Expansion(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		t := expt.E02Expansion(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		gap = firstFloat(t, 4)
	}
	b.ReportMetric(gap, "spectral-gap")
}

func BenchmarkE03SmallWorld(b *testing.B) {
	var clustering float64
	for i := 0; i < b.N; i++ {
		t := expt.E03SmallWorld(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		// Row 1 of each size block is G.
		clustering = firstFloat(t, 2)
	}
	b.ReportMetric(clustering, "clustering")
}

func BenchmarkE04Reconstruction(b *testing.B) {
	var succ float64
	for i := 0; i < b.N; i++ {
		t := expt.E04Reconstruction(expt.Scale{Trials: 1, Seed: 1})
		succ = firstFloat(t, 5)
	}
	b.ReportMetric(succ, "derivation-success")
}

func BenchmarkE05ByzChains(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		t := expt.E05ByzantineChains(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		p = firstFloat(t, 5)
	}
	b.ReportMetric(p, "chain-probability")
}

func BenchmarkE06BasicCounting(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		t := expt.E06BasicCounting(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		correct = firstFloat(t, 2)
	}
	b.ReportMetric(correct, "correct-fraction")
}

func BenchmarkE07Theorem1(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		t := expt.E07Theorem1(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		correct = firstFloat(t, 3)
	}
	b.ReportMetric(correct, "correct-fraction")
}

func BenchmarkE08Baselines(b *testing.B) {
	var alg2 float64
	for i := 0; i < b.N; i++ {
		t := expt.E08Baselines(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		alg2 = firstFloat(t, 2)
	}
	b.ReportMetric(alg2, "alg2-correct")
}

func BenchmarkE09Complexity(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		t := expt.E09Complexity(benchScale())
		rounds = firstFloat(t, 2)
	}
	b.ReportMetric(rounds, "rounds-at-1024")
}

func BenchmarkE10Core(b *testing.B) {
	var coreFrac float64
	for i := 0; i < b.N; i++ {
		t := expt.E10Core(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		coreFrac = firstFloat(t, 5)
	}
	b.ReportMetric(coreFrac, "core-fraction")
}

func BenchmarkE11EpsilonSweep(b *testing.B) {
	var early float64
	for i := 0; i < b.N; i++ {
		t := expt.E11EpsilonSweep(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		early = firstFloat(t, 2)
	}
	b.ReportMetric(early, "early-deciders")
}

func BenchmarkE12Injection(b *testing.B) {
	var accepted float64
	for i := 0; i < b.N; i++ {
		t := expt.E12Injection(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		accepted = firstFloat(t, 2)
	}
	b.ReportMetric(accepted, "inflate-acceptances")
}

func BenchmarkE13Placement(b *testing.B) {
	var clusteredCorrect float64
	for i := 0; i < b.N; i++ {
		t := expt.E13Placement(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		// Row 1 of each size block is "clustered".
		clusteredCorrect = firstFloat(t, 6)
	}
	b.ReportMetric(clusteredCorrect, "spread-correct")
}

func BenchmarkE14Calibration(b *testing.B) {
	var cal float64
	for i := 0; i < b.N; i++ {
		t := expt.E14Calibration(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		cal = firstFloat(t, 2)
	}
	b.ReportMetric(cal, "calibrated-ratio")
}

func BenchmarkE15Churn(b *testing.B) {
	var survivorCorrect float64
	for i := 0; i < b.N; i++ {
		t := expt.E15Churn(expt.Scale{Sizes: []int{512}, Trials: 1, Seed: 1})
		survivorCorrect = firstFloat(t, 3)
	}
	b.ReportMetric(survivorCorrect, "survivor-correct")
}

// --- Simulator micro-benches ---

func benchRun(b *testing.B, n int, alg core.Algorithm, adv core.Adversary, byzCount int) {
	b.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var byz []bool
	if byzCount > 0 {
		byz = hgraph.PlaceByzantine(n, byzCount, rng.New(2))
	}
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(net, byz, adv, core.Config{Algorithm: alg, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/run")
}

func BenchmarkRunBasic1024(b *testing.B) {
	benchRun(b, 1024, core.AlgorithmBasic, nil, 0)
}

func BenchmarkRunByzantine1024(b *testing.B) {
	benchRun(b, 1024, core.AlgorithmByzantine, nil, 0)
}

func BenchmarkRunByzantine4096(b *testing.B) {
	benchRun(b, 4096, core.AlgorithmByzantine, nil, 0)
}

func BenchmarkRunUnderInflate1024(b *testing.B) {
	benchRun(b, 1024, core.AlgorithmByzantine, &adversary.Inflate{}, 5)
}

func BenchmarkNetworkGeneration4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hgraph.MustNew(hgraph.Params{N: 4096, D: 8, Seed: uint64(i + 1)})
	}
}

func BenchmarkSummarize(b *testing.B) {
	net, _ := hgraph.New(hgraph.Params{N: 1024, D: 8, Seed: 1})
	res, err := core.Run(net, nil, nil, core.Config{Algorithm: core.AlgorithmBasic, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Summarize(res, metrics.DefaultBand)
	}
}
