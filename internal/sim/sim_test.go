package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolForCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 10000
	hits := make([]int32, n)
	p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestPoolForSmallN(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 255} {
		count := 0 // serial path, no atomics needed
		p.For(n, func(i int) { count++ })
		if count != n {
			t.Fatalf("n=%d: %d iterations", n, count)
		}
	}
}

func TestPoolForChunksPartition(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const n = 1000
	var covered [n]int32
	p.ForChunks(n, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.For(1000, func(i int) { total.Add(1) })
	}
	if total.Load() != 50000 {
		t.Fatalf("total = %d, want 50000", total.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestCounters(t *testing.T) {
	var c Counters
	c.CountMessage(64)
	c.CountMessage(128)
	c.CountMessages(10, 32)
	c.CountRound()
	c.CountRound()
	if c.Messages() != 12 {
		t.Fatalf("messages = %d", c.Messages())
	}
	if c.Bits() != 64+128+320 {
		t.Fatalf("bits = %d", c.Bits())
	}
	if c.MaxMessageBits() != 128 {
		t.Fatalf("max bits = %d", c.MaxMessageBits())
	}
	if c.Rounds() != 2 {
		t.Fatalf("rounds = %d", c.Rounds())
	}
	snap := c.Snapshot()
	if snap.Messages != 12 || snap.Bits != 512 || snap.MaxBits != 128 || snap.Rounds != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestAddAggregateMax pins the batched engine's O(1) counter fold against
// per-message accounting: partitioning a message stream into arbitrary
// chunks, pre-reducing each chunk to (messages, bits, maxBits), and
// folding the chunks must reproduce the exact totals and maximum that
// per-message CountMessages calls produce.
func TestAddAggregateMax(t *testing.T) {
	sizes := []int{64, 70, 65, 91, 64, 80, 70, 66, 72, 95, 64, 68}
	counts := []int{3, 1, 7, 2, 5, 1, 4, 2, 9, 1, 6, 3}
	var perMsg Counters
	for i, bits := range sizes {
		perMsg.CountMessages(counts[i], bits)
	}
	for _, chunks := range [][]int{{12}, {1, 11}, {4, 4, 4}, {5, 3, 2, 2}} {
		var folded Counters
		start := 0
		for _, width := range chunks {
			var msgs, bits, maxb int64
			for i := start; i < start+width; i++ {
				msgs += int64(counts[i])
				bits += int64(counts[i]) * int64(sizes[i])
				if int64(sizes[i]) > maxb {
					maxb = int64(sizes[i])
				}
			}
			folded.AddAggregateMax(msgs, bits, maxb)
			start += width
		}
		// An empty fold (a chunk whose lanes were all quiet) must be a no-op.
		folded.AddAggregateMax(0, 0, 0)
		if folded.Messages() != perMsg.Messages() || folded.Bits() != perMsg.Bits() || folded.MaxMessageBits() != perMsg.MaxMessageBits() {
			t.Fatalf("chunks %v: folded (%d, %d, max %d) != per-message (%d, %d, max %d)",
				chunks, folded.Messages(), folded.Bits(), folded.MaxMessageBits(),
				perMsg.Messages(), perMsg.Bits(), perMsg.MaxMessageBits())
		}
	}
}

func TestCountersZeroCount(t *testing.T) {
	var c Counters
	c.CountMessages(0, 100)
	c.CountMessages(-5, 100)
	if c.Messages() != 0 || c.Bits() != 0 {
		t.Fatal("non-positive counts should be ignored")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	p := NewPool(4)
	defer p.Close()
	p.For(10000, func(i int) { c.CountMessage(i % 100) })
	if c.Messages() != 10000 {
		t.Fatalf("messages = %d", c.Messages())
	}
	if c.MaxMessageBits() != 99 {
		t.Fatalf("max = %d", c.MaxMessageBits())
	}
}

func TestExchangeRoundSemantics(t *testing.T) {
	e := NewExchange[int](3)
	// Round 1: everyone writes their ID+1.
	for i := range e.Next() {
		e.Next()[i] = i + 1
	}
	// Before swap, Cur is still zero (previous round's sends).
	for i, v := range e.Cur() {
		if v != 0 {
			t.Fatalf("Cur[%d] = %d before swap", i, v)
		}
	}
	e.Swap()
	for i, v := range e.Cur() {
		if v != i+1 {
			t.Fatalf("Cur[%d] = %d after swap, want %d", i, v, i+1)
		}
	}
}

func TestExchangeReset(t *testing.T) {
	e := NewExchange[int64](4)
	e.Next()[2] = 7
	e.Swap()
	e.Next()[1] = 9
	e.Reset()
	for i := 0; i < 4; i++ {
		if e.Cur()[i] != 0 || e.Next()[i] != 0 {
			t.Fatal("Reset left residue")
		}
	}
}

// Property: a parallel sum over the pool equals the serial sum.
func TestPoolSumProperty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(raw []int32) bool {
		var par atomic.Int64
		p.For(len(raw), func(i int) { par.Add(int64(raw[i])) })
		var ser int64
		for _, v := range raw {
			ser += int64(v)
		}
		return par.Load() == ser
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPoolFor(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForChunks(len(data), func(start, end int) {
			for j := start; j < end; j++ {
				data[j] = data[j]*0.5 + 1
			}
		})
	}
}
