// Package sim provides the synchronous execution kernel for the protocol
// simulator: a reusable worker pool for stepping all nodes of a round in
// parallel, double-buffered state exchange (so a round reads only the
// previous round's sends, as the synchronous model requires), and
// message/bit accounting.
//
// The kernel is deliberately protocol-agnostic: the counting protocol, the
// baselines, and the adversaries all drive it from their own packages.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines executing chunked parallel-for
// loops. A Pool amortizes goroutine startup across the tens of thousands
// of rounds a protocol run executes, and is shareable: callers (the
// core simulation arena, the sweep runner's per-worker arenas) own a Pool
// across many runs instead of constructing one per run.
//
// A Pool serializes its parallel-for calls: For/ForChunks must not be
// invoked concurrently from multiple goroutines (the completion WaitGroup
// is part of the Pool so the dispatch path allocates nothing).
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup
	done    sync.WaitGroup // completion of the in-flight ForChunks
	closed  bool
}

type task struct {
	fn    func(start, end int)
	start int
	end   int
}

// NewPool creates a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan task, workers*2)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.fn(t.start, t.end)
				p.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// For runs fn(i) for every i in [0, n), partitioned into contiguous chunks
// across the pool. It blocks until all iterations complete. fn must be
// safe for concurrent invocation on distinct indices.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForChunks(n, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForChunks runs fn(start, end) over a partition of [0, n) into roughly
// equal contiguous chunks, one chunk per worker. Small n executes inline.
func (p *Pool) ForChunks(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	// Below this size the dispatch overhead dominates; run serially.
	const serialCutoff = 256
	if p.workers == 1 || n < serialCutoff {
		fn(0, n)
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	p.done.Add(chunks)
	size := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		start := c * size
		end := start + size
		if end > n {
			end = n
		}
		p.tasks <- task{fn: fn, start: start, end: end}
	}
	p.done.Wait()
}

// Close shuts the pool down. The Pool must not be used afterwards.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
	p.wg.Wait()
}

// Counters accumulates communication cost across a run. All methods are
// safe for concurrent use.
type Counters struct {
	messages atomic.Int64
	bits     atomic.Int64
	maxBits  atomic.Int64
	rounds   atomic.Int64
}

// CountMessage records one message of the given size in bits.
func (c *Counters) CountMessage(bits int) {
	c.messages.Add(1)
	c.bits.Add(int64(bits))
	for {
		cur := c.maxBits.Load()
		if int64(bits) <= cur || c.maxBits.CompareAndSwap(cur, int64(bits)) {
			return
		}
	}
}

// CountMessages records count identical messages of the given size.
func (c *Counters) CountMessages(count, bits int) {
	if count <= 0 {
		return
	}
	c.messages.Add(int64(count))
	c.bits.Add(int64(count) * int64(bits))
	for {
		cur := c.maxBits.Load()
		if int64(bits) <= cur || c.maxBits.CompareAndSwap(cur, int64(bits)) {
			return
		}
	}
}

// AddAggregate folds a pre-computed batch of messages and bits into the
// totals without touching the max-message tracker. It exists for callers
// that account cost analytically for work they proved equivalent to
// already-counted messages (the core engine's quiescent-node flooding
// cost): the batch's largest message is by construction no larger than one
// already recorded through CountMessage(s).
func (c *Counters) AddAggregate(messages, bits int64) {
	c.messages.Add(messages)
	c.bits.Add(bits)
}

// AddAggregateMax folds a pre-reduced batch of messages, bits, and the
// batch's largest single message into the totals in O(1). It is the
// batched round kernel's counter fold: each worker chunk accumulates
// per-lane message/bit sums and a running per-lane maximum on its stack,
// then publishes the whole chunk with one call per lane — the exact
// totals (sums are order-independent) and the exact maximum (max of
// per-chunk maxima equals the global maximum) the scalar engine's
// per-message CountMessages calls would have produced, without the
// per-message atomic traffic.
func (c *Counters) AddAggregateMax(messages, bits, maxBits int64) {
	if messages != 0 || bits != 0 {
		c.messages.Add(messages)
		c.bits.Add(bits)
	}
	for {
		cur := c.maxBits.Load()
		if maxBits <= cur || c.maxBits.CompareAndSwap(cur, maxBits) {
			return
		}
	}
}

// CountRound records the completion of one synchronous round.
func (c *Counters) CountRound() { c.rounds.Add(1) }

// Reset zeroes all counters so the instance can account a new run.
func (c *Counters) Reset() {
	c.messages.Store(0)
	c.bits.Store(0)
	c.maxBits.Store(0)
	c.rounds.Store(0)
}

// Messages returns the total messages recorded.
func (c *Counters) Messages() int64 { return c.messages.Load() }

// Bits returns the total bits recorded.
func (c *Counters) Bits() int64 { return c.bits.Load() }

// MaxMessageBits returns the size of the largest single message.
func (c *Counters) MaxMessageBits() int64 { return c.maxBits.Load() }

// Rounds returns the number of rounds recorded.
func (c *Counters) Rounds() int64 { return c.rounds.Load() }

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	Messages int64
	Bits     int64
	MaxBits  int64
	Rounds   int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Messages: c.Messages(),
		Bits:     c.Bits(),
		MaxBits:  c.MaxMessageBits(),
		Rounds:   c.Rounds(),
	}
}

// Exchange is a double-buffered per-node value board: in each synchronous
// round every node writes its outgoing value to Next and reads its
// neighbors' values from Cur, which holds what was sent at the end of the
// previous round. Swap advances the round.
type Exchange[T any] struct {
	cur  []T
	next []T
}

// NewExchange creates an Exchange for n nodes.
func NewExchange[T any](n int) *Exchange[T] {
	return &Exchange[T]{cur: make([]T, n), next: make([]T, n)}
}

// Cur returns the board of values sent last round (read side).
func (e *Exchange[T]) Cur() []T { return e.cur }

// Next returns the board being written this round (write side).
func (e *Exchange[T]) Next() []T { return e.next }

// Swap publishes Next as the new Cur. The returned slice is the new write
// side (the old Cur), whose contents are stale and must be overwritten.
func (e *Exchange[T]) Swap() {
	e.cur, e.next = e.next, e.cur
}

// Reset zeroes both buffers.
func (e *Exchange[T]) Reset() {
	var zero T
	for i := range e.cur {
		e.cur[i] = zero
		e.next[i] = zero
	}
}
