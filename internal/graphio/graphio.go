// Package graphio serializes the simulator's graphs for external tools:
// Graphviz DOT (visualization), a plain edge-list format (interchange),
// and a reader for the edge-list format so saved topologies can be
// replayed through the protocol.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// DOTOptions controls DOT rendering.
type DOTOptions struct {
	Name string // graph name; default "G"
	// Highlight marks nodes (e.g. Byzantine ones) with a fill color.
	Highlight []bool
	// HighlightColor is the fill for highlighted nodes; default "red".
	HighlightColor string
	// MaxNodes truncates huge graphs (0 = no limit); edges incident to
	// dropped nodes are omitted and a comment records the truncation.
	MaxNodes int
}

// WriteDOT renders g in Graphviz DOT format.
func WriteDOT(w io.Writer, g *graph.Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	color := opts.HighlightColor
	if color == "" {
		color = "red"
	}
	bw := bufio.NewWriter(w)
	limit := g.N()
	if opts.MaxNodes > 0 && opts.MaxNodes < limit {
		limit = opts.MaxNodes
		fmt.Fprintf(bw, "// truncated to first %d of %d nodes\n", limit, g.N())
	}
	fmt.Fprintf(bw, "graph %s {\n", name)
	fmt.Fprintf(bw, "  node [shape=point];\n")
	for v := 0; v < limit; v++ {
		if opts.Highlight != nil && v < len(opts.Highlight) && opts.Highlight[v] {
			fmt.Fprintf(bw, "  %d [color=%s, shape=circle];\n", v, color)
		}
	}
	for v := 0; v < limit; v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) >= v && int(u) < limit { // one line per undirected edge
				fmt.Fprintf(bw, "  %d -- %d;\n", v, u)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes "n m" followed by one "u v" line per undirected
// edge (self-loops appear once, parallel edges repeatedly).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N(), g.NumEdges())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) >= v {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format back into a Graph.
//
// The header's edge count is enforced as it is consumed, not after the
// fact: the builder is pre-sized from it (capped, so a fabricated header
// cannot balloon memory before any edge arrives), and input with more
// edges than promised errors at the first excess line instead of
// buffering an unbounded stream and failing at EOF. Oversized lines are
// rejected by the scanner's buffer cap (edge lines are tens of bytes).
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		return nil, fmt.Errorf("graphio: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("graphio: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graphio: bad node count %q", header[0])
	}
	m, err := strconv.Atoi(header[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graphio: bad edge count %q", header[1])
	}
	b := graph.NewBuilder(n)
	// Trust the promised count for preallocation only up to a bound: a
	// lying header costs at most one modest slab before its lie surfaces.
	const maxEdgeHint = 1 << 20
	b.Grow(min(m, maxEdgeHint))
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b.NumEdges() == m {
			return nil, fmt.Errorf("graphio: line %d: more edges than the %d promised by the header", line, m)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: expected 'u v', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", line, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graphio: line %d: edge (%d,%d) out of range", line, u, v)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if b.NumEdges() != m {
		return nil, fmt.Errorf("graphio: header promised %d edges, found %d", m, b.NumEdges())
	}
	return b.Build(), nil
}
