package graphio

// netstore.go is the persistent topology store: a directory of network
// blobs (see codec.go) content-addressed by the SHA-256 of canonical
// generation parameters. It is the disk tier below the sweep scheduler's
// in-memory network LRU — a sweep (or a netgen -pregen run) pays
// generation once per (n, d, k, seed) ever, not once per process.
//
// Layout: <root>/v<CodecVersion>/<sha256(params)>.net — the version
// namespace means a codec bump simply stops finding old blobs instead of
// misparsing them, and CI can key its corpus cache on the version
// directory. Writes go through a temp file and an atomic rename, so
// concurrent writers of the same key race harmlessly and a killed
// process never leaves a half-written blob under a live name. Corrupt,
// stale, or version-skewed blobs fail Load with an error; callers fall
// back to regeneration (and their subsequent Save heals the entry).

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// tempMaxAge is how old a .tmp-* file must be before OpenNetStore
// treats it as an orphan of a dead writer and removes it. Live writers
// finish (or clean up after themselves) in well under this; a crashed
// process's temp file would otherwise leak forever, one per kill.
const tempMaxAge = 15 * time.Minute

// NetStore is a persistent content-addressed store of generated networks
// and their engine tables. Methods are safe for concurrent use (the
// filesystem provides the coordination: reads open complete files,
// writes rename complete temp files into place).
type NetStore struct {
	dir string // versioned directory all blobs live in

	mu   sync.Mutex
	hook func(SaveFile) SaveFile
}

// SaveFile is the write surface Save streams a blob through before the
// atomic rename (an *os.File normally). Chaos tests wrap it via
// SetSaveHook to inject short writes and ENOSPC on the temp file.
type SaveFile interface {
	io.Writer
	Close() error
}

// SetSaveHook installs (or, with nil, removes) a wrapper applied to
// every Save's temp file — the store's fault-injection seam.
func (s *NetStore) SetSaveHook(hook func(SaveFile) SaveFile) {
	s.mu.Lock()
	s.hook = hook
	s.mu.Unlock()
}

// OpenNetStore opens (creating if needed) the store rooted at root, and
// sweeps temp files orphaned by writers that died mid-save: a crashed
// process leaves its .tmp-* behind (the atomic-rename protocol never
// exposes it under a live name, but nothing else deletes it either).
// Only temps older than tempMaxAge are removed, so a concurrent live
// writer's in-flight file is never yanked out from under it.
func OpenNetStore(root string) (*NetStore, error) {
	dir := filepath.Join(root, fmt.Sprintf("v%d", CodecVersion))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphio: open net store: %w", err)
	}
	sweepOrphanTemps(dir)
	return &NetStore{dir: dir}, nil
}

// sweepOrphanTemps removes stale .tmp-* files; best effort, errors are
// ignored (a vanished or busy file is someone else's progress).
func sweepOrphanTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tempMaxAge)
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, e.Name()))
	}
}

// Dir returns the store's versioned blob directory.
func (s *NetStore) Dir() string { return s.dir }

// Key returns the content address of p: hex SHA-256 over the canonical
// parameters and the generator's output version, so K=0 and the explicit
// default K share one blob, and a bumped hgraph.GenVersion (an
// intentional generator-output change) orphans every old blob instead of
// serving a topology the current generator would no longer produce.
func (s *NetStore) Key(p hgraph.Params) string {
	p = p.Canonical()
	sum := sha256.Sum256([]byte(fmt.Sprintf("hgraph gen%d n=%d d=%d k=%d seed=%d",
		hgraph.GenVersion, p.N, p.D, p.K, p.Seed)))
	return hex.EncodeToString(sum[:])
}

// Path returns the blob path for p.
func (s *NetStore) Path(p hgraph.Params) string {
	return filepath.Join(s.dir, s.Key(p)+".net")
}

// Has reports whether a blob for p exists (without validating it).
func (s *NetStore) Has(p hgraph.Params) bool {
	_, err := os.Stat(s.Path(p))
	return err == nil
}

// Load reads the stored network for p, verifying the blob decodes
// cleanly and that its parameters match the request (a hash collision or
// a file copied between keys surfaces as an error, never as a wrong
// topology). A missing blob returns an error satisfying
// errors.Is(err, os.ErrNotExist).
func (s *NetStore) Load(p hgraph.Params) (*hgraph.Network, *core.Topology, error) {
	f, err := os.Open(s.Path(p))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	// The file size licenses exact-size decoding: the header's implied
	// size must match it, after which every array allocates once.
	net, topo, err := ReadNetworkSized(bufio.NewReaderSize(f, 1<<20), st.Size())
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", s.Path(p), err)
	}
	if net.Params.Canonical() != p.Canonical() {
		return nil, nil, fmt.Errorf("graphio: blob %s holds params %+v, want %+v", s.Path(p), net.Params, p)
	}
	return net, topo, nil
}

// Save persists net (and topo; nil derives the tables here) under its
// parameters' content address, atomically. A save that fails mid-write
// removes its temp file and leaves the live name untouched — a failed
// save can never poison a later Load.
func (s *NetStore) Save(net *hgraph.Network, topo *core.Topology) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("graphio: net store save: %w", err)
	}
	s.mu.Lock()
	hook := s.hook
	s.mu.Unlock()
	var w SaveFile = tmp
	if hook != nil {
		// The wrapper owns forwarding Close to the temp file.
		w = hook(tmp)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	err = WriteNetwork(bw, net, topo)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graphio: net store save: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(net.Params)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graphio: net store save: %w", err)
	}
	return nil
}

// Len counts the blobs currently in the store.
func (s *NetStore) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	count := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".net" {
			count++
		}
	}
	return count
}
