package graphio

// netstore_test.go pins the store's two crash-safety contracts against
// injected faults: a save that dies mid-write never poisons a later
// read (the live name stays untouched and the temp file is cleaned up),
// and temp files orphaned by a killed process are swept on the next
// open — without yanking a live writer's in-flight temp.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/hgraph"
)

// failingSaveFile denies every write with an injected ENOSPC-shaped
// error but forwards Close, so Save's cleanup path runs normally.
type failingSaveFile struct {
	f SaveFile
}

func (w failingSaveFile) Write(p []byte) (int, error) {
	return 0, chaos.ErrInjected
}

func (w failingSaveFile) Close() error { return w.f.Close() }

func countTemps(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			n++
		}
	}
	return n
}

// TestNetStoreFailedSaveNoPoison: a Save whose temp-file writes are all
// denied reports the fault, leaves no blob and no temp behind, and a
// subsequent clean Save → Load works — the failed attempt never poisons
// the key.
func TestNetStoreFailedSaveNoPoison(t *testing.T) {
	store, err := OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := hgraph.Params{N: 32, D: 4, Seed: 3}
	net := hgraph.MustNew(p)

	store.SetSaveHook(func(f SaveFile) SaveFile { return failingSaveFile{f: f} })
	if err := store.Save(net, nil); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("faulted Save = %v, want injected fault surfaced", err)
	}
	if store.Has(p) {
		t.Fatal("failed save left a blob under the live name")
	}
	if _, _, err := store.Load(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load after failed save = %v, want ErrNotExist", err)
	}
	if n := countTemps(t, store.Dir()); n != 0 {
		t.Fatalf("failed save leaked %d temp file(s)", n)
	}

	// The key heals: a clean retry saves and loads normally.
	store.SetSaveHook(nil)
	if err := store.Save(net, nil); err != nil {
		t.Fatalf("clean Save after faulted one: %v", err)
	}
	loaded, _, err := store.Load(p)
	if err != nil {
		t.Fatalf("Load after heal: %v", err)
	}
	if loaded.Digest() != net.Digest() {
		t.Fatal("healed blob decodes to a different network")
	}
}

// TestNetStoreShortWriteNoPoison drives the same contract through the
// chaos DiskPlan's torn-write coin instead of a blanket denial: some
// bytes land in the temp file before the fault, which must still never
// reach the live name.
func TestNetStoreShortWriteNoPoison(t *testing.T) {
	store, err := OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := hgraph.Params{N: 32, D: 4, Seed: 4}
	net := hgraph.MustNew(p)

	store.SetSaveHook(func(f SaveFile) SaveFile {
		return &chaos.FaultFile{F: saveOnlyFile{f}, Plan: chaos.DiskPlan{Seed: 11, TornWrite: 1}}
	})
	if err := store.Save(net, nil); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn Save = %v, want injected fault surfaced", err)
	}
	if store.Has(p) {
		t.Fatal("torn save exposed a partial blob under the live name")
	}
	if n := countTemps(t, store.Dir()); n != 0 {
		t.Fatalf("torn save leaked %d temp file(s)", n)
	}
}

// saveOnlyFile adapts graphio's write-and-close surface to the chaos
// package's full File interface; Read and Sync are never called on a
// Save path.
type saveOnlyFile struct {
	f SaveFile
}

func (w saveOnlyFile) Read(p []byte) (int, error) { return 0, errors.New("not readable") }
func (w saveOnlyFile) Write(p []byte) (int, error) {
	return w.f.Write(p)
}
func (w saveOnlyFile) Sync() error  { return nil }
func (w saveOnlyFile) Close() error { return w.f.Close() }

// TestNetStoreOrphanTempCleanup: OpenNetStore removes a temp file aged
// past tempMaxAge (the leavings of a killed writer) but keeps a fresh
// one (a live writer mid-save).
func TestNetStoreOrphanTempCleanup(t *testing.T) {
	root := t.TempDir()
	store, err := OpenNetStore(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := store.Dir()

	orphan := filepath.Join(dir, ".tmp-orphan")
	if err := os.WriteFile(orphan, []byte("half a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, ".tmp-fresh")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenNetStore(root); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale orphan temp survived open: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp was swept out from under a live writer: %v", err)
	}
}
