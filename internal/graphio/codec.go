package graphio

// codec.go is the versioned binary network codec behind the persistent
// topology store: one self-contained blob per generated instance holding
// the hgraph.Network (params, H, G, IDs) and the engine's precomputed
// core.Topology tables (the reverse-edge index), so a store hit skips
// both generation and table construction.
//
// Format v1, all little-endian:
//
//	magic   [4]byte  "BZNT"
//	version u16      CodecVersion
//	flags   u16      reserved, must be zero
//	params  4×u64    N, D, K, Seed (as generated; K may be 0 = default)
//	netK    u64      resolved lattice radius
//	hLen    u64      len(H adjacency)
//	gLen    u64      len(G adjacency)
//	payload          H offsets (N+1 × i32), H adj (hLen × i32),
//	                 G offsets (N+1 × i32), G adj (gLen × i32),
//	                 IDs (N × u64), rev (hLen × i32)
//	crc     u32      CRC-32C (Castagnoli) over everything above
//
// The reader is fuzzed (FuzzReadNetwork): truncation, bit flips, version
// skew, and fabricated lengths must produce errors, never panics or
// unbounded allocation — length fields are only trusted chunk by chunk
// as the bytes actually arrive, and every structural invariant is
// re-validated (graph.FromCSR, core.TopologyFromRev) before anything is
// handed to the engine.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hgraph"
)

// CodecVersion is the current binary format version. Bump it on any
// format change: the store namespaces its files by version, so old blobs
// are simply never opened rather than misparsed.
const CodecVersion = 1

var netMagic = [4]byte{'B', 'Z', 'N', 'T'}

// maxCodecNodes caps the node count a blob may claim, far above any
// simulated scale but low enough that header-derived allocations stay
// sane even before truncation is detected.
const maxCodecNodes = 1 << 28

// ErrCodecVersion marks a blob written by a different codec version.
var ErrCodecVersion = errors.New("graphio: network blob codec version mismatch")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteNetwork encodes net (and its engine tables; topo may be nil to
// derive them here) to w in the binary codec format.
func WriteNetwork(w io.Writer, net *hgraph.Network, topo *core.Topology) error {
	if topo == nil {
		topo = core.NewTopology(net)
	} else if topo.Net != net {
		return fmt.Errorf("graphio: topology belongs to a different network")
	}
	hOff, hAdj := net.H.CSR()
	gOff, gAdj := net.G.CSR()

	crc := crc32.New(crcTable)
	out := io.MultiWriter(w, crc)

	var hdr [4 + 2 + 2 + 7*8]byte
	copy(hdr[0:4], netMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], CodecVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	for i, v := range []uint64{
		uint64(net.Params.N), uint64(net.Params.D), uint64(net.Params.K),
		net.Params.Seed, uint64(net.K), uint64(len(hAdj)), uint64(len(gAdj)),
	} {
		binary.LittleEndian.PutUint64(hdr[8+8*i:], v)
	}
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, encodeChunk*4)
	for _, s := range [][]int32{hOff, hAdj, gOff, gAdj} {
		if err := writeI32s(out, s, buf); err != nil {
			return err
		}
	}
	if err := writeU64s(out, net.IDs, buf); err != nil {
		return err
	}
	if err := writeI32s(out, topo.Rev(), buf); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// encodeChunk is the element count per encode/decode buffer pass.
const encodeChunk = 16 * 1024

func writeI32s(w io.Writer, s []int32, buf []byte) error {
	for len(s) > 0 {
		n := min(len(s), encodeChunk)
		for i, v := range s[:n] {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

func writeU64s(w io.Writer, s []uint64, buf []byte) error {
	for len(s) > 0 {
		n := min(len(s), encodeChunk/2)
		for i, v := range s[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], v)
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// crcReader tees everything read through a running CRC-32C.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.crc.Write(p[:n])
	}
	return n, err
}

// ReadNetwork decodes a network blob written by WriteNetwork, returning
// the network and its reassembled engine tables. Every failure mode of a
// damaged blob — truncation, flipped bits, version skew, trailing
// garbage, fabricated structure — returns an error; the function never
// panics on any input, and allocates only as bytes actually arrive.
func ReadNetwork(r io.Reader) (*hgraph.Network, *core.Topology, error) {
	return readNetwork(r, -1)
}

// ReadNetworkSized is ReadNetwork for callers that know the blob's total
// byte size (the store stats its files): the header's implied size must
// match exactly — rejecting length lies before any allocation — which in
// turn licenses allocating every array at its final size instead of
// growing defensively. This is the store's hot path; a disk hit's cost
// is mostly this function.
func ReadNetworkSized(r io.Reader, size int64) (*hgraph.Network, *core.Topology, error) {
	if size < 0 {
		return nil, nil, fmt.Errorf("graphio: negative blob size")
	}
	return readNetwork(r, size)
}

// blobSize returns the exact encoded size implied by the header fields.
func blobSize(n, hLen, gLen uint64) int64 {
	const headerLen = 4 + 2 + 2 + 7*8
	return headerLen + 4*int64(2*(n+1)+2*hLen+gLen) + 8*int64(n) + 4
}

func readNetwork(r io.Reader, size int64) (*hgraph.Network, *core.Topology, error) {
	cr := &crcReader{r: r, crc: crc32.New(crcTable)}

	var hdr [4 + 2 + 2 + 7*8]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("graphio: network blob header: %w", err)
	}
	if [4]byte(hdr[0:4]) != netMagic {
		return nil, nil, fmt.Errorf("graphio: bad network blob magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != CodecVersion {
		return nil, nil, fmt.Errorf("%w: blob v%d, codec v%d", ErrCodecVersion, v, CodecVersion)
	}
	if f := binary.LittleEndian.Uint16(hdr[6:8]); f != 0 {
		return nil, nil, fmt.Errorf("graphio: unknown network blob flags %#x", f)
	}
	var fields [7]uint64
	for i := range fields {
		fields[i] = binary.LittleEndian.Uint64(hdr[8+8*i:])
	}
	n, d, k, seed := fields[0], fields[1], fields[2], fields[3]
	netK, hLen, gLen := fields[4], fields[5], fields[6]
	if n < 3 || n > maxCodecNodes {
		return nil, nil, fmt.Errorf("graphio: network blob claims %d nodes", n)
	}
	p := hgraph.Params{N: int(n), D: int(d), K: int(k), Seed: seed}
	if d > uint64(maxCodecNodes) || k > uint64(maxCodecNodes) {
		return nil, nil, fmt.Errorf("graphio: network blob params out of range")
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if netK != uint64(p.Canonical().K) {
		return nil, nil, fmt.Errorf("graphio: blob lattice radius %d does not match params", netK)
	}
	const maxAdj = 1 << 31
	if hLen >= maxAdj || gLen >= maxAdj {
		return nil, nil, fmt.Errorf("graphio: network blob claims oversized adjacency")
	}
	// With a known total size, the header's implied size must match it
	// exactly — after which every length is proven backed by real bytes
	// and arrays can be allocated at final size (no defensive growth).
	exact := false
	if size >= 0 {
		if want := blobSize(n, hLen, gLen); want != size {
			return nil, nil, fmt.Errorf("graphio: network blob is %d bytes, header implies %d", size, want)
		}
		exact = true
	}

	buf := make([]byte, 8*min(max(uint64(n), hLen, gLen)+1, encodeChunk))
	hOff, err := readI32s(cr, int(n)+1, exact, buf)
	if err != nil {
		return nil, nil, err
	}
	hAdj, err := readI32s(cr, int(hLen), exact, buf)
	if err != nil {
		return nil, nil, err
	}
	gOff, err := readI32s(cr, int(n)+1, exact, buf)
	if err != nil {
		return nil, nil, err
	}
	gAdj, err := readI32s(cr, int(gLen), exact, buf)
	if err != nil {
		return nil, nil, err
	}
	ids, err := readU64s(cr, int(n), exact, buf)
	if err != nil {
		return nil, nil, err
	}
	rev, err := readI32s(cr, int(hLen), exact, buf)
	if err != nil {
		return nil, nil, err
	}

	want := cr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, nil, fmt.Errorf("graphio: network blob checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, nil, fmt.Errorf("graphio: network blob checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	// A blob is a complete file: trailing bytes mean the caller handed us
	// something else (or a concatenation) — reject rather than half-read.
	if extra, err := io.CopyN(io.Discard, r, 1); extra != 0 || err != io.EOF {
		return nil, nil, fmt.Errorf("graphio: trailing data after network blob")
	}

	h, err := graph.FromCSR(hOff, hAdj)
	if err != nil {
		return nil, nil, fmt.Errorf("graphio: blob H graph: %w", err)
	}
	g, err := graph.FromCSR(gOff, gAdj)
	if err != nil {
		return nil, nil, fmt.Errorf("graphio: blob G graph: %w", err)
	}
	net := &hgraph.Network{Params: p, H: h, G: g, K: int(netK), IDs: ids}
	topo, err := core.TopologyFromRev(net, rev)
	if err != nil {
		return nil, nil, err
	}
	return net, topo, nil
}

// readI32s decodes count little-endian int32s. With exact (the caller
// proved the bytes exist against the blob's real size) the slice is
// allocated at final size once; otherwise it grows only as bytes
// actually arrive, so a fabricated length cannot balloon memory.
func readI32s(r io.Reader, count int, exact bool, buf []byte) ([]int32, error) {
	if count < 0 {
		return nil, fmt.Errorf("graphio: negative length")
	}
	capHint := min(count, encodeChunk)
	if exact {
		capHint = count
	}
	out := make([]int32, 0, capHint)
	for len(out) < count {
		n := min(count-len(out), len(buf)/4)
		if _, err := io.ReadFull(r, buf[:4*n]); err != nil {
			return nil, fmt.Errorf("graphio: network blob truncated: %w", err)
		}
		if exact {
			base := len(out)
			out = out[:base+n]
			for i := 0; i < n; i++ {
				out[base+i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
			}
		} else {
			for i := 0; i < n; i++ {
				out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
			}
		}
	}
	return out, nil
}

// readU64s is readI32s for uint64 payloads.
func readU64s(r io.Reader, count int, exact bool, buf []byte) ([]uint64, error) {
	if count < 0 {
		return nil, fmt.Errorf("graphio: negative length")
	}
	capHint := min(count, encodeChunk/2)
	if exact {
		capHint = count
	}
	out := make([]uint64, 0, capHint)
	for len(out) < count {
		n := min(count-len(out), len(buf)/8)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, fmt.Errorf("graphio: network blob truncated: %w", err)
		}
		if exact {
			base := len(out)
			out = out[:base+n]
			for i := 0; i < n; i++ {
				out[base+i] = binary.LittleEndian.Uint64(buf[8*i:])
			}
		} else {
			for i := 0; i < n; i++ {
				out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
			}
		}
	}
	return out, nil
}
