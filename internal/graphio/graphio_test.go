package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestWriteDOT(t *testing.T) {
	g := cycle(4)
	var buf bytes.Buffer
	hl := []bool{false, true, false, false}
	if err := WriteDOT(&buf, g, DOTOptions{Name: "test", Highlight: hl}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph test {", "0 -- 1;", "0 -- 3;", "1 [color=red"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != 4 {
		t.Fatalf("expected 4 edges:\n%s", out)
	}
}

func TestWriteDOTTruncation(t *testing.T) {
	g := cycle(100)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{MaxNodes: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "truncated to first 10 of 100") {
		t.Fatal("missing truncation comment")
	}
	if strings.Count(buf.String(), "--") != 9 {
		t.Fatalf("expected 9 edges after truncation:\n%s", buf.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	h := hgraph.GenerateH(200, 8, rng.New(5))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.NumEdges() != h.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.N(), back.NumEdges(), h.N(), h.NumEdges())
	}
	for v := 0; v < h.N(); v++ {
		a, b := h.Neighbors(v), back.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency changed", v)
			}
		}
	}
}

func TestEdgeListRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 5 + src.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(src.Intn(n), src.Intn(n)) // loops and multi-edges included
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if back.N() != g.N() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if g.EdgeMultiplicity(v, w) != back.EdgeMultiplicity(v, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "abc\n",
		"header fields":   "3\n",
		"bad edge":        "3 1\n0 x\n",
		"out of range":    "3 1\n0 7\n",
		"count mismatch":  "3 5\n0 1\n",
		"malformed tuple": "3 1\n0 1 2\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: no error for %q", name, input)
		}
	}
}

func TestReadEdgeListSkipsComments(t *testing.T) {
	in := "2 1\n# comment\n\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge lost")
	}
}

func TestReadEdgeListRejectsExcessEdgesEarly(t *testing.T) {
	// The header promises one edge; the second edge line must error
	// immediately (the count check may not wait for EOF, or a malformed
	// stream could buffer unboundedly first).
	in := "3 1\n0 1\n1 2\n2 0\n"
	if _, err := ReadEdgeList(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "more edges") {
		t.Fatalf("got %v, want early excess-edge error", err)
	}
}
