package graphio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// FuzzReadNetwork hammers the binary network codec with arbitrary bytes:
// whatever arrives — truncations, bit flips, version skew, fabricated
// lengths, hostile structure — the reader must return an error or a
// fully valid network, and never panic or balloon memory. Accepted
// inputs must additionally be canonical: re-encoding reproduces the
// input byte-for-byte, so there is exactly one blob per network and a
// "repaired" blob can never alias a different instance.
//
// Run the smoke locally or in CI with:
//
//	go test -fuzz=FuzzReadNetwork -fuzztime=10s -run '^FuzzReadNetwork$' ./internal/graphio
//
// Regressions land in testdata/fuzz/FuzzReadNetwork and replay as
// ordinary test cases.
func FuzzReadNetwork(f *testing.F) {
	for _, p := range []hgraph.Params{
		{N: 8, D: 4, Seed: 1},
		{N: 24, D: 6, K: 2, Seed: 5},
	} {
		net := hgraph.MustNew(p)
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, net, core.NewTopology(net)); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(bytes.Clone(valid))
		f.Add(bytes.Clone(valid[:len(valid)/2])) // payload truncation
		f.Add(bytes.Clone(valid[:37]))           // mid-header truncation

		skew := bytes.Clone(valid)
		binary.LittleEndian.PutUint16(skew[4:6], CodecVersion+1)
		f.Add(skew)

		flip := bytes.Clone(valid)
		flip[len(flip)/3] ^= 0x80
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("BZNT"))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, topo, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		if net == nil || topo == nil {
			t.Fatal("accepted blob returned nil network or topology")
		}
		// Accepted inputs are canonical: encode(decode(data)) == data.
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, net, topo); err != nil {
			t.Fatalf("re-encode of accepted blob failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("accepted blob is not canonical: re-encoding differs")
		}
		// The decoded instance must be safe for the engine: digest and a
		// short run both exercise the tables without panicking.
		_ = net.Digest()
	})
}
