package graphio

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// codecGrid spans the codec's structural space: default and explicit K,
// several degrees, parallel-edge-bearing small instances.
var codecGrid = []hgraph.Params{
	{N: 16, D: 4, Seed: 3},
	{N: 64, D: 8, Seed: 7},
	{N: 96, D: 8, K: 2, Seed: 701},
	{N: 128, D: 6, K: 1, Seed: 11},
	{N: 200, D: 10, Seed: 13},
}

func encodeNetwork(t *testing.T, net *hgraph.Network, topo *core.Topology) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net, topo); err != nil {
		t.Fatalf("WriteNetwork: %v", err)
	}
	return buf.Bytes()
}

// TestNetworkCodecRoundTrip pins the codec's core contract: decode(encode(net))
// is structurally identical — network digest, reverse-edge index, params —
// and re-encodes to the identical bytes.
func TestNetworkCodecRoundTrip(t *testing.T) {
	for _, p := range codecGrid {
		net := hgraph.MustNew(p)
		topo := core.NewTopology(net)
		blob := encodeNetwork(t, net, topo)

		got, gotTopo, err := ReadNetwork(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("params %+v: ReadNetwork: %v", p, err)
		}
		if got.Params != p {
			t.Errorf("params %+v: loaded params %+v", p, got.Params)
		}
		if got.Digest() != net.Digest() {
			t.Errorf("params %+v: loaded network digest differs", p)
		}
		if !bytes.Equal(int32Bytes(gotTopo.Rev()), int32Bytes(topo.Rev())) {
			t.Errorf("params %+v: loaded rev differs", p)
		}
		reblob := encodeNetwork(t, got, gotTopo)
		if !bytes.Equal(blob, reblob) {
			t.Errorf("params %+v: re-encoding is not byte-identical", p)
		}
	}
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// resultDigest mirrors the engine's golden-test canonicalization.
func resultDigest(t *testing.T, res *core.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestStoreRunEquivalence is the round-trip property the store's
// correctness rests on: a protocol run on a store→load→run topology is
// byte-identical (result digest) to a run on the in-memory instance.
func TestStoreRunEquivalence(t *testing.T) {
	store, err := OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range codecGrid {
		net := hgraph.MustNew(p)
		topo := core.NewTopology(net)
		if err := store.Save(net, topo); err != nil {
			t.Fatalf("params %+v: save: %v", p, err)
		}
		loadedNet, loadedTopo, err := store.Load(p)
		if err != nil {
			t.Fatalf("params %+v: load: %v", p, err)
		}
		if loadedNet.Digest() != net.Digest() {
			t.Fatalf("params %+v: loaded network digest differs", p)
		}

		cfg := core.Config{Algorithm: core.AlgorithmByzantine, Seed: 99, Workers: 1}
		w1, w2 := core.NewWorld(), core.NewWorld()
		defer w1.Close()
		defer w2.Close()
		want, err := w1.RunTopology(topo, nil, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w2.RunTopology(loadedTopo, nil, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dg, dw := resultDigest(t, got), resultDigest(t, want); dg != dw {
			t.Errorf("params %+v: run digest differs after store round-trip:\n got %s\nwant %s", p, dg, dw)
		}
	}
}

// TestStoreLoadMissing pins the not-found contract the cache tier keys on.
func TestStoreLoadMissing(t *testing.T) {
	store, err := OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load(hgraph.Params{N: 32, D: 4, Seed: 1}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing blob: got %v, want ErrNotExist", err)
	}
}

// TestStoreStaleKey pins that a blob copied under the wrong content
// address is rejected instead of served.
func TestStoreStaleKey(t *testing.T) {
	store, err := OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net := hgraph.MustNew(hgraph.Params{N: 32, D: 4, Seed: 1})
	if err := store.Save(net, nil); err != nil {
		t.Fatal(err)
	}
	other := hgraph.Params{N: 32, D: 4, Seed: 2}
	if err := os.Rename(store.Path(net.Params), store.Path(other)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load(other); err == nil || !strings.Contains(err.Error(), "holds params") {
		t.Fatalf("stale blob: got %v, want params mismatch", err)
	}
}

// TestReadNetworkRejectsDamage walks the whole corruption space the
// reader promises to survive: truncation at every boundary class, bit
// flips anywhere (the checksum), version skew, flag skew, trailing data.
func TestReadNetworkRejectsDamage(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 24, D: 4, Seed: 5})
	blob := encodeNetwork(t, net, nil)

	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{0, 3, 7, 40, 59, len(blob) / 2, len(blob) - 1} {
			if _, _, err := ReadNetwork(bytes.NewReader(blob[:cut])); err == nil {
				t.Errorf("truncated at %d bytes: accepted", cut)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for pos := 0; pos < len(blob); pos += 17 {
			mut := bytes.Clone(blob)
			mut[pos] ^= 0x20
			if _, _, err := ReadNetwork(bytes.NewReader(mut)); err == nil {
				t.Errorf("bit flip at %d: accepted", pos)
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		mut := bytes.Clone(blob)
		binary.LittleEndian.PutUint16(mut[4:6], CodecVersion+1)
		if _, _, err := ReadNetwork(bytes.NewReader(mut)); !errors.Is(err, ErrCodecVersion) {
			t.Errorf("version skew: got %v, want ErrCodecVersion", err)
		}
	})
	t.Run("flag-skew", func(t *testing.T) {
		mut := bytes.Clone(blob)
		binary.LittleEndian.PutUint16(mut[6:8], 1)
		if _, _, err := ReadNetwork(bytes.NewReader(mut)); err == nil {
			t.Error("unknown flags: accepted")
		}
	})
	t.Run("trailing-data", func(t *testing.T) {
		mut := append(bytes.Clone(blob), 0)
		if _, _, err := ReadNetwork(bytes.NewReader(mut)); err == nil {
			t.Error("trailing byte: accepted")
		}
	})
	t.Run("huge-claimed-length", func(t *testing.T) {
		// A fabricated adjacency length must fail on truncation without
		// allocating the claimed size first.
		mut := bytes.Clone(blob)
		binary.LittleEndian.PutUint64(mut[48:56], 1<<30)
		if _, _, err := ReadNetwork(bytes.NewReader(mut)); err == nil {
			t.Error("fabricated length: accepted")
		}
	})
}
