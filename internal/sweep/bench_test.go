package sweep

import (
	"testing"
)

// benchSpec is a grid whose cells share topologies per (size, trial):
// exactly the shape where the network cache pays.
func benchSpec() Spec {
	return Spec{
		Name:        "bench",
		Sizes:       []int{512},
		Deltas:      []float64{0.75},
		Adversaries: []string{"none", "inflate", "suppress", "oracle"},
		Trials:      2,
		Seed:        41,
	}
}

// BenchmarkSweepCold runs the grid with a fresh single-slot cache per
// iteration, so nearly every job regenerates its network — the serial
// suite's old cost model.
func BenchmarkSweepCold(b *testing.B) {
	jobs, err := benchSpec().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Capacity 1 with interleaved (trial 0, trial 1) access defeats
		// reuse without changing any job.
		if _, err := Run(jobs, Options{Workers: 1, Cache: NewNetCache(1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCached runs the same grid against a pre-warmed cache:
// the steady-state cost of a resumable sweep's incremental cells.
func BenchmarkSweepCached(b *testing.B) {
	jobs, err := benchSpec().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	cache := NewNetCache(0)
	if _, err := Run(jobs, Options{Workers: 1, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(jobs, Options{Workers: 1, Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetCacheHit isolates the cache's hot path.
func BenchmarkNetCacheHit(b *testing.B) {
	cache := NewNetCache(0)
	jobs, _ := benchSpec().Jobs()
	if _, err := cache.Get(jobs[0].Net); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(jobs[0].Net); err != nil {
			b.Fatal(err)
		}
	}
}
