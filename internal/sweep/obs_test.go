package sweep

// obs_test.go covers the scheduler's observability surface: progress
// callback ordering under concurrency, stage-timing monotonicity,
// consistency between the cache's accessor stats and the obs registry,
// run-log event structure, and the live Monitor/Status document. All of
// it must hold with full worker parallelism — telemetry that is only
// coherent single-threaded is not telemetry.

import (
	"bytes"
	"encoding/json"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/hgraph"
	"repro/internal/obs"
)

// TestProgressOrderingUnderConcurrency pins the Progress contract: the
// callback is serial (never two invocations at once), done increments
// by exactly one per call from 1 to total, and total never changes.
func TestProgressOrderingUnderConcurrency(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var (
		inFlight atomic.Int32
		lastDone int
		calls    int
	)
	opts := Options{
		Workers:   8,
		Telemetry: obs.NewRegistry(),
		Progress: func(done, total int, out Outcome) {
			if inFlight.Add(1) != 1 {
				t.Error("Progress invoked concurrently")
			}
			defer inFlight.Add(-1)
			calls++
			if done != lastDone+1 {
				t.Errorf("done jumped %d -> %d", lastDone, done)
			}
			lastDone = done
			if total != len(jobs) {
				t.Errorf("total = %d, want %d", total, len(jobs))
			}
		},
	}
	if _, err := Run(jobs, opts); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Fatalf("Progress called %d times, want %d", calls, len(jobs))
	}
}

// TestStageTimingMonotonicity pins the stage accounting invariants on
// every outcome of a concurrent sweep: stages are non-negative, a job
// that ran spent observable time running, creator-attributed generation
// and disk-load time happened inside the cache lookup that performed
// it, and the cache tier is one of the three named tiers.
func TestStageTimingMonotonicity(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	outs, err := Run(jobs, Options{Workers: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	creators := 0
	for i, o := range outs {
		s := o.Stages
		if s.CacheLookup < 0 || s.Generate < 0 || s.DiskLoad < 0 || s.Run < 0 || s.Aggregate < 0 {
			t.Fatalf("outcome %d: negative stage time %+v", i, s)
		}
		if s.Run == 0 {
			t.Fatalf("outcome %d ran but recorded zero run time", i)
		}
		if sub := s.Generate + s.DiskLoad; sub > s.CacheLookup {
			t.Fatalf("outcome %d: generate+disk_load %v exceeds the cache lookup %v that contained them", i, sub, s.CacheLookup)
		}
		switch o.CacheTier {
		case TierMem, TierDisk, TierGen:
		default:
			t.Fatalf("outcome %d: cache tier %q", i, o.CacheTier)
		}
		if o.Worker < 0 {
			t.Fatalf("outcome %d: worker %d", i, o.Worker)
		}
		if s.Generate > 0 || s.DiskLoad > 0 {
			creators++
		}
	}
	// Exactly one job per distinct topology paid the creation cost —
	// generation, or a disk load when an ambient REPRO_NETSTORE serves
	// it; everyone else hit memory or coalesced onto the creator.
	distinct := map[hgraph.Params]bool{}
	for _, j := range jobs {
		distinct[j.Net.Canonical()] = true
	}
	if creators != len(distinct) {
		t.Fatalf("%d jobs recorded creation time, want %d (one per distinct topology)", creators, len(distinct))
	}
	// The registry's stage timers saw the same jobs.
	snap := reg.Snapshot()
	if got := snap.Timers["sweep.stage.run"].Count; got != int64(len(jobs)) {
		t.Fatalf("registry run-stage count = %d, want %d", got, len(jobs))
	}
	gen := snap.Timers["sweep.stage.generate"].Count
	load := snap.Timers["sweep.stage.disk_load"].Count
	if gen+load < int64(creators) {
		t.Fatalf("registry creation-stage counts gen=%d load=%d, want ≥ %d", gen, load, creators)
	}
}

// TestCacheTelemetryConsistency pins that the obs registry's cache
// counters agree with the NetCache's own Stats/DiskStats accessors —
// the /status document and the legacy stderr summary must never tell
// different stories — across both a cold store-backed run and a warm
// second process serving disk hits.
func TestCacheTelemetryConsistency(t *testing.T) {
	root := t.TempDir()
	p := hgraph.Params{N: 64, D: 8, Seed: 3}

	check := func(c *NetCache, reg *obs.Registry) {
		t.Helper()
		hits, misses := c.Stats()
		diskHits, _ := c.DiskStats()
		snap := reg.Snapshot()
		if got := snap.Counters["sweep.cache.mem_hits"]; got != hits {
			t.Fatalf("registry mem_hits %d != Stats hits %d", got, hits)
		}
		if got := snap.Counters["sweep.cache.mem_misses"]; got != misses {
			t.Fatalf("registry mem_misses %d != Stats misses %d", got, misses)
		}
		if got := snap.Counters["sweep.cache.disk_hits"]; got != diskHits {
			t.Fatalf("registry disk_hits %d != DiskStats %d", got, diskHits)
		}
	}

	// Cold process: one generation, then memory hits.
	store, err := ResolveNetStore(root)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cache := NewNetCacheWithStore(0, store)
	cache.SetTelemetry(reg)
	for i := 0; i < 3; i++ {
		if _, err := cache.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	check(cache, reg)
	if n := reg.Snapshot().Timers["hgraph.gen"].Count; n != 1 {
		t.Fatalf("generation timer count = %d, want 1", n)
	}

	// Warm process: the same params served from the disk tier.
	store2, err := ResolveNetStore(root)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	cache2 := NewNetCacheWithStore(0, store2)
	cache2.SetTelemetry(reg2)
	if _, err := cache2.Get(p); err != nil {
		t.Fatal(err)
	}
	check(cache2, reg2)
	snap2 := reg2.Snapshot()
	if snap2.Counters["sweep.cache.disk_hits"] != 1 {
		t.Fatalf("warm lookup not served from disk: %+v", snap2.Counters)
	}
	if snap2.Timers["sweep.cache.disk_load"].Count != 1 {
		t.Fatalf("disk-load timer count = %d, want 1", snap2.Timers["sweep.cache.disk_load"].Count)
	}
	if snap2.Timers["hgraph.gen"].Count != 0 {
		t.Fatal("warm lookup regenerated instead of loading")
	}

	// Single-flight accounting stays coherent under concurrent demand:
	// misses count entry creations, hits + misses count lookups.
	reg3 := obs.NewRegistry()
	cache3 := NewNetCache(0)
	cache3.SetTelemetry(reg3)
	const callers = 8
	done := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := cache3.Get(hgraph.Params{N: 128, D: 8, Seed: 9})
			done <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	check(cache3, reg3)
	snap3 := reg3.Snapshot()
	if snap3.Counters["sweep.cache.mem_misses"] != 1 {
		t.Fatalf("single flight broke: %d creations", snap3.Counters["sweep.cache.mem_misses"])
	}
	if snap3.Counters["sweep.cache.mem_hits"] != callers-1 {
		t.Fatalf("hits = %d, want %d", snap3.Counters["sweep.cache.mem_hits"], callers-1)
	}
	if co := snap3.Counters["sweep.cache.coalesced"]; co < 0 || co > callers-1 {
		t.Fatalf("coalesced = %d out of range [0,%d]", co, callers-1)
	}
}

// TestDiskHealCounter pins the corruption-heal path: a truncated blob
// falls back to regeneration, the save repairs it, and the registry
// records exactly one heal.
func TestDiskHealCounter(t *testing.T) {
	root := t.TempDir()
	p := hgraph.Params{N: 64, D: 8, Seed: 4}
	store, err := ResolveNetStore(root)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewNetCacheWithStore(0, store)
	if _, err := cache.Get(p); err != nil {
		t.Fatal(err)
	}

	// Corrupt the blob, then demand it from a fresh cache.
	reg := obs.NewRegistry()
	cache2 := NewNetCacheWithStore(0, store)
	cache2.SetTelemetry(reg)
	if err := truncateBlob(t, root, p); err != nil {
		t.Fatal(err)
	}
	if _, err := cache2.Get(p); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.cache.disk_heals"] != 1 {
		t.Fatalf("disk_heals = %d, want 1", snap.Counters["sweep.cache.disk_heals"])
	}
	if snap.Counters["sweep.cache.disk_hits"] != 0 {
		t.Fatal("corrupt blob counted as a disk hit")
	}

	// And the heal worked: a third cache now loads from disk cleanly.
	reg3 := obs.NewRegistry()
	cache3 := NewNetCacheWithStore(0, store)
	cache3.SetTelemetry(reg3)
	if _, err := cache3.Get(p); err != nil {
		t.Fatal(err)
	}
	if reg3.Snapshot().Counters["sweep.cache.disk_hits"] != 1 {
		t.Fatal("healed blob not served from disk")
	}
}

// TestRunLogLifecycle pins the run-log schema over a run-then-resume
// pair: starts and dones for every pending job with coherent worker
// ids and tiers, skips for every resumed job, and sweep bookends.
func TestRunLogLifecycle(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	storePath := t.TempDir() + "/results.jsonl"
	store, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	opts := Options{
		Workers:   4,
		Store:     store,
		Telemetry: obs.NewRegistry(),
		RunLog:    obs.NewRunLog(&buf),
	}
	if _, err := Run(jobs, opts); err != nil {
		t.Fatal(err)
	}
	store.Close()

	events, err := obs.ReadRunLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, e := range events {
		count[e.Event]++
	}
	if count["sweep_start"] != 1 || count["sweep_end"] != 1 {
		t.Fatalf("sweep bookends = %+v", count)
	}
	// The log must open with sweep_start and close with sweep_end — a
	// reader tailing the file keys its lifecycle off the first line.
	if len(events) == 0 || events[0].Event != "sweep_start" {
		t.Fatalf("first event = %v, want sweep_start", events[0].Event)
	}
	if last := events[len(events)-1].Event; last != "sweep_end" {
		t.Fatalf("last event = %v, want sweep_end", last)
	}
	if count["job_start"] != len(jobs) || count["job_done"] != len(jobs) {
		t.Fatalf("job events = %+v, want %d each", count, len(jobs))
	}
	if count["job_skip"] != 0 {
		t.Fatalf("cold run logged %d skips", count["job_skip"])
	}
	for _, e := range events {
		if e.Event != "job_done" {
			continue
		}
		if tier := e.Fields["tier"]; tier != TierMem && tier != TierGen && tier != TierDisk {
			t.Fatalf("job_done tier = %v", tier)
		}
		if w, ok := e.Fields["worker"].(float64); !ok || w < 0 || w >= 4 {
			t.Fatalf("job_done worker = %v", e.Fields["worker"])
		}
		if _, ok := e.Fields["stages"].(map[string]any); !ok {
			t.Fatalf("job_done stages = %v", e.Fields["stages"])
		}
	}

	// Resume: every job satisfied from the store, logged as skips.
	store2, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	var buf2 bytes.Buffer
	opts2 := Options{
		Workers:   4,
		Store:     store2,
		Telemetry: obs.NewRegistry(),
		RunLog:    obs.NewRunLog(&buf2),
	}
	if _, err := Run(jobs, opts2); err != nil {
		t.Fatal(err)
	}
	events2, err := obs.ReadRunLog(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count2 := map[string]int{}
	for _, e := range events2 {
		count2[e.Event]++
	}
	if count2["job_skip"] != len(jobs) || count2["job_start"] != 0 {
		t.Fatalf("resume events = %+v, want %d skips and no starts", count2, len(jobs))
	}
	// Regression: skips are resolved before the pool spins up, but they
	// must still be LOGGED after sweep_start — the runner buffers them.
	if events2[0].Event != "sweep_start" {
		t.Fatalf("resume log opens with %v, want sweep_start", events2[0].Event)
	}
	for i := 1; i <= len(jobs); i++ {
		if events2[i].Event != "job_skip" {
			t.Fatalf("resume event %d = %v, want job_skip", i, events2[i].Event)
		}
	}
}

// TestMonitorStatus pins the live status document against the outcomes
// that fed it: progress counts, stage totals, tier tallies, cache and
// registry figures, and that the whole document is JSON-clean.
func TestMonitorStatus(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cache := NewNetCache(0)
	cache.SetTelemetry(reg)
	mon := NewMonitor("test", len(jobs), cache, reg)
	mon.SetExpand(1) // nonzero so the expand row shows up with a share

	var outs []Outcome
	opts := Options{
		Workers:   4,
		Cache:     cache,
		Telemetry: reg,
		Progress: func(done, total int, out Outcome) {
			mon.Observe(done, total, out)
			outs = append(outs, out)
		},
	}
	if _, err := Run(jobs, opts); err != nil {
		t.Fatal(err)
	}

	s := mon.Status()
	if s.Done != len(jobs) || s.Total != len(jobs) || s.Ran != len(jobs) || s.Resumed != 0 || s.Errors != 0 {
		t.Fatalf("status progress = %+v", s)
	}
	if s.ETAMS != 0 {
		t.Fatalf("finished sweep has ETA %v", s.ETAMS)
	}
	if s.JobsPerSec <= 0 {
		t.Fatalf("jobs/sec = %v", s.JobsPerSec)
	}

	var wantStages StageTimes
	tiers := map[string]int{}
	for _, o := range outs {
		wantStages.add(o.Stages)
		tiers[o.CacheTier]++
	}
	byName := map[string]StageStat{}
	for _, st := range s.Stages {
		byName[st.Stage] = st
	}
	if got, want := byName["run"].TotalMS, float64(wantStages.Run.Microseconds())/1000; got != want {
		t.Fatalf("status run total %v != folded %v", got, want)
	}
	for tier, n := range tiers {
		if s.CacheTiers[tier] != n {
			t.Fatalf("status tier %q = %d, want %d", tier, s.CacheTiers[tier], n)
		}
	}
	if s.Cache == nil || s.Cache.MemHits+s.Cache.MemMisses == 0 {
		t.Fatalf("status cache = %+v", s.Cache)
	}
	hits, misses := cache.Stats()
	if s.Cache.MemHits != hits || s.Cache.MemMisses != misses {
		t.Fatalf("status cache %+v != Stats (%d, %d)", s.Cache, hits, misses)
	}
	if s.Telemetry.Counters["core.runs"] != int64(len(jobs)) {
		t.Fatalf("status telemetry core.runs = %d", s.Telemetry.Counters["core.runs"])
	}

	// The document must marshal (it is the /status wire format) and the
	// breakdown table must render every stage row.
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
	table := mon.Breakdown()
	for _, stage := range []string{"expand", "cache_lookup", "generate", "disk_load", "run", "aggregate"} {
		if !bytes.Contains([]byte(table), []byte(stage)) {
			t.Fatalf("breakdown missing %q:\n%s", stage, table)
		}
	}
}

// truncateBlob corrupts the stored blob for p by cutting it in half.
func truncateBlob(t *testing.T, root string, p hgraph.Params) error {
	t.Helper()
	store, err := ResolveNetStore(root)
	if err != nil {
		return err
	}
	path := store.Path(p.Canonical())
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data[:len(data)/2], 0o644)
}
