package sweep

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Group is the aggregate of all trials of one grid cell.
type Group struct {
	// Job is the cell's representative (its first trial in expansion
	// order); aggregation-relevant fields are identical across the cell.
	Job Job
	// Agg accumulates the cell's per-trial summaries.
	Agg metrics.Aggregate
}

// Aggregate folds outcomes into per-cell aggregates. Folding walks the
// outcomes in expansion order and groups by Job.Group, so the result —
// including its floating-point rounding — is identical no matter how many
// workers produced the outcomes or in what order they completed. Failed
// outcomes (Err != nil) are skipped.
func Aggregate(outs []Outcome) []Group {
	index := map[int]int{} // Job.Group -> position in groups
	var groups []Group
	for _, o := range outs {
		if o.Err != nil {
			continue
		}
		gi, ok := index[o.Job.Group]
		if !ok {
			gi = len(groups)
			index[o.Job.Group] = gi
			groups = append(groups, Group{Job: o.Job})
		}
		groups[gi].Agg.Add(o.Summary)
	}
	return groups
}

// Total merges every group into one grand aggregate (group order, so the
// result is deterministic).
func Total(groups []Group) metrics.Aggregate {
	var total metrics.Aggregate
	for _, g := range groups {
		total.Merge(g.Agg)
	}
	return total
}

var aggregateColumns = []string{
	"n", "d", "δ", "B", "placement", "adversary", "alg", "ε", "churn", "loss",
	"trials", "correct", "survivor", "crashed", "undecided", "ratio med", "rounds",
}

// row renders one group's cells.
func (g Group) row() []string {
	j := g.Job
	placement := j.Placement
	if placement == "" {
		placement = "random"
	}
	adv := j.Adversary
	if adv == "" {
		adv = "none"
	}
	eps := j.Epsilon
	if eps == 0 {
		eps = 0.1 // the core default actually in effect
	}
	f := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	churn := fmt.Sprint(j.ChurnCrashes)
	if j.FaultModel == "join" {
		churn = fmt.Sprintf("join %.4g", j.JoinFrac)
	}
	return []string{
		fmt.Sprint(j.Net.N), fmt.Sprint(j.Net.D), f(j.Delta), fmt.Sprint(j.ByzCount),
		placement, adv, j.Algorithm.String(), f(eps), churn, f(j.LossProb),
		fmt.Sprint(g.Agg.Trials),
		f(g.Agg.CorrectFraction.Mean()), f(g.Agg.SurvivorCorrect.Mean()),
		f(g.Agg.CrashedFraction.Mean()), f(g.Agg.Undecided.Mean()),
		f(g.Agg.RatioMedian.Mean()), f(g.Agg.Rounds.Mean()),
	}
}

// Markdown renders the per-cell aggregates as a Markdown table, plus a
// grand-total line.
func Markdown(title string, groups []Group) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "### %s\n\n", title)
	}
	b.WriteString("| " + strings.Join(aggregateColumns, " | ") + " |\n")
	sep := make([]string, len(aggregateColumns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, g := range groups {
		b.WriteString("| " + strings.Join(g.row(), " | ") + " |\n")
	}
	total := Total(groups)
	fmt.Fprintf(&b, "\n%d cells, %d runs: correct %.4g ± %.2g, rounds %.4g ± %.2g\n",
		len(groups), total.Trials,
		total.CorrectFraction.Mean(), total.CorrectFraction.StdErr(),
		total.Rounds.Mean(), total.Rounds.StdErr())
	return b.String()
}

// CSV renders the per-cell aggregates as CSV (header first).
func CSV(groups []Group) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(aggregateColumns)
	for _, g := range groups {
		writeRow(g.row())
	}
	return b.String()
}
