package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// Job is one fully-specified protocol run: network parameters, fault
// model, adversary strategy, protocol configuration, and every seed that
// run consumes. A Job is plain data — serializable and comparable by
// content hash — so the result store can recognize work it has already
// done across process restarts, and so two sweeps that share cells share
// their results.
type Job struct {
	// Spec names the grid this job came from (informational; not hashed —
	// renaming a spec must not invalidate its results).
	Spec string `json:"-"`
	// Net parameterizes network generation; Net.Seed pins the topology.
	Net hgraph.Params `json:"net"`
	// Delta records the fault exponent that derived ByzCount
	// (informational; ByzCount is authoritative for execution, so Key
	// excludes Delta from the content hash).
	Delta float64 `json:"delta,omitempty"`
	// ByzCount is the number of Byzantine nodes to place (0 = none).
	ByzCount int `json:"byz_count,omitempty"`
	// Placement selects the Byzantine placement strategy by
	// hgraph.PlacementByName ("" = the paper's random placement).
	Placement string `json:"placement,omitempty"`
	// PlaceSeed drives Byzantine placement.
	PlaceSeed uint64 `json:"place_seed,omitempty"`
	// Adversary names the Byzantine strategy per adversary.ByName
	// ("" = none: Byzantine nodes follow the protocol).
	Adversary string `json:"adversary,omitempty"`
	// Algorithm selects the protocol variant.
	Algorithm core.Algorithm `json:"algorithm"`
	// Epsilon is the protocol error parameter (0 = core default).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxPhase caps the phase schedule (0 = core default).
	MaxPhase int `json:"max_phase,omitempty"`
	// InjectionThreshold instruments injection-entry recording (see
	// core.Config.InjectionThreshold).
	InjectionThreshold int64 `json:"injection_threshold,omitempty"`
	// RunSeed drives the honest protocol coins.
	RunSeed uint64 `json:"run_seed"`
	// ChurnCrashes/ChurnSeed/ChurnLastPhase configure mid-run crash churn.
	ChurnCrashes   int    `json:"churn_crashes,omitempty"`
	ChurnSeed      uint64 `json:"churn_seed,omitempty"`
	ChurnLastPhase int    `json:"churn_last_phase,omitempty"`
	// FaultModel selects the mid-run churn regime: "" or "crash" schedules
	// permanent crash failures (ChurnCrashes nodes, the classic model);
	// "join" schedules oblivious leave/rejoin churn (JoinFrac·n nodes,
	// core.JoinChurn, arXiv:2204.11951 regime).
	FaultModel string `json:"fault_model,omitempty"`
	// JoinFrac is the fraction of nodes that leave and rejoin under the
	// "join" fault model (0 = none).
	JoinFrac float64 `json:"join_frac,omitempty"`
	// LossProb drops each directed H-edge reception independently with
	// this probability (core.MessageLoss; 0 = reliable links). Composes
	// with either churn regime.
	LossProb float64 `json:"loss_prob,omitempty"`
	// RecordOccupancy instruments the run to record per-phase frontier
	// occupancy (experiment E20). Omitted from the content key when
	// false, so pre-existing job keys are untouched.
	RecordOccupancy bool `json:"record_occupancy,omitempty"`
	// Trial distinguishes repeated draws of the same grid cell.
	Trial int `json:"trial"`

	// Group is the grid-cell index assigned by Spec expansion: all trials
	// of one cell share it, and aggregation folds by it. Not part of the
	// content key — a cell's identity is its parameters, not its position
	// in whatever grid enumerated it.
	Group int `json:"-"`
	// Index is the job's position in the expansion; Run returns outcomes
	// in Index order. Not part of the content key.
	Index int `json:"-"`
}

// Key returns the job's content address: hex SHA-256 over the job's
// canonical JSON encoding, with grid position (Spec/Group/Index) excluded
// and Net normalized via Canonical. Two jobs describing identical work
// have identical keys, which is what lets a resumed or reshaped sweep
// skip cells it has already computed.
func (j Job) Key() string {
	j.Net = j.Net.Canonical()
	// Normalize the spellable defaults so equivalent jobs hash equal, and
	// drop the purely-informational Delta: ByzCount is what executes, so
	// two deltas that floor to the same budget describe identical work.
	j.Delta = 0
	if j.Adversary == "none" {
		j.Adversary = ""
	}
	if j.Placement == "random" {
		j.Placement = ""
	}
	// Normalize the fault-model axes so the hash covers exactly the work
	// Config executes: each churn regime ignores the other's knob, and a
	// join model with nothing joining is identical work to no churn.
	if j.FaultModel == "join" {
		j.ChurnCrashes = 0
		if j.JoinFrac == 0 {
			j.FaultModel = ""
		}
	} else {
		j.FaultModel = ""
		j.JoinFrac = 0
	}
	b, err := json.Marshal(j)
	if err != nil {
		// Job is a fixed struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sweep: marshal job: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Config materializes the core.Config this job runs with. workers sets
// the per-run simulator parallelism (the scheduler divides the machine
// between concurrent jobs and within-run parallelism).
func (j Job) Config(workers int) core.Config {
	cfg := core.Config{
		Algorithm:               j.Algorithm,
		Epsilon:                 j.Epsilon,
		MaxPhase:                j.MaxPhase,
		Seed:                    j.RunSeed,
		Workers:                 workers,
		InjectionThreshold:      j.InjectionThreshold,
		RecordFrontierOccupancy: j.RecordOccupancy,
	}
	if j.FaultModel == "join" {
		if j.JoinFrac > 0 {
			cfg.Faults = append(cfg.Faults, core.JoinChurn{
				Count:     int(j.JoinFrac * float64(j.Net.N)),
				Seed:      j.ChurnSeed,
				LastPhase: j.ChurnLastPhase,
			})
		}
	} else {
		cfg.Churn = core.ChurnConfig{
			Crashes:   j.ChurnCrashes,
			Seed:      j.ChurnSeed,
			LastPhase: j.ChurnLastPhase,
		}
	}
	if j.LossProb > 0 {
		cfg.Faults = append(cfg.Faults, core.MessageLoss{Prob: j.LossProb})
	}
	return cfg
}

// Label renders a compact human-readable cell descriptor: the axes that
// identify the grid cell, omitting defaults.
func (j Job) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d d=%d", j.Net.N, j.Net.D)
	if j.Delta > 0 {
		fmt.Fprintf(&b, " δ=%g", j.Delta)
	}
	if j.ByzCount > 0 {
		fmt.Fprintf(&b, " B=%d", j.ByzCount)
	}
	if j.Placement != "" && j.Placement != "random" {
		fmt.Fprintf(&b, " place=%s", j.Placement)
	}
	adv := j.Adversary
	if adv == "" {
		adv = "none"
	}
	fmt.Fprintf(&b, " adv=%s alg=%s", adv, j.Algorithm)
	if j.Epsilon > 0 {
		fmt.Fprintf(&b, " ε=%g", j.Epsilon)
	}
	if j.ChurnCrashes > 0 {
		fmt.Fprintf(&b, " churn=%d", j.ChurnCrashes)
	}
	if j.FaultModel == "join" && j.JoinFrac > 0 {
		fmt.Fprintf(&b, " join=%g", j.JoinFrac)
	}
	if j.LossProb > 0 {
		fmt.Fprintf(&b, " loss=%g", j.LossProb)
	}
	return b.String()
}
