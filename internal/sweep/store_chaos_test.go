package sweep

// store_chaos_test.go drives the result store's crash-safety contract
// through the chaos fs hook: torn appends, denied writes, and fsync
// failures injected at the backing-file seam. The property under every
// schedule: a Put that returned nil is readable after a clean reopen,
// and a Put that returned an error never corrupts a neighboring
// record.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/hgraph"
	"repro/internal/metrics"
)

func chaosRecord(i int) Record {
	j := Job{Net: hgraph.Params{N: 64, D: 8, Seed: uint64(i + 1)}, Trial: i}
	return Record{Key: j.Key(), Job: j, Summary: metrics.Summary{N: 64, Honest: i + 1}}
}

// TestStoreTornAppendSealed pins the sealing fix: a torn append is
// reported as an error, and the very next Put — which succeeds — is not
// glued onto the torn fragment and lost with it on reopen.
func TestStoreTornAppendSealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	var ff *chaos.FaultFile
	s, err := OpenStoreHooked(path, func(f File) File {
		ff = &chaos.FaultFile{F: f, TearAt: func(n uint64, b []byte) int {
			if n == 2 {
				return len(b) / 2
			}
			return -1
		}}
		return ff
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2, r3 := chaosRecord(1), chaosRecord(2), chaosRecord(3)
	if err := s.Put(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(r2); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn Put = %v, want ErrInjected", err)
	}
	if err := s.Put(r3); err != nil {
		t.Fatalf("Put after torn append: %v", err)
	}
	// The torn record retries, as a reassigned sweepd job would.
	if err := s.Put(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, r := range []Record{r1, r2, r3} {
		got, ok := re.Lookup(r.Key)
		if !ok {
			t.Fatalf("acked record %s lost after torn-append reopen", r.Key[:8])
		}
		if got.Summary.Honest != r.Summary.Honest {
			t.Fatalf("record %s corrupted: %+v", r.Key[:8], got.Summary)
		}
	}
}

// TestStoreReopenUnderDiskFaults is the randomized property: for seeded
// torn/denied/fsync fault schedules, every Put that returned nil
// survives a clean reopen intact, regardless of how many neighbors
// failed around it.
func TestStoreReopenUnderDiskFaults(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "results.jsonl")
			s, err := OpenStoreHooked(path, func(f File) File {
				return &chaos.FaultFile{F: f, Plan: chaos.DiskPlan{
					Seed: seed, TornWrite: 0.2, WriteErr: 0.15, SyncErr: 0.2,
				}}
			})
			if err != nil {
				t.Fatal(err)
			}
			s.SyncEvery(3)
			acked := map[string]Record{}
			attempts := 0
			for i := 0; i < 40; i++ {
				rec := chaosRecord(i)
				// Retry each record a few times, as the coordinator's
				// reassignment loop effectively does; give up on a
				// persistently unlucky one (it must then be absent or
				// intact, never mangled).
				for try := 0; try < 3; try++ {
					attempts++
					err := s.Put(rec)
					if err == nil {
						acked[rec.Key] = rec
						break
					}
					if !errors.Is(err, chaos.ErrInjected) {
						// Only injected faults are expected here; an
						// fsync denial reports on an already-indexed
						// record (documented Store behavior) and the
						// record is in the acked set only if a later
						// retry returns nil — fine either way.
						t.Fatalf("Put %d: unexpected error %v", i, err)
					}
				}
			}
			_ = s.Close() // may report a deferred sync fault; reopen decides
			if len(acked) == 0 {
				t.Fatalf("schedule acked nothing in %d attempts — fault rates too hot", attempts)
			}

			re, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for key, want := range acked {
				got, ok := re.Lookup(key)
				if !ok {
					t.Fatalf("acked record %s missing after reopen", key[:8])
				}
				if got.Summary.Honest != want.Summary.Honest || got.Key != want.Key {
					t.Fatalf("acked record %s corrupted after reopen", key[:8])
				}
			}
		})
	}
}

// TestStoreSyncFaultSurfaced: an injected fsync failure is reported to
// the caller (the durability contract must not fail silently), and the
// record it reported on is still present after reopen — the error is
// about durability, not loss.
func TestStoreSyncFaultSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStoreHooked(path, func(f File) File {
		return &chaos.FaultFile{F: f, FailSync: func(n uint64) error {
			if n == 1 {
				return fmt.Errorf("%w: sync denied", chaos.ErrInjected)
			}
			return nil
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := chaosRecord(0)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Sync = %v, want injected fault surfaced", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Lookup(rec.Key); !ok {
		t.Fatal("record lost across a failed sync")
	}
}
