package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Options configures a sweep execution.
type Options struct {
	// Workers is the number of jobs executed concurrently (<= 0 selects
	// GOMAXPROCS). Job-level parallelism is where the throughput is: one
	// protocol run has limited internal parallelism, a grid has plenty.
	Workers int
	// RunWorkers is the sim.Pool size inside each protocol run (<= 0
	// divides GOMAXPROCS across Workers, so a saturated scheduler runs
	// each job serially instead of oversubscribing the machine with
	// Workers × GOMAXPROCS pool goroutines).
	RunWorkers int
	// Band is the acceptance band for summaries (zero: metrics.DefaultBand).
	Band metrics.Band
	// Cache reuses generated networks across jobs (nil: a fresh cache of
	// DefaultCacheCap networks).
	Cache *NetCache
	// Store, when non-nil, persists each completed job and — the resume
	// path — skips any job whose content key the store already holds.
	Store *Store
	// KeepResults retains each job's full core.Result, its network, and
	// its Byzantine vector on the Outcome, for callers (the experiment
	// suite) that need more than the Summary. Off for large grids: a
	// Result holds O(n) state per job.
	KeepResults bool
	// Observer, when non-nil, supplies a per-job observer; the instance
	// is returned on the Outcome so callers can read what it saw.
	Observer func(Job) core.Observer
	// Progress, when non-nil, is called serially after each job completes
	// (or is satisfied from the store).
	Progress func(done, total int, out Outcome)
}

// Outcome is one job's result, in expansion order.
type Outcome struct {
	Job     Job
	Summary metrics.Summary
	// FromStore marks jobs satisfied by the result store without running.
	FromStore bool
	Err       error

	// Populated only when Options.KeepResults is set and the job actually
	// ran (store hits carry only the Summary):
	Result   *core.Result
	Net      *hgraph.Network
	Byz      []bool
	Observer core.Observer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RunWorkers <= 0 {
		o.RunWorkers = runtime.GOMAXPROCS(0) / o.Workers
		if o.RunWorkers < 1 {
			o.RunWorkers = 1
		}
	}
	if o.Band == (metrics.Band{}) {
		o.Band = metrics.DefaultBand
	}
	if o.Cache == nil {
		o.Cache = NewNetCache(0)
	}
	// Regenerations on cache misses respect the same machine division as
	// the runs themselves: RunWorkers of parallelism per job worker, not
	// a full-machine pool per miss. A pinned SetGenWorkers value wins.
	o.Cache.mu.Lock()
	if !o.Cache.genWorkersPinned {
		o.Cache.genWorkers = o.RunWorkers
	}
	o.Cache.mu.Unlock()
	return o
}

// Run executes jobs across a bounded worker set and returns one Outcome
// per job, in job order regardless of completion order. Jobs found in the
// store are skipped; everything else runs, is summarized under
// opts.Band, and (with a store) is persisted as it completes. The first
// job error, in job order, is returned alongside the full outcome slice.
func Run(jobs []Job, opts Options) ([]Outcome, error) {
	opts = opts.withDefaults()
	outs := make([]Outcome, len(jobs))

	// Resolve store hits up front so the worker loop only sees real work.
	var pending []int
	for i, j := range jobs {
		if opts.Store != nil {
			if rec, ok := opts.Store.Lookup(j.Key()); ok {
				outs[i] = Outcome{Job: j, Summary: rec.Summary, FromStore: true}
				continue
			}
		}
		pending = append(pending, i)
	}

	var (
		progressMu sync.Mutex
		done       int
	)
	report := func(i int) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.Progress(done, len(jobs), outs[i])
		progressMu.Unlock()
	}
	// Store hits count toward progress before execution starts.
	for i := range jobs {
		if outs[i].FromStore {
			report(i)
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulation arena per worker, reused across jobs: the
			// engine's per-run state and sim.Pool are rewound by Reset
			// instead of reallocated, and cache-hit jobs reuse the
			// cached network's precomputed topology tables.
			arena := core.NewWorld()
			defer arena.Close()
			for i := range work {
				outs[i] = execute(jobs[i], opts, arena)
				report(i)
			}
		}()
	}
	for _, i := range pending {
		work <- i
	}
	close(work)
	wg.Wait()

	for i := range outs {
		if outs[i].Err != nil {
			return outs, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Label(), outs[i].Err)
		}
	}
	return outs, nil
}

// execute runs one job to completion on the worker's arena.
func execute(j Job, opts Options, arena *core.World) Outcome {
	out := Outcome{Job: j}
	start := time.Now()

	topo, err := opts.Cache.GetTopology(j.Net)
	if err != nil {
		out.Err = err
		return out
	}
	net := topo.Net
	var byz []bool
	if j.ByzCount > 0 {
		pl, ok := hgraph.PlacementByName(j.Placement)
		if !ok {
			out.Err = fmt.Errorf("unknown placement %q", j.Placement)
			return out
		}
		byz = pl.Place(net.H, j.ByzCount, rng.New(j.PlaceSeed))
	}
	adv, ok := adversary.ByName(j.Adversary)
	if !ok {
		out.Err = fmt.Errorf("unknown adversary %q", j.Adversary)
		return out
	}
	cfg := j.Config(opts.RunWorkers)
	var obs core.Observer
	if opts.Observer != nil {
		obs = opts.Observer(j)
		cfg.Observer = obs
	}
	res, err := arena.RunTopology(topo, byz, adv, cfg)
	if err != nil {
		out.Err = err
		return out
	}
	out.Summary = metrics.Summarize(res, opts.Band)
	if opts.KeepResults {
		out.Result = res
		out.Net = net
		out.Byz = byz
		out.Observer = obs
	}
	if opts.Store != nil {
		rec := Record{
			Key:       j.Key(),
			Job:       j,
			Summary:   out.Summary,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		}
		if err := opts.Store.Put(rec); err != nil {
			out.Err = err
		}
	}
	return out
}
