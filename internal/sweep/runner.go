package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Options configures a sweep execution.
type Options struct {
	// Workers is the number of jobs executed concurrently (<= 0 selects
	// GOMAXPROCS). Job-level parallelism is where the throughput is: one
	// protocol run has limited internal parallelism, a grid has plenty.
	Workers int
	// RunWorkers is the sim.Pool size inside each protocol run (<= 0
	// divides GOMAXPROCS across Workers, so a saturated scheduler runs
	// each job serially instead of oversubscribing the machine with
	// Workers × GOMAXPROCS pool goroutines).
	RunWorkers int
	// Band is the acceptance band for summaries (zero: metrics.DefaultBand).
	Band metrics.Band
	// Cache reuses generated networks across jobs (nil: a fresh cache of
	// DefaultCacheCap networks).
	Cache *NetCache
	// Store, when non-nil, persists each completed job and — the resume
	// path — skips any job whose content key the store already holds.
	Store *Store
	// KeepResults retains each job's full core.Result, its network, and
	// its Byzantine vector on the Outcome, for callers (the experiment
	// suite) that need more than the Summary. Off for large grids: a
	// Result holds O(n) state per job.
	KeepResults bool
	// Observer, when non-nil, supplies a per-job observer; the instance
	// is returned on the Outcome so callers can read what it saw.
	Observer func(Job) core.Observer
	// Progress, when non-nil, is called serially after each job completes
	// (or is satisfied from the store).
	Progress func(done, total int, out Outcome)
	// Telemetry selects the obs registry engine counters and stage
	// timers accumulate into (nil: obs.Default). Strictly observational:
	// nothing recorded here feeds Job keys, digests, or stored Records.
	Telemetry *obs.Registry
	// RunLog, when non-nil, receives one JSONL lifecycle event per
	// scheduler step (sweep start/end, job start/finish, resume skips).
	// Logging is best effort — a failing run-log never fails a job.
	RunLog *obs.RunLog
	// Batch caps the lane width of lockstep batched execution: pending
	// jobs sharing a topology and protocol schedule run as lanes of one
	// core.RunBatch invocation (per-job Outcomes, Records, keys, and
	// digests are unchanged — grouping is pure scheduling). 0 consults
	// the REPRO_BATCH environment variable (off when unset); 1 disables
	// batching; larger widths are clamped to core.MaxBatchLanes. A
	// per-job Observer disables batching, and occupancy-recording jobs
	// fall back to the scalar engine individually.
	Batch int
	// Drop, when non-nil, is consulted immediately before a pending job
	// would execute; returning true abandons the job without running
	// it. The outcome is marked Dropped (no Summary, no store write, no
	// error — the job simply ceased to be this scheduler's problem) and
	// Progress still fires so callers see the slot accounted. sweepd
	// workers use it to shed jobs the coordinator stole from their
	// shard mid-run; a nil Drop leaves the scheduler byte-identical to
	// its pre-Drop behavior.
	Drop func(Job) bool
}

// StageTimes partitions one job's wall-clock time across the runner's
// stages, as observed by the job's worker. CacheLookup is the full
// GetTopologyInfo call — including time blocked on another worker's
// in-flight load — while Generate and DiskLoad are attributed only to
// the job that performed the work (TierInfo.Creator), so summed stage
// totals never double count a shared generation. Purely observational;
// absent from stored Records, so existing JSONL stores and job keys are
// byte-identical with telemetry enabled.
type StageTimes struct {
	CacheLookup time.Duration `json:"cache_lookup,omitempty"`
	Generate    time.Duration `json:"generate,omitempty"`
	DiskLoad    time.Duration `json:"disk_load,omitempty"`
	Run         time.Duration `json:"run,omitempty"`
	Aggregate   time.Duration `json:"aggregate,omitempty"`
}

// add folds o into the receiver (the Monitor's accumulation step).
func (s *StageTimes) add(o StageTimes) {
	s.CacheLookup += o.CacheLookup
	s.Generate += o.Generate
	s.DiskLoad += o.DiskLoad
	s.Run += o.Run
	s.Aggregate += o.Aggregate
}

// Outcome is one job's result, in expansion order.
type Outcome struct {
	Job     Job
	Summary metrics.Summary
	// FromStore marks jobs satisfied by the result store without running.
	FromStore bool
	// Dropped marks jobs abandoned unrun by Options.Drop (a sweepd
	// worker shedding stolen work). No Summary, no Err.
	Dropped bool
	Err     error

	// Stages partitions the job's wall time (zero for store hits), and
	// CacheTier records how its topology was obtained — TierMem, TierDisk,
	// or TierGen ("" for store hits and lookup errors). Worker is the
	// scheduler worker that ran the job (-1 for store hits). All three
	// are observational extras for the run-log, /status, and the
	// end-of-sweep breakdown.
	Stages    StageTimes
	CacheTier string
	Worker    int

	// BatchLanes is the lane count of the batched invocation that
	// executed this job (1 when it ran the scalar engine alone, 0 for
	// store hits and jobs that failed before execution).
	BatchLanes int

	// Populated only when Options.KeepResults is set and the job actually
	// ran (store hits carry only the Summary):
	Result   *core.Result
	Net      *hgraph.Network
	Byz      []bool
	Observer core.Observer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RunWorkers <= 0 {
		o.RunWorkers = runtime.GOMAXPROCS(0) / o.Workers
		if o.RunWorkers < 1 {
			o.RunWorkers = 1
		}
	}
	if o.Band == (metrics.Band{}) {
		o.Band = metrics.DefaultBand
	}
	if o.Telemetry == nil {
		o.Telemetry = obs.Default
	}
	if o.Batch == 0 {
		o.Batch = EnvBatch()
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.Batch > core.MaxBatchLanes {
		o.Batch = core.MaxBatchLanes
	}
	if o.Cache == nil {
		o.Cache = NewNetCache(0)
		// A cache this Run created reports where this Run reports; a
		// caller-supplied cache keeps whatever binding its owner chose.
		o.Cache.SetTelemetry(o.Telemetry)
	}
	// Regenerations on cache misses respect the same machine division as
	// the runs themselves: RunWorkers of parallelism per job worker, not
	// a full-machine pool per miss. A pinned SetGenWorkers value wins.
	o.Cache.mu.Lock()
	if !o.Cache.genWorkersPinned {
		o.Cache.genWorkers = o.RunWorkers
	}
	o.Cache.mu.Unlock()
	return o
}

// Run executes jobs across a bounded worker set and returns one Outcome
// per job, in job order regardless of completion order. Jobs found in the
// store are skipped; everything else runs, is summarized under
// opts.Band, and (with a store) is persisted as it completes. The first
// job error, in job order, is returned alongside the full outcome slice.
func Run(jobs []Job, opts Options) ([]Outcome, error) {
	return RunContext(context.Background(), jobs, opts)
}

// RunContext is Run with cancellation: when ctx is canceled mid-sweep,
// no new work items are dispatched, in-flight jobs drain to completion
// (their results are persisted as usual), every job that never started is
// marked with ctx's error, and the run-log's sweep_end carries
// "aborted": true. The returned error wraps ctx.Err() — callers detect
// an abort with errors.Is(err, context.Canceled) — so an interrupted
// sweep still hands back every Outcome it produced, and a later run with
// the same store resumes exactly past the drained jobs.
func RunContext(ctx context.Context, jobs []Job, opts Options) ([]Outcome, error) {
	opts = opts.withDefaults()
	outs := make([]Outcome, len(jobs))
	sweepStart := time.Now()

	// Resolve store hits up front so the worker loop only sees real work.
	// Skip events are buffered and emitted after sweep_start: run-log
	// readers see the sweep open before any of its per-job lifecycle
	// lines, no matter how many jobs the store resolves.
	var pending []int
	var skipped []int
	for i, j := range jobs {
		if opts.Store != nil {
			if rec, ok := opts.Store.Lookup(j.Key()); ok {
				outs[i] = Outcome{Job: j, Summary: rec.Summary, FromStore: true, Worker: -1}
				skipped = append(skipped, i)
				continue
			}
		}
		pending = append(pending, i)
	}
	_ = opts.RunLog.Event("sweep_start", map[string]any{
		"jobs": len(jobs), "pending": len(pending),
		"resumed": len(jobs) - len(pending), "workers": opts.Workers,
		"batch": opts.Batch,
	})
	for _, i := range skipped {
		_ = opts.RunLog.Event("job_skip", map[string]any{
			"key": jobs[i].Key(), "label": jobs[i].Label(),
		})
	}

	var (
		progressMu sync.Mutex
		done       int
	)
	report := func(i int) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.Progress(done, len(jobs), outs[i])
		progressMu.Unlock()
	}
	// Store hits count toward progress before execution starts.
	for i := range jobs {
		if outs[i].FromStore {
			report(i)
		}
	}

	// Resolve the registry's engine counters and stage timers once: the
	// per-job accounting below is then pure atomics, no name lookups.
	tele := newRunTelemetry(opts.Telemetry)

	// Group pending jobs into work items: compatible jobs become lanes of
	// one batched invocation, everything else stays a singleton running
	// the scalar engine.
	items := batchPlan(jobs, pending, opts)

	// executed marks jobs a worker actually picked up; each index is
	// written by exactly one worker before wg.Wait, so the post-drain
	// scan below is race-free.
	executed := make([]bool, len(jobs))

	work := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// One simulation arena per worker, reused across jobs: the
			// engine's per-run state and sim.Pool are rewound by Reset
			// instead of reallocated, and cache-hit jobs reuse the
			// cached network's precomputed topology tables. The batched
			// arena is created on first batched item only — a scalar
			// sweep never pays for it.
			arena := core.NewWorld()
			defer arena.Close()
			var barena *core.BatchWorld
			defer func() {
				if barena != nil {
					barena.Close()
				}
			}()
			for item := range work {
				// Shed dropped jobs at dispatch, not at plan time: a Drop
				// verdict can arrive (a steal notification) between the
				// batch plan and this item's turn on the worker.
				if opts.Drop != nil {
					kept := item[:0]
					for _, i := range item {
						if opts.Drop(jobs[i]) {
							executed[i] = true
							outs[i] = Outcome{Job: jobs[i], Dropped: true, Worker: -1}
							_ = opts.RunLog.Event("job_drop", map[string]any{
								"key": jobs[i].Key(), "label": jobs[i].Label(),
							})
							report(i)
							continue
						}
						kept = append(kept, i)
					}
					item = kept
					if len(item) == 0 {
						continue
					}
				}
				for _, i := range item {
					executed[i] = true
					_ = opts.RunLog.Event("job_start", map[string]any{
						"key": jobs[i].Key(), "label": jobs[i].Label(), "worker": worker,
						"lanes": len(item),
					})
				}
				start := time.Now()
				if len(item) == 1 {
					i := item[0]
					out := execute(jobs[i], opts, arena, tele)
					out.BatchLanes = 1
					outs[i] = out
				} else {
					if barena == nil {
						barena = core.NewBatchWorld()
					}
					executeBatch(jobs, item, opts, barena, tele, outs)
				}
				ms := float64(time.Since(start).Microseconds()) / 1000 / float64(len(item))
				for _, i := range item {
					outs[i].Worker = worker
					fields := map[string]any{
						"key": jobs[i].Key(), "label": jobs[i].Label(), "worker": worker,
						"ms":     ms,
						"tier":   outs[i].CacheTier,
						"stages": outs[i].Stages,
						"lanes":  outs[i].BatchLanes,
					}
					if outs[i].Err != nil {
						fields["err"] = outs[i].Err.Error()
					}
					_ = opts.RunLog.Event("job_done", fields)
					report(i)
				}
			}
		}(w)
	}
	// Feed items until the list is exhausted or the context is canceled:
	// cancellation stops dispatch, in-flight items drain (their results
	// land in the store as usual), and the remainder is marked below.
feed:
	for _, item := range items {
		select {
		case work <- item:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	aborted := ctx.Err() != nil
	ran := 0
	if aborted {
		for _, i := range pending {
			if executed[i] {
				ran++
				continue
			}
			outs[i] = Outcome{Job: jobs[i], Err: ctx.Err(), Worker: -1}
		}
	} else {
		ran = len(pending)
	}

	// errs counts failures of jobs that actually ran; abandoned jobs are
	// accounted separately so an abort doesn't read as a pile of errors.
	errs := 0
	for _, i := range pending {
		if executed[i] && outs[i].Err != nil {
			errs++
		}
	}
	end := map[string]any{
		"ran": ran, "resumed": len(jobs) - len(pending), "errors": errs,
		"elapsed_ms": float64(time.Since(sweepStart).Microseconds()) / 1000,
	}
	if aborted {
		end["aborted"] = true
		end["abandoned"] = len(pending) - ran
	}
	_ = opts.RunLog.Event("sweep_end", end)
	if aborted {
		return outs, fmt.Errorf("sweep: aborted after %d of %d pending jobs: %w",
			ran, len(pending), ctx.Err())
	}
	for i := range outs {
		if outs[i].Err != nil {
			return outs, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Label(), outs[i].Err)
		}
	}
	return outs, nil
}

// runTelemetry is the registry bindings one Run resolves up front.
// Engine counters fold each completed run's core.Result aggregate in —
// the round loop itself is untouched, which is how telemetry stays
// on while TestRoundLoopZeroAlloc and the golden digests hold.
type runTelemetry struct {
	runs     *obs.Counter // "core.runs"
	rounds   *obs.Counter // "core.rounds"
	messages *obs.Counter // "core.messages"
	bits     *obs.Counter // "core.bits"
	dropped  *obs.Counter // "core.dropped_messages"
	rejoins  *obs.Counter // "core.rejoins"

	// Batched-execution accounting: lanes over invocations is the mean
	// lane occupancy the breakdown table reports.
	batchLanes       *obs.Counter // "core.batch.lanes"
	batchInvocations *obs.Counter // "core.batch.invocations"

	stageLookup *obs.Timer // "sweep.stage.cache_lookup"
	stageGen    *obs.Timer // "sweep.stage.generate"
	stageDisk   *obs.Timer // "sweep.stage.disk_load"
	stageRun    *obs.Timer // "sweep.stage.run"
	stageAgg    *obs.Timer // "sweep.stage.aggregate"
}

func newRunTelemetry(reg *obs.Registry) runTelemetry {
	if reg == nil {
		reg = obs.Default
	}
	return runTelemetry{
		runs:     reg.Counter("core.runs"),
		rounds:   reg.Counter("core.rounds"),
		messages: reg.Counter("core.messages"),
		bits:     reg.Counter("core.bits"),
		dropped:  reg.Counter("core.dropped_messages"),
		rejoins:  reg.Counter("core.rejoins"),

		batchLanes:       reg.Counter("core.batch.lanes"),
		batchInvocations: reg.Counter("core.batch.invocations"),

		stageLookup: reg.Timer("sweep.stage.cache_lookup"),
		stageGen:    reg.Timer("sweep.stage.generate"),
		stageDisk:   reg.Timer("sweep.stage.disk_load"),
		stageRun:    reg.Timer("sweep.stage.run"),
		stageAgg:    reg.Timer("sweep.stage.aggregate"),
	}
}

// execute runs one job to completion on the worker's arena.
func execute(j Job, opts Options, arena *core.World, tele runTelemetry) Outcome {
	out := Outcome{Job: j}
	start := time.Now()

	topo, info, err := opts.Cache.GetTopologyInfo(j.Net)
	out.Stages.CacheLookup = time.Since(start)
	tele.stageLookup.Observe(out.Stages.CacheLookup)
	if err != nil {
		out.Err = err
		return out
	}
	out.CacheTier = info.Tier
	if info.Creator {
		out.Stages.Generate = info.Generate
		out.Stages.DiskLoad = info.DiskLoad
		if info.Generate > 0 {
			tele.stageGen.Observe(info.Generate)
		}
		if info.DiskLoad > 0 {
			tele.stageDisk.Observe(info.DiskLoad)
		}
	}
	net := topo.Net
	var byz []bool
	if j.ByzCount > 0 {
		pl, ok := hgraph.PlacementByName(j.Placement)
		if !ok {
			out.Err = fmt.Errorf("unknown placement %q", j.Placement)
			return out
		}
		byz = pl.Place(net.H, j.ByzCount, rng.New(j.PlaceSeed))
	}
	adv, ok := adversary.ByName(j.Adversary)
	if !ok {
		out.Err = fmt.Errorf("unknown adversary %q", j.Adversary)
		return out
	}
	cfg := j.Config(opts.RunWorkers)
	var obs core.Observer
	if opts.Observer != nil {
		obs = opts.Observer(j)
		cfg.Observer = obs
	}
	runStart := time.Now()
	res, err := arena.RunTopology(topo, byz, adv, cfg)
	out.Stages.Run = time.Since(runStart)
	tele.stageRun.Observe(out.Stages.Run)
	if err != nil {
		out.Err = err
		return out
	}
	// Fold the run's communication-cost aggregate into the registry. The
	// engine already accounted it (core.Counters via sim.Counters); this
	// is a per-job handful of atomic adds, never a round-loop cost.
	tele.runs.Inc()
	tele.rounds.Add(res.Rounds)
	tele.messages.Add(res.Messages)
	tele.bits.Add(res.Bits)
	tele.dropped.Add(res.DroppedMessages)
	tele.rejoins.Add(int64(res.Rejoins))

	aggStart := time.Now()
	out.Summary = metrics.Summarize(res, opts.Band)
	if opts.KeepResults {
		out.Result = res
		out.Net = net
		out.Byz = byz
		out.Observer = obs
	}
	if opts.Store != nil {
		rec := Record{
			Key:       j.Key(),
			Job:       j,
			Summary:   out.Summary,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		}
		if err := opts.Store.Put(rec); err != nil {
			out.Err = err
		}
	}
	out.Stages.Aggregate = time.Since(aggStart)
	tele.stageAgg.Observe(out.Stages.Aggregate)
	return out
}
