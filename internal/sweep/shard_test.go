package sweep

// Tests for the sharding primitives (PartitionByKey lives under
// internal/sweepd's end-to-end tests too) and the crash-safety store
// additions: MergeStores dedup, Sync/SyncEvery, and RunContext's abort
// drain.

import (
	"context"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestMergeStores folds two overlapping shard stores into a destination
// that already holds part of the grid: every key lands exactly once,
// overlaps are skipped, and a reload sees the union.
func TestMergeStores(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	open := func(name string) *Store {
		s, err := OpenStore(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	put := func(s *Store, idxs ...int) {
		for _, i := range idxs {
			if err := s.Put(Record{Key: jobs[i].Key(), Job: jobs[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}

	dst := open("dst.jsonl")
	put(dst, 0, 1)
	dst.Close()
	srcA := open("a.jsonl")
	put(srcA, 1, 2, 3) // 1 overlaps dst
	srcA.Close()
	srcB := open("b.jsonl")
	put(srcB, 3, 4) // 3 overlaps srcA
	srcB.Close()

	added, err := MergeStores(dir+"/dst.jsonl", dir+"/a.jsonl", dir+"/b.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 { // 2, 3, 4
		t.Fatalf("merged %d records, want 3", added)
	}
	merged := open("dst.jsonl")
	defer merged.Close()
	if merged.Len() != 5 {
		t.Fatalf("merged store holds %d keys, want 5", merged.Len())
	}
	for i := 0; i <= 4; i++ {
		if _, ok := merged.Lookup(jobs[i].Key()); !ok {
			t.Fatalf("job %d missing after merge", i)
		}
	}
	// Dedup happened at merge time, not just reload time: one line per key.
	raw, err := os.ReadFile(dir + "/dst.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 5 {
		t.Fatalf("merged file has %d lines, want 5", lines)
	}
}

// TestStoreSync pins the durability knobs: Sync succeeds on a live
// store, SyncEvery survives a stretch of Puts, and records written
// under periodic fsync reload intact.
func TestStoreSync(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/results.jsonl"
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	store.SyncEvery(2)
	for _, j := range jobs {
		if err := store.Put(Record{Key: j.Key(), Job: j}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != len(jobs) {
		t.Fatalf("reloaded %d records, want %d", again.Len(), len(jobs))
	}
}

// TestRunContextAbort cancels a sweep mid-flight: Run returns a
// context error, in-flight jobs drain (their outcomes are real), the
// never-started remainder is marked with the context's error, and the
// run-log's sweep_end carries aborted:true.
func TestRunContextAbort(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	var logBuf strings.Builder
	opts := Options{
		Workers: 1, // serial: cancel after the first job leaves the rest unfed
		RunLog:  obs.NewRunLog(&logBuf),
		Progress: func(done, total int, out Outcome) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	}
	outs, err := RunContext(ctx, jobs, opts)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("aborted run returned err=%v", err)
	}
	ran, abandoned := 0, 0
	for _, o := range outs {
		switch {
		case o.Err == nil && o.Worker >= 0:
			ran++
		case o.Err != nil && o.Worker == -1:
			abandoned++
		default:
			t.Fatalf("outcome neither ran nor abandoned: %+v", o)
		}
	}
	if ran == 0 || abandoned == 0 || ran+abandoned != len(jobs) {
		t.Fatalf("ran %d, abandoned %d of %d", ran, abandoned, len(jobs))
	}
	events, err := obs.ReadRunLog(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Event != "sweep_end" {
		t.Fatalf("last event = %v, want sweep_end", last.Event)
	}
	if last.Fields["aborted"] != true {
		t.Fatalf("sweep_end fields = %v, want aborted:true", last.Fields)
	}
	if got := int(last.Fields["abandoned"].(float64)); got != abandoned {
		t.Fatalf("sweep_end abandoned = %d, counted %d", got, abandoned)
	}
}
