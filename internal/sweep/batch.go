package sweep

// batch.go routes compatible pending jobs through the batched round
// engine (core.RunBatch): jobs that share a topology and a protocol
// schedule — same canonical Net params, Algorithm, Epsilon, MaxPhase —
// run in lockstep as lanes of one batched invocation on the worker's
// BatchWorld arena, one CSR edge traversal servicing every lane. The
// grouping is pure scheduling: each job still produces its own Outcome,
// Summary, store Record, and progress callback, with content keys and
// digests byte-identical to scalar execution (the batch engine's per-lane
// golden suite pins that), so stores written by batched and scalar sweeps
// are interchangeable and resume across the modes transparently.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// DefaultBatchLanes is the lane width "on" selects: wide enough to
// amortize the per-round lane bookkeeping, narrow enough that the
// lane-major boards of a mid-size grid cell stay cache-resident.
const DefaultBatchLanes = 16

// ResolveBatch parses a REPRO_BATCH-style selector into a lane width:
// "", "off", or "0" disables batching (width 1, the scalar engine);
// "on" or "auto" selects DefaultBatchLanes; any integer selects that
// width, clamped to core.MaxBatchLanes. CLI flags share this vocabulary
// with the environment variable (the REPRO_NETSTORE convention).
func ResolveBatch(v string) (int, error) {
	switch v {
	case "", "off", "0":
		return 1, nil
	case "on", "auto":
		return DefaultBatchLanes, nil
	}
	b, err := strconv.Atoi(v)
	if err != nil || b < 1 {
		return 0, fmt.Errorf("sweep: bad batch selector %q (want on|off|1..%d)", v, core.MaxBatchLanes)
	}
	if b > core.MaxBatchLanes {
		b = core.MaxBatchLanes
	}
	return b, nil
}

var envBatch = sync.OnceValue(func() int {
	b, err := ResolveBatch(os.Getenv("REPRO_BATCH"))
	if err != nil {
		return 1
	}
	return b
})

// EnvBatch resolves the REPRO_BATCH environment variable; unparseable
// values degrade to scalar execution — batching is an optimization,
// never a prerequisite.
func EnvBatch() int { return envBatch() }

// batchKey is the compatibility class for lockstep execution: the axes
// every lane of a batched invocation must share. Everything else —
// adversary, placement, Byzantine count, churn, loss, seeds, injection
// instrumentation — varies freely across lanes.
type batchKey struct {
	net      hgraph.Params
	alg      core.Algorithm
	epsilon  float64
	maxPhase int
}

// batchPlan partitions the pending job indices into work items: slices
// of jobs executed as one batched invocation, in group-discovery order,
// chunked to the configured lane width (the final chunk of a group is
// ragged). Width 1, a per-job Observer, or per-job occupancy recording
// fall back to singleton items — the scalar path.
func batchPlan(jobs []Job, pending []int, opts Options) [][]int {
	if opts.Batch <= 1 || opts.Observer != nil {
		items := make([][]int, len(pending))
		for k, i := range pending {
			items[k] = []int{i}
		}
		return items
	}
	var (
		items  [][]int
		order  []batchKey
		groups = make(map[batchKey][]int)
	)
	for _, i := range pending {
		j := jobs[i]
		if j.RecordOccupancy {
			// The batch engine rejects RecordFrontierOccupancy; these jobs
			// keep the scalar engine's instrumentation.
			items = append(items, []int{i})
			continue
		}
		k := batchKey{net: j.Net.Canonical(), alg: j.Algorithm, epsilon: j.Epsilon, maxPhase: j.MaxPhase}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		g := groups[k]
		for len(g) > 0 {
			w := opts.Batch
			if len(g) < w {
				w = len(g)
			}
			items = append(items, g[:w:w])
			g = g[w:]
		}
	}
	return items
}

// executeBatch runs one work item's jobs as lanes of a single batched
// invocation on the worker's BatchWorld, writing each job's Outcome in
// place. The shared topology lookup (and any generation it performed) is
// attributed to the item's first job, mirroring the Creator convention,
// so summed stage totals never double count; the invocation's run time
// is split evenly across lanes.
func executeBatch(jobs []Job, idxs []int, opts Options, bw *core.BatchWorld, tele runTelemetry, outs []Outcome) {
	start := time.Now()
	for _, i := range idxs {
		outs[i] = Outcome{Job: jobs[i]}
	}
	topo, info, err := opts.Cache.GetTopologyInfo(jobs[idxs[0]].Net)
	lookup := time.Since(start)
	tele.stageLookup.Observe(lookup)
	if err != nil {
		for _, i := range idxs {
			outs[i].Err = err
		}
		return
	}
	// The item's single lookup is attributed to its first job (the
	// Creator convention); every other lane shares the materialized
	// topology, which is a memory-tier hit in scalar terms.
	for _, i := range idxs[1:] {
		outs[i].CacheTier = TierMem
	}
	first := &outs[idxs[0]]
	first.Stages.CacheLookup = lookup
	first.CacheTier = info.Tier
	if info.Creator {
		first.Stages.Generate = info.Generate
		first.Stages.DiskLoad = info.DiskLoad
		if info.Generate > 0 {
			tele.stageGen.Observe(info.Generate)
		}
		if info.DiskLoad > 0 {
			tele.stageDisk.Observe(info.DiskLoad)
		}
	}

	// Materialize lanes; a job whose placement or adversary fails to
	// resolve errors alone, the rest of the item still runs.
	specs := make([]core.LaneSpec, 0, len(idxs))
	live := make([]int, 0, len(idxs))
	for _, i := range idxs {
		j := jobs[i]
		var byz []bool
		if j.ByzCount > 0 {
			pl, ok := hgraph.PlacementByName(j.Placement)
			if !ok {
				outs[i].Err = fmt.Errorf("unknown placement %q", j.Placement)
				continue
			}
			byz = pl.Place(topo.Net.H, j.ByzCount, rng.New(j.PlaceSeed))
		}
		adv, ok := adversary.ByName(j.Adversary)
		if !ok {
			outs[i].Err = fmt.Errorf("unknown adversary %q", j.Adversary)
			continue
		}
		specs = append(specs, core.LaneSpec{Byz: byz, Adv: adv, Cfg: j.Config(opts.RunWorkers)})
		live = append(live, i)
	}
	if len(live) == 0 {
		return
	}

	runStart := time.Now()
	results, err := bw.RunTopology(topo, specs)
	runTime := time.Since(runStart)
	if err != nil {
		tele.stageRun.Observe(runTime)
		for _, i := range live {
			outs[i].Err = err
		}
		return
	}
	tele.batchInvocations.Inc()
	tele.batchLanes.Add(int64(len(live)))
	perLane := runTime / time.Duration(len(live))

	for k, i := range live {
		res := results[k]
		out := &outs[i]
		out.BatchLanes = len(live)
		out.Stages.Run = perLane
		// One observation per job, not per invocation: the registry's
		// stage counts must be invariant to the batch scheduling.
		tele.stageRun.Observe(perLane)

		tele.runs.Inc()
		tele.rounds.Add(res.Rounds)
		tele.messages.Add(res.Messages)
		tele.bits.Add(res.Bits)
		tele.dropped.Add(res.DroppedMessages)
		tele.rejoins.Add(int64(res.Rejoins))

		aggStart := time.Now()
		out.Summary = metrics.Summarize(res, opts.Band)
		if opts.KeepResults {
			out.Result = res
			out.Net = topo.Net
			out.Byz = specs[k].Byz
		}
		if opts.Store != nil {
			rec := Record{
				Key:       out.Job.Key(),
				Job:       out.Job,
				Summary:   out.Summary,
				ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			}
			if err := opts.Store.Put(rec); err != nil {
				out.Err = err
			}
		}
		out.Stages.Aggregate = time.Since(aggStart)
		tele.stageAgg.Observe(out.Stages.Aggregate)
	}
}
