package sweep

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

// TestRunDeterministicAcrossSimWorkers is the determinism regression
// guard for the execution kernel: identical Config/seeds must produce
// byte-identical Results no matter how the sim.Pool chunks the node loop.
// Both the sweep scheduler (which divides the machine between job- and
// run-level parallelism) and reproducibility itself depend on this.
func TestRunDeterministicAcrossSimWorkers(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 512, D: 8, Seed: 17})
	byz := hgraph.PlaceByzantine(512, 8, rng.New(19))
	for _, alg := range []core.Algorithm{core.AlgorithmBasic, core.AlgorithmByzantine} {
		var ref *core.Result
		for _, workers := range []int{1, 2, 8} {
			res, err := core.Run(net, byz, nil, core.Config{
				Algorithm: alg, Seed: 23, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("alg %v: Result differs between 1 and %d sim workers", alg, workers)
			}
		}
	}
}

// TestSweepAggregatesDeterministicAcrossWorkers guards the scheduler: a
// grid's rendered aggregates — including floating-point rounding — must
// be identical for 1 and 8 concurrent jobs, because aggregation folds
// outcomes in expansion order, never completion order.
func TestSweepAggregatesDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Name:        "det",
		Sizes:       []int{64, 128},
		Deltas:      []float64{0, 0.75},
		Adversaries: []string{"none", "inflate", "suppress"},
		Trials:      2,
		Seed:        29,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for _, workers := range []int{1, 8} {
		outs, err := Run(jobs, Options{Workers: workers, RunWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, Markdown("det", outs2groups(outs)))
	}
	if rendered[0] != rendered[1] {
		t.Fatalf("aggregates differ between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			rendered[0], rendered[1])
	}
}

// TestSweepSummariesDeterministicAcrossRunWorkerSplit checks the full
// worker-budget matrix: many jobs × serial runs must equal few jobs ×
// parallel runs, summary for summary.
func TestSweepSummariesDeterministicAcrossRunWorkerSplit(t *testing.T) {
	spec := Spec{Sizes: []int{128}, Deltas: []float64{0.75}, Adversaries: []string{"oracle"}, Trials: 2, Seed: 31}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(jobs, Options{Workers: 4, RunWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(jobs, Options{Workers: 1, RunWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Summary, b[i].Summary) {
			t.Fatalf("job %d: summary differs across worker split", i)
		}
	}
}

func outs2groups(outs []Outcome) []Group { return Aggregate(outs) }
