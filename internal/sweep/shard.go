package sweep

// shard.go is the distributed-sharding support the sweepd service builds
// on (DESIGN §5): a Spec's pending jobs partition into contiguous
// content-key ranges — deterministic for a given job list, so every
// coordinator restart carves identical shards — and the append-only
// JSONL stores the shards produce merge back by concatenation with
// key-level dedup.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// PartitionByKey splits pending (indices into jobs) into at most shards
// contiguous ranges of the Job.Key() order. Keys are hex SHA-256, so the
// order is uniform over content and independent of grid position: two
// coordinators expanding the same Spec carve byte-identical shards, and
// a resumed coordinator re-carves only what its store still lacks.
// Shard sizes differ by at most one job; fewer pending jobs than shards
// yields fewer (never empty) shards. Within a shard, jobs keep their
// expansion order — the order Run would have executed them anyway.
func PartitionByKey(jobs []Job, pending []int, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	if len(pending) == 0 {
		return nil
	}
	keys := make(map[int]string, len(pending))
	byKey := append([]int(nil), pending...)
	for _, i := range byKey {
		keys[i] = jobs[i].Key()
	}
	sort.Slice(byKey, func(a, b int) bool { return keys[byKey[a]] < keys[byKey[b]] })

	if shards > len(byKey) {
		shards = len(byKey)
	}
	out := make([][]int, 0, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(byKey) / shards
		hi := (s + 1) * len(byKey) / shards
		shard := append([]int(nil), byKey[lo:hi]...)
		// Expansion order within the shard: determinism of per-shard
		// execution and progress mirrors single-process Run.
		sort.Ints(shard)
		out = append(out, shard)
	}
	return out
}

// MergeStores folds the records of each src store file into the store at
// dstPath, in src order (concatenation semantics), skipping any key the
// destination already holds — so merging a shard store twice, or merging
// shards that overlap because a reassigned shard was computed by two
// workers, is idempotent. Sources are read with the store's usual line
// tolerance (unparseable lines skipped). Returns the number of records
// appended.
func MergeStores(dstPath string, srcPaths ...string) (added int, err error) {
	dst, err := OpenStore(dstPath)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
	}()
	for _, src := range srcPaths {
		data, err := os.ReadFile(src)
		if err != nil {
			return added, fmt.Errorf("sweep: merge store: %w", err)
		}
		for len(data) > 0 {
			line := data
			if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
				line, data = data[:nl], data[nl+1:]
			} else {
				data = nil
			}
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
				continue
			}
			if _, ok := dst.Lookup(rec.Key); ok {
				continue
			}
			if err := dst.Put(rec); err != nil {
				return added, err
			}
			added++
		}
	}
	return added, nil
}
