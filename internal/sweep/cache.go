package sweep

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// NetCache is a bounded, concurrency-safe LRU of generated networks keyed
// by canonical hgraph.Params. Network generation (the d/2 Hamiltonian
// cycles plus the radius-k lattice closure) is the dominant fixed cost of
// a job at experiment scale, so grid cells that share a topology — same
// (n, d, k, seed), different adversary, ε, algorithm, or churn — should
// pay it once. Generation is single-flight: concurrent demand for the
// same Params blocks on one generator instead of duplicating the work.
//
// Each entry carries the engine's precomputed tables (core.Topology:
// CSR adjacency plus the reverse-edge index behind the Byzantine
// send-slot table) alongside the network, so cache-hit jobs skip table
// construction too.
//
// Cached networks and topologies are shared across jobs and must be
// treated as immutable; the protocol engine only reads them.
type NetCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[hgraph.Params]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key   hgraph.Params
	ready chan struct{} // closed once net/topo/err are set
	net   *hgraph.Network
	topo  *core.Topology
	err   error
}

// DefaultCacheCap bounds the cache when the caller does not: a full-scale
// sweep touches a few dozen distinct topologies per size, and even 8192
// nodes at d=16 is only a few MB, so a small count-based bound suffices.
const DefaultCacheCap = 64

// NewNetCache creates a cache holding at most capacity networks
// (capacity <= 0 selects DefaultCacheCap).
func NewNetCache(capacity int) *NetCache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &NetCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[hgraph.Params]*list.Element),
	}
}

// Get returns the network for p, generating it on first use. Concurrent
// callers with equal canonical Params share one generation.
func (c *NetCache) Get(p hgraph.Params) (*hgraph.Network, error) {
	e := c.entry(p)
	return e.net, e.err
}

// GetTopology returns the precomputed engine tables for p's network,
// generated (and cached alongside the network) on first use. Cache-hit
// jobs hand the shared Topology straight to an arena's RunTopology, so a
// topology is CSR-indexed exactly once no matter how many grid cells run
// on it.
func (c *NetCache) GetTopology(p hgraph.Params) (*core.Topology, error) {
	e := c.entry(p)
	return e.topo, e.err
}

// entry returns the ready cache entry for p, generating it on first use.
func (c *NetCache) entry(p hgraph.Params) *cacheEntry {
	p = p.Canonical()
	c.mu.Lock()
	if el, ok := c.items[p]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		<-e.ready // wait for the in-flight generation if we raced it
		return e
	}
	c.misses++
	e := &cacheEntry{key: p, ready: make(chan struct{})}
	c.items[p] = c.ll.PushFront(e)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	e.net, e.err = hgraph.New(p)
	if e.err == nil {
		e.topo = core.NewTopology(e.net)
	}
	close(e.ready)
	return e
}

// Stats reports cache hits and misses so far.
func (c *NetCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached networks.
func (c *NetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
