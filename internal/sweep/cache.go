package sweep

import (
	"container/list"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/obs"
	"repro/internal/sim"
)

// NetCache is a bounded, concurrency-safe LRU of generated networks keyed
// by canonical hgraph.Params, with an optional persistent disk tier
// below it (graphio.NetStore). Network generation (the d/2 Hamiltonian
// cycles plus the radius-k lattice closure) is the dominant fixed cost of
// a job at experiment scale, so grid cells that share a topology — same
// (n, d, k, seed), different adversary, ε, algorithm, or churn — should
// pay it once per process, and with the disk tier once ever. Lookup is
// single-flight at the memory tier: concurrent demand for the same
// Params blocks on one loader, so the disk read or regeneration also
// happens once.
//
// Each entry carries the engine's precomputed tables (core.Topology:
// CSR adjacency plus the reverse-edge index behind the Byzantine
// send-slot table) alongside the network — the disk tier persists both,
// so a disk hit skips table construction too. A corrupt, stale, or
// version-skewed blob fails validation inside the store, and the cache
// falls back to regeneration (the subsequent save heals the entry).
//
// Cached networks and topologies are shared across jobs and must be
// treated as immutable; the protocol engine only reads them.
type NetCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[hgraph.Params]*list.Element
	store  *graphio.NetStore // nil: memory-only
	hits   int64
	misses int64 // memory-tier misses (disk hits + regenerations)
	disk   int64 // misses served by the disk tier
	// genWorkers bounds the sim.Pool a regeneration fans out over
	// (0: hgraph.New's default, the whole machine). Unless the caller
	// pinned it with SetGenWorkers (genWorkersPinned), each Run applies
	// its own per-job worker budget, so concurrent cache misses across
	// job workers don't each spin a GOMAXPROCS-sized pool — and a cache
	// shared across Runs follows the current Run's division.
	genWorkers       int
	genWorkersPinned bool
	tele             cacheTelemetry
}

// cacheTelemetry holds the cache's obs registry bindings, resolved once
// at construction (or SetTelemetry) so the lookup path only touches
// atomic counters. The named counters mirror the Stats/DiskStats
// accessors — TestCacheTelemetryConsistency pins the two surfaces equal.
type cacheTelemetry struct {
	memHits   *obs.Counter // "sweep.cache.mem_hits"
	memMisses *obs.Counter // "sweep.cache.mem_misses"
	diskHits  *obs.Counter // "sweep.cache.disk_hits"
	coalesced *obs.Counter // "sweep.cache.coalesced": lookups that blocked on another caller's in-flight load
	diskHeals *obs.Counter // "sweep.cache.disk_heals": corrupt/stale blobs regenerated over
	gen       *obs.Timer   // "hgraph.gen": topology generations (count + time)
	diskLoad  *obs.Timer   // "sweep.cache.disk_load": disk-tier loads (count + time)
}

func newCacheTelemetry(reg *obs.Registry) cacheTelemetry {
	if reg == nil {
		reg = obs.Default
	}
	return cacheTelemetry{
		memHits:   reg.Counter("sweep.cache.mem_hits"),
		memMisses: reg.Counter("sweep.cache.mem_misses"),
		diskHits:  reg.Counter("sweep.cache.disk_hits"),
		coalesced: reg.Counter("sweep.cache.coalesced"),
		diskHeals: reg.Counter("sweep.cache.disk_heals"),
		gen:       reg.Timer("hgraph.gen"),
		diskLoad:  reg.Timer("sweep.cache.disk_load"),
	}
}

type cacheEntry struct {
	key   hgraph.Params
	ready chan struct{} // closed once net/topo/err are set
	net   *hgraph.Network
	topo  *core.Topology
	err   error
	// Telemetry for the load that filled the entry, set before ready is
	// closed: which tier satisfied it and what the creator paid.
	tier     string // TierDisk or TierGen
	genTime  time.Duration
	loadTime time.Duration
}

// Cache tiers as recorded in TierInfo, Outcome.CacheTier, and the
// run-log: an already-resident entry, a disk-store load, a fresh
// generation.
const (
	TierMem  = "mem"
	TierDisk = "disk"
	TierGen  = "gen"
)

// TierInfo describes how one lookup was satisfied.
type TierInfo struct {
	// Tier is TierMem for an entry that was already resident (including
	// lookups coalesced onto another caller's in-flight load), else the
	// tier the entry was filled from.
	Tier string
	// Creator marks the lookup that actually performed the disk load or
	// generation; coalesced waiters share the result but not the cost,
	// so per-stage totals never double count.
	Creator bool
	// Generate and DiskLoad are the creator's costs (zero otherwise).
	Generate time.Duration
	DiskLoad time.Duration
}

// DefaultCacheCap bounds the cache when the caller does not: a full-scale
// sweep touches a few dozen distinct topologies per size, and even 8192
// nodes at d=16 is only a few MB, so a small count-based bound suffices.
const DefaultCacheCap = 64

// NewNetCache creates a cache holding at most capacity networks
// (capacity <= 0 selects DefaultCacheCap). The disk tier follows the
// REPRO_NETSTORE environment default (see EnvNetStore); use
// NewNetCacheWithStore to select it explicitly.
func NewNetCache(capacity int) *NetCache {
	return NewNetCacheWithStore(capacity, EnvNetStore())
}

// NewNetCacheWithStore is NewNetCache with an explicit disk tier
// (nil: memory-only, regardless of environment).
func NewNetCacheWithStore(capacity int, store *graphio.NetStore) *NetCache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &NetCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[hgraph.Params]*list.Element),
		store: store,
		tele:  newCacheTelemetry(nil),
	}
}

// SetTelemetry rebinds the cache's obs counters to reg (nil restores the
// process default registry). Call before the cache serves lookups —
// counts recorded under the previous binding stay there.
func (c *NetCache) SetTelemetry(reg *obs.Registry) {
	c.mu.Lock()
	c.tele = newCacheTelemetry(reg)
	c.mu.Unlock()
}

// ResolveNetStore opens the topology store a REPRO_NETSTORE-style
// selector names: "", "off", or "0" is no store (nil, nil); "on" or "1"
// is the user cache directory (<UserCacheDir>/repro-netstore); any
// other value is the store root directory. CLI flags share this
// vocabulary with the environment variable so the README's env examples
// transliterate to -netstore directly.
func ResolveNetStore(v string) (*graphio.NetStore, error) {
	var root string
	switch v {
	case "", "off", "0":
		return nil, nil
	case "on", "1":
		base, err := os.UserCacheDir()
		if err != nil {
			return nil, err
		}
		root = filepath.Join(base, "repro-netstore")
	default:
		root = v
	}
	return graphio.OpenNetStore(root)
}

// EnvNetStore resolves the REPRO_NETSTORE environment variable. An
// unopenable store degrades to nil — the ambient disk tier is an
// optimization, never a prerequisite (explicit CLI selections should
// use ResolveNetStore and surface the error instead).
func EnvNetStore() *graphio.NetStore {
	store, err := ResolveNetStore(os.Getenv("REPRO_NETSTORE"))
	if err != nil {
		return nil
	}
	return store
}

// Get returns the network for p, generating it on first use. Concurrent
// callers with equal canonical Params share one generation.
func (c *NetCache) Get(p hgraph.Params) (*hgraph.Network, error) {
	e, _ := c.entry(p)
	return e.net, e.err
}

// GetTopology returns the precomputed engine tables for p's network,
// generated (and cached alongside the network) on first use. Cache-hit
// jobs hand the shared Topology straight to an arena's RunTopology, so a
// topology is CSR-indexed exactly once no matter how many grid cells run
// on it.
func (c *NetCache) GetTopology(p hgraph.Params) (*core.Topology, error) {
	e, _ := c.entry(p)
	return e.topo, e.err
}

// GetTopologyInfo is GetTopology plus how the lookup was satisfied —
// the sweep runner's stage-timing source.
func (c *NetCache) GetTopologyInfo(p hgraph.Params) (*core.Topology, TierInfo, error) {
	e, created := c.entry(p)
	info := TierInfo{Tier: TierMem}
	if created {
		info = TierInfo{Tier: e.tier, Creator: true, Generate: e.genTime, DiskLoad: e.loadTime}
	}
	return e.topo, info, e.err
}

// entry returns the ready cache entry for p, generating it on first use;
// created reports whether this call filled it (vs. finding it resident
// or coalescing onto another caller's in-flight load).
func (c *NetCache) entry(p hgraph.Params) (e *cacheEntry, created bool) {
	p = p.Canonical()
	c.mu.Lock()
	if el, ok := c.items[p]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		tele := c.tele
		c.mu.Unlock()
		tele.memHits.Inc()
		select {
		case <-e.ready:
		default:
			// The entry is still being filled by whoever created it: this
			// lookup coalesces onto that load instead of duplicating it.
			tele.coalesced.Inc()
			<-e.ready
		}
		return e, false
	}
	c.misses++
	tele := c.tele
	e = &cacheEntry{key: p, ready: make(chan struct{})}
	c.items[p] = c.ll.PushFront(e)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
	tele.memMisses.Inc()

	// Disk tier first: a valid blob replaces both generation and table
	// construction. Any load failure — missing, corrupt, stale, version
	// skew — falls through to regeneration.
	healable := false
	if c.store != nil {
		start := time.Now()
		net, topo, err := c.store.Load(p)
		if err == nil {
			e.net, e.topo = net, topo
			e.tier = TierDisk
			e.loadTime = time.Since(start)
			c.mu.Lock()
			c.disk++
			c.mu.Unlock()
			tele.diskHits.Inc()
			tele.diskLoad.Observe(e.loadTime)
			close(e.ready)
			return e, true
		}
		// A blob that exists but fails to load is corrupt, stale, or
		// version-skewed; the regeneration below heals it via Save.
		healable = !errors.Is(err, os.ErrNotExist)
	}
	start := time.Now()
	e.net, e.err = c.generate(p)
	if e.err == nil {
		e.topo = core.NewTopology(e.net)
		e.tier = TierGen
		e.genTime = time.Since(start)
		tele.gen.Observe(e.genTime)
		if c.store != nil {
			// Best effort: a failed save costs a regeneration next
			// process, not this job.
			if c.store.Save(e.net, e.topo) == nil && healable {
				tele.diskHeals.Inc()
			}
		}
	}
	close(e.ready)
	return e, true
}

// SetGenWorkers pins the parallelism of cache-miss regenerations
// (0 pins hgraph.New's machine-wide default). A pinned value survives
// Run, which otherwise applies its own per-job budget to the cache it
// uses; pin only for caches whose generation parallelism must not
// follow the scheduler's division.
func (c *NetCache) SetGenWorkers(w int) {
	c.mu.Lock()
	c.genWorkers = w
	c.genWorkersPinned = true
	c.mu.Unlock()
}

// generate builds the network for p under the configured parallelism
// bound.
func (c *NetCache) generate(p hgraph.Params) (*hgraph.Network, error) {
	c.mu.Lock()
	w := c.genWorkers
	c.mu.Unlock()
	switch {
	case w <= 0:
		return hgraph.New(p)
	case w == 1:
		return hgraph.NewWith(p, nil)
	default:
		pool := sim.NewPool(w)
		defer pool.Close()
		return hgraph.NewWith(p, pool)
	}
}

// Stats reports cache hits and misses so far.
func (c *NetCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// DiskStats reports the disk tier's state: whether a store is attached
// and how many memory misses it served without regeneration.
func (c *NetCache) DiskStats() (hits int64, enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk, c.store != nil
}

// Len returns the number of cached networks.
func (c *NetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
