package sweep

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestResolveBatch pins the REPRO_BATCH selector vocabulary.
func TestResolveBatch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		err  bool
	}{
		{in: "", want: 1},
		{in: "off", want: 1},
		{in: "0", want: 1},
		{in: "on", want: DefaultBatchLanes},
		{in: "auto", want: DefaultBatchLanes},
		{in: "1", want: 1},
		{in: "8", want: 8},
		{in: "64", want: 64},
		{in: "999", want: 64}, // clamped to core.MaxBatchLanes
		{in: "-3", err: true},
		{in: "wide", err: true},
	} {
		got, err := ResolveBatch(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ResolveBatch(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ResolveBatch(%q) = %d, %v, want %d", tc.in, got, err, tc.want)
		}
	}
}

// batchTestSpec is a small grid whose cells share topologies across
// adversary/delta axes (the batching surface) with trials for ragged
// chunks: 2 sizes × 2 deltas × 3 adversaries × 3 trials = 36 jobs in
// groups of 6 lanes per (size, trial) — ragged under width 4.
func batchTestSpec() Spec {
	return Spec{
		Name:        "batch",
		Sizes:       []int{64, 96},
		Deltas:      []float64{0, 0.75},
		Adversaries: []string{"none", "inflate", "suppress"},
		LossProbs:   []float64{0, 0.05},
		Trials:      3,
		Seed:        41,
	}
}

// TestSweepBatchedMatchesScalar is the scheduler-level equivalence guard:
// the same grid run scalar and batched (at several widths, exercising
// ragged final chunks and single-lane groups) must produce identical
// Summaries job for job — batching is scheduling, not semantics.
func TestSweepBatchedMatchesScalar(t *testing.T) {
	jobs, err := batchTestSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Run(jobs, Options{Workers: 2, RunWorkers: 1, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 4, 16} {
		batched, err := Run(jobs, Options{Workers: 2, RunWorkers: 1, Batch: width})
		if err != nil {
			t.Fatal(err)
		}
		sawBatched := false
		for i := range jobs {
			if !reflect.DeepEqual(scalar[i].Summary, batched[i].Summary) {
				t.Fatalf("width %d job %d (%s): summaries diverge:\nscalar  %+v\nbatched %+v",
					width, i, jobs[i].Label(), scalar[i].Summary, batched[i].Summary)
			}
			if batched[i].BatchLanes > width {
				t.Fatalf("width %d job %d: ran with %d lanes", width, i, batched[i].BatchLanes)
			}
			if batched[i].BatchLanes > 1 {
				sawBatched = true
			}
		}
		if !sawBatched {
			t.Fatalf("width %d: no job ran batched — the grouping is vacuous", width)
		}
	}
}

// TestSweepBatchedStoreInterchangeable checks resume across modes: a
// store written by a batched sweep satisfies a scalar sweep of the same
// grid without running anything, and vice versa — content keys and
// Summaries are mode-invariant.
func TestSweepBatchedStoreInterchangeable(t *testing.T) {
	jobs, err := batchTestSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, first := range []struct {
		name          string
		batch, resume int
	}{
		{name: "batched-then-scalar", batch: 8, resume: 1},
		{name: "scalar-then-batched", batch: 1, resume: 8},
	} {
		t.Run(first.name, func(t *testing.T) {
			store, err := OpenStore(filepath.Join(dir, first.name+".jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ran, err := Run(jobs, Options{Workers: 2, RunWorkers: 1, Batch: first.batch, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := Run(jobs, Options{Workers: 2, RunWorkers: 1, Batch: first.resume, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			for i := range jobs {
				if !resumed[i].FromStore {
					t.Fatalf("job %d (%s) re-ran on resume", i, jobs[i].Label())
				}
				if !reflect.DeepEqual(ran[i].Summary, resumed[i].Summary) {
					t.Fatalf("job %d: stored summary diverges", i)
				}
			}
		})
	}
}

// TestBatchPlanGroups pins the grouping rules: only jobs sharing
// (canonical Net, Algorithm, Epsilon, MaxPhase) share an invocation,
// occupancy-recording jobs stay scalar, and chunks respect the width.
func TestBatchPlanGroups(t *testing.T) {
	jobs, err := batchTestSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jobs[3].RecordOccupancy = true
	pending := make([]int, len(jobs))
	for i := range pending {
		pending[i] = i
	}
	items := batchPlan(jobs, pending, Options{Batch: 4})
	seen := make(map[int]bool)
	for _, item := range items {
		if len(item) > 4 {
			t.Fatalf("item wider than the configured width: %v", item)
		}
		j0 := jobs[item[0]]
		for _, i := range item {
			if seen[i] {
				t.Fatalf("job %d scheduled twice", i)
			}
			seen[i] = true
			j := jobs[i]
			if len(item) > 1 && j.RecordOccupancy {
				t.Fatalf("occupancy-recording job %d batched", i)
			}
			if j.Net.Canonical() != j0.Net.Canonical() || j.Algorithm != j0.Algorithm ||
				j.Epsilon != j0.Epsilon || j.MaxPhase != j0.MaxPhase {
				t.Fatalf("incompatible jobs grouped: %d vs %d", item[0], i)
			}
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("plan covers %d of %d jobs", len(seen), len(jobs))
	}
	// Width 1 must degenerate to singletons in pending order.
	for k, item := range batchPlan(jobs, pending, Options{Batch: 1}) {
		if len(item) != 1 || item[0] != pending[k] {
			t.Fatalf("scalar plan reordered or grouped: item %d = %v", k, item)
		}
	}
}

// TestSweepBatchTelemetry checks the obs fold: a batched sweep reports
// its lane and invocation counts through the registry, and the monitor
// surfaces the mean lane width.
func TestSweepBatchTelemetry(t *testing.T) {
	jobs, err := batchTestSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mon := NewMonitor("batch", len(jobs), nil, reg)
	_, err = Run(jobs, Options{
		Workers: 2, RunWorkers: 1, Batch: 8, Telemetry: reg,
		Progress: mon.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	lanes := reg.Counter("core.batch.lanes").Load()
	invs := reg.Counter("core.batch.invocations").Load()
	if invs == 0 || lanes <= invs {
		t.Fatalf("batch telemetry: lanes=%d invocations=%d, want multi-lane invocations", lanes, invs)
	}
	if lanes != int64(len(jobs)) {
		t.Fatalf("lanes=%d, want every job (%d) batched in this grid", lanes, len(jobs))
	}
	st := mon.Status()
	if st.BatchedJobs != len(jobs) {
		t.Fatalf("status batched_jobs=%d, want %d", st.BatchedJobs, len(jobs))
	}
	want := float64(lanes) / float64(invs)
	if st.BatchMeanLanes < want-0.01 || st.BatchMeanLanes > want+0.01 {
		t.Fatalf("status batch_mean_lanes=%.2f, want %.2f", st.BatchMeanLanes, want)
	}
}
