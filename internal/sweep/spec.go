// Package sweep is the parallel sweep-orchestration subsystem: it turns a
// declarative grid of scenarios — sizes, degrees, fault exponents,
// adversaries, placements, algorithms, ε, churn models (crash or
// join/rejoin), message loss, trials — into deterministic content-hashed
// Jobs, executes them across a bounded
// worker set with an LRU cache of generated networks, persists results
// to an append-only JSONL store keyed by content hash (so interrupted
// sweeps resume instead of restarting), and folds the outcomes into
// per-cell aggregates.
//
// The paper's claims are statements over exactly such grids (Theorem 1
// quantifies over n, δ, and the adversary), so every experiment,
// benchmark, and attack study in this repository is some sweep; this
// package is the one scheduler they share. internal/expt routes the
// protocol-running experiments through Run, and cmd/sweep exposes
// ad-hoc grids on the command line.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
)

// Spec declares a scenario grid. Every slice axis is crossed with every
// other (a cartesian product); empty axes assume the noted default. The
// expansion order is fixed — sizes, degrees, deltas, placements,
// adversaries, algorithms, epsilons, fault models, churn/join fractions,
// loss probabilities, trials innermost — and all seeds derive
// deterministically from Seed and grid position, so the same Spec always
// expands to the same Jobs with the same content keys.
type Spec struct {
	// Name labels the grid (informational).
	Name string `json:"name,omitempty"`
	// Sizes are the network sizes n (required).
	Sizes []int `json:"sizes"`
	// Degrees are the H-degrees d (default {8}, the paper's baseline).
	Degrees []int `json:"degrees,omitempty"`
	// Deltas are fault exponents: each δ > 0 places ⌊n^(1−δ)⌋ Byzantine
	// nodes; δ = 0 means no faults (default {0}).
	Deltas []float64 `json:"deltas,omitempty"`
	// Placements are Byzantine placement strategies per
	// hgraph.PlacementByName (default {"random"}).
	Placements []string `json:"placements,omitempty"`
	// Adversaries are strategy names per adversary.ByName; "none" keeps
	// Byzantine nodes protocol-following (default {"none"}).
	Adversaries []string `json:"adversaries,omitempty"`
	// Algorithms are protocol variants, "basic" or "byzantine"
	// (default {"byzantine"}).
	Algorithms []string `json:"algorithms,omitempty"`
	// Epsilons are protocol error parameters; 0 selects the core default
	// (default {0}).
	Epsilons []float64 `json:"epsilons,omitempty"`
	// ChurnFracs are mid-run crash fractions of n under the "crash" fault
	// model (default {0}).
	ChurnFracs []float64 `json:"churn_fracs,omitempty"`
	// FaultModels selects the mid-run churn regimes to cross (default
	// {"crash"}): "crash" crosses ChurnFracs as permanent crash failures;
	// "join" crosses JoinFracs as oblivious leave/rejoin churn
	// (core.JoinChurn, the arXiv:2204.11951 regime).
	FaultModels []string `json:"fault_models,omitempty"`
	// JoinFracs are leave/rejoin fractions of n under the "join" fault
	// model (default {0}).
	JoinFracs []float64 `json:"join_fracs,omitempty"`
	// LossProbs are per-edge message omission probabilities, crossed with
	// every churn regime (default {0} = reliable links).
	LossProbs []float64 `json:"loss_probs,omitempty"`
	// Trials is the number of independent repetitions per cell
	// (default 1).
	Trials int `json:"trials,omitempty"`
	// Seed is the grid's base seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// MaxPhase caps the schedule for every job (0 = core default).
	MaxPhase int `json:"max_phase,omitempty"`
	// InjectionThreshold instruments injection-entry recording.
	InjectionThreshold int64 `json:"injection_threshold,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if len(s.Degrees) == 0 {
		s.Degrees = []int{8}
	}
	if len(s.Deltas) == 0 {
		s.Deltas = []float64{0}
	}
	if len(s.Placements) == 0 {
		s.Placements = []string{"random"}
	}
	if len(s.Adversaries) == 0 {
		s.Adversaries = []string{"none"}
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = []string{core.AlgorithmByzantine.String()}
	}
	if len(s.Epsilons) == 0 {
		s.Epsilons = []float64{0}
	}
	if len(s.ChurnFracs) == 0 {
		s.ChurnFracs = []float64{0}
	}
	if len(s.FaultModels) == 0 {
		s.FaultModels = []string{"crash"}
	}
	if len(s.JoinFracs) == 0 {
		s.JoinFracs = []float64{0}
	}
	if len(s.LossProbs) == 0 {
		s.LossProbs = []float64{0}
	}
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ParseAlgorithm resolves an algorithm name used in specs and CLI flags.
func ParseAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "basic":
		return core.AlgorithmBasic, nil
	case "byzantine", "":
		return core.AlgorithmByzantine, nil
	}
	return 0, fmt.Errorf("sweep: unknown algorithm %q (want basic|byzantine)", name)
}

// Validate reports spec errors after defaulting.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if len(s.Sizes) == 0 {
		return fmt.Errorf("sweep: spec %q has no sizes", s.Name)
	}
	for _, d := range s.Deltas {
		if d < 0 || d > 1 {
			return fmt.Errorf("sweep: delta %v outside [0,1]", d)
		}
	}
	for _, f := range s.ChurnFracs {
		if f < 0 || f >= 1 {
			return fmt.Errorf("sweep: churn fraction %v outside [0,1)", f)
		}
	}
	hasCrash, hasJoin := false, false
	for _, name := range s.FaultModels {
		switch name {
		case "", "crash":
			hasCrash = true
		case "join":
			hasJoin = true
		default:
			return fmt.Errorf("sweep: unknown fault model %q (want crash|join)", name)
		}
	}
	// A fraction axis aimed at a model that is not selected would be
	// silently ignored — reject the misconfiguration instead.
	if !hasJoin {
		for _, f := range s.JoinFracs {
			if f > 0 {
				return fmt.Errorf("sweep: join fraction %v set but fault model \"join\" not selected", f)
			}
		}
	}
	if !hasCrash {
		for _, f := range s.ChurnFracs {
			if f > 0 {
				return fmt.Errorf("sweep: churn fraction %v set but fault model \"crash\" not selected", f)
			}
		}
	}
	for _, f := range s.JoinFracs {
		if f < 0 || f >= 1 {
			return fmt.Errorf("sweep: join fraction %v outside [0,1)", f)
		}
	}
	for _, p := range s.LossProbs {
		if p < 0 || p > 1 {
			return fmt.Errorf("sweep: loss probability %v outside [0,1]", p)
		}
	}
	for _, name := range s.Placements {
		if _, ok := hgraph.PlacementByName(name); !ok {
			return fmt.Errorf("sweep: unknown placement %q", name)
		}
	}
	for _, name := range s.Adversaries {
		if _, ok := adversary.ByName(name); !ok {
			return fmt.Errorf("sweep: unknown adversary %q", name)
		}
	}
	for _, name := range s.Algorithms {
		if _, err := ParseAlgorithm(name); err != nil {
			return err
		}
	}
	return nil
}

// SeedFor derives a per-(cell, trial) seed from a base seed:
// decorrelated across cells and trials but fully reproducible. It is the
// single seed-derivation formula shared by Spec expansion and the
// experiment suite (expt.Scale), so a Spec-expanded cell and an
// expt-seeded run with the same coordinates draw the same streams.
func SeedFor(base uint64, cell, trial int) uint64 {
	return base*1_000_003 + uint64(cell)*10_007 + uint64(trial)
}

func (s Spec) seedFor(cell, trial int) uint64 { return SeedFor(s.Seed, cell, trial) }

// Jobs expands the grid into its job list. Cells that differ only in
// non-topology axes (adversary, placement, algorithm, ε, churn, δ) share
// a Net.Seed per (size, degree, trial), so the scheduler's network cache
// generates each topology once per trial and reuses it across the rest of
// the grid — same graph, different attack, which is also the
// statistically sharper comparison.
func (s Spec) Jobs() ([]Job, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	group := 0
	for si, n := range s.Sizes {
		for di, d := range s.Degrees {
			for _, delta := range s.Deltas {
				for _, placement := range s.Placements {
					for _, adv := range s.Adversaries {
						for _, algName := range s.Algorithms {
							alg, _ := ParseAlgorithm(algName)
							for _, eps := range s.Epsilons {
								zeroEmitted := false
								for _, fm := range s.FaultModels {
									// Each churn regime crosses its own
									// fraction axis: "crash" consumes
									// ChurnFracs, "join" JoinFracs.
									fracs := s.ChurnFracs
									if fm == "join" {
										fracs = s.JoinFracs
									}
									for _, frac := range fracs {
										// A zero fraction means no churn
										// regardless of model; emit that
										// baseline cell once, for the
										// first model whose axis holds it.
										if frac == 0 {
											if zeroEmitted {
												continue
											}
											zeroEmitted = true
										}
										for _, loss := range s.LossProbs {
											for trial := 0; trial < s.Trials; trial++ {
												base := s.seedFor(group, trial)
												byzCount := 0
												if delta > 0 {
													byzCount = hgraph.ByzantineBudget(n, delta)
												}
												job := Job{
													Spec: s.Name,
													Net: hgraph.Params{
														N: n, D: d,
														Seed: s.seedFor(si*64+di, trial),
													},
													Delta:              delta,
													ByzCount:           byzCount,
													Placement:          placement,
													PlaceSeed:          base + 0xB12,
													Adversary:          adv,
													Algorithm:          alg,
													Epsilon:            eps,
													MaxPhase:           s.MaxPhase,
													InjectionThreshold: s.InjectionThreshold,
													RunSeed:            base + 0x5EED,
													ChurnSeed:          base + 0xC8,
													FaultModel:         fm,
													LossProb:           loss,
													Trial:              trial,
													Group:              group,
													Index:              len(jobs),
												}
												if fm == "join" {
													job.JoinFrac = frac
												} else {
													job.ChurnCrashes = int(frac * float64(n))
												}
												jobs = append(jobs, job)
											}
											group++
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// LoadSpec reads a Spec from a JSON file, rejecting unknown fields.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("sweep: read spec: %w", err)
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: parse spec %s: %w", path, err)
	}
	return s, nil
}
