package sweep

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/graphio"
	"repro/internal/hgraph"
	"repro/internal/metrics"
)

// TestNetCacheDiskTier pins the disk tier's lifecycle: a cold cache
// populates the store, a fresh cache over the same store serves the miss
// from disk (no regeneration), and the loaded instance is structurally
// identical.
func TestNetCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	store, err := graphio.OpenNetStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := hgraph.Params{N: 64, D: 8, Seed: 9}

	cold := NewNetCacheWithStore(4, store)
	net1, err := cold.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if hits, enabled := cold.DiskStats(); !enabled || hits != 0 {
		t.Fatalf("cold cache disk stats: hits=%d enabled=%v", hits, enabled)
	}
	if !store.Has(p) {
		t.Fatal("generation did not populate the disk tier")
	}

	warm := NewNetCacheWithStore(4, store)
	net2, err := warm.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := warm.DiskStats(); hits != 1 {
		t.Fatalf("warm cache disk hits = %d, want 1", hits)
	}
	if net1.Digest() != net2.Digest() {
		t.Fatal("disk-served network differs from generated one")
	}
	if _, err := warm.GetTopology(p); err != nil {
		t.Fatal(err)
	}
	// Second lookup is a memory hit; disk count must not move.
	if _, err := warm.Get(p); err != nil {
		t.Fatal(err)
	}
	if hits, _ := warm.DiskStats(); hits != 1 {
		t.Fatalf("memory hit consulted the disk tier (hits=%d)", hits)
	}
}

// TestNetCacheDiskTierCorruptFallback pins the fallback: a damaged blob
// is regenerated (and healed), never served.
func TestNetCacheDiskTierCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	store, err := graphio.OpenNetStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := hgraph.Params{N: 64, D: 8, Seed: 10}
	net := hgraph.MustNew(p)
	if err := store.Save(net, nil); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the checksum must reject the blob.
	blob, err := os.ReadFile(store.Path(p))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(store.Path(p), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewNetCacheWithStore(4, store)
	got, err := c.Get(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != net.Digest() {
		t.Fatal("regenerated network differs")
	}
	if hits, _ := c.DiskStats(); hits != 0 {
		t.Fatalf("corrupt blob counted as disk hit (hits=%d)", hits)
	}
	// Regeneration healed the blob: a fresh cache now hits disk.
	healed := NewNetCacheWithStore(4, store)
	if _, err := healed.Get(p); err != nil {
		t.Fatal(err)
	}
	if hits, _ := healed.DiskStats(); hits != 1 {
		t.Fatalf("healed blob not served from disk (hits=%d)", hits)
	}
}

// TestSweepAggregatesInvariantUnderDiskTier runs the same small grid
// memory-only and disk-tiered (cold, then warm) and requires identical
// outcomes — the disk tier must be invisible to results.
func TestSweepAggregatesInvariantUnderDiskTier(t *testing.T) {
	spec := Spec{
		Name:        "netstore-equiv",
		Sizes:       []int{64},
		Deltas:      []float64{0.75},
		Adversaries: []string{"none", "inflate"},
		Trials:      2,
		Seed:        77,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	run := func(cache *NetCache) []Outcome {
		outs, err := Run(jobs, Options{Workers: 2, Cache: cache, Band: metrics.DefaultBand})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	want := run(NewNetCacheWithStore(8, nil))

	store, err := graphio.OpenNetStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := run(NewNetCacheWithStore(8, store))
	warmCache := NewNetCacheWithStore(8, store)
	warm := run(warmCache)
	if hits, _ := warmCache.DiskStats(); hits == 0 {
		t.Fatal("warm run never hit the disk tier")
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].Summary, cold[i].Summary) {
			t.Fatalf("job %d: cold disk-tier summary differs", i)
		}
		if !reflect.DeepEqual(want[i].Summary, warm[i].Summary) {
			t.Fatalf("job %d: warm disk-tier summary differs", i)
		}
	}
}

// TestEnvNetStore pins the environment contract the CI matrix leg uses.
func TestEnvNetStore(t *testing.T) {
	t.Setenv("REPRO_NETSTORE", "off")
	if s := EnvNetStore(); s != nil {
		t.Fatal("REPRO_NETSTORE=off returned a store")
	}
	dir := t.TempDir()
	t.Setenv("REPRO_NETSTORE", dir)
	s := EnvNetStore()
	if s == nil {
		t.Fatal("REPRO_NETSTORE=<dir> returned nil")
	}
	c := NewNetCache(2)
	if _, err := c.Get(hgraph.Params{N: 32, D: 4, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if hits, enabled := c.DiskStats(); !enabled {
		t.Fatalf("env-selected store not attached (hits=%d)", hits)
	}
	if s.Len() == 0 {
		t.Fatal("env-selected store not populated by generation")
	}
}
