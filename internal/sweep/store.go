package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/metrics"
)

// Record is one completed job as persisted to the JSONL store: the job's
// content key, the job itself (for offline analysis), and its summary.
type Record struct {
	Key       string          `json:"key"`
	Job       Job             `json:"job"`
	Summary   metrics.Summary `json:"summary"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
}

// Store is an append-only JSONL result store keyed by job content hash.
// Opening an existing store indexes every record already on disk, so a
// re-run of the same (or an overlapping) spec skips jobs whose keys are
// present — an interrupted full-scale sweep resumes instead of
// restarting. The file is opened O_APPEND and each record is one Write,
// so a process killed mid-write costs at most its own partial line:
// unparseable lines are skipped on load (never anything after them), and
// an unterminated trailing chunk is sealed with a newline so later
// appends start on a clean line boundary — recovering the record if the
// kill landed exactly between it and its newline. FuzzStoreReopen drives
// this repair path with arbitrary file contents.
// Durability: each Put is one O_APPEND write, which survives a process
// crash but sits in the page cache until the kernel flushes it — a
// machine crash can lose records the process already reported durable.
// Close syncs before closing, Sync forces a flush on demand (sweepd's
// coordinator syncs before acking a shard complete), and SyncEvery opts
// into a periodic fsync every n appends for long-running writers.
// A torn append in a live process (the write itself fails midway —
// disk full, injected chaos fault) marks the store dirty: the next Put
// first seals the partial line with a newline, so an acknowledged later
// record can never be glued onto the torn fragment and lost with it.
type Store struct {
	mu   sync.Mutex
	f    File
	have map[string]Record
	path string

	// torn records that the last append failed after landing a partial
	// line; the next Put must seal it before writing.
	torn bool

	// syncEvery > 0 fsyncs after every syncEvery-th Put; sinceSync counts
	// appends since the last flush.
	syncEvery int
	sinceSync int
}

// File is the store's backing-file surface. *os.File satisfies it;
// chaos tests wrap it to inject torn appends, write denials, and fsync
// failures (see OpenStoreHooked).
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// OpenStore opens (creating if absent) the JSONL store at path and
// indexes its existing records.
func OpenStore(path string) (*Store, error) {
	return OpenStoreHooked(path, nil)
}

// OpenStoreHooked is OpenStore with a fault-injection seam: hook, when
// non-nil, wraps the freshly opened backing file and every subsequent
// read, append, and sync goes through the wrapper. Production callers
// use OpenStore; the chaos suite injects torn and denied writes here.
func OpenStoreHooked(path string, hook func(File) File) (*Store, error) {
	of, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	var f File = of
	if hook != nil {
		f = hook(f)
	}
	s := &Store{f: f, have: make(map[string]Record), path: path}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read store: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated trailing chunk: a process died mid-append. Seal
			// it so the next append starts a fresh line. If the append was
			// cut exactly between the record and its newline, the chunk is
			// a complete record — index it now (as any later load of the
			// sealed line would); a genuinely truncated fragment fails to
			// parse and is skipped, sealed or not.
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("sweep: repair store: %w", err)
			}
			var rec Record
			if err := json.Unmarshal(data, &rec); err == nil && rec.Key != "" {
				s.have[rec.Key] = rec
			}
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			// Corrupt line (interrupted append, or interleaved writers):
			// skip it alone — valid records after it must survive.
			continue
		}
		s.have[rec.Key] = rec
	}
	return s, nil
}

// Lookup returns the stored record for key, if any.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.have[key]
	return rec, ok
}

// Put appends rec and indexes it. Duplicate keys overwrite the index
// entry but both lines remain on disk (last one wins on reload).
func (s *Store) Put(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	// A previous append tore mid-line: seal the fragment first, or the
	// record below would glue onto it and both lines would be lost on
	// reload — including a record whose Put already returned nil.
	if s.torn {
		if _, err := s.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("sweep: seal torn append: %w", err)
		}
		s.torn = false
	}
	if n, err := s.f.Write(line); err != nil {
		if n > 0 && n < len(line) {
			s.torn = true
		}
		return fmt.Errorf("sweep: append record: %w", err)
	}
	s.have[rec.Key] = rec
	if s.syncEvery > 0 {
		s.sinceSync++
		if s.sinceSync >= s.syncEvery {
			s.sinceSync = 0
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("sweep: sync store: %w", err)
			}
		}
	}
	return nil
}

// SyncEvery opts into a periodic fsync: every n-th Put flushes the file
// to stable storage (n <= 0 disables, the default). The record a failing
// Sync reports on is already appended and indexed — the error is about
// durability, not loss of the in-process state.
func (s *Store) SyncEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncEvery = n
	s.sinceSync = 0
}

// Sync flushes appended records to stable storage. A store that has
// acknowledged work to a remote caller (the sweepd coordinator acking a
// shard) syncs first, so a machine crash cannot lose records a worker
// was told are durable.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync store: %w", err)
	}
	return nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.have)
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Close syncs and closes the backing file: records handed to Put are on
// stable storage once Close returns, not just in the page cache.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	syncErr := s.f.Sync()
	err := s.f.Close()
	s.f = nil
	if err == nil {
		err = syncErr
	}
	return err
}
