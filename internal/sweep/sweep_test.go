package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

func testSpec() Spec {
	return Spec{
		Name:        "test",
		Sizes:       []int{64, 128},
		Deltas:      []float64{0, 0.75},
		Adversaries: []string{"none", "inflate"},
		Trials:      2,
		Seed:        7,
	}
}

func TestSpecExpansion(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 2 // sizes × deltas × adversaries × trials
	if len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		if j.Delta > 0 && j.ByzCount == 0 {
			t.Fatalf("job %d: delta %v but no Byzantine budget", i, j.Delta)
		}
		if j.Delta == 0 && j.ByzCount != 0 {
			t.Fatalf("job %d: no delta but ByzCount %d", i, j.ByzCount)
		}
	}
	// Trials of one cell share a Group; distinct cells don't.
	groups := map[int]int{}
	for _, j := range jobs {
		groups[j.Group]++
	}
	if len(groups) != want/2 {
		t.Fatalf("got %d groups, want %d", len(groups), want/2)
	}
	for g, count := range groups {
		if count != 2 {
			t.Fatalf("group %d has %d jobs, want 2 trials", g, count)
		}
	}
}

func TestSpecExpansionDeterministic(t *testing.T) {
	a, _ := testSpec().Jobs()
	b, _ := testSpec().Jobs()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec expanded to different jobs")
	}
}

func TestSpecNetworkSeedSharing(t *testing.T) {
	jobs, _ := testSpec().Jobs()
	// Cells differing only in delta/adversary share the topology per
	// (size, trial) — that's what earns the network cache its hits.
	byNet := map[hgraph.Params]int{}
	for _, j := range jobs {
		byNet[j.Net.Canonical()]++
	}
	// 2 sizes × 2 trials distinct topologies, each shared by 4 cells.
	if len(byNet) != 4 {
		t.Fatalf("distinct topologies = %d, want 4", len(byNet))
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},                                       // no sizes
		{Sizes: []int{64}, Deltas: []float64{2}}, // delta out of range
		{Sizes: []int{64}, Adversaries: []string{"nope"}},
		{Sizes: []int{64}, Placements: []string{"nope"}},
		{Sizes: []int{64}, Algorithms: []string{"nope"}},
		{Sizes: []int{64}, ChurnFracs: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated unexpectedly", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestJobKeyContentAddressing(t *testing.T) {
	j := Job{Net: hgraph.Params{N: 64, D: 8, Seed: 1}, RunSeed: 2}
	same := j
	same.Group, same.Index, same.Spec = 99, 99, "renamed"
	if j.Key() != same.Key() {
		t.Fatal("grid position changed the content key")
	}
	// Spellable defaults normalize.
	named := j
	named.Adversary, named.Placement = "none", "random"
	if j.Key() != named.Key() {
		t.Fatal("default spellings changed the content key")
	}
	// K defaulting normalizes.
	explicitK := j
	explicitK.Net.K = hgraph.DefaultK(8)
	if j.Key() != explicitK.Key() {
		t.Fatal("canonical K changed the content key")
	}
	// Delta is informational (ByzCount executes); it must not split keys.
	withDelta := j
	withDelta.Delta = 0.75
	if j.Key() != withDelta.Key() {
		t.Fatal("informational Delta changed the content key")
	}
	// Real differences do change it.
	diff := j
	diff.RunSeed++
	if j.Key() == diff.Key() {
		t.Fatal("different jobs share a key")
	}
}

func TestNetCacheReuseAndSingleFlight(t *testing.T) {
	c := NewNetCache(4)
	p := hgraph.Params{N: 64, D: 8, Seed: 3}
	var wg sync.WaitGroup
	nets := make([]*hgraph.Network, 8)
	for i := range nets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net, err := c.Get(p)
			if err != nil {
				t.Error(err)
			}
			nets[i] = net
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(nets); i++ {
		if nets[i] != nets[0] {
			t.Fatal("cache returned distinct instances for one Params")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", misses)
	}
	if hits != 7 {
		t.Fatalf("hits = %d, want 7", hits)
	}
}

func TestNetCacheEviction(t *testing.T) {
	c := NewNetCache(2)
	for seed := uint64(0); seed < 3; seed++ {
		if _, err := c.Get(hgraph.Params{N: 64, D: 8, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2 after eviction", c.Len())
	}
	// Seed 0 was evicted (LRU): fetching it again is a miss.
	_, misses0 := c.Stats()
	if _, err := c.Get(hgraph.Params{N: 64, D: 8, Seed: 0}); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != misses0+1 {
		t.Fatal("evicted entry was not regenerated")
	}
}

func TestStoreRoundTripAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")

	spec := Spec{Name: "resume", Sizes: []int{64}, Adversaries: []string{"none", "inflate"}, Trials: 2, Seed: 5, Deltas: []float64{0.75}}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// First pass: run only half the jobs, as if interrupted.
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	half := jobs[:len(jobs)/2]
	firstOuts, err := Run(half, Options{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Second pass over the FULL grid must skip exactly the completed half.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != len(half) {
		t.Fatalf("store reloaded %d records, want %d", store2.Len(), len(half))
	}
	outs, err := Run(jobs, Options{Workers: 2, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for i, o := range outs {
		if o.FromStore {
			skipped++
			// The resumed summary must match the original run exactly.
			// (DeepEqual: Summary grew a slice field with occupancy.)
			if i < len(firstOuts) && !reflect.DeepEqual(o.Summary, firstOuts[i].Summary) {
				t.Fatalf("job %d: resumed summary differs from original", i)
			}
		}
	}
	if skipped != len(half) {
		t.Fatalf("resumed %d jobs, want %d", skipped, len(half))
	}
}

func TestStoreRepairsPartialTrailingLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Key: "abc", Job: Job{Net: hgraph.Params{N: 64, D: 8}}}
	if err := store.Put(rec); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Simulate a process killed mid-append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"truncat`)
	f.Close()

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 1 {
		t.Fatalf("store len = %d, want 1 (partial line dropped)", store2.Len())
	}
	if _, ok := store2.Lookup("abc"); !ok {
		t.Fatal("intact record lost during repair")
	}
	// Appending after repair must still produce parseable lines.
	if err := store2.Put(Record{Key: "def"}); err != nil {
		t.Fatal(err)
	}
	store2.Close()
	store3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if store3.Len() != 2 {
		t.Fatalf("store len = %d, want 2 after repaired append", store3.Len())
	}
}

func TestStoreSkipsCorruptInteriorLineKeepingSuffix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	store.Put(Record{Key: "before"})
	store.Close()

	// Interleaved garbage mid-file (e.g. two writers racing).
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("{\"key\":\"gar{\"key\":\"bled\"}\n")
	f.Close()

	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	store2.Put(Record{Key: "after"})
	store2.Close()

	store3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	// Records on both sides of the corruption must survive.
	for _, key := range []string{"before", "after"} {
		if _, ok := store3.Lookup(key); !ok {
			t.Fatalf("record %q lost around corrupt interior line", key)
		}
	}
	if store3.Len() != 2 {
		t.Fatalf("store len = %d, want 2", store3.Len())
	}
}

func TestRunKeepResults(t *testing.T) {
	spec := Spec{Sizes: []int{64}, Deltas: []float64{0.75}, Adversaries: []string{"inflate"}, Trials: 1, Seed: 9}
	jobs, _ := spec.Jobs()
	outs, err := Run(jobs, Options{Workers: 2, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Result == nil || o.Net == nil || o.Byz == nil {
			t.Fatalf("outcome %d missing retained state", i)
		}
	}
}

type roundCounter struct{ rounds int }

func (o *roundCounter) RoundEnd(*core.World) { o.rounds++ }

func TestRunObserverRoundTrip(t *testing.T) {
	spec := Spec{Sizes: []int{64}, Trials: 1, Seed: 11}
	jobs, _ := spec.Jobs()
	outs, err := Run(jobs, Options{
		KeepResults: true,
		Observer:    func(Job) core.Observer { return &roundCounter{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := outs[0].Observer.(*roundCounter)
	if !ok {
		t.Fatal("observer instance not returned on outcome")
	}
	if obs.rounds == 0 {
		t.Fatal("observer saw no rounds")
	}
}

func TestRunUnknownAdversaryFails(t *testing.T) {
	jobs := []Job{{Net: hgraph.Params{N: 64, D: 8, Seed: 1}, Adversary: "nope"}}
	if _, err := Run(jobs, Options{}); err == nil || !strings.Contains(err.Error(), "adversary") {
		t.Fatalf("want adversary error, got %v", err)
	}
}

func TestAggregateGroupsInExpansionOrder(t *testing.T) {
	spec := testSpec()
	jobs, _ := spec.Jobs()
	outs, err := Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups := Aggregate(outs)
	if len(groups) != len(jobs)/spec.Trials {
		t.Fatalf("groups = %d, want %d", len(groups), len(jobs)/spec.Trials)
	}
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Job.Group >= groups[i].Job.Group {
			t.Fatal("groups out of expansion order")
		}
	}
	for _, g := range groups {
		if g.Agg.Trials != spec.Trials {
			t.Fatalf("group aggregated %d trials, want %d", g.Agg.Trials, spec.Trials)
		}
	}
	md := Markdown("t", groups)
	if !strings.Contains(md, "| n | d |") {
		t.Fatal("markdown missing header")
	}
	csv := CSV(groups)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(groups)+1 {
		t.Fatal("csv row count mismatch")
	}
}
