package sweep

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// pinnedKeys are Job.Key() values captured before the fault-model axes
// existed (PR 2 engine). They must never change: the result store
// addresses completed work by these hashes, so a drift would silently
// orphan every store on disk. If this test fails, a field was added to
// Job without omitempty (or a normalization changed) — fix the encoding,
// do not repin.
var pinnedKeys = []struct {
	job Job
	key string
}{
	{Job{Net: hgraph.Params{N: 256, D: 8, Seed: 42}, Algorithm: core.AlgorithmByzantine, RunSeed: 7},
		"6a9fe0ffdb7d1b8478995a85dcc21ebc835aba433ed2007a21c0ce156d62a731"},
	{Job{Net: hgraph.Params{N: 512, D: 8, Seed: 43}, Delta: 0.75, ByzCount: 4, Placement: "clustered",
		PlaceSeed: 9, Adversary: "inflate", Algorithm: core.AlgorithmByzantine, Epsilon: 0.2,
		RunSeed: 8, ChurnCrashes: 10, ChurnSeed: 11, Trial: 3},
		"f2312a1581a9a0e487be4048810ad78f9950b58f85f6b81ffd6c74f132969ec6"},
	{Job{Net: hgraph.Params{N: 128, D: 8, Seed: 44}, Algorithm: core.AlgorithmBasic, MaxPhase: 9,
		InjectionThreshold: 5, RunSeed: 12},
		"4d7ee10b8836039b9c34d3447c5c0ccd8f6492a7935b13e8fc751cb5ca96a0aa"},
}

func TestJobKeysPinnedAcrossAxisAdditions(t *testing.T) {
	for i, p := range pinnedKeys {
		if got := p.job.Key(); got != p.key {
			t.Errorf("pinned job %d key drifted:\n got %s\nwant %s", i, got, p.key)
		}
	}
}

func TestJobKeyFaultAxisNormalization(t *testing.T) {
	base := Job{Net: hgraph.Params{N: 64, D: 8, Seed: 1}, RunSeed: 2}
	// The spellable crash default hashes like the unset field.
	crash := base
	crash.FaultModel = "crash"
	if base.Key() != crash.Key() {
		t.Fatal("fault model \"crash\" changed the content key")
	}
	// A join model with nothing joining is identical work to no churn.
	emptyJoin := base
	emptyJoin.FaultModel = "join"
	if base.Key() != emptyJoin.Key() {
		t.Fatal("join model with JoinFrac 0 changed the content key")
	}
	// The crash regime ignores JoinFrac; the hash must too.
	strayJoin := base
	strayJoin.JoinFrac = 0.5
	if base.Key() != strayJoin.Key() {
		t.Fatal("JoinFrac under the crash regime changed the content key")
	}
	// The join regime ignores ChurnCrashes; the hash must too.
	join := base
	join.FaultModel, join.JoinFrac = "join", 0.1
	strayCrashes := join
	strayCrashes.ChurnCrashes = 7
	if join.Key() != strayCrashes.Key() {
		t.Fatal("ChurnCrashes under the join regime changed the content key")
	}
	// Real fault axes do split keys.
	for name, j := range map[string]Job{
		"loss": {Net: base.Net, RunSeed: 2, LossProb: 0.05},
		"join": join,
	} {
		if j.Key() == base.Key() {
			t.Fatalf("%s axis did not change the content key", name)
		}
	}
}

func TestSpecFaultAxesExpansion(t *testing.T) {
	spec := Spec{
		Name:        "faults",
		Sizes:       []int{64},
		FaultModels: []string{"crash", "join"},
		ChurnFracs:  []float64{0, 0.1},
		JoinFracs:   []float64{0.05, 0.1, 0.2},
		LossProbs:   []float64{0, 0.02},
		Trials:      2,
		Seed:        9,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// crash crosses ChurnFracs (2), join crosses JoinFracs (3); each
	// crosses LossProbs (2) and Trials (2).
	want := (2 + 3) * 2 * 2
	if len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	crash, join, lossy := 0, 0, 0
	for _, j := range jobs {
		switch j.FaultModel {
		case "crash":
			crash++
			if j.JoinFrac != 0 {
				t.Fatalf("crash job carries JoinFrac %v", j.JoinFrac)
			}
		case "join":
			join++
			if j.ChurnCrashes != 0 {
				t.Fatalf("join job carries ChurnCrashes %d", j.ChurnCrashes)
			}
			if j.JoinFrac == 0 {
				t.Fatal("join job lost its fraction")
			}
		default:
			t.Fatalf("job with fault model %q", j.FaultModel)
		}
		if j.LossProb > 0 {
			lossy++
		}
	}
	if crash != 2*2*2 || join != 3*2*2 {
		t.Fatalf("crash/join split %d/%d, want 8/12", crash, join)
	}
	if lossy != want/2 {
		t.Fatalf("%d lossy jobs, want %d", lossy, want/2)
	}
}

// TestSpecDefaultExpansionHasNoFaultAxes: a spec that predates the fault
// axes must expand to jobs whose keys are what they were before the axes
// existed (the empty-axes defaults are invisible to the hash).
func TestSpecDefaultExpansionHasNoFaultAxes(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.FaultModel != "crash" {
			t.Fatalf("default expansion fault model %q, want crash", j.FaultModel)
		}
		if j.JoinFrac != 0 || j.LossProb != 0 {
			t.Fatalf("default expansion leaked fault values: %+v", j)
		}
		// The "crash" spelling must normalize out of the key entirely.
		bare := j
		bare.FaultModel = ""
		if j.Key() != bare.Key() {
			t.Fatal("default fault model changed a pre-existing key")
		}
	}
}

func TestSpecValidatesFaultAxes(t *testing.T) {
	for _, spec := range []Spec{
		{Sizes: []int{64}, FaultModels: []string{"banana"}},
		{Sizes: []int{64}, JoinFracs: []float64{1.5}},
		{Sizes: []int{64}, LossProbs: []float64{-0.5}},
		{Sizes: []int{64}, LossProbs: []float64{1.01}},
	} {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v validated", spec)
		}
	}
}

// TestFaultJobsRunDeterministically executes a small lossy/churny grid
// twice at different worker counts: summaries must be identical (the
// E18/E19 worker-invariance property, scaled down for CI).
func TestFaultJobsRunDeterministically(t *testing.T) {
	spec := Spec{
		Name:        "fault-det",
		Sizes:       []int{96},
		FaultModels: []string{"crash", "join"},
		ChurnFracs:  []float64{0.05},
		JoinFracs:   []float64{0.1},
		LossProbs:   []float64{0, 0.05},
		Trials:      2,
		Seed:        11,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(jobs, Options{Workers: 1, RunWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(jobs, Options{Workers: 4, RunWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawRejoin, sawDrop := false, false
	for i := range a {
		if !reflect.DeepEqual(a[i].Summary, b[i].Summary) {
			t.Fatalf("job %d summary differs across worker counts:\n%+v\n%+v",
				i, a[i].Summary, b[i].Summary)
		}
		if a[i].Summary.Rejoins > 0 {
			sawRejoin = true
		}
		if a[i].Summary.DroppedMessages > 0 {
			sawDrop = true
		}
	}
	if !sawRejoin || !sawDrop {
		t.Fatalf("grid exercised rejoin=%v drop=%v; want both", sawRejoin, sawDrop)
	}
}
