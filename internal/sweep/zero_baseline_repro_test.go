package sweep

import "testing"

// TestSpecZeroBaselineEmittedOnce covers the zero-fraction baseline dedup:
// exactly one no-churn cell per surrounding grid point, whichever model's
// fraction axis carries the 0 — including when only a later model's does.
func TestSpecZeroBaselineEmittedOnce(t *testing.T) {
	// Zero only on the later (join) axis: the baseline must survive.
	jobs, err := (Spec{Sizes: []int{64}, FaultModels: []string{"crash", "join"},
		ChurnFracs: []float64{0.05}, JoinFracs: []float64{0, 0.1}}).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("expanded %d jobs, want 3 (crash 0.05, join 0, join 0.1)", len(jobs))
	}
	zeros := 0
	for _, j := range jobs {
		if j.ChurnCrashes == 0 && j.JoinFrac == 0 {
			zeros++
		}
	}
	if zeros != 1 {
		t.Fatalf("%d zero-churn baseline cells, want 1", zeros)
	}
	// Zero on both axes: the duplicate collapses to one baseline.
	jobs, err = (Spec{Sizes: []int{64}, FaultModels: []string{"crash", "join"},
		ChurnFracs: []float64{0, 0.05}, JoinFracs: []float64{0, 0.1}}).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("expanded %d jobs, want 3 (baseline, crash 0.05, join 0.1)", len(jobs))
	}
}
