package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// FuzzStoreReopen drives OpenStore's partial-trailing-line repair path
// with arbitrary pre-existing file contents: whatever is on disk — a
// cleanly closed store, a file truncated mid-append by a killed process,
// interleaved garbage, binary noise — reopening must (1) succeed, (2)
// index every intact record, (3) accept new appends, and (4) reach a
// fixed point: a second reopen sees exactly the same records plus the
// appends, and the file never loses a valid record that corruption
// didn't touch.
func FuzzStoreReopen(f *testing.F) {
	rec := func(key string) []byte {
		b, err := json.Marshal(Record{Key: key, Job: Job{Trial: 1}, Summary: fuzzSummary()})
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := rec("aaaa")
	valid2 := rec("bbbb")

	// Seed corpus: the shapes the repair path exists for.
	f.Add([]byte{})                                                                 // empty store
	f.Add([]byte("\n"))                                                             // blank line only
	f.Add(append(append([]byte{}, valid...), '\n'))                                 // one clean record
	f.Add(append(append([]byte{}, valid...), valid[:len(valid)/2]...))              // clean record + truncated tail, no newline
	f.Add(valid[:len(valid)-7])                                                     // lone truncated record
	f.Add([]byte("{\"key\":"))                                                      // truncated mid-key
	f.Add([]byte("garbage line\n"))                                                 // unparseable text line
	f.Add([]byte("null\n"))                                                         // valid JSON, not a record
	f.Add([]byte("{}\n"))                                                           // record with no key
	f.Add([]byte{0x00, 0xff, 0x7b, 0x0a})                                           // binary noise
	f.Add(bytes.Join([][]byte{valid, []byte("CORRUPT"), valid2, {}}, []byte("\n"))) // corruption between records
	f.Add(bytes.Join([][]byte{valid, valid2[:8]}, []byte("\n")))                    // killed during the second append

	f.Fuzz(func(t *testing.T, contents []byte) {
		path := filepath.Join(t.TempDir(), "store.jsonl")
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := OpenStore(path)
		if err != nil {
			t.Fatalf("open over arbitrary contents: %v", err)
		}
		// Which keys must survive: every cleanly terminated line that
		// parses as a record (matching the documented skip-corrupt-lines
		// contract).
		want := map[string]bool{}
		rest := contents
		for {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break
			}
			var r Record
			if err := json.Unmarshal(rest[:nl], &r); err == nil && r.Key != "" {
				want[r.Key] = true
			}
			rest = rest[nl+1:]
		}
		for k := range want {
			if _, ok := s.Lookup(k); !ok {
				t.Fatalf("intact record %q lost on reopen", k)
			}
		}
		if s.Len() < len(want) {
			t.Fatalf("indexed %d records, want >= %d", s.Len(), len(want))
		}

		// The store must still accept appends after repair.
		put := Record{Key: "fuzz-put", Job: Job{Trial: 2}, Summary: fuzzSummary()}
		if err := s.Put(put); err != nil {
			t.Fatalf("put after repair: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Fixed point: reopening sees the same index plus the append (the
		// sealed fragment must never corrupt what follows it).
		s2, err := OpenStore(path)
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		defer s2.Close()
		got, ok := s2.Lookup("fuzz-put")
		if !ok {
			t.Fatal("appended record lost after reopen")
		}
		if got.Job.Trial != put.Job.Trial {
			t.Fatalf("appended record mangled: %+v", got)
		}
		for k := range want {
			if _, ok := s2.Lookup(k); !ok {
				t.Fatalf("record %q lost on second reopen", k)
			}
		}
		if s2.Len() != s.Len() {
			t.Fatalf("reopen changed index size: %d != %d", s2.Len(), s.Len())
		}
	})
}

// fuzzSummary returns a small distinguishable summary for fuzz records.
func fuzzSummary() (s metrics.Summary) {
	s.N = 99
	s.CorrectFraction = 0.5
	return s
}
