package sweep

// monitor.go is the live observability surface of a running sweep: a
// Monitor folds completed Outcomes (via Options.Progress) into progress
// counts, per-stage time totals, and cache-tier tallies, and renders
// them two ways — a JSON Status document for the -http /status endpoint
// (the embryo of the sweepd worker heartbeat, ROADMAP item 1) and an
// end-of-sweep stage-time breakdown table. Everything here is derived
// from Outcome fields that are themselves observational, so a monitored
// sweep produces byte-identical stores and aggregates to a bare one.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Monitor accumulates live progress for one sweep. Create with
// NewMonitor, feed it from Options.Progress (Observe is safe under the
// scheduler's serial progress lock and also safe for concurrent use),
// and read Status from any goroutine — the HTTP handler polls it while
// workers are mid-grid.
type Monitor struct {
	mu      sync.Mutex
	spec    string
	total   int
	done    int
	ran     int
	resumed int
	errors  int
	start   time.Time
	expand  time.Duration
	stages  StageTimes
	tiers   map[string]int
	cache   *NetCache
	reg     *obs.Registry

	// Batched-execution tallies: batched counts jobs that ran as lanes
	// of a multi-lane invocation, and batchInv accumulates 1/width per
	// such job — each invocation's lanes sum to exactly one invocation —
	// so batched/batchInv is the mean lane width without the monitor
	// ever seeing invocation boundaries.
	batched  int
	batchInv float64
}

// NewMonitor returns a monitor for a sweep of total jobs. cache supplies
// the hit-rate figures (nil omits them); reg supplies the telemetry
// snapshot (nil: obs.Default) and should match Options.Telemetry.
func NewMonitor(spec string, total int, cache *NetCache, reg *obs.Registry) *Monitor {
	if reg == nil {
		reg = obs.Default
	}
	return &Monitor{
		spec:  spec,
		total: total,
		start: time.Now(),
		tiers: make(map[string]int),
		cache: cache,
		reg:   reg,
	}
}

// SetExpand records the spec-expansion stage, which happens before the
// scheduler (and therefore the per-job stages) exists.
func (m *Monitor) SetExpand(d time.Duration) {
	m.mu.Lock()
	m.expand = d
	m.mu.Unlock()
}

// Observe folds one completed outcome. Wire it as (or into) the
// Options.Progress callback.
func (m *Monitor) Observe(done, total int, out Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done, m.total = done, total
	if out.Dropped {
		// Dropped jobs were shed unrun (a sweepd worker losing stolen
		// work); they occupy a progress slot but ran nothing.
		return
	}
	if out.Err != nil {
		m.errors++
	}
	if out.FromStore {
		m.resumed++
		return
	}
	m.ran++
	m.stages.add(out.Stages)
	if out.CacheTier != "" {
		m.tiers[out.CacheTier]++
	}
	if out.BatchLanes > 1 {
		m.batched++
		m.batchInv += 1 / float64(out.BatchLanes)
	}
}

// StageStat is one row of the stage-time breakdown.
type StageStat struct {
	Stage string `json:"stage"`
	// TotalMS sums the stage across jobs; MeanMS divides by the jobs
	// that actually ran (expand, a sweep-level stage, reports no mean).
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms,omitempty"`
	// Share is the stage's fraction of all accounted stage time.
	Share float64 `json:"share"`
}

// CacheStatus is the cache tiers' live hit accounting.
type CacheStatus struct {
	MemHits    int64   `json:"mem_hits"`
	MemMisses  int64   `json:"mem_misses"`
	MemHitRate float64 `json:"mem_hit_rate"`
	// DiskHits counts memory misses served by the topology store;
	// DiskHitRate is their fraction of memory misses.
	DiskEnabled bool    `json:"disk_enabled"`
	DiskHits    int64   `json:"disk_hits,omitempty"`
	DiskHitRate float64 `json:"disk_hit_rate,omitempty"`
}

// Status is the live /status document.
type Status struct {
	Spec    string `json:"spec"`
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Ran     int    `json:"ran"`
	Resumed int    `json:"resumed"`
	Errors  int    `json:"errors"`

	ElapsedMS  float64 `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// ETAMS extrapolates the remaining jobs at the observed rate (0
	// until the first job completes, and once the sweep is done).
	ETAMS float64 `json:"eta_ms"`

	Stages     []StageStat    `json:"stages,omitempty"`
	CacheTiers map[string]int `json:"cache_tiers,omitempty"`
	Cache      *CacheStatus   `json:"cache,omitempty"`
	Telemetry  obs.Snapshot   `json:"telemetry"`

	// BatchedJobs counts jobs executed as lanes of multi-lane batched
	// invocations; BatchMeanLanes is those invocations' mean lane width
	// (0 when nothing batched).
	BatchedJobs    int     `json:"batched_jobs,omitempty"`
	BatchMeanLanes float64 `json:"batch_mean_lanes,omitempty"`
}

// Status renders the monitor's current view.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	elapsed := time.Since(m.start)
	s := Status{
		Spec:      m.spec,
		Total:     m.total,
		Done:      m.done,
		Ran:       m.ran,
		Resumed:   m.resumed,
		Errors:    m.errors,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Stages:    stageStats(m.expand, m.stages, m.ran),
	}
	if len(m.tiers) > 0 {
		s.CacheTiers = make(map[string]int, len(m.tiers))
		for tier, n := range m.tiers {
			s.CacheTiers[tier] = n
		}
	}
	if m.batched > 0 && m.batchInv > 0 {
		s.BatchedJobs = m.batched
		s.BatchMeanLanes = float64(m.batched) / m.batchInv
	}
	cache, reg := m.cache, m.reg
	m.mu.Unlock()

	if elapsed > 0 && s.Done > 0 {
		s.JobsPerSec = float64(s.Done) / elapsed.Seconds()
		if remaining := s.Total - s.Done; remaining > 0 {
			s.ETAMS = s.ElapsedMS / float64(s.Done) * float64(remaining)
		}
	}
	if cache != nil {
		hits, misses := cache.Stats()
		diskHits, diskOn := cache.DiskStats()
		cs := &CacheStatus{MemHits: hits, MemMisses: misses, DiskEnabled: diskOn, DiskHits: diskHits}
		if total := hits + misses; total > 0 {
			cs.MemHitRate = float64(hits) / float64(total)
		}
		if diskOn && misses > 0 {
			cs.DiskHitRate = float64(diskHits) / float64(misses)
		}
		s.Cache = cs
	}
	s.Telemetry = reg.Snapshot()
	return s
}

// stageStats builds the breakdown rows: the sweep-level expand stage
// followed by the per-job stages, shares normalized over everything
// accounted. Zero-duration stages are kept — a zero is information
// (the tier was wired but idle, e.g. no disk store attached).
func stageStats(expand time.Duration, stages StageTimes, ran int) []StageStat {
	rows := []struct {
		name   string
		d      time.Duration
		perJob bool
	}{
		{"expand", expand, false},
		{"cache_lookup", stages.CacheLookup, true},
		{"generate", stages.Generate, true},
		{"disk_load", stages.DiskLoad, true},
		{"run", stages.Run, true},
		{"aggregate", stages.Aggregate, true},
	}
	var sum time.Duration
	for _, r := range rows {
		sum += r.d
	}
	out := make([]StageStat, 0, len(rows))
	for _, r := range rows {
		st := StageStat{Stage: r.name, TotalMS: float64(r.d.Microseconds()) / 1000}
		if r.perJob && ran > 0 {
			st.MeanMS = st.TotalMS / float64(ran)
		}
		if sum > 0 {
			st.Share = float64(r.d) / float64(sum)
		}
		out = append(out, st)
	}
	return out
}

// Breakdown renders the end-of-sweep stage-time table. Generation and
// disk-load rows are sub-stages of cache_lookup (the creator's cost,
// observed inside the lookup), so shares are reported against the
// job-stage total with cache_lookup's internals left visible rather
// than double-counted away.
func (m *Monitor) Breakdown() string {
	m.mu.Lock()
	expand, stages, ran := m.expand, m.stages, m.ran
	batched, batchInv := m.batched, m.batchInv
	m.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "stage breakdown (%d jobs ran):\n", ran)
	fmt.Fprintf(&b, "  %-14s %12s %12s %7s\n", "stage", "total", "mean/job", "share")
	for _, st := range stageStats(expand, stages, ran) {
		mean := "-"
		if st.MeanMS > 0 {
			mean = fmtMS(st.MeanMS)
		}
		fmt.Fprintf(&b, "  %-14s %12s %12s %6.1f%%\n",
			st.Stage, fmtMS(st.TotalMS), mean, st.Share*100)
	}
	if batched > 0 && batchInv > 0 {
		fmt.Fprintf(&b, "  batched: %d jobs in %.0f invocations, mean lane width %.1f\n",
			batched, batchInv, float64(batched)/batchInv)
	}
	return b.String()
}

// fmtMS renders a millisecond quantity compactly.
func fmtMS(ms float64) string {
	switch {
	case ms >= 60_000:
		return fmt.Sprintf("%.1fmin", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.3fms", ms)
	}
}
