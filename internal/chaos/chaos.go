// Package chaos is the deterministic fault-injection layer the
// distributed sweep service is hardened against: a seeded coin decides,
// per injection site, whether a request is dropped, delayed,
// duplicated, or truncated (Transport), and whether a file write is
// torn, short, or denied (FaultFile). The philosophy mirrors the
// engine's MessageLoss coin framework — a fault is a pure function of
// (seed, site, occurrence), so a failing schedule replays exactly from
// its seed — but the streams are entirely separate from the simulation
// rng: chaos decisions can never perturb result determinism, only the
// infrastructure the results travel through. The correctness contract
// under any schedule is the sweep service's one invariant: merged
// stores and rendered aggregates stay byte-identical to a clean
// single-process run.
package chaos

import (
	"errors"
	"hash/fnv"
)

// ErrInjected is the sentinel every injected fault wraps, so tests and
// retry layers can distinguish manufactured failures from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit
// permutation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Coin is the deterministic decision source for one injection site: a
// (seed, scope, occurrence) triple. Distinct salts draw independent
// values from the same site, so one request can independently roll for
// drop, delay, and truncation without the outcomes correlating.
type Coin struct {
	state uint64
}

// NewCoin derives the coin for occurrence n of scope under seed.
func NewCoin(seed uint64, scope string, n uint64) Coin {
	return Coin{state: mix(mix(seed) ^ mix(hashString(scope)) ^ mix(n+0x51ed2701))}
}

// Frac returns a uniform float64 in [0, 1) for this site and salt.
func (c Coin) Frac(salt string) float64 {
	return float64(mix(c.state^hashString(salt))>>11) / (1 << 53)
}

// Roll reports whether the fault with probability p fires at this site.
func (c Coin) Roll(salt string, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return c.Frac(salt) < p
}
