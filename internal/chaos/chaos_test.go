package chaos

import (
	"errors"
	"math"
	"testing"
)

// TestCoinDeterministic pins the coin contract: the same (seed, scope,
// n, salt) always yields the same draw, and each coordinate
// independently decorrelates it.
func TestCoinDeterministic(t *testing.T) {
	a := NewCoin(7, "/report", 3)
	b := NewCoin(7, "/report", 3)
	if a.Frac("drop") != b.Frac("drop") {
		t.Fatal("same site drew different values")
	}
	if a.Roll("drop", 0.5) != b.Roll("drop", 0.5) {
		t.Fatal("same site rolled differently")
	}
	distinct := map[float64]bool{
		NewCoin(8, "/report", 3).Frac("drop"): true,
		NewCoin(7, "/claim", 3).Frac("drop"):  true,
		NewCoin(7, "/report", 4).Frac("drop"): true,
		a.Frac("delay"):                       true,
		a.Frac("drop"):                        true,
	}
	if len(distinct) != 5 {
		t.Fatalf("coordinate change collided: %d distinct of 5", len(distinct))
	}
}

// TestCoinEdges pins degenerate probabilities and the Frac range.
func TestCoinEdges(t *testing.T) {
	c := NewCoin(1, "x", 0)
	if c.Roll("s", 0) || c.Roll("s", -1) {
		t.Fatal("p<=0 fired")
	}
	if !c.Roll("s", 1) || !c.Roll("s", 2) {
		t.Fatal("p>=1 did not fire")
	}
	for n := uint64(0); n < 1000; n++ {
		f := NewCoin(42, "range", n).Frac("f")
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Frac out of [0,1): %v", f)
		}
	}
}

// TestCoinFrequency sanity-checks that Roll's hit rate tracks p.
func TestCoinFrequency(t *testing.T) {
	hits := 0
	const trials = 20000
	for n := uint64(0); n < trials; n++ {
		if NewCoin(9, "freq", n).Roll("hit", 0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.22 || got > 0.28 {
		t.Fatalf("p=0.25 hit rate = %v", got)
	}
}

func TestErrInjectedWraps(t *testing.T) {
	f := &FaultFile{F: &memFile{}, FailWrite: func(n uint64) error {
		return errors.New("boom")
	}}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("scripted write failure did not fire")
	}
	f2 := &FaultFile{F: &memFile{}, Plan: DiskPlan{WriteErr: 1}}
	if _, err := f2.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("planned failure err = %v, want ErrInjected", err)
	}
}
