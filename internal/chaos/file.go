package chaos

// file.go is the disk half of the fault layer: FaultFile wraps the
// backing file of the sweep result store, the run-log, or a netstore
// temp blob, and injects the failure modes an append-only on-disk
// format must survive — torn appends (a prefix lands, then the write
// errors), outright write denials (the ENOSPC shape), and fsync
// failures. Faults come from a seeded DiskPlan for randomized property
// suites, or from explicit per-operation callbacks for targeted
// regression tests; callbacks win when both are set.

import (
	"fmt"
	"io"
	"sync"
)

// File is the backing-file surface the stores write through; *os.File
// satisfies it, and so does FaultFile, so injectors nest.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// DiskPlan sets seeded per-operation fault probabilities.
type DiskPlan struct {
	// Seed drives the coin; ops are numbered per FaultFile instance.
	Seed uint64
	// TornWrite delivers a strict prefix of the buffer, then errors.
	TornWrite float64
	// WriteErr denies the write before any byte lands (ENOSPC shape).
	WriteErr float64
	// SyncErr fails Sync after the underlying write-back is attempted.
	SyncErr float64
}

// FaultFile injects DiskPlan faults (or scripted callback faults)
// around F. Safe for concurrent use; operation numbering is per
// instance, 1-based in callbacks.
type FaultFile struct {
	F    File
	Plan DiskPlan

	// TearAt, when non-nil, is consulted first on the n-th write: a
	// return in [0, len(b)) tears the write after that many bytes (a
	// negative return defers to the plan).
	TearAt func(n uint64, b []byte) int
	// FailWrite, when non-nil, can deny the n-th write outright.
	FailWrite func(n uint64) error
	// FailSync, when non-nil, can fail the n-th sync.
	FailSync func(n uint64) error

	mu     sync.Mutex
	writes uint64
	syncs  uint64
	faults map[string]int64
}

func (f *FaultFile) note(kind string) {
	if f.faults == nil {
		f.faults = make(map[string]int64)
	}
	f.faults[kind]++
}

// Counts snapshots injected-fault tallies by kind.
func (f *FaultFile) Counts() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.faults))
	for k, v := range f.faults {
		out[k] = v
	}
	return out
}

// Read passes through untouched: the fault model targets the write and
// durability paths; read-side corruption is the codec fuzzers' beat.
func (f *FaultFile) Read(p []byte) (int, error) { return f.F.Read(p) }

// Write applies scripted then seeded faults, then forwards to F.
func (f *FaultFile) Write(b []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	n := f.writes
	if f.FailWrite != nil {
		if err := f.FailWrite(n); err != nil {
			f.note("write-err")
			f.mu.Unlock()
			return 0, err
		}
	}
	tear := -1
	if f.TearAt != nil {
		tear = f.TearAt(n, b)
	}
	coin := NewCoin(f.Plan.Seed, "write", n)
	if tear < 0 && coin.Roll("write-err", f.Plan.WriteErr) {
		f.note("write-err")
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: write %d denied (no space)", ErrInjected, n)
	}
	if tear < 0 && len(b) > 0 && coin.Roll("torn", f.Plan.TornWrite) {
		tear = int(coin.Frac("torn-len") * float64(len(b)))
	}
	if tear >= 0 && tear < len(b) {
		f.note("torn-write")
		f.mu.Unlock()
		m, err := f.F.Write(b[:tear])
		if err == nil {
			err = fmt.Errorf("%w: write %d torn after %d/%d bytes", ErrInjected, n, m, len(b))
		}
		return m, err
	}
	f.mu.Unlock()
	return f.F.Write(b)
}

// Sync applies scripted then seeded faults, then forwards to F. The
// underlying sync still runs before an injected failure — a real fsync
// error leaves durability unknown, not cleanly absent.
func (f *FaultFile) Sync() error {
	f.mu.Lock()
	f.syncs++
	n := f.syncs
	var injected error
	if f.FailSync != nil {
		injected = f.FailSync(n)
	}
	if injected == nil && NewCoin(f.Plan.Seed, "sync", n).Roll("sync-err", f.Plan.SyncErr) {
		injected = fmt.Errorf("%w: sync %d failed", ErrInjected, n)
	}
	if injected != nil {
		f.note("sync-err")
	}
	f.mu.Unlock()
	err := f.F.Sync()
	if err == nil {
		err = injected
	}
	return err
}

// Close passes through: the fault model never loses a close, it loses
// what a close would have flushed — that is Sync's job to deny.
func (f *FaultFile) Close() error { return f.F.Close() }
