package chaos

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory File for unit tests.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Read(p []byte) (int, error)  { return m.buf.Read(p) }
func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

// TestFaultFileTornWrite: a torn write lands a strict prefix and
// reports an error; later writes proceed.
func TestFaultFileTornWrite(t *testing.T) {
	mem := &memFile{}
	f := &FaultFile{F: mem, TearAt: func(n uint64, b []byte) int {
		if n == 2 {
			return 3
		}
		return -1
	}}
	if _, err := f.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("second\n"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if _, err := f.Write([]byte("third\n")); err != nil {
		t.Fatal(err)
	}
	if got := mem.buf.String(); got != "first\nsecthird\n" {
		t.Fatalf("file contents = %q", got)
	}
	if f.Counts()["torn-write"] != 1 {
		t.Fatalf("counts = %v", f.Counts())
	}
}

// TestFaultFileWriteDenied: a denied write lands nothing.
func TestFaultFileWriteDenied(t *testing.T) {
	mem := &memFile{}
	f := &FaultFile{F: mem, Plan: DiskPlan{Seed: 5, WriteErr: 1}}
	if n, err := f.Write([]byte("x")); err == nil || n != 0 {
		t.Fatalf("denied write = (%d, %v)", n, err)
	}
	if mem.buf.Len() != 0 {
		t.Fatal("denied write landed bytes")
	}
}

// TestFaultFileSync: an injected sync failure still runs the
// underlying sync (durability unknown, not skipped), and scripted
// failures fire per call index.
func TestFaultFileSync(t *testing.T) {
	mem := &memFile{}
	f := &FaultFile{F: mem, FailSync: func(n uint64) error {
		if n == 1 {
			return errors.New("sync denied")
		}
		return nil
	}}
	if err := f.Sync(); err == nil {
		t.Fatal("scripted sync failure did not fire")
	}
	if mem.syncs != 1 {
		t.Fatalf("underlying sync ran %d times, want 1", mem.syncs)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFileSeededDeterminism: the same plan over the same op
// sequence injects identical faults.
func TestFaultFileSeededDeterminism(t *testing.T) {
	run := func() []bool {
		f := &FaultFile{F: &memFile{}, Plan: DiskPlan{Seed: 21, TornWrite: 0.3, WriteErr: 0.2, SyncErr: 0.25}}
		var outs []bool
		for i := 0; i < 30; i++ {
			_, werr := f.Write([]byte("payload-line\n"))
			serr := f.Sync()
			outs = append(outs, werr == nil, serr == nil)
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged between identical plans", i)
		}
	}
}
