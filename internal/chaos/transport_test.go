package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// echoServer counts requests and echoes a fixed body.
func echoServer(t *testing.T, hits *atomic.Int64, body string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, body)
	}))
}

func post(t *testing.T, tr *Transport, url, body string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

// TestTransportDropRequest: the server never sees a dropped request,
// and the error wraps ErrInjected.
func TestTransportDropRequest(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits, "ok")
	defer srv.Close()
	tr := &Transport{Plan: NetPlan{Seed: 1, DropRequest: 1}}
	if _, err := post(t, tr, srv.URL+"/x", "{}"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	if tr.Counts()["drop-request"] != 1 {
		t.Fatalf("counts = %v", tr.Counts())
	}
}

// TestTransportDropResponse: the server processes the call, the client
// still sees an error — the ack-lost fault.
func TestTransportDropResponse(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits, "ok")
	defer srv.Close()
	tr := &Transport{Plan: NetPlan{Seed: 1, DropResponse: 1}}
	if _, err := post(t, tr, srv.URL+"/x", "{}"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (request must have been processed)", hits.Load())
	}
}

// TestTransportDup: the server sees the request twice, the client one
// clean response.
func TestTransportDup(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits, "ok")
	defer srv.Close()
	tr := &Transport{Plan: NetPlan{Seed: 1, DupRequest: 1}}
	resp, err := post(t, tr, srv.URL+"/x", `{"a":1}`)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("body = %q", b)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2", hits.Load())
	}
}

// TestTransportTruncateResponse: the client reads a strict prefix, then
// io.ErrUnexpectedEOF.
func TestTransportTruncateResponse(t *testing.T) {
	var hits atomic.Int64
	full := strings.Repeat("abcdefgh", 64)
	srv := echoServer(t, &hits, full)
	defer srv.Close()
	tr := &Transport{Plan: NetPlan{Seed: 3, TruncateResponse: 1}}
	resp, err := post(t, tr, srv.URL+"/x", "{}")
	if err != nil {
		t.Fatal(err)
	}
	b, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != io.ErrUnexpectedEOF {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", rerr)
	}
	if len(b) == 0 || len(b) >= len(full) || !strings.HasPrefix(full, string(b)) {
		t.Fatalf("truncated body is not a strict prefix: %d of %d bytes", len(b), len(full))
	}
}

// TestTransportTruncateRequest: a body shorter than its declared
// Content-Length must surface as an error, not as a clean exchange the
// client would mistake for success.
func TestTransportTruncateRequest(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got.Store(int64(len(b)))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tr := &Transport{Plan: NetPlan{Seed: 2, TruncateRequest: 1}}
	body := strings.Repeat("x", 4096)
	_, err := post(t, tr, srv.URL+"/x", body)
	if err == nil && got.Load() == int64(len(body)) {
		t.Fatal("truncated request delivered its full body cleanly")
	}
}

// TestTransportDeterministicSchedule: two transports with the same plan
// inject the same faults for the same call sequence.
func TestTransportDeterministicSchedule(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits, "ok")
	defer srv.Close()
	run := func() ([]bool, map[string]int64) {
		tr := &Transport{Plan: NetPlan{Seed: 11, DropRequest: 0.3, DropResponse: 0.2}}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := post(t, tr, srv.URL+"/claim", "{}")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, tr.Counts()
	}
	o1, c1 := run()
	o2, c2 := run()
	if !bytes.Equal(boolBytes(o1), boolBytes(o2)) {
		t.Fatal("same plan, same sequence, different fault schedule")
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("fault counts diverged: %v vs %v", c1, c2)
		}
	}
}

func boolBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}
