package chaos

// transport.go is the network half of the fault layer: an
// http.RoundTripper that interposes on every coordinator call a worker
// makes and, per a (seed, endpoint, attempt) coin, drops the request
// before it is sent, drops the response after the server processed it
// (the ack-lost case — the nastier half of "drop"), delays it (which is
// how reordering between concurrent calls arises), duplicates it (the
// server must be idempotent), or truncates the request or response body
// mid-stream. Fault decisions are deterministic given the sequence of
// calls; the sequence itself is whatever the workers produce.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// NetPlan sets per-request fault probabilities. Each probability is
// rolled independently per request from its own salt, so faults
// compose (a delayed request can also lose its response).
type NetPlan struct {
	// Seed drives every coin the transport flips.
	Seed uint64
	// DropRequest aborts the call before anything reaches the server.
	DropRequest float64
	// DropResponse lets the server process the call, then loses the
	// response — the client sees an error for work that happened.
	DropResponse float64
	// Delay sleeps a uniform duration in (0, MaxDelay] before sending.
	Delay float64
	// DupRequest sends the request twice and returns the second
	// response (the first is drained and discarded).
	DupRequest float64
	// TruncateRequest cuts the request body short of its declared
	// Content-Length, which surfaces as a transport error client-side.
	TruncateRequest float64
	// TruncateResponse cuts the response body mid-stream: the client
	// reads a prefix, then io.ErrUnexpectedEOF.
	TruncateResponse float64
	// MaxDelay caps injected delays (0: 25ms).
	MaxDelay time.Duration
}

// Transport injects NetPlan faults around Inner (nil:
// http.DefaultTransport). Safe for concurrent use.
type Transport struct {
	Inner http.RoundTripper
	Plan  NetPlan

	mu       sync.Mutex
	attempts map[string]uint64
	faults   map[string]int64
}

// note records an injected fault for Counts.
func (t *Transport) note(kind string) {
	// Caller holds no lock; take it briefly.
	t.mu.Lock()
	if t.faults == nil {
		t.faults = make(map[string]int64)
	}
	t.faults[kind]++
	t.mu.Unlock()
}

// Counts snapshots injected-fault tallies by kind (tests assert the
// schedule actually exercised something).
func (t *Transport) Counts() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.faults))
	for k, v := range t.faults {
		out[k] = v
	}
	return out
}

// FaultKinds lists the kinds Counts may report, in stable order.
func FaultKinds() []string {
	ks := []string{"drop-request", "drop-response", "delay", "dup-request", "truncate-request", "truncate-response"}
	sort.Strings(ks)
	return ks
}

// truncatedReader yields a prefix then fails with io.ErrUnexpectedEOF.
type truncatedReader struct {
	r    io.Reader
	done bool
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.done {
		return 0, io.ErrUnexpectedEOF
	}
	n, err := t.r.Read(p)
	if err == io.EOF {
		t.done = true
		err = nil
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
	}
	return n, err
}

// shortBody delivers only the first k bytes of b, then reports EOF —
// under a larger declared Content-Length, the transport errors out.
type shortBody struct {
	r io.Reader
}

func (s *shortBody) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *shortBody) Close() error               { return nil }

// RoundTrip implements http.RoundTripper with fault injection.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	endpoint := req.URL.Path

	t.mu.Lock()
	if t.attempts == nil {
		t.attempts = make(map[string]uint64)
	}
	n := t.attempts[endpoint]
	t.attempts[endpoint] = n + 1
	t.mu.Unlock()
	coin := NewCoin(t.Plan.Seed, endpoint, n)

	if coin.Roll("drop-request", t.Plan.DropRequest) {
		if req.Body != nil {
			req.Body.Close()
		}
		t.note("drop-request")
		return nil, fmt.Errorf("%w: request to %s dropped", ErrInjected, endpoint)
	}

	// Buffer the body once: duplication and truncation both need to
	// replay or reshape it. Coordinator-protocol bodies are small JSON.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r2 := req.Clone(req.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		return inner.RoundTrip(r2)
	}

	if coin.Roll("delay", t.Plan.Delay) {
		max := t.Plan.MaxDelay
		if max <= 0 {
			max = 25 * time.Millisecond
		}
		t.note("delay")
		d := time.Duration(coin.Frac("delay-len") * float64(max))
		timer := time.NewTimer(d)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	if len(body) > 1 && coin.Roll("truncate-request", t.Plan.TruncateRequest) {
		k := 1 + int(coin.Frac("truncate-request-len")*float64(len(body)-1))
		r2 := req.Clone(req.Context())
		r2.Body = &shortBody{r: bytes.NewReader(body[:k])}
		r2.ContentLength = int64(len(body)) // declared full, delivered short
		t.note("truncate-request")
		resp, err := inner.RoundTrip(r2)
		if err != nil {
			return nil, err
		}
		// Some servers answer the malformed prefix anyway; pass it on.
		return resp, nil
	}

	if coin.Roll("dup-request", t.Plan.DupRequest) {
		t.note("dup-request")
		if first, err := send(); err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
	}

	resp, err := send()
	if err != nil {
		return nil, err
	}

	if coin.Roll("drop-response", t.Plan.DropResponse) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.note("drop-response")
		return nil, fmt.Errorf("%w: response from %s dropped", ErrInjected, endpoint)
	}

	if coin.Roll("truncate-response", t.Plan.TruncateResponse) {
		full, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(full) > 1 {
			k := 1 + int(coin.Frac("truncate-response-len")*float64(len(full)-1))
			resp.Body = io.NopCloser(&truncatedReader{r: bytes.NewReader(full[:k])})
			resp.ContentLength = -1
			t.note("truncate-response")
		} else {
			resp.Body = io.NopCloser(bytes.NewReader(full))
		}
	}
	return resp, nil
}
