package hgraph

// golden_test.go pins the generator's output bit-for-bit: SHA-256 network
// digests captured from the seed generator (the Builder-based lattice
// closure and map-based ID set, kept in-tree as NewReference) across a
// (n, d, k, seed) grid. The fast-path generator — direct-to-CSR BuildG,
// pooled or serial, open-addressed AssignIDs — must reproduce every one
// of them exactly, for any worker count. A digest change here means the
// generator's output changed, which silently invalidates every cached
// topology, golden run digest, and committed experiment table.

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

type goldenNetwork struct {
	p      Params
	digest string
}

func (tc goldenNetwork) name() string {
	return fmt.Sprintf("n=%d,d=%d,k=%d,seed=%d", tc.p.N, tc.p.D, tc.p.K, tc.p.Seed)
}

// goldenNetworks were captured from the seed generator before the
// fast-path rewrite (PR 5). Do not regenerate casually: these pin the
// network model itself. If an intentional output change ever forces a
// regeneration, bump GenVersion in the same commit so persistent
// topology stores orphan their now-stale blobs.
var goldenNetworks = []goldenNetwork{
	{Params{N: 96, D: 8, K: 0, Seed: 701}, "6ee15a013f91851c7992602cb3cb59f0f2115f7a3394daa698afda6d0e2b7753"},
	{Params{N: 128, D: 8, K: 2, Seed: 1}, "85940bbc3893ca0a30060d9f1e139ec97f2ca9edc1f9a03f1bc1ec755f692f65"},
	{Params{N: 200, D: 6, K: 0, Seed: 5}, "d8cde2e07897ddb91c2207a1ebbdbfaf0ab57cb98c0b9d76db8e31db9d6407a9"},
	{Params{N: 256, D: 10, K: 0, Seed: 7}, "e72b4cd31a855d7b4f80beada13dc5cca4b164fb264eb75ed7979ea7d0083266"},
	{Params{N: 300, D: 4, K: 1, Seed: 9}, "570d4894e6a782c41027056e434d22b38c20c8d00080db616d977c0b0e9f587c"},
	{Params{N: 512, D: 8, K: 0, Seed: 11}, "3f78c46b1bd5f5e2cebcb447de6d6716ffdea892cf8a294b32297a2542ff0f53"},
	{Params{N: 777, D: 12, K: 0, Seed: 13}, "5f6dfc6a07dd0d9508cd5822e715eeaebd6c4b94f3673af3ecb142904789a97a"},
	{Params{N: 1024, D: 8, K: 0, Seed: 42}, "95b767513cc67f37ffcfbf1cf2618b055ad4923365d2e6793bac747c78f184f5"},
	{Params{N: 2048, D: 8, K: 4, Seed: 3}, "48530223236b18bf6ca0c0ef5885c804ee18b2062a6ea758c36c967dddca6fb9"},
}

// TestGoldenNetworkDigests pins the default generator to the seed
// captures.
func TestGoldenNetworkDigests(t *testing.T) {
	for _, tc := range goldenNetworks {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			net := MustNew(tc.p)
			if got := net.Digest(); got != tc.digest {
				t.Errorf("digest mismatch:\n got %s\nwant %s\n(generator output changed; see golden_test.go header)", got, tc.digest)
			}
		})
	}
}

// TestGoldenNetworkDigestsReference pins the in-tree reference generator
// to the same captures — if this fails, the oracle itself drifted.
func TestGoldenNetworkDigestsReference(t *testing.T) {
	for _, tc := range goldenNetworks {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			net, err := NewReference(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if got := net.Digest(); got != tc.digest {
				t.Errorf("reference digest mismatch:\n got %s\nwant %s", got, tc.digest)
			}
		})
	}
}

// TestGoldenNetworkDigestsWorkerInvariant drives the pooled fast path at
// several worker counts: chunked parallel row construction must stitch to
// the identical CSR no matter how the node range is partitioned. The 32-
// worker case exceeds n/chunkSize for the smaller grid entries, pinning
// the empty-trailing-chunk path (a pool bigger than the work must not
// corrupt or crash the stitch).
func TestGoldenNetworkDigestsWorkerInvariant(t *testing.T) {
	for _, workers := range []int{2, 3, 8, 32} {
		pool := sim.NewPool(workers)
		defer pool.Close()
		for _, tc := range goldenNetworks {
			net, err := NewWith(tc.p, pool)
			if err != nil {
				t.Fatal(err)
			}
			if got := net.Digest(); got != tc.digest {
				t.Errorf("%s with %d workers: digest %s, want %s", tc.name(), workers, got, tc.digest)
			}
		}
	}
}

// TestBuildGRadiusEdgeCases pins the exported BuildG's off-grid radii
// against the reference closure: k=0 (edgeless) and k=1 (simple(H)) —
// inputs New never produces but the public API admits.
func TestBuildGRadiusEdgeCases(t *testing.T) {
	h := GenerateH(64, 6, rng.New(3))
	for _, k := range []int{0, 1} {
		fast := BuildG(h, k)
		ref := buildGReference(h, k)
		fastOff, fastAdj := fast.CSR()
		refOff, refAdj := ref.CSR()
		if len(fastAdj) != len(refAdj) || len(fastOff) != len(refOff) {
			t.Fatalf("k=%d: CSR shape differs (fast %d/%d, ref %d/%d)",
				k, len(fastOff), len(fastAdj), len(refOff), len(refAdj))
		}
		for i := range fastAdj {
			if fastAdj[i] != refAdj[i] {
				t.Fatalf("k=%d: adjacency differs at %d", k, i)
			}
		}
		for i := range fastOff {
			if fastOff[i] != refOff[i] {
				t.Fatalf("k=%d: offsets differ at %d", k, i)
			}
		}
	}
}

// TestFastPathMatchesReferenceRandomized widens the pinned grid with a
// randomized sweep of parameters, comparing the fast path against the
// reference generator structurally (digest equality covers both graphs,
// K, and the ID draws).
func TestFastPathMatchesReferenceRandomized(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	for seed := uint64(100); seed < 112; seed++ {
		n := 64 + int(seed%7)*97
		d := 4 + 2*int(seed%4)
		k := int(seed % 3) // 0 = paper default
		p := Params{N: n, D: d, K: k, Seed: seed}
		ref, err := NewReference(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewWith(p, pool)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Digest() != fast.Digest() {
			t.Errorf("params %+v: fast path diverges from reference", p)
		}
	}
}
