// Package hgraph implements the paper's network model (§2.1 and Appendix A):
//
//   - H(n,d): a random d-regular multigraph built as the union of d/2
//     independent uniform Hamiltonian cycles (the Law–Siu P2P model), an
//     expander w.h.p. (Lemma 19).
//   - L: the "lattice" overlay connecting every pair of nodes within
//     H-distance k, k = ⌈d/3⌉.
//   - G = H ∪ L: the small-world network the protocol runs on.
//
// It also implements the structural machinery of the analysis: the
// locally-tree-like classification (Definitions 7–8), the node taxonomy of
// Definition 9 (Byzantine, locally-tree-like, safe, Byzantine-safe, ...),
// Byzantine placement, and the all-Byzantine-chain check of Observation 6.
package hgraph

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Params configures a small-world network instance.
type Params struct {
	N    int    // number of nodes (>= 3)
	D    int    // H-degree; even, >= 4 (the paper assumes >= 8)
	K    int    // lattice radius; 0 means the paper's default ⌈d/3⌉
	Seed uint64 // generator seed
}

// DefaultK returns the paper's lattice radius k = ⌈d/3⌉.
func DefaultK(d int) int { return (d + 2) / 3 }

// Canonical returns p with defaults resolved (K = ⌈d/3⌉ when zero), so two
// Params that generate identical networks compare equal. The sweep
// subsystem's network cache and job content hashes key on the canonical
// form, letting K=0 and an explicit default K address the same instance.
func (p Params) Canonical() Params {
	if p.K == 0 {
		p.K = DefaultK(p.D)
	}
	return p
}

// Network is a generated instance of the paper's model.
type Network struct {
	Params Params
	H      *graph.Graph // the d-regular expander (multigraph)
	G      *graph.Graph // H ∪ L as a simple graph
	K      int          // lattice radius actually used
	IDs    []uint64     // distinct node IDs from a large space
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 3 {
		return fmt.Errorf("hgraph: need N >= 3, got %d", p.N)
	}
	if p.D < 4 || p.D%2 != 0 {
		return fmt.Errorf("hgraph: need even D >= 4, got %d", p.D)
	}
	if p.N <= p.D {
		return fmt.Errorf("hgraph: need N > D (got N=%d, D=%d)", p.N, p.D)
	}
	if p.K < 0 {
		return fmt.Errorf("hgraph: negative K %d", p.K)
	}
	return nil
}

// GenerateH builds an H(n,d) random regular multigraph: the union of d/2
// independent uniformly random Hamiltonian cycles on [0, n).
func GenerateH(n, d int, src *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	for c := 0; c < d/2; c++ {
		perm := src.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(perm[i], perm[(i+1)%n])
		}
	}
	return b.Build()
}

// BuildG materializes G = H ∪ L as a simple graph: u~v in G iff
// 1 <= dist_H(u,v) <= k. For constant d and k this is a constant-degree
// graph (bounded by (d-1)^{k+1}, Observation 2).
func BuildG(h *graph.Graph, k int) *graph.Graph {
	n := h.N()
	b := graph.NewBuilder(n)
	scratch := graph.NewBFS(h)
	for v := 0; v < n; v++ {
		nodes, _ := graph.BallWith(scratch, v, k)
		for _, w := range nodes {
			if int(w) > v { // add each unordered pair once; skips loops
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.Build()
}

// AssignIDs draws n distinct 63-bit IDs uniformly at random. The ID space
// is enormous relative to any n we simulate, matching the paper's
// assumption that ID length leaks no information about n.
func AssignIDs(n int, src *rng.Source) []uint64 {
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		for {
			id := src.Uint64() >> 1 // 63-bit
			if id != 0 && !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

// New generates a full network instance from params.
func New(p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K
	if k == 0 {
		k = DefaultK(p.D)
	}
	src := rng.Split(p.Seed, 0x48475248) // "HGRH"
	h := GenerateH(p.N, p.D, src)
	g := BuildG(h, k)
	ids := AssignIDs(p.N, rng.Split(p.Seed, 0x49445350)) // "IDSP"
	return &Network{Params: p, H: h, G: g, K: k, IDs: ids}, nil
}

// MustNew is New for tests and examples; it panics on invalid params.
func MustNew(p Params) *Network {
	net, err := New(p)
	if err != nil {
		panic(err)
	}
	return net
}

// LTLRadius returns the paper's locally-tree-like radius
// r = log n / (10 log d) (Definition 7), clamped to at least 1 so that the
// classification is non-degenerate at laptop scales (the paper's constant
// 10 makes r = 0 below astronomically large n; with r >= 1 the
// classification still measures exactly the multi-edge/short-cycle events
// the analysis charges to NLT nodes).
func LTLRadius(n, d int) int {
	r := int(math.Log2(float64(n)) / (10 * math.Log2(float64(d))))
	if r < 1 {
		r = 1
	}
	return r
}

// IsLocallyTreeLike reports whether the radius-r ball around w in h induces
// a perfect (d-1)-ary tree (Definition 8): w has d distinct neighbors and
// every interior node u at distance 0 < j < r has exactly one neighbor at
// distance j-1 and d-1 at distance j+1, counting edge multiplicity.
func IsLocallyTreeLike(h *graph.Graph, scratch *graph.BFS, w, r int) bool {
	d := h.Degree(w)
	nodes, dist := graph.BallWith(scratch, w, r)
	for _, u := range nodes {
		du := dist[u]
		up, down, same := 0, 0, 0
		for _, x := range h.Neighbors(int(u)) {
			switch dist[x] {
			case du - 1:
				up++
			case du + 1:
				down++
			case du:
				same++ // self-loops, parallel siblings, cross edges
			default:
				// Unreached neighbors lie beyond the truncation radius;
				// possible only for boundary nodes.
				if int(du) < r {
					return false
				}
			}
		}
		switch {
		case u == int32(w):
			if up != 0 || same != 0 || down != d {
				return false
			}
		case int(du) < r:
			if up != 1 || same != 0 || down != d-1 {
				return false
			}
		default:
			// Boundary nodes must still have a unique parent and no edges
			// inside their own layer, or the induced ball is not a tree
			// (Definition 8).
			if up != 1 || same != 0 {
				return false
			}
		}
	}
	return true
}

// LocallyTreeLike classifies every node and returns the boolean vector and
// the number of LTL nodes. Lemma 1: w.h.p. at least n - O(n^0.8) nodes are
// locally tree-like.
func LocallyTreeLike(h *graph.Graph, r int) (ltl []bool, count int) {
	ltl = make([]bool, h.N())
	scratch := graph.NewBFS(h)
	for v := 0; v < h.N(); v++ {
		if IsLocallyTreeLike(h, scratch, v, r) {
			ltl[v] = true
			count++
		}
	}
	return ltl, count
}

// PlaceByzantine selects count distinct Byzantine nodes uniformly at random
// (the paper's random-placement assumption) and returns a membership vector.
func PlaceByzantine(n, count int, src *rng.Source) []bool {
	if count < 0 || count > n {
		panic(fmt.Sprintf("hgraph: byzantine count %d out of [0,%d]", count, n))
	}
	byz := make([]bool, n)
	for _, v := range src.Sample(n, count) {
		byz[v] = true
	}
	return byz
}

// ByzantineBudget returns ⌊n^(1-δ)⌋, the paper's fault budget. A small
// epsilon guards against Pow returning 7.999… for exact powers.
func ByzantineBudget(n int, delta float64) int {
	return int(math.Floor(math.Pow(float64(n), 1-delta) + 1e-9))
}

// LongestByzantineChain returns the maximum number of nodes on a simple
// path in h that consists entirely of Byzantine nodes, capped at limit
// (search stops early once limit is reached). Observation 6: w.h.p. there
// is no such chain with k nodes.
func LongestByzantineChain(h *graph.Graph, byz []bool, limit int) int {
	best := 0
	onPath := make([]bool, h.N())
	var dfs func(v, depth int)
	dfs = func(v, depth int) {
		if depth > best {
			best = depth
		}
		if best >= limit {
			return
		}
		onPath[v] = true
		for _, w := range h.Neighbors(v) {
			if byz[w] && !onPath[w] {
				dfs(int(w), depth+1)
			}
		}
		onPath[v] = false
	}
	for v := 0; v < h.N(); v++ {
		if byz[v] {
			dfs(v, 1)
			if best >= limit {
				return best
			}
		}
	}
	return best
}

// Taxonomy is the node partition of Definition 9, computed for a concrete
// instance. Distances for Unsafe/BUS are measured in G, as the definition
// requires.
type Taxonomy struct {
	Radius   int // the "a log n" radius used (in G-hops)
	LTLr     int // radius used for the locally-tree-like classification
	Byz      []bool
	LTL      []bool
	Unsafe   []bool // within Radius of a non-LTL node in G
	BUS      []bool // within Radius of a Bad (Byz ∪ NLT) node in G
	NByz     int
	NLTL     int
	NUnsafe  int
	NBUS     int
	NCrashed int // filled in by protocol runs; zero here
}

// UnsafeRadius returns the paper's a·log n with a = δ/(10 k log(d-1)),
// clamped to at least 1 hop (see LTLRadius for the rationale).
func UnsafeRadius(n, d, k int, delta float64) int {
	a := delta / (10 * float64(k) * math.Log2(float64(d-1)))
	r := int(a * math.Log2(float64(n)))
	if r < 1 {
		r = 1
	}
	return r
}

// Classify computes the Definition 9 taxonomy for a network instance.
func Classify(net *Network, byz []bool, delta float64) *Taxonomy {
	n := net.H.N()
	ltlR := LTLRadius(n, net.Params.D)
	ltl, nltl := LocallyTreeLike(net.H, ltlR)
	radius := UnsafeRadius(n, net.Params.D, net.K, delta)

	tax := &Taxonomy{
		Radius: radius,
		LTLr:   ltlR,
		Byz:    byz,
		LTL:    ltl,
		Unsafe: make([]bool, n),
		BUS:    make([]bool, n),
		NLTL:   nltl,
	}
	for v := 0; v < n; v++ {
		if byz[v] {
			tax.NByz++
		}
	}

	// Multi-source BFS in G from all NLT nodes marks Unsafe; from all Bad
	// nodes marks BUS. One distance vector serves both passes (re-zeroed
	// between them) — the second pass's sources are a superset, so the
	// marking order is unaffected.
	dist := make([]int32, n)
	markWithin := func(sources []int32, out []bool) int {
		for i := range dist {
			dist[i] = graph.Unreached
		}
		queue := make([]int32, 0, len(sources))
		for _, s := range sources {
			if dist[s] == graph.Unreached {
				dist[s] = 0
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if int(dist[v]) >= radius {
				continue
			}
			for _, w := range net.G.Neighbors(int(v)) {
				if dist[w] == graph.Unreached {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		count := 0
		for v := 0; v < n; v++ {
			if dist[v] != graph.Unreached {
				out[v] = true
				count++
			}
		}
		return count
	}

	var nlt, bad []int32
	for v := 0; v < n; v++ {
		if !ltl[v] {
			nlt = append(nlt, int32(v))
		}
		if !ltl[v] || byz[v] {
			bad = append(bad, int32(v))
		}
	}
	tax.NUnsafe = markWithin(nlt, tax.Unsafe)
	tax.NBUS = markWithin(bad, tax.BUS)
	return tax
}

// WattsStrogatz generates the classic Watts–Strogatz small-world graph:
// a ring lattice where each node connects to its k nearest neighbors on
// each side, with each edge rewired to a uniform endpoint with probability
// beta. Used as the comparison model in experiment E3 (the paper notes its
// degrees are unbounded, unlike H ∪ L).
func WattsStrogatz(n, k int, beta float64, src *rng.Source) *graph.Graph {
	if n < 2*k+1 {
		panic(fmt.Sprintf("hgraph: WattsStrogatz needs n >= 2k+1 (n=%d, k=%d)", n, k))
	}
	type edge struct{ u, v int }
	edges := make([]edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, edge{v, (v + j) % n})
		}
	}
	present := make(map[[2]int]bool, len(edges))
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for _, e := range edges {
		present[key(e.u, e.v)] = true
	}
	for i := range edges {
		if src.Float64() >= beta {
			continue
		}
		u := edges[i].u
		// Rewire the far endpoint to a uniform non-neighbor.
		for attempt := 0; attempt < 32; attempt++ {
			w := src.Intn(n)
			if w == u || present[key(u, w)] {
				continue
			}
			delete(present, key(edges[i].u, edges[i].v))
			edges[i].v = w
			present[key(u, w)] = true
			break
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build()
}
