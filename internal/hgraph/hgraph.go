// Package hgraph implements the paper's network model (§2.1 and Appendix A):
//
//   - H(n,d): a random d-regular multigraph built as the union of d/2
//     independent uniform Hamiltonian cycles (the Law–Siu P2P model), an
//     expander w.h.p. (Lemma 19).
//   - L: the "lattice" overlay connecting every pair of nodes within
//     H-distance k, k = ⌈d/3⌉.
//   - G = H ∪ L: the small-world network the protocol runs on.
//
// It also implements the structural machinery of the analysis: the
// locally-tree-like classification (Definitions 7–8), the node taxonomy of
// Definition 9 (Byzantine, locally-tree-like, safe, Byzantine-safe, ...),
// Byzantine placement, and the all-Byzantine-chain check of Observation 6.
package hgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Params configures a small-world network instance.
type Params struct {
	N    int    // number of nodes (>= 3)
	D    int    // H-degree; even, >= 4 (the paper assumes >= 8)
	K    int    // lattice radius; 0 means the paper's default ⌈d/3⌉
	Seed uint64 // generator seed
}

// DefaultK returns the paper's lattice radius k = ⌈d/3⌉.
func DefaultK(d int) int { return (d + 2) / 3 }

// GenVersion identifies the generator's output, not its implementation:
// two generators with the same GenVersion produce bit-identical networks
// for equal Params. Bump it in the same commit that regenerates the
// golden network digests (golden_test.go) after an INTENTIONAL output
// change — persistent topology stores key on it, so stale blobs from
// the previous generator are orphaned instead of served.
const GenVersion = 1

// Canonical returns p with defaults resolved (K = ⌈d/3⌉ when zero), so two
// Params that generate identical networks compare equal. The sweep
// subsystem's network cache and job content hashes key on the canonical
// form, letting K=0 and an explicit default K address the same instance.
func (p Params) Canonical() Params {
	if p.K == 0 {
		p.K = DefaultK(p.D)
	}
	return p
}

// Network is a generated instance of the paper's model.
type Network struct {
	Params Params
	H      *graph.Graph // the d-regular expander (multigraph)
	G      *graph.Graph // H ∪ L as a simple graph
	K      int          // lattice radius actually used
	IDs    []uint64     // distinct node IDs from a large space
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 3 {
		return fmt.Errorf("hgraph: need N >= 3, got %d", p.N)
	}
	if p.D < 4 || p.D%2 != 0 {
		return fmt.Errorf("hgraph: need even D >= 4, got %d", p.D)
	}
	if p.N <= p.D {
		return fmt.Errorf("hgraph: need N > D (got N=%d, D=%d)", p.N, p.D)
	}
	if p.K < 0 {
		return fmt.Errorf("hgraph: negative K %d", p.K)
	}
	return nil
}

// GenerateH builds an H(n,d) random regular multigraph: the union of d/2
// independent uniformly random Hamiltonian cycles on [0, n).
func GenerateH(n, d int, src *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	for c := 0; c < d/2; c++ {
		perm := src.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(perm[i], perm[(i+1)%n])
		}
	}
	return b.Build()
}

// BuildG materializes G = H ∪ L as a simple graph: u~v in G iff
// 1 <= dist_H(u,v) <= k. For constant d and k this is a constant-degree
// graph (bounded by (d-1)^{k+1}, Observation 2). Serial; see BuildGWith
// for the pooled variant.
func BuildG(h *graph.Graph, k int) *graph.Graph {
	return BuildGWith(h, k, nil)
}

// BuildGWith is BuildG parallelized over nodes via pool (nil runs
// serially). The row of v in G is exactly ball_H(v, k) \ {v}, and the
// fast path never sorts: it grows distance balls level by level, where
// the level-i ball of v is the dedup-merge of the already-sorted level-
// (i-1) balls of v's neighbors. H's CSR rows are sorted, so level 1 is a
// dedup copy, and every later level is a pairwise merge tree over sorted
// inputs — rows are sorted by construction. (The reference builder spent
// ~70% of generation in per-row sorts; see buildGReference.)
//
// Each level is one chunked parallel pass reading only the previous
// level's arrays: workers emit finished rows into per-chunk slabs, and
// since sim.Pool chunks are contiguous disjoint node ranges, a prefix
// sum over the degree vector lands each slab in the level's CSR with a
// single copy — no intermediate edge list and no counting sort.
//
// The output is byte-identical to the reference builder (same offsets,
// same sorted rows), pinned by the golden network digest tests.
func BuildGWith(h *graph.Graph, k int, pool *sim.Pool) *graph.Graph {
	n := h.N()
	hOff, hAdj := h.CSR()
	avgDeg := 0
	if n > 0 {
		avgDeg = len(hAdj)/n + 1
	}

	if k <= 0 {
		// A radius-0 ball is just {v}: G has no edges (matching the
		// reference builder; New never passes 0, which canonicalizes to
		// the paper's default radius).
		return graph.FromCSRUnchecked(make([]int32, n+1), nil)
	}
	if k == 1 {
		// G = simple(H): rows are the deduped H rows minus the center.
		off, adj := rowPass(n, pool, avgDeg, func(v int, m *merger, out []int32) []int32 {
			var prev int32 = -1
			for _, w := range hAdj[hOff[v]:hOff[v+1]] {
				if w != prev && w != int32(v) {
					out = append(out, w)
				}
				prev = w
			}
			return out
		})
		return graph.FromCSRUnchecked(off, adj)
	}

	// Level 1, center-inclusive: {v} ∪ unique neighbors, still sorted —
	// v is spliced into its ordered position while deduping the row.
	prevOff, prevAdj := rowPass(n, pool, avgDeg+1, func(v int, m *merger, out []int32) []int32 {
		center := int32(v)
		placed := false
		var prev int32 = -1
		for _, w := range hAdj[hOff[v]:hOff[v+1]] {
			if w == prev {
				continue
			}
			prev = w
			if !placed && w >= center {
				out = append(out, center)
				placed = true
				if w == center { // self-loop: the center is already emitted
					continue
				}
			}
			out = append(out, w)
		}
		if !placed {
			out = append(out, center)
		}
		return out
	})

	// Levels 2..k: ball_i(v) = ∪_{w ∈ N(v)} ball_{i-1}(w) (∪ {v}, which
	// every neighbor's ball already contains at i >= 2 since dist(w,v)=1).
	// The final level drops the center to become G's adjacency.
	for i := 2; i <= k; i++ {
		final := i == k
		sizeHint := len(prevAdj) / max(n, 1) * (avgDeg - 1)
		if sizeHint > n {
			sizeHint = n
		}
		drop := func(v int) int32 {
			if final {
				return int32(v)
			}
			return -1
		}
		off, adj := rowPass(n, pool, sizeHint, func(v int, m *merger, out []int32) []int32 {
			lists := m.lists[:0]
			var prev int32 = -1
			for _, w := range hAdj[hOff[v]:hOff[v+1]] {
				if w != prev && w != int32(v) {
					lists = append(lists, prevAdj[prevOff[w]:prevOff[w+1]])
				}
				prev = w
			}
			m.lists = lists
			if len(lists) == 0 {
				// All edges were self-loops: the ball is {v} at every
				// radius, so the center-inclusive row is {v} and the
				// final row is empty.
				if !final {
					out = append(out, int32(v))
				}
				return out
			}
			return m.union(lists, drop(v), out)
		})
		prevOff, prevAdj = off, adj
	}
	return graph.FromCSRUnchecked(prevOff, prevAdj)
}

// merger is per-worker scratch for sorted-list unions: ping-pong slabs
// (with their row headers) for the pairwise merge rounds, and a reusable
// gather slice for the caller's input lists.
type merger struct {
	buf   [2][]int32
	hdr   [2][][]int32
	lists [][]int32
}

// union appends the sorted deduplicated union of the sorted input lists
// to out, omitting drop (pass -1 to keep everything). Intermediate merge
// rounds keep duplicates (overlap between sibling balls is modest and
// duplicates cost only their own copies); the final merge dedups.
//
// Every row a round produces — including an odd leftover, which is
// copied rather than carried by reference — lives in that round's slab,
// so each round reads only the previous round's buffer while writing its
// own and the ping-pong reuse can never clobber a list still in flight.
// Slabs are pre-sized to the round's exact output, so row headers never
// dangle across a reallocation.
func (m *merger) union(lists [][]int32, drop int32, out []int32) []int32 {
	cur := lists
	side := 0
	for len(cur) > 2 {
		total := 0
		for _, l := range cur {
			total += len(l)
		}
		slab := m.buf[side]
		if cap(slab) < total {
			slab = make([]int32, 0, total)
		} else {
			slab = slab[:0]
		}
		hdr := m.hdr[side][:0]
		for i := 0; i < len(cur); i += 2 {
			base := len(slab)
			if i+1 < len(cur) {
				slab = merge2(slab, cur[i], cur[i+1])
			} else {
				slab = append(slab, cur[i]...)
			}
			hdr = append(hdr, slab[base:len(slab):len(slab)])
		}
		m.buf[side] = slab
		m.hdr[side] = hdr
		cur = hdr
		side ^= 1
	}
	if len(cur) == 1 {
		return dedupInto(out, cur[0], drop)
	}
	return mergeDedup(out, cur[0], cur[1], drop)
}

// merge2 appends the sorted merge (duplicates kept) of a and b to dst,
// whose capacity must already cover the result (union pre-sizes its
// slabs): extending by reslice and writing through a cursor keeps the
// hot loop free of append's capacity checks.
func merge2(dst, a, b []int32) []int32 {
	o := len(dst)
	dst = dst[:o+len(a)+len(b)] // extend within the pre-sized capacity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av <= bv {
			dst[o] = av
			i++
		} else {
			dst[o] = bv
			j++
		}
		o++
	}
	o += copy(dst[o:], a[i:])
	copy(dst[o:], b[j:])
	return dst
}

// mergeDedup appends the sorted deduplicated merge of a and b to dst,
// omitting drop. Node IDs are non-negative, so -1 is a safe "nothing
// emitted yet" sentinel.
func mergeDedup(dst, a, b []int32, drop int32) []int32 {
	last := int32(-1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
			j++
		} else {
			i++
		}
		if x != last && x != drop {
			dst = append(dst, x)
			last = x
		}
	}
	rest := a[i:]
	if j < len(b) {
		rest = b[j:]
	}
	for _, x := range rest {
		if x != last && x != drop {
			dst = append(dst, x)
			last = x
		}
	}
	return dst
}

// dedupInto appends the deduplicated copy of sorted a to dst, omitting
// drop.
func dedupInto(dst, a []int32, drop int32) []int32 {
	last := int32(-1)
	for _, x := range a {
		if x != last && x != drop {
			dst = append(dst, x)
			last = x
		}
	}
	return dst
}

// rowPass builds one CSR level in parallel: emit appends node v's
// finished sorted row to its slab and returns it. Chunk ranges from
// sim.Pool are contiguous and disjoint, so each chunk's slab is the
// exact concatenation of its rows in node order and stitching is one
// copy per shard after a prefix sum over the degree vector.
func rowPass(n int, pool *sim.Pool, sizeHint int, emit func(v int, m *merger, out []int32) []int32) (offsets, adj []int32) {
	if sizeHint < 1 {
		sizeHint = 1
	}
	deg := make([]int32, n)
	type shard struct {
		start int
		rows  []int32
	}
	var (
		mu     sync.Mutex
		shards []shard
	)
	build := func(start, end int) {
		if start >= end {
			// Pools larger than n/chunkSize emit trailing chunks whose
			// clamped range is empty; recording them would index
			// offsets[start] past the end during stitching.
			return
		}
		m := &merger{}
		slab := make([]int32, 0, sizeHint*(end-start))
		for v := start; v < end; v++ {
			base := len(slab)
			slab = emit(v, m, slab)
			deg[v] = int32(len(slab) - base)
		}
		mu.Lock()
		shards = append(shards, shard{start: start, rows: slab})
		mu.Unlock()
	}
	if pool == nil {
		build(0, n)
	} else {
		pool.ForChunks(n, build)
	}

	offsets = make([]int32, n+1)
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(deg[v])
		if total > math.MaxInt32 {
			panic(fmt.Sprintf("hgraph: level adjacency exceeds int32 entries at n=%d", n))
		}
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj = make([]int32, offsets[n])
	slices.SortFunc(shards, func(a, b shard) int { return a.start - b.start })
	for _, s := range shards {
		copy(adj[offsets[s.start]:], s.rows)
	}
	return offsets, adj
}

// AssignIDs draws n distinct 63-bit IDs uniformly at random. The ID space
// is enormous relative to any n we simulate, matching the paper's
// assumption that ID length leaks no information about n.
//
// Duplicate detection runs on a preallocated open-addressing table (zero
// is free: IDs are never zero) instead of a growing map[uint64]bool — the
// same draws are accepted and rejected in the same order, without the
// map's incremental rehash copies.
func AssignIDs(n int, src *rng.Source) []uint64 {
	ids := make([]uint64, n)
	size := 16
	for size < 2*n { // load factor <= 0.5 keeps probe chains short
		size <<= 1
	}
	table := make([]uint64, size)
	mask := uint64(size - 1)
	for i := 0; i < n; i++ {
	draw:
		for {
			id := src.Uint64() >> 1 // 63-bit
			if id == 0 {
				continue
			}
			slot := id & mask // IDs are uniform bits: the low bits hash themselves
			for {
				switch table[slot] {
				case 0:
					table[slot] = id
					ids[i] = id
					break draw
				case id:
					continue draw // duplicate: redraw, as the map path did
				}
				slot = (slot + 1) & mask
			}
		}
	}
	return ids
}

// parallelGenThreshold is the node count below which New skips spinning a
// transient worker pool: at small n the lattice closure runs in
// microseconds and pool start-up would dominate.
const parallelGenThreshold = 4096

// New generates a full network instance from params. Large instances
// parallelize the lattice closure over a transient worker pool; callers
// generating many networks (the sweep cache, netgen -pregen) can amortize
// pool start-up across generations with NewWith.
func New(p Params) (*Network, error) {
	if p.N >= parallelGenThreshold && runtime.GOMAXPROCS(0) > 1 {
		pool := sim.NewPool(0)
		defer pool.Close()
		return NewWith(p, pool)
	}
	return NewWith(p, nil)
}

// NewWith is New running the lattice closure on the caller's pool (nil
// runs serially). The pool is borrowed for the duration of the call only;
// per sim.Pool's contract the caller must not use it concurrently.
func NewWith(p Params, pool *sim.Pool) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K
	if k == 0 {
		k = DefaultK(p.D)
	}
	src := rng.Split(p.Seed, 0x48475248) // "HGRH"
	h := GenerateH(p.N, p.D, src)
	g := BuildGWith(h, k, pool)
	ids := AssignIDs(p.N, rng.Split(p.Seed, 0x49445350)) // "IDSP"
	return &Network{Params: p, H: h, G: g, K: k, IDs: ids}, nil
}

// NewReference generates a network with the pre-fast-path generator: the
// Builder-based lattice closure and the map-based ID set, exactly as the
// seed engine shipped them. It exists as the oracle the fast path is
// pinned against — the golden digest tests assert NewReference and New
// agree bit-for-bit across a parameter grid, and cmd/bench measures both
// so every trajectory entry records the generation speedup on the same
// machine.
func NewReference(p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.K
	if k == 0 {
		k = DefaultK(p.D)
	}
	src := rng.Split(p.Seed, 0x48475248) // "HGRH"
	h := GenerateH(p.N, p.D, src)
	g := buildGReference(h, k)
	ids := assignIDsReference(p.N, rng.Split(p.Seed, 0x49445350)) // "IDSP"
	return &Network{Params: p, H: h, G: g, K: k, IDs: ids}, nil
}

// buildGReference is the seed lattice closure: per-node balls appended to
// an edge Builder, finalized by Build's counting sort.
func buildGReference(h *graph.Graph, k int) *graph.Graph {
	n := h.N()
	b := graph.NewBuilder(n)
	scratch := graph.NewBFS(h)
	for v := 0; v < n; v++ {
		nodes, _ := graph.BallWith(scratch, v, k)
		for _, w := range nodes {
			if int(w) > v { // add each unordered pair once; skips loops
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.Build()
}

// assignIDsReference is the seed ID assignment with its map-based
// duplicate set.
func assignIDsReference(n int, src *rng.Source) []uint64 {
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		for {
			id := src.Uint64() >> 1 // 63-bit
			if id != 0 && !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

// Digest returns a content fingerprint of the generated instance: a
// SHA-256 over K, both graphs' CSR arrays, and the ID vector. Two
// networks with equal digests are structurally identical to the engine
// (same tables, same IDs), which is what the golden generator-identity
// tests and the topology store's round-trip tests pin.
func (net *Network) Digest() string {
	h := sha256.New()
	var b [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	put(uint64(net.K))
	for _, g := range []*graph.Graph{net.H, net.G} {
		off, adj := g.CSR()
		put(uint64(len(off)))
		for _, v := range off {
			put(uint64(uint32(v)))
		}
		put(uint64(len(adj)))
		for _, v := range adj {
			put(uint64(uint32(v)))
		}
	}
	put(uint64(len(net.IDs)))
	for _, id := range net.IDs {
		put(id)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MustNew is New for tests and examples; it panics on invalid params.
func MustNew(p Params) *Network {
	net, err := New(p)
	if err != nil {
		panic(err)
	}
	return net
}

// LTLRadius returns the paper's locally-tree-like radius
// r = log n / (10 log d) (Definition 7), clamped to at least 1 so that the
// classification is non-degenerate at laptop scales (the paper's constant
// 10 makes r = 0 below astronomically large n; with r >= 1 the
// classification still measures exactly the multi-edge/short-cycle events
// the analysis charges to NLT nodes).
func LTLRadius(n, d int) int {
	r := int(math.Log2(float64(n)) / (10 * math.Log2(float64(d))))
	if r < 1 {
		r = 1
	}
	return r
}

// IsLocallyTreeLike reports whether the radius-r ball around w in h induces
// a perfect (d-1)-ary tree (Definition 8): w has d distinct neighbors and
// every interior node u at distance 0 < j < r has exactly one neighbor at
// distance j-1 and d-1 at distance j+1, counting edge multiplicity.
func IsLocallyTreeLike(h *graph.Graph, scratch *graph.BFS, w, r int) bool {
	d := h.Degree(w)
	nodes, dist := graph.BallWith(scratch, w, r)
	for _, u := range nodes {
		du := dist[u]
		up, down, same := 0, 0, 0
		for _, x := range h.Neighbors(int(u)) {
			switch dist[x] {
			case du - 1:
				up++
			case du + 1:
				down++
			case du:
				same++ // self-loops, parallel siblings, cross edges
			default:
				// Unreached neighbors lie beyond the truncation radius;
				// possible only for boundary nodes.
				if int(du) < r {
					return false
				}
			}
		}
		switch {
		case u == int32(w):
			if up != 0 || same != 0 || down != d {
				return false
			}
		case int(du) < r:
			if up != 1 || same != 0 || down != d-1 {
				return false
			}
		default:
			// Boundary nodes must still have a unique parent and no edges
			// inside their own layer, or the induced ball is not a tree
			// (Definition 8).
			if up != 1 || same != 0 {
				return false
			}
		}
	}
	return true
}

// LocallyTreeLike classifies every node and returns the boolean vector and
// the number of LTL nodes. Lemma 1: w.h.p. at least n - O(n^0.8) nodes are
// locally tree-like.
func LocallyTreeLike(h *graph.Graph, r int) (ltl []bool, count int) {
	ltl = make([]bool, h.N())
	scratch := graph.NewBFS(h)
	for v := 0; v < h.N(); v++ {
		if IsLocallyTreeLike(h, scratch, v, r) {
			ltl[v] = true
			count++
		}
	}
	return ltl, count
}

// PlaceByzantine selects count distinct Byzantine nodes uniformly at random
// (the paper's random-placement assumption) and returns a membership vector.
func PlaceByzantine(n, count int, src *rng.Source) []bool {
	if count < 0 || count > n {
		panic(fmt.Sprintf("hgraph: byzantine count %d out of [0,%d]", count, n))
	}
	byz := make([]bool, n)
	for _, v := range src.Sample(n, count) {
		byz[v] = true
	}
	return byz
}

// ByzantineBudget returns ⌊n^(1-δ)⌋, the paper's fault budget. A small
// epsilon guards against Pow returning 7.999… for exact powers.
func ByzantineBudget(n int, delta float64) int {
	return int(math.Floor(math.Pow(float64(n), 1-delta) + 1e-9))
}

// LongestByzantineChain returns the maximum number of nodes on a simple
// path in h that consists entirely of Byzantine nodes, capped at limit
// (search stops early once limit is reached). Observation 6: w.h.p. there
// is no such chain with k nodes.
func LongestByzantineChain(h *graph.Graph, byz []bool, limit int) int {
	best := 0
	onPath := make([]bool, h.N())
	var dfs func(v, depth int)
	dfs = func(v, depth int) {
		if depth > best {
			best = depth
		}
		if best >= limit {
			return
		}
		onPath[v] = true
		for _, w := range h.Neighbors(v) {
			if byz[w] && !onPath[w] {
				dfs(int(w), depth+1)
			}
		}
		onPath[v] = false
	}
	for v := 0; v < h.N(); v++ {
		if byz[v] {
			dfs(v, 1)
			if best >= limit {
				return best
			}
		}
	}
	return best
}

// Taxonomy is the node partition of Definition 9, computed for a concrete
// instance. Distances for Unsafe/BUS are measured in G, as the definition
// requires.
type Taxonomy struct {
	Radius   int // the "a log n" radius used (in G-hops)
	LTLr     int // radius used for the locally-tree-like classification
	Byz      []bool
	LTL      []bool
	Unsafe   []bool // within Radius of a non-LTL node in G
	BUS      []bool // within Radius of a Bad (Byz ∪ NLT) node in G
	NByz     int
	NLTL     int
	NUnsafe  int
	NBUS     int
	NCrashed int // filled in by protocol runs; zero here
}

// UnsafeRadius returns the paper's a·log n with a = δ/(10 k log(d-1)),
// clamped to at least 1 hop (see LTLRadius for the rationale).
func UnsafeRadius(n, d, k int, delta float64) int {
	a := delta / (10 * float64(k) * math.Log2(float64(d-1)))
	r := int(a * math.Log2(float64(n)))
	if r < 1 {
		r = 1
	}
	return r
}

// Classify computes the Definition 9 taxonomy for a network instance.
func Classify(net *Network, byz []bool, delta float64) *Taxonomy {
	n := net.H.N()
	ltlR := LTLRadius(n, net.Params.D)
	ltl, nltl := LocallyTreeLike(net.H, ltlR)
	radius := UnsafeRadius(n, net.Params.D, net.K, delta)

	tax := &Taxonomy{
		Radius: radius,
		LTLr:   ltlR,
		Byz:    byz,
		LTL:    ltl,
		Unsafe: make([]bool, n),
		BUS:    make([]bool, n),
		NLTL:   nltl,
	}
	for v := 0; v < n; v++ {
		if byz[v] {
			tax.NByz++
		}
	}

	// Multi-source BFS in G from all NLT nodes marks Unsafe; from all Bad
	// nodes marks BUS. One distance vector serves both passes (re-zeroed
	// between them) — the second pass's sources are a superset, so the
	// marking order is unaffected.
	dist := make([]int32, n)
	markWithin := func(sources []int32, out []bool) int {
		for i := range dist {
			dist[i] = graph.Unreached
		}
		queue := make([]int32, 0, len(sources))
		for _, s := range sources {
			if dist[s] == graph.Unreached {
				dist[s] = 0
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if int(dist[v]) >= radius {
				continue
			}
			for _, w := range net.G.Neighbors(int(v)) {
				if dist[w] == graph.Unreached {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		count := 0
		for v := 0; v < n; v++ {
			if dist[v] != graph.Unreached {
				out[v] = true
				count++
			}
		}
		return count
	}

	var nlt, bad []int32
	for v := 0; v < n; v++ {
		if !ltl[v] {
			nlt = append(nlt, int32(v))
		}
		if !ltl[v] || byz[v] {
			bad = append(bad, int32(v))
		}
	}
	tax.NUnsafe = markWithin(nlt, tax.Unsafe)
	tax.NBUS = markWithin(bad, tax.BUS)
	return tax
}

// WattsStrogatz generates the classic Watts–Strogatz small-world graph:
// a ring lattice where each node connects to its k nearest neighbors on
// each side, with each edge rewired to a uniform endpoint with probability
// beta. Used as the comparison model in experiment E3 (the paper notes its
// degrees are unbounded, unlike H ∪ L).
func WattsStrogatz(n, k int, beta float64, src *rng.Source) *graph.Graph {
	if n < 2*k+1 {
		panic(fmt.Sprintf("hgraph: WattsStrogatz needs n >= 2k+1 (n=%d, k=%d)", n, k))
	}
	type edge struct{ u, v int }
	edges := make([]edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, edge{v, (v + j) % n})
		}
	}
	present := make(map[[2]int]bool, len(edges))
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for _, e := range edges {
		present[key(e.u, e.v)] = true
	}
	for i := range edges {
		if src.Float64() >= beta {
			continue
		}
		u := edges[i].u
		// Rewire the far endpoint to a uniform non-neighbor.
		for attempt := 0; attempt < 32; attempt++ {
			w := src.Intn(n)
			if w == u || present[key(u, w)] {
				continue
			}
			delete(present, key(edges[i].u, edges[i].v))
			edges[i].v = w
			present[key(u, w)] = true
			break
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build()
}
