package hgraph

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// BenchmarkGenerateH measures the raw expander construction (d/2
// Hamiltonian cycles), the first half of a network generation.
func BenchmarkGenerateH(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GenerateH(n, 8, rng.New(uint64(i)))
			}
		})
	}
}

// BenchmarkNew measures full network generation — H plus the radius-k
// lattice closure G = H∪L — the dominant fixed cost of a sweep job,
// which the sweep cache exists to amortize.
func BenchmarkNew(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New(Params{N: n, D: 8, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
