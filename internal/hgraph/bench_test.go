package hgraph

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// BenchmarkGenerateH measures the raw expander construction (d/2
// Hamiltonian cycles), the first half of a network generation.
func BenchmarkGenerateH(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GenerateH(n, 8, rng.New(uint64(i)))
			}
		})
	}
}

// BenchmarkNew measures full network generation — H plus the radius-k
// lattice closure G = H∪L — the dominant fixed cost of a sweep job,
// which the sweep cache exists to amortize. This is the fast path: the
// sort-free layered-merge lattice closure.
func BenchmarkNew(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New(Params{N: n, D: 8, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNewReference measures the seed generator kept as the fast
// path's oracle — the pair quantifies the fast path's win in isolation.
func BenchmarkNewReference(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewReference(Params{N: n, D: 8, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildGPooled measures the lattice closure alone on a worker
// pool, the configuration netgen -pregen and multi-core sweeps run.
func BenchmarkBuildGPooled(b *testing.B) {
	pool := sim.NewPool(0)
	defer pool.Close()
	for _, n := range []int{4096} {
		h := GenerateH(n, 8, rng.New(9))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildGWith(h, DefaultK(8), pool)
			}
		})
	}
}
