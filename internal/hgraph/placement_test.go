package hgraph

import (
	"testing"

	"repro/internal/rng"
)

func countTrue(b []bool) int {
	c := 0
	for _, x := range b {
		if x {
			c++
		}
	}
	return c
}

func TestClusteredPlacementCounts(t *testing.T) {
	h := GenerateH(512, 8, rng.New(1))
	for _, count := range []int{0, 1, 7, 64} {
		byz := PlaceByzantineClustered(h, count, rng.New(2))
		if got := countTrue(byz); got != count {
			t.Fatalf("clustered placed %d, want %d", got, count)
		}
	}
}

func TestClusteredPlacementIsConnectedBall(t *testing.T) {
	h := GenerateH(512, 8, rng.New(3))
	byz := PlaceByzantineClustered(h, 30, rng.New(4))
	// The induced Byzantine subgraph of a BFS-prefix is connected.
	sub, _ := h.Induced(byz)
	if !sub.IsConnected() {
		t.Fatal("clustered placement not connected")
	}
	// And therefore contains long chains: with 30 connected nodes of a
	// bounded-degree graph, a path of length >= k=3 must exist.
	if chain := LongestByzantineChain(h, byz, 3); chain < 3 {
		t.Fatalf("clustered placement chain = %d, want >= 3", chain)
	}
}

func TestSpreadPlacementCounts(t *testing.T) {
	h := GenerateH(512, 8, rng.New(5))
	byz := PlaceByzantineSpread(h, 20, rng.New(6))
	if got := countTrue(byz); got != 20 {
		t.Fatalf("spread placed %d, want 20", got)
	}
}

func TestSpreadPlacementAvoidsChains(t *testing.T) {
	h := GenerateH(2048, 8, rng.New(7))
	byz := PlaceByzantineSpread(h, 45, rng.New(8)) // = n^0.55-ish
	// Farthest-point placement at this density keeps nodes pairwise
	// distant: no two Byzantine nodes should even be adjacent.
	if chain := LongestByzantineChain(h, byz, 3); chain > 1 {
		t.Fatalf("spread placement produced a %d-chain", chain)
	}
}

func TestSpreadVsClusteredChainContrast(t *testing.T) {
	h := GenerateH(1024, 8, rng.New(9))
	const count = 32
	clustered := PlaceByzantineClustered(h, count, rng.New(10))
	spread := PlaceByzantineSpread(h, count, rng.New(11))
	cChain := LongestByzantineChain(h, clustered, 10)
	sChain := LongestByzantineChain(h, spread, 10)
	if cChain <= sChain {
		t.Fatalf("clustered chain %d not longer than spread chain %d", cChain, sChain)
	}
}

func TestPlacementsRegistry(t *testing.T) {
	ps := Placements()
	if len(ps) != 5 {
		t.Fatalf("placements = %d", len(ps))
	}
	// Order is append-only: experiment seed formulas index into it.
	for i, want := range []string{"random", "clustered", "spread", "degree", "chain"} {
		if ps[i].Name != want {
			t.Fatalf("placement %d = %s, want %s", i, ps[i].Name, want)
		}
	}
	h := GenerateH(256, 8, rng.New(12))
	for _, p := range ps {
		byz := p.Place(h, 5, rng.New(13))
		if countTrue(byz) != 5 {
			t.Fatalf("%s placed wrong count", p.Name)
		}
	}
}

func TestChainPlacementManufacturesChains(t *testing.T) {
	h := GenerateH(1024, 8, rng.New(15))
	k := DefaultK(8)
	byz := PlaceByzantineChain(h, 12, rng.New(16))
	if got := countTrue(byz); got != 12 {
		t.Fatalf("chain placed %d, want 12", got)
	}
	// A single uninterrupted walk IS a chain of its full length; even with
	// restarts the longest chain must clear k (12 nodes, degree 8: a walk
	// dead-ends only inside an already-placed pocket).
	if chain := LongestByzantineChain(h, byz, 12); chain < k {
		t.Fatalf("chain-seeking placement chain = %d, want >= k = %d", chain, k)
	}
	// And it must beat random placement at the same tiny budget, where
	// chains of length k are rare (Observation 6).
	randChain := LongestByzantineChain(h, PlaceByzantine(1024, 12, rng.New(17)), 12)
	if chain := LongestByzantineChain(h, byz, 12); chain <= randChain && randChain < k {
		t.Fatalf("chain placement (%d) no better than random (%d)", chain, randChain)
	}
}

func TestChainPlacementSurvivesDeadEnds(t *testing.T) {
	// Count close to n forces repeated dead ends and restarts.
	h := GenerateH(64, 8, rng.New(18))
	byz := PlaceByzantineChain(h, 60, rng.New(19))
	if got := countTrue(byz); got != 60 {
		t.Fatalf("chain placed %d, want 60", got)
	}
}

func TestDegreePlacementTargetsLargestAudience(t *testing.T) {
	h := GenerateH(512, 8, rng.New(20))
	const count = 16
	byz := PlaceByzantineDegree(h, count, rng.New(21))
	if got := countTrue(byz); got != count {
		t.Fatalf("degree placed %d, want %d", got, count)
	}
	// Every placed node's radius-k audience must be >= every unplaced
	// node's (modulo ties, which the strict comparison allows for).
	k := DefaultK(8)
	minPlaced, maxUnplaced := 1<<30, 0
	for v := 0; v < 512; v++ {
		a := len(h.Ball(v, k))
		if byz[v] && a < minPlaced {
			minPlaced = a
		}
		if !byz[v] && a > maxUnplaced {
			maxUnplaced = a
		}
	}
	if minPlaced < maxUnplaced {
		t.Fatalf("placed audience %d < unplaced audience %d", minPlaced, maxUnplaced)
	}
}

func TestAdaptivePlacementsDeterministic(t *testing.T) {
	h := GenerateH(256, 8, rng.New(22))
	for _, p := range []struct {
		name  string
		place func() []bool
	}{
		{"degree", func() []bool { return PlaceByzantineDegree(h, 9, rng.New(23)) }},
		{"chain", func() []bool { return PlaceByzantineChain(h, 9, rng.New(23)) }},
	} {
		a, b := p.place(), p.place()
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("%s placement not deterministic at node %d", p.name, v)
			}
		}
	}
}

func TestPlacementPanics(t *testing.T) {
	h := GenerateH(64, 8, rng.New(14))
	for _, fn := range []func(){
		func() { PlaceByzantineClustered(h, -1, rng.New(1)) },
		func() { PlaceByzantineSpread(h, 65, rng.New(1)) },
		func() { PlaceByzantineDegree(h, -1, rng.New(1)) },
		func() { PlaceByzantineChain(h, 65, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
