package hgraph

import (
	"testing"

	"repro/internal/rng"
)

func countTrue(b []bool) int {
	c := 0
	for _, x := range b {
		if x {
			c++
		}
	}
	return c
}

func TestClusteredPlacementCounts(t *testing.T) {
	h := GenerateH(512, 8, rng.New(1))
	for _, count := range []int{0, 1, 7, 64} {
		byz := PlaceByzantineClustered(h, count, rng.New(2))
		if got := countTrue(byz); got != count {
			t.Fatalf("clustered placed %d, want %d", got, count)
		}
	}
}

func TestClusteredPlacementIsConnectedBall(t *testing.T) {
	h := GenerateH(512, 8, rng.New(3))
	byz := PlaceByzantineClustered(h, 30, rng.New(4))
	// The induced Byzantine subgraph of a BFS-prefix is connected.
	sub, _ := h.Induced(byz)
	if !sub.IsConnected() {
		t.Fatal("clustered placement not connected")
	}
	// And therefore contains long chains: with 30 connected nodes of a
	// bounded-degree graph, a path of length >= k=3 must exist.
	if chain := LongestByzantineChain(h, byz, 3); chain < 3 {
		t.Fatalf("clustered placement chain = %d, want >= 3", chain)
	}
}

func TestSpreadPlacementCounts(t *testing.T) {
	h := GenerateH(512, 8, rng.New(5))
	byz := PlaceByzantineSpread(h, 20, rng.New(6))
	if got := countTrue(byz); got != 20 {
		t.Fatalf("spread placed %d, want 20", got)
	}
}

func TestSpreadPlacementAvoidsChains(t *testing.T) {
	h := GenerateH(2048, 8, rng.New(7))
	byz := PlaceByzantineSpread(h, 45, rng.New(8)) // = n^0.55-ish
	// Farthest-point placement at this density keeps nodes pairwise
	// distant: no two Byzantine nodes should even be adjacent.
	if chain := LongestByzantineChain(h, byz, 3); chain > 1 {
		t.Fatalf("spread placement produced a %d-chain", chain)
	}
}

func TestSpreadVsClusteredChainContrast(t *testing.T) {
	h := GenerateH(1024, 8, rng.New(9))
	const count = 32
	clustered := PlaceByzantineClustered(h, count, rng.New(10))
	spread := PlaceByzantineSpread(h, count, rng.New(11))
	cChain := LongestByzantineChain(h, clustered, 10)
	sChain := LongestByzantineChain(h, spread, 10)
	if cChain <= sChain {
		t.Fatalf("clustered chain %d not longer than spread chain %d", cChain, sChain)
	}
}

func TestPlacementsRegistry(t *testing.T) {
	ps := Placements()
	if len(ps) != 3 {
		t.Fatalf("placements = %d", len(ps))
	}
	h := GenerateH(256, 8, rng.New(12))
	for _, p := range ps {
		byz := p.Place(h, 5, rng.New(13))
		if countTrue(byz) != 5 {
			t.Fatalf("%s placed wrong count", p.Name)
		}
	}
}

func TestPlacementPanics(t *testing.T) {
	h := GenerateH(64, 8, rng.New(14))
	for _, fn := range []func(){
		func() { PlaceByzantineClustered(h, -1, rng.New(1)) },
		func() { PlaceByzantineSpread(h, 65, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
