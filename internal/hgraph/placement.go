package hgraph

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// placement.go implements non-random Byzantine placements. The paper
// assumes random placement and leaves adversarial placement as an open
// problem (§4); these strategies let the experiments probe exactly where
// that assumption binds (experiment E13): clustered placements manufacture
// the k-node Byzantine chains that Observation 6 excludes, re-opening the
// mid-subphase injection channel that chain attestation otherwise closes.

// PlaceByzantineClustered marks count Byzantine nodes by growing a BFS
// ball from a random seed node: the most chain-friendly placement an
// adversary controlling node positions could pick.
func PlaceByzantineClustered(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: clustered placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	start := src.Intn(n)
	scratch := graph.NewBFS(h)
	scratch.Run(start)
	for i, v := range scratch.Visited() {
		if i >= count {
			break
		}
		byz[v] = true
	}
	return byz
}

// PlaceByzantineSpread marks count Byzantine nodes by greedy farthest-point
// dispersion: each new Byzantine node maximizes its distance to the ones
// already placed. This is the chain-hostile extreme — even friendlier to
// the protocol than random placement.
func PlaceByzantineSpread(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: spread placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	first := src.Intn(n)
	byz[first] = true

	// minDist[v] = distance from v to the nearest placed Byzantine node,
	// maintained incrementally with one BFS per placement.
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = 1 << 30
	}
	scratch := graph.NewBFS(h)
	update := func(placed int) {
		d := scratch.Run(placed)
		for _, v := range scratch.Visited() {
			if d[v] < minDist[v] {
				minDist[v] = d[v]
			}
		}
	}
	update(first)
	for placed := 1; placed < count; placed++ {
		best, bestDist := -1, int32(-1)
		for v := 0; v < n; v++ {
			if !byz[v] && minDist[v] > bestDist {
				bestDist = minDist[v]
				best = v
			}
		}
		byz[best] = true
		update(best)
	}
	return byz
}

// PlacementFunc names a Byzantine placement strategy for experiment sweeps.
type PlacementFunc struct {
	Name  string
	Place func(h *graph.Graph, count int, src *rng.Source) []bool
}

// Placements returns the three placement strategies: the paper's random
// model plus the two adversarial extremes.
func Placements() []PlacementFunc {
	return []PlacementFunc{
		{Name: "random", Place: func(h *graph.Graph, count int, src *rng.Source) []bool {
			return PlaceByzantine(h.N(), count, src)
		}},
		{Name: "clustered", Place: PlaceByzantineClustered},
		{Name: "spread", Place: PlaceByzantineSpread},
	}
}

// PlacementByName resolves a placement strategy by its Name. The empty
// string selects the paper's random placement, the default fault model.
func PlacementByName(name string) (PlacementFunc, bool) {
	if name == "" {
		name = "random"
	}
	for _, p := range Placements() {
		if p.Name == name {
			return p, true
		}
	}
	return PlacementFunc{}, false
}
