package hgraph

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// placement.go implements non-random Byzantine placements. The paper
// assumes random placement and leaves adversarial placement as an open
// problem (§4); these strategies let the experiments probe exactly where
// that assumption binds (experiment E13): clustered placements manufacture
// the k-node Byzantine chains that Observation 6 excludes, re-opening the
// mid-subphase injection channel that chain attestation otherwise closes.

// PlaceByzantineClustered marks count Byzantine nodes by growing a BFS
// ball from a random seed node: the most chain-friendly placement an
// adversary controlling node positions could pick.
func PlaceByzantineClustered(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: clustered placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	start := src.Intn(n)
	scratch := graph.NewBFS(h)
	scratch.Run(start)
	for i, v := range scratch.Visited() {
		if i >= count {
			break
		}
		byz[v] = true
	}
	return byz
}

// PlaceByzantineSpread marks count Byzantine nodes by greedy farthest-point
// dispersion: each new Byzantine node maximizes its distance to the ones
// already placed. This is the chain-hostile extreme — even friendlier to
// the protocol than random placement.
func PlaceByzantineSpread(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: spread placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	first := src.Intn(n)
	byz[first] = true

	// minDist[v] = distance from v to the nearest placed Byzantine node,
	// maintained incrementally with one BFS per placement.
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = 1 << 30
	}
	scratch := graph.NewBFS(h)
	update := func(placed int) {
		d := scratch.Run(placed)
		for _, v := range scratch.Visited() {
			if d[v] < minDist[v] {
				minDist[v] = d[v]
			}
		}
	}
	update(first)
	for placed := 1; placed < count; placed++ {
		best, bestDist := -1, int32(-1)
		for v := 0; v < n; v++ {
			if !byz[v] && minDist[v] > bestDist {
				bestDist = minDist[v]
				best = v
			}
		}
		byz[best] = true
		update(best)
	}
	return byz
}

// PlaceByzantineDegree marks the count nodes with the largest radius-k
// audience |Ball(v, k)| — the degree-targeted adaptive placement. H is
// d-regular, so raw degree carries no signal; what varies is reach: how
// many victims hear a node's exchange claims (lies are heard exactly
// within the radius-k ball) and how many distinct channels its floods
// enter. Ties — the common case away from parallel edges — break by a
// seeded random permutation, so the placement stays a random draw over
// the maximum-audience nodes.
func PlaceByzantineDegree(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: degree placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	k := DefaultK(h.Degree(0))
	score := make([]int, n)
	scratch := graph.NewBFS(h)
	for v := 0; v < n; v++ {
		nodes, _ := graph.BallWith(scratch, v, k)
		score[v] = len(nodes)
	}
	order := src.Perm(n)
	sort.SliceStable(order, func(a, b int) bool {
		return score[order[a]] > score[order[b]]
	})
	for _, v := range order[:count] {
		byz[v] = true
	}
	return byz
}

// PlaceByzantineChain marks count nodes by growing random self-avoiding
// walks in H: the chain-seeking adaptive placement. Where the clustered
// placement fills a BFS ball (chains arise as a side effect), this one
// manufactures the k-node Byzantine chains of Observation 6 directly —
// every walk is itself a chain — which is the cheapest way an adversary
// controlling positions re-opens the mid-subphase injection channel.
func PlaceByzantineChain(h *graph.Graph, count int, src *rng.Source) []bool {
	n := h.N()
	if count < 0 || count > n {
		panic("hgraph: chain placement count out of range")
	}
	byz := make([]bool, n)
	if count == 0 {
		return byz
	}
	cur := src.Intn(n)
	byz[cur] = true
	placed := 1
	var cands []int32
	for placed < count {
		// Extend the walk through a uniform unmarked distinct neighbor.
		cands = cands[:0]
		for _, nb := range h.UniqueNeighbors(cur) {
			if !byz[nb] {
				cands = append(cands, nb)
			}
		}
		if len(cands) > 0 {
			cur = int(cands[src.Intn(len(cands))])
		} else {
			// Dead end: every neighbor is already Byzantine. Restart the
			// walk from an exactly-uniform unmarked node (an index draw
			// with linear probing would bias toward nodes that follow
			// marked runs).
			pick := src.Intn(n - placed)
			for v := 0; ; v++ {
				if byz[v] {
					continue
				}
				if pick == 0 {
					cur = v
					break
				}
				pick--
			}
		}
		byz[cur] = true
		placed++
	}
	return byz
}

// PlacementFunc names a Byzantine placement strategy for experiment sweeps.
type PlacementFunc struct {
	Name  string
	Place func(h *graph.Graph, count int, src *rng.Source) []bool
}

// Placements returns the placement strategies: the paper's random model,
// the two structural extremes (clustered, spread), and the two adaptive
// placements (degree-targeted, chain-seeking). Order is append-only —
// experiment seeds index into it.
func Placements() []PlacementFunc {
	return []PlacementFunc{
		{Name: "random", Place: func(h *graph.Graph, count int, src *rng.Source) []bool {
			return PlaceByzantine(h.N(), count, src)
		}},
		{Name: "clustered", Place: PlaceByzantineClustered},
		{Name: "spread", Place: PlaceByzantineSpread},
		{Name: "degree", Place: PlaceByzantineDegree},
		{Name: "chain", Place: PlaceByzantineChain},
	}
}

// PlacementByName resolves a placement strategy by its Name. The empty
// string selects the paper's random placement, the default fault model.
func PlacementByName(name string) (PlacementFunc, bool) {
	if name == "" {
		name = "random"
	}
	for _, p := range Placements() {
		if p.Name == name {
			return p, true
		}
	}
	return PlacementFunc{}, false
}
