package hgraph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestGenerateHRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{16, 4}, {100, 8}, {257, 6}, {512, 12}} {
		h := GenerateH(tc.n, tc.d, rng.New(uint64(tc.n)))
		if h.N() != tc.n {
			t.Fatalf("n=%d d=%d: N=%d", tc.n, tc.d, h.N())
		}
		for v := 0; v < tc.n; v++ {
			if h.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: Degree(%d)=%d, want %d", tc.n, tc.d, v, h.Degree(v), tc.d)
			}
		}
		if !h.IsConnected() {
			t.Fatalf("n=%d d=%d: union of Hamiltonian cycles must be connected", tc.n, tc.d)
		}
	}
}

// Property: H(n,d) is d-regular and connected for random seeds.
func TestGenerateHProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := GenerateH(64, 8, rng.New(seed))
		for v := 0; v < 64; v++ {
			if h.Degree(v) != 8 {
				return false
			}
		}
		return h.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDefaultK(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{8, 3}, {10, 4}, {12, 4}, {6, 2}, {9, 3}} {
		if k := DefaultK(tc.d); k != tc.k {
			t.Errorf("DefaultK(%d) = %d, want %d", tc.d, k, tc.k)
		}
	}
}

func TestBuildGMatchesBalls(t *testing.T) {
	h := GenerateH(80, 8, rng.New(3))
	k := 2
	g := BuildG(h, k)
	// Ground truth: u~v in G iff 1 <= dist_H(u,v) <= k.
	for u := 0; u < 80; u += 7 {
		b := graph.NewBFS(h)
		d := b.Run(u)
		for v := 0; v < 80; v++ {
			want := v != u && d[v] <= int32(k)
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("G edge (%d,%d) = %v, want %v (dist_H=%d)", u, v, got, want, d[v])
			}
		}
	}
}

func TestBuildGIsSimple(t *testing.T) {
	h := GenerateH(60, 8, rng.New(4))
	g := BuildG(h, 3)
	for v := 0; v < g.N(); v++ {
		if g.EdgeMultiplicity(v, v) != 0 {
			t.Fatalf("G has self-loop at %d", v)
		}
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				t.Fatalf("G has parallel edge %d-%d", v, nb[i])
			}
		}
	}
}

func TestGDegreeBounded(t *testing.T) {
	// Observation 2: |B_G(v, 1)| < (d-1)^{k+1}, so G-degree < (d-1)^{k+1}.
	p := Params{N: 500, D: 8, Seed: 5}
	net := MustNew(p)
	bound := int(math.Pow(float64(p.D-1), float64(net.K+1)))
	stats := net.G.Degrees()
	if stats.Max >= bound {
		t.Fatalf("max G-degree %d >= bound %d", stats.Max, bound)
	}
}

func TestAssignIDsDistinct(t *testing.T) {
	ids := AssignIDs(5000, rng.New(7))
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if id == 0 || id >= 1<<63 {
			t.Fatalf("ID %d out of 63-bit positive range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{N: 2, D: 4},
		{N: 100, D: 7},
		{N: 100, D: 2},
		{N: 8, D: 8},
		{N: 100, D: 8, K: -1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("params %+v unexpectedly valid", p)
		}
	}
	if _, err := New(Params{N: 64, D: 8, Seed: 1}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestNewDeterministic(t *testing.T) {
	p := Params{N: 128, D: 8, Seed: 42}
	a := MustNew(p)
	b := MustNew(p)
	if a.H.NumEdges() != b.H.NumEdges() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for v := 0; v < p.N; v++ {
		if a.IDs[v] != b.IDs[v] {
			t.Fatal("same seed produced different IDs")
		}
		na, nb := a.H.Neighbors(v), b.H.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatal("same seed produced different adjacency")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed produced different adjacency")
			}
		}
	}
}

func TestIsLocallyTreeLikeOnKnownGraphs(t *testing.T) {
	// An 8-regular "tree-like" certificate is hard to build by hand; use a
	// cycle where structure is known. In a big cycle every node's 1-ball is
	// a path = a 1-ary tree with d=2: root has 2 distinct neighbors.
	c := cycleGraph(50)
	scratch := graph.NewBFS(c)
	for v := 0; v < 50; v += 11 {
		if !IsLocallyTreeLike(c, scratch, v, 1) {
			t.Fatalf("cycle node %d should be LTL at r=1", v)
		}
		// r=12: ball of radius 12 in C50 is a path, still a tree.
		if !IsLocallyTreeLike(c, scratch, v, 12) {
			t.Fatalf("cycle node %d should be LTL at r=12", v)
		}
		// r=25: the ball wraps around and closes the cycle: not a tree.
		if IsLocallyTreeLike(c, scratch, v, 25) {
			t.Fatalf("cycle node %d should not be LTL at r=25", v)
		}
	}
	// Triangle: neighbors of the root are adjacent: never tree-like.
	tri := triangle()
	scratch = graph.NewBFS(tri)
	if IsLocallyTreeLike(tri, scratch, 0, 1) {
		t.Fatal("triangle node should not be LTL")
	}
}

func TestIsLocallyTreeLikeMultiEdge(t *testing.T) {
	// Parallel edge at the root: root has d adjacency entries but only
	// d-1 distinct children: not tree-like.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	scratch := graph.NewBFS(g)
	if IsLocallyTreeLike(g, scratch, 0, 1) {
		t.Fatal("root with parallel edge should not be LTL")
	}
}

func TestLocallyTreeLikeFraction(t *testing.T) {
	// Lemma 1 shape: the non-LTL fraction is O(d^2/n) at r=1 (a ball is
	// non-tree-like iff it contains a parallel edge or an in-ball cross
	// edge, each with probability ~ d/n per pair). At n=2000, d=8 the
	// expectation is ~ 28·8/2000 ≈ 11%, and it must shrink as n grows.
	frac := func(n int) float64 {
		h := GenerateH(n, 8, rng.New(uint64(n)))
		_, count := LocallyTreeLike(h, LTLRadius(n, 8))
		return float64(count) / float64(n)
	}
	f2000 := frac(2000)
	if f2000 < 0.85 {
		t.Fatalf("LTL fraction %v < 0.85 at n=2000", f2000)
	}
	f8000 := frac(8000)
	if f8000 <= f2000 {
		t.Fatalf("LTL fraction did not improve with n: %v (n=2000) vs %v (n=8000)", f2000, f8000)
	}
}

func TestLTLRadiusClamps(t *testing.T) {
	if r := LTLRadius(1024, 8); r < 1 {
		t.Fatalf("LTLRadius clamped wrong: %d", r)
	}
	// Asymptotically the formula takes over: log2(n)/(10 log2 d) > 2
	// needs n > 2^60 for d=8; just check monotonicity in n.
	if LTLRadius(1<<40, 8) < LTLRadius(1024, 8) {
		t.Fatal("LTLRadius not monotone")
	}
}

func TestPlaceByzantine(t *testing.T) {
	byz := PlaceByzantine(100, 17, rng.New(13))
	count := 0
	for _, b := range byz {
		if b {
			count++
		}
	}
	if count != 17 {
		t.Fatalf("placed %d byzantine nodes, want 17", count)
	}
}

func TestByzantineBudget(t *testing.T) {
	if b := ByzantineBudget(1024, 0.5); b != 32 {
		t.Fatalf("budget(1024, 0.5) = %d, want 32", b)
	}
	if b := ByzantineBudget(1000, 1.0); b != 1 {
		t.Fatalf("budget(1000, 1.0) = %d, want 1", b)
	}
}

func TestLongestByzantineChain(t *testing.T) {
	// Path graph with byzantine nodes 2,3,4 → chain of 3 nodes.
	b := graph.NewBuilder(8)
	for i := 0; i < 7; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	byz := make([]bool, 8)
	byz[2], byz[3], byz[4] = true, true, true
	if c := LongestByzantineChain(g, byz, 10); c != 3 {
		t.Fatalf("chain = %d, want 3", c)
	}
	// Limit caps the search.
	if c := LongestByzantineChain(g, byz, 2); c != 2 {
		t.Fatalf("capped chain = %d, want 2", c)
	}
	// No byzantine nodes.
	if c := LongestByzantineChain(g, make([]bool, 8), 10); c != 0 {
		t.Fatalf("empty chain = %d, want 0", c)
	}
	// Disconnected byzantine singletons.
	byz2 := make([]bool, 8)
	byz2[0], byz2[5] = true, true
	if c := LongestByzantineChain(g, byz2, 10); c != 1 {
		t.Fatalf("singleton chain = %d, want 1", c)
	}
}

func TestObservation6Shape(t *testing.T) {
	// With B = n^{1-δ}, δ=0.5 at n=1024 (B=32) and k=3, an all-Byzantine
	// 3-chain is unlikely (union bound: n·d^2/n^{1.5} ≈ 2). Run several
	// seeds and require the chain bound to hold in the majority.
	n, d, k := 1024, 8, 3
	bcount := ByzantineBudget(n, 0.5)
	violations := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		h := GenerateH(n, d, rng.New(s))
		byz := PlaceByzantine(n, bcount, rng.New(s+1000))
		if LongestByzantineChain(h, byz, k) >= k {
			violations++
		}
	}
	if violations > trials/2 {
		t.Fatalf("all-Byzantine k-chains in %d/%d trials; Observation 6 shape violated", violations, trials)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	net := MustNew(Params{N: 512, D: 8, Seed: 21})
	byz := PlaceByzantine(512, 8, rng.New(22))
	tax := Classify(net, byz, 0.5)
	if tax.NByz != 8 {
		t.Fatalf("NByz = %d, want 8", tax.NByz)
	}
	// At n=512, d=8 the expected non-LTL fraction is ~ 28·8/512 ≈ 35%.
	if tax.NLTL < 512/2 {
		t.Fatalf("NLTL = %d, too few", tax.NLTL)
	}
	// BUS ⊇ Unsafe is not generally true (BUS uses Bad = Byz ∪ NLT ⊇ NLT),
	// so BUS count >= Unsafe count.
	if tax.NBUS < tax.NUnsafe {
		t.Fatalf("NBUS=%d < NUnsafe=%d", tax.NBUS, tax.NUnsafe)
	}
	// Byzantine nodes are Bad, hence BUS at radius >= 1 marks them.
	for v := 0; v < 512; v++ {
		if byz[v] && !tax.BUS[v] {
			t.Fatalf("byzantine node %d not in BUS", v)
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 200, 4
	// beta = 0: pure ring lattice, high clustering, everyone degree 2k.
	g0 := WattsStrogatz(n, k, 0, rng.New(31))
	for v := 0; v < n; v++ {
		if g0.Degree(v) != 2*k {
			t.Fatalf("beta=0 degree(%d) = %d, want %d", v, g0.Degree(v), 2*k)
		}
	}
	c0 := g0.AvgClustering()
	if c0 < 0.5 {
		t.Fatalf("ring lattice clustering %v too low", c0)
	}
	// beta = 0.2: still high-ish clustering, much shorter paths.
	g2 := WattsStrogatz(n, k, 0.2, rng.New(32))
	if !g2.IsConnected() {
		t.Fatal("WS(0.2) disconnected")
	}
	d0 := g0.DiameterLowerBound(4)
	d2 := g2.DiameterLowerBound(4)
	if d2 >= d0 {
		t.Fatalf("rewiring did not shrink diameter: %d -> %d", d0, d2)
	}
	// Edge count preserved by rewiring.
	if g2.NumEdges() != n*k {
		t.Fatalf("WS edges = %d, want %d", g2.NumEdges(), n*k)
	}
}

func TestUnsafeRadiusClamped(t *testing.T) {
	if r := UnsafeRadius(1024, 8, 3, 0.4); r < 1 {
		t.Fatalf("UnsafeRadius = %d, want >= 1", r)
	}
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func triangle() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func BenchmarkGenerateH4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateH(4096, 8, rng.New(uint64(i)))
	}
}

func BenchmarkBuildG1024(b *testing.B) {
	h := GenerateH(1024, 8, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildG(h, 3)
	}
}
