package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("split streams collided at draw %d", i)
		}
	}
}

func TestCloneReplaysFuture(t *testing.T) {
	a := New(99)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	c := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	src := New(11)
	for i := 0; i < 10000; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

// Geometric(1/2) has mean 2 and P(X >= r) = 2^{1-r}.
func TestGeometricMoments(t *testing.T) {
	src := New(13)
	const trials = 200000
	sum := 0
	atLeast5 := 0
	for i := 0; i < trials; i++ {
		g := src.Geometric()
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += g
		if g >= 5 {
			atLeast5++
		}
	}
	mean := float64(sum) / trials
	if math.Abs(mean-2.0) > 0.02 {
		t.Errorf("Geometric mean = %v, want ~2.0", mean)
	}
	pAtLeast5 := float64(atLeast5) / trials
	if math.Abs(pAtLeast5-1.0/16) > 0.01 {
		t.Errorf("P(X>=5) = %v, want ~0.0625", pAtLeast5)
	}
}

func TestGeometricPMean(t *testing.T) {
	src := New(17)
	const trials = 100000
	p := 0.2
	sum := 0
	for i := 0; i < trials; i++ {
		sum += src.GeometricP(p)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-1/p) > 0.1 {
		t.Errorf("GeometricP(0.2) mean = %v, want ~5", mean)
	}
}

func TestGeometricPOne(t *testing.T) {
	src := New(18)
	for i := 0; i < 100; i++ {
		if g := src.GeometricP(1); g != 1 {
			t.Fatalf("GeometricP(1) = %d, want 1", g)
		}
	}
}

func TestExpMean(t *testing.T) {
	src := New(19)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		e := src.Exp()
		if e < 0 {
			t.Fatalf("Exp returned negative %v", e)
		}
		sum += e
	}
	mean := sum / trials
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1.0", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(23)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	src := New(29)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[src.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("Perm first element %d appeared %d times, want ~%v", v, c, want)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	src := New(31)
	for _, tc := range []struct{ n, m int }{{10, 0}, {10, 1}, {10, 10}, {1000, 5}, {1000, 900}} {
		s := src.Sample(tc.n, tc.m)
		if len(s) != tc.m {
			t.Fatalf("Sample(%d,%d) returned %d items", tc.n, tc.m, len(s))
		}
		seen := make(map[int]bool, tc.m)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.m, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleUniformMembership(t *testing.T) {
	src := New(37)
	const n, m, trials = 20, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range src.Sample(n, m) {
			counts[v]++
		}
	}
	want := float64(trials*m) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("Sample element %d appeared %d times, want ~%v", v, c, want)
		}
	}
}

// Property: Shuffle preserves the multiset of elements.
func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, raw []int) bool {
		src := New(seed)
		orig := make([]int, len(raw))
		copy(orig, raw)
		src.Shuffle(raw)
		counts := map[int]int{}
		for _, v := range orig {
			counts[v]++
		}
		for _, v := range raw {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split streams are self-consistent (same args, same stream).
func TestSplitDeterministicProperty(t *testing.T) {
	f := func(seed, sub uint64) bool {
		a := Split(seed, sub)
		b := Split(seed, sub)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-square-ish check on the top 3 bits.
	src := New(41)
	const trials = 160000
	counts := make([]int, 8)
	for i := 0; i < trials; i++ {
		counts[src.Uint64()>>61]++
	}
	want := float64(trials) / 8
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: %d draws, want ~%v", b, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += src.Uint64()
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	src := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += src.Geometric()
	}
	_ = sink
}
