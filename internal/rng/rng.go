// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every node in a simulated network owns an independent stream derived from
// a single run seed, so runs are reproducible bit-for-bit and the
// full-information adversary can replay any honest node's future coin flips
// by cloning its stream (the paper's adversary knows "the random choices
// made by the nodes up to and including the current round as well as future
// rounds").
//
// The generator is xoshiro256**, seeded through SplitMix64. Both are public
// domain algorithms (Blackman & Vigna); they are small, fast, and pass
// BigCrush, which is more than sufficient for protocol simulation.
package rng

import "math"

// Source is a deterministic random stream. The zero value is not usable;
// construct with New or Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, so xoshiro streams with related seeds are
// decorrelated.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed reseeds src in place, producing the same stream as New(seed)
// without allocating. Arena-style callers (internal/core's per-node color
// streams) reseed a flat []Source between runs instead of reallocating n
// pointers per run.
func (src *Source) Seed(seed uint64) {
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 outputs are
	// never all zero for four consecutive draws, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
}

// Split derives an independent stream for the given subStream index.
// Streams with different (seed, subStream) pairs are decorrelated because
// the combined value passes through SplitMix64 twice before seeding.
func Split(seed uint64, subStream uint64) *Source {
	var src Source
	src.SeedSplit(seed, subStream)
	return &src
}

// SeedSplit reseeds src in place, producing the same stream as
// Split(seed, subStream) without allocating.
func (src *Source) SeedSplit(seed uint64, subStream uint64) {
	sm := seed
	a := splitmix64(&sm)
	sm = a ^ (subStream * 0x9e3779b97f4a7c15)
	src.Seed(splitmix64(&sm))
}

// Clone returns a copy of the stream that will produce the same future
// outputs as src. This is the adversary's window into honest nodes' coins.
func (src *Source) Clone() *Source {
	dup := *src
	return &dup
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (src *Source) Uint64() uint64 {
	result := rotl(src.s[1]*5, 7) * 9
	t := src.s[1] << 17
	src.s[2] ^= src.s[0]
	src.s[3] ^= src.s[1]
	src.s[1] ^= src.s[2]
	src.s[0] ^= src.s[3]
	src.s[2] ^= t
	src.s[3] = rotl(src.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (src *Source) Int63() int64 {
	return int64(src.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := src.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = src.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (src *Source) Bool() bool {
	return src.Uint64()&1 == 1
}

// Geometric returns the number of fair-coin flips up to and including the
// first head: a Geometric(1/2) variate with support {1, 2, 3, ...}.
// This is the paper's "color" distribution (Algorithm 1, line 10).
//
// Implemented by counting leading zeros of a 64-bit word, refilling for the
// (once in 2^64) event that the word is all tails.
func (src *Source) Geometric() int {
	flips := 1
	for {
		w := src.Uint64()
		if w != 0 {
			// Count trailing zero bits: each zero is a tail before the
			// first head.
			for w&1 == 0 {
				flips++
				w >>= 1
			}
			return flips
		}
		flips += 64
	}
}

// GeometricP returns a Geometric(p) variate with support {1, 2, ...}:
// the number of Bernoulli(p) trials until the first success.
// It panics unless 0 < p <= 1.
func (src *Source) GeometricP(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: GeometricP needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
}

// Exp returns an Exponential(1) variate (mean 1), used by the support
// estimation baseline.
func (src *Source) Exp() float64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	return -math.Log(u)
}

// Perm returns a uniformly random permutation of [0, n).
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	src.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place (Fisher–Yates).
func (src *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns m distinct integers drawn uniformly from [0, n) in
// selection order (partial Fisher–Yates). It panics if m > n or m < 0.
func (src *Source) Sample(n, m int) []int {
	if m < 0 || m > n {
		panic("rng: Sample needs 0 <= m <= n")
	}
	// For small m relative to n use a map-based virtual shuffle to avoid
	// allocating the full permutation.
	if m*8 < n {
		chosen := make(map[int]int, m)
		out := make([]int, m)
		for i := 0; i < m; i++ {
			j := i + src.Intn(n-i)
			vj, ok := chosen[j]
			if !ok {
				vj = j
			}
			vi, ok := chosen[i]
			if !ok {
				vi = i
			}
			out[i] = vj
			chosen[j] = vi
		}
		return out
	}
	p := src.Perm(n)
	return p[:m]
}
