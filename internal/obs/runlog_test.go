package obs

// runlog_test.go pins the run-log's crash tolerance under injected
// write faults: a torn line costs exactly itself (the next event seals
// it, so later lines never glue onto the fragment), and the reader
// skips any damage without losing what follows.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// tornWriter tears the n-th write after half its bytes.
type tornWriter struct {
	buf    bytes.Buffer
	n      int
	tearAt int
}

func (w *tornWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n == w.tearAt {
		k := len(p) / 2
		w.buf.Write(p[:k])
		return k, errors.New("injected: torn write")
	}
	return w.buf.Write(p)
}

// TestRunLogTornWriteSealed: event 3's write tears; events 4+ must
// survive the reader intact rather than gluing onto the fragment.
func TestRunLogTornWriteSealed(t *testing.T) {
	w := &tornWriter{tearAt: 3}
	l := NewRunLog(w)
	var wantEvents []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("event_%d", i)
		err := l.Event(name, map[string]any{"i": i})
		if i == 2 {
			if err == nil {
				t.Fatal("torn write not surfaced")
			}
			continue // lost line: its own cost
		}
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		wantEvents = append(wantEvents, name)
	}

	events, err := ReadRunLog(strings.NewReader(w.buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range events {
		got = append(got, e.Event)
	}
	if strings.Join(got, ",") != strings.Join(wantEvents, ",") {
		t.Fatalf("events after torn write = %v, want %v", got, wantEvents)
	}
}

// TestRunLogTornTailReader: a log whose final line is a torn fragment
// (writer died mid-append) yields every complete line and silently
// drops the tail — and a fragment mid-file never takes the next line
// with it when a newline separates them.
func TestRunLogTornTailReader(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	for i := 0; i < 3; i++ {
		if err := l.Event(fmt.Sprintf("e%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.String()
	// Kill the writer mid-final-line: keep everything but the last 10
	// bytes of the final event.
	torn := whole[:len(whole)-10]
	events, err := ReadRunLog(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Event != "e0" || events[1].Event != "e1" {
		t.Fatalf("torn-tail read = %+v, want e0,e1", events)
	}
}
