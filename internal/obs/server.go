package obs

// server.go exposes a running process over HTTP: a live /status JSON
// document (whatever the caller's status function returns — cmd/sweep
// serves progress, ETA, stage breakdown, and cache hit rates), expvar at
// /debug/vars, and the full net/http/pprof suite at /debug/pprof/. This
// is the embryo of the sweepd worker heartbeat (ROADMAP item 1): a
// coordinator polling /status gets exactly the progress surface it needs.
//
// Handlers are registered on a private mux — importing net/http/pprof
// for its side effect on http.DefaultServeMux would leak profiling
// endpoints into any other server the process starts, so the handlers
// are mounted explicitly.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the telemetry mux. status is invoked per request and
// its result rendered as JSON; nil serves the registry snapshot alone.
// reg backs /status's "telemetry" omission — it is the caller's choice
// whether status already embeds a snapshot — and /debug/vars serves the
// process-global expvar state as usual.
func Handler(reg *Registry, status func() any) http.Handler {
	if reg == nil {
		reg = Default
	}
	if status == nil {
		status = func() any { return reg.Snapshot() }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "endpoints: /status /debug/vars /debug/pprof/")
	})
	return mux
}

// Server is a started telemetry listener.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (":0" picks a free port) and serves h in the
// background. It returns after the listener is live, so a caller that
// starts a sweep next can rely on /status being reachable for the
// sweep's whole lifetime.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck — ErrServerClosed on Close is the expected exit
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight requests are abandoned — the
// process is exiting anyway; the endpoint's value was while it ran.
func (s *Server) Close() error { return s.srv.Close() }
