package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.hits")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.hits") != c {
		t.Fatal("re-resolving a name must return the same counter")
	}

	tm := r.Timer("a.gen")
	tm.Observe(10 * time.Millisecond)
	tm.ObserveSince(time.Now().Add(-20 * time.Millisecond))
	if tm.Count() != 2 {
		t.Fatalf("timer count = %d, want 2", tm.Count())
	}
	if tm.Total() < 30*time.Millisecond {
		t.Fatalf("timer total = %v, want >= 30ms", tm.Total())
	}

	s := r.Snapshot()
	if s.Counters["a.hits"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", s.Counters["a.hits"])
	}
	ts := s.Timers["a.gen"]
	if ts.Count != 2 || ts.TotalMS < 30 || ts.MeanMS < 15 {
		t.Fatalf("snapshot timer = %+v", ts)
	}
	// Snapshot must marshal cleanly — it is the /status and artifact shape.
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Timer("shared.t").Observe(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Timer("shared.t").Count(); got != 8000 {
		t.Fatalf("timer count = %d, want 8000", got)
	}
}

// TestHotPathZeroAlloc pins the telemetry contract the engine constraints
// depend on: once a counter or timer is resolved, recording into it
// allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	tm := r.Timer("hot.t")
	start := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		tm.Observe(time.Microsecond)
		tm.ObserveSince(start)
	}); allocs != 0 {
		t.Fatalf("hot-path telemetry allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkTimerObserve(b *testing.B) {
	tm := NewRegistry().Timer("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Observe(time.Microsecond)
	}
}

func TestRunLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	l.now = func() time.Time { return time.UnixMilli(1500) }
	if err := l.Event("sweep_start", map[string]any{"jobs": 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Event("job_done", map[string]any{"key": "k1", "tier": "gen"}); err != nil {
		t.Fatal(err)
	}

	// A torn trailing write and a corrupt line must not hide good lines.
	buf.WriteString("{garbage\n")
	buf.WriteString(`{"ts_ms":2000,"event":"sweep_end"}`) // no trailing newline

	events, err := ReadRunLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events, want 3: %+v", len(events), events)
	}
	if events[0].Event != "sweep_start" || events[0].TimeMS != 1500 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Fields["tier"] != "gen" {
		t.Fatalf("event 1 fields = %+v", events[1].Fields)
	}
	if events[2].Event != "sweep_end" {
		t.Fatalf("event 2 = %+v", events[2])
	}
}

func TestRunLogNilSafe(t *testing.T) {
	var l *RunLog
	if err := l.Event("anything", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRunLogAppends(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	for i := 0; i < 2; i++ {
		l, err := OpenRunLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Event("sweep_start", nil); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadRunLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("reopened log has %d events, want 2 (append semantics)", len(events))
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(7)
	status := func() any {
		return map[string]any{"done": 1, "total": 2, "telemetry": reg.Snapshot()}
	}
	srv, err := Serve("127.0.0.1:0", Handler(reg, status))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if doc["done"] != float64(1) {
		t.Fatalf("/status done = %v", doc["done"])
	}

	if code, body = get("/debug/vars"); code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("/debug/vars = %d: %q", code, body)
	}
	if code, body = get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", code)
	}
}
