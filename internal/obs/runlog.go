package obs

// runlog.go is the structured JSONL run-log: one line per scheduler
// lifecycle event (sweep start/end, job start/finish/skip/drop, and —
// under a sweepd coordinator — shard splits from work stealing),
// written beside the result store so a sweep's execution history
// travels with its results. The format matches the result store's durability
// contract: O_APPEND opens, one Write per line, unparseable lines are
// the reader's problem to skip — so a run-log survives the same crashes
// the store does and concatenates across resumed runs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// RunEvent is one run-log line. Fields beyond the fixed header live in
// Fields and are inlined into the JSON object (encoding/json sorts map
// keys, so lines are deterministic given deterministic values).
type RunEvent struct {
	// TimeMS is milliseconds since the Unix epoch (a float keeps
	// sub-millisecond resolution without a format parser on the other
	// end).
	TimeMS float64 `json:"ts_ms"`
	// Event names the lifecycle step: sweep_start, job_start, job_done,
	// job_skip, job_drop (a worker shedding a job stolen from its
	// shard), shard_split (a sweepd coordinator cutting a straggler's
	// remainder for an idle worker), sweep_end.
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// RunLog appends structured events as JSONL. All methods are safe for
// concurrent use, and safe on a nil receiver (a nil *RunLog is the
// disabled log, so call sites never guard).
type RunLog struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // nil when the writer is not ours to close
	now func() time.Time
	// torn records that the last append failed after landing a partial
	// line; the next event seals it with a newline first, so one torn
	// write costs one line, never the line after it too.
	torn bool
}

// NewRunLog logs to w (the caller owns w's lifetime).
func NewRunLog(w io.Writer) *RunLog {
	return &RunLog{w: w, now: time.Now}
}

// OpenRunLog opens (creating if absent) an append-mode run-log at path.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open run-log: %w", err)
	}
	return &RunLog{w: f, c: f, now: time.Now}, nil
}

// Event appends one line. Marshal errors are returned, write errors are
// returned, and neither disturbs previously written lines (each event is
// one Write of one newline-terminated buffer).
func (l *RunLog) Event(event string, fields map[string]any) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	e := RunEvent{
		TimeMS: float64(l.now().UnixNano()) / 1e6,
		Event:  event,
		Fields: fields,
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: marshal run-log event: %w", err)
	}
	line = append(line, '\n')
	if l.torn {
		if _, err := l.w.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("obs: seal torn run-log line: %w", err)
		}
		l.torn = false
	}
	if n, err := l.w.Write(line); err != nil {
		if n > 0 && n < len(line) {
			l.torn = true
		}
		return fmt.Errorf("obs: append run-log event: %w", err)
	}
	return nil
}

// Close closes the underlying file when the log owns one. Safe on nil
// and safe to call twice.
func (l *RunLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = nil
	if l.c == nil {
		return nil
	}
	c := l.c
	l.c = nil
	return c.Close()
}

// ReadRunLog parses a run-log stream, skipping unparseable lines (the
// same tolerance the result store extends to its own file). It exists
// for tests and offline analysis tooling.
func ReadRunLog(r io.Reader) ([]RunEvent, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var events []RunEvent
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		var e RunEvent
		if err := json.Unmarshal(line, &e); err != nil || e.Event == "" {
			continue
		}
		events = append(events, e)
	}
	return events, nil
}
