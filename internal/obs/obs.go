// Package obs is the unified telemetry subsystem: a registry of atomic
// counters and timers with a zero-allocation hot path, a structured JSONL
// run-log for scheduler lifecycle events, and an HTTP handler exposing a
// live /status document alongside expvar and pprof. It is strictly
// observational — nothing in this package influences protocol execution,
// job content keys, or stored results — and deliberately depends on
// nothing above the standard library, so every layer of the stack
// (engine, caches, scheduler, commands) can report into it without
// import cycles.
//
// Usage pattern: a subsystem resolves its counters once, by name, at
// construction time (the only allocating step), then increments the
// returned pointers on its hot path:
//
//	hits := obs.Default.Counter("sweep.cache.mem_hits")
//	...
//	hits.Inc() // atomic add, zero allocations
//
// Snapshot() freezes the whole registry into a plain JSON-marshalable
// value for /status, expvar, or end-of-run artifacts.
package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-growing atomic event count. The zero value
// is ready to use; all methods are safe for concurrent use and allocate
// nothing.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add folds n events in (negative n is permitted for callers that
// account corrections, but counters are conventionally monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic point-in-time level — a value that goes up and
// down, where Counter only grows. The sweepd coordinator reports worker
// liveness through one: a counter of heartbeats says how busy workers
// were, a gauge of unexpired leases says how many are alive now. The
// zero value is ready to use; all methods are safe for concurrent use
// and allocate nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the level by n (negative n lowers it).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Timer accumulates durations: total nanoseconds and observation count.
// The zero value is ready to use; Observe is atomic and allocation-free.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Observe folds one measured duration in.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// ObserveSince is Observe(time.Since(start)).
func (t *Timer) ObserveSince(start time.Time) { t.Observe(time.Since(start)) }

// Count returns how many durations were observed.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// TimerStat is a Timer frozen for serialization.
type TimerStat struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON: flat
// name→value maps, sorted implicitly by encoding/json's key ordering.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
}

// Registry is a named collection of counters and timers. Resolving a
// name allocates (once per name); using the returned pointer does not.
// The zero value is not usable — create with NewRegistry, or use the
// process-wide Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// Default is the process-wide registry commands and subsystems report
// into unless explicitly rebound (tests bind private registries to
// isolate their assertions from the rest of the process).
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. The returned pointer is stable for the registry's lifetime:
// resolve once, increment forever.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. The returned pointer is stable for the registry's lifetime.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it on first
// use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Names returns the registered counter names, sorted. Mostly for tests
// and rendering.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot freezes every counter and timer into a plain value. Counters
// that never moved are included (a zero is information: the subsystem
// was wired but idle); the maps are nil only for an empty registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStat, len(r.timers))
		for name, t := range r.timers {
			st := TimerStat{Count: t.Count(), TotalMS: float64(t.Total().Nanoseconds()) / 1e6}
			if st.Count > 0 {
				st.MeanMS = st.TotalMS / float64(st.Count)
			}
			s.Timers[name] = st
		}
	}
	return s
}

// ExpvarFunc adapts the registry for expvar.Publish: the published
// variable renders the live snapshot on every /debug/vars scrape.
// (Publishing is left to the caller because expvar panics on duplicate
// names — a process decides once where its registry appears.)
func (r *Registry) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}
