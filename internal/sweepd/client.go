package sweepd

// client.go is the coordinator-call layer every worker request goes
// through: JSON POST with a per-attempt deadline, a retry budget,
// exponential backoff with jitter, and a circuit breaker. Transient
// failures — connection refused, timeouts, 5xx, truncated or garbled
// response bodies — are retried; HTTP 409 maps to ErrLeaseLost and any
// other 4xx to a permanent error, both surfaced immediately. A call
// that exhausts its budget surfaces ErrUnreachable and trips the
// breaker: for a cooldown window every post fails fast without touching
// the network, so a fleet whose coordinator is down drains its
// in-flight work instead of stacking timeouts. Jitter decorrelates
// workers that all lost the same coordinator at the same moment; it
// deliberately uses math/rand, not the simulation's seeded streams —
// scheduling noise must never touch result determinism.
//
// Deadlines are per attempt and per endpoint, not per client: control
// calls (claim, heartbeat, complete) get a short deadline, /report — a
// potentially large streamed batch — a long one. The old blanket
// http.Client{Timeout} could kill a legitimate slow report and could
// not bound a hung dial tighter than the slowest endpoint needed.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrUnreachable is returned when a coordinator call exhausts its retry
// budget on transient failures, or fails fast because the circuit is
// open. It is the worker's drain signal: finish what is in flight,
// then exit resumably if the coordinator stays gone past MaxOffline.
var ErrUnreachable = errors.New("sweepd: coordinator unreachable")

// Client defaults; WorkerOptions overrides ride through newClient.
const (
	// DefaultCallTimeout bounds one attempt of a control call (claim,
	// heartbeat, complete, status).
	DefaultCallTimeout = 10 * time.Second
	// DefaultReportTimeout bounds one attempt of a /report, whose body
	// can carry a large batch of records.
	DefaultReportTimeout = 2 * time.Minute
	// breakAfter consecutive exhausted calls open the circuit...
	breakAfter = 3
	// ...for breakCooldown, during which every call fails fast.
	breakCooldown = 5 * time.Second
)

// breaker is a minimal consecutive-failure circuit breaker. A
// "failure" is a whole post() exhausting its retries — any definitive
// server response (2xx, 409, 4xx) proves reachability and resets it.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time
	threshold int
	cooldown  time.Duration
}

// allow reports whether a call may proceed (the circuit is closed, or
// the cooldown lapsed and this call is the half-open probe).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.openUntil)
}

func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records an exhausted call; reports whether this one opened
// the circuit.
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < b.threshold {
		return false
	}
	opened := now.After(b.openUntil)
	b.openUntil = now.Add(b.cooldown)
	return opened
}

type client struct {
	base          string
	hc            *http.Client
	retries       int
	backoff       time.Duration
	callTimeout   time.Duration
	reportTimeout time.Duration
	brk           breaker

	retried     *obs.Counter // "sweepd.client.retries"
	circuitOpen *obs.Counter // "sweepd.client.circuit_open"
	unreachable *obs.Counter // "sweepd.client.unreachable"

	mu  sync.Mutex
	rng *rand.Rand
}

// newClient builds the call layer; zero-valued knobs get defaults.
func newClient(base string, hc *http.Client, retries int, backoff, callTimeout, reportTimeout time.Duration, tel *obs.Registry) *client {
	if hc == nil {
		// Deadlines are per attempt via context; a Timeout here would
		// cap /report and /claim with one blanket number again.
		hc = &http.Client{}
	}
	if retries <= 0 {
		retries = 5
	}
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	if callTimeout <= 0 {
		callTimeout = DefaultCallTimeout
	}
	if reportTimeout <= 0 {
		reportTimeout = DefaultReportTimeout
	}
	if tel == nil {
		tel = obs.Default
	}
	return &client{
		base:          base,
		hc:            hc,
		retries:       retries,
		backoff:       backoff,
		callTimeout:   callTimeout,
		reportTimeout: reportTimeout,
		brk:           breaker{threshold: breakAfter, cooldown: breakCooldown},
		retried:       tel.Counter("sweepd.client.retries"),
		circuitOpen:   tel.Counter("sweepd.client.circuit_open"),
		unreachable:   tel.Counter("sweepd.client.unreachable"),
	}
}

// transientErr marks an attempt failure as retryable.
type transientErr struct{ err error }

func (e transientErr) Error() string { return e.err.Error() }
func (e transientErr) Unwrap() error { return e.err }

// isLeaseLost reports whether err (possibly wrapped) is a lease loss.
func isLeaseLost(err error) bool { return errors.Is(err, ErrLeaseLost) }

// isUnreachable reports whether err is the drain signal.
func isUnreachable(err error) bool { return errors.Is(err, ErrUnreachable) }

// jitter scales d by a uniform factor in [0.5, 1.5).
func (c *client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// timeoutFor picks the per-attempt deadline for an endpoint.
func (c *client) timeoutFor(path string) time.Duration {
	if path == "/report" {
		return c.reportTimeout
	}
	return c.callTimeout
}

// post sends in as JSON to path and decodes the response into out,
// retrying transient failures with exponential backoff + jitter. Each
// attempt runs under its own deadline; ctx bounds the whole call
// including backoff sleeps. Exhausting the budget returns
// ErrUnreachable (wrapping the last cause) and feeds the breaker.
func (c *client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("sweepd: marshal %s request: %w", path, err)
	}
	if !c.brk.allow(time.Now()) {
		c.unreachable.Inc()
		return fmt.Errorf("%w: circuit open for %s", ErrUnreachable, path)
	}
	url := strings.TrimRight(c.base, "/") + path
	attemptTimeout := c.timeoutFor(path)
	delay := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.retried.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.jitter(delay)):
			}
			delay *= 2
		}
		err := func() error {
			actx, cancel := context.WithTimeout(ctx, attemptTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := c.hc.Do(req)
			if err != nil {
				return transientErr{err}
			}
			msg, status := drain(resp)
			switch {
			case status == http.StatusOK:
				c.brk.success()
				if out == nil {
					return nil
				}
				if err := json.Unmarshal(msg, out); err != nil {
					// A garbled or truncated body under a 200 is a wire
					// fault, not a protocol fault: retry.
					return transientErr{fmt.Errorf("decode %s response: %w", path, err)}
				}
				return nil
			case status == http.StatusConflict:
				c.brk.success() // reachable, definitive
				return fmt.Errorf("%w: %s", ErrLeaseLost, strings.TrimSpace(string(msg)))
			case status >= 400 && status < 500:
				c.brk.success() // reachable, definitive
				return fmt.Errorf("sweepd: %s: %s (%d)", path, strings.TrimSpace(string(msg)), status)
			default:
				return transientErr{fmt.Errorf("%s: %s (%d)", path, strings.TrimSpace(string(msg)), status)}
			}
		}()
		if err == nil {
			return nil
		}
		var te transientErr
		if !errors.As(err, &te) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = te.err
	}
	c.unreachable.Inc()
	if c.brk.failure(time.Now()) {
		c.circuitOpen.Inc()
	}
	return fmt.Errorf("%w: %s failed after %d attempts: %v", ErrUnreachable, path, c.retries+1, lastErr)
}

// drain reads and closes the response body (keep-alive hygiene).
func drain(resp *http.Response) ([]byte, int) {
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return b, resp.StatusCode
}
