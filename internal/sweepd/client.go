package sweepd

// client.go is the coordinator-call layer every worker request goes
// through: JSON POST with a retry budget, exponential backoff, and
// jitter. Transient failures — connection refused, timeouts, 5xx — are
// retried; HTTP 409 maps to ErrLeaseLost and any other 4xx to a
// permanent error, both surfaced immediately. Jitter decorrelates a
// fleet of workers that all lost the same coordinator at the same
// moment; it deliberately uses math/rand, not the simulation's seeded
// streams — scheduling noise must never touch result determinism.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

type client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// isLeaseLost reports whether err (possibly wrapped) is a lease loss.
func isLeaseLost(err error) bool { return errors.Is(err, ErrLeaseLost) }

// jitter scales d by a uniform factor in [0.5, 1.5).
func (c *client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// post sends in as JSON to path and decodes the response into out,
// retrying transient failures with exponential backoff + jitter. The
// context bounds the whole call including backoff sleeps.
func (c *client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("sweepd: marshal %s request: %w", path, err)
	}
	url := strings.TrimRight(c.base, "/") + path
	delay := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.jitter(delay)):
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		msg, status := drain(resp)
		switch {
		case status == http.StatusOK:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(msg, out); err != nil {
				return fmt.Errorf("sweepd: decode %s response: %w", path, err)
			}
			return nil
		case status == http.StatusConflict:
			return fmt.Errorf("%w: %s", ErrLeaseLost, strings.TrimSpace(string(msg)))
		case status >= 400 && status < 500:
			return fmt.Errorf("sweepd: %s: %s (%d)", path, strings.TrimSpace(string(msg)), status)
		default:
			lastErr = fmt.Errorf("sweepd: %s: %s (%d)", path, strings.TrimSpace(string(msg)), status)
		}
	}
	return fmt.Errorf("sweepd: %s failed after %d attempts: %w", path, c.retries+1, lastErr)
}

// drain reads and closes the response body (keep-alive hygiene).
func drain(resp *http.Response) ([]byte, int) {
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return b, resp.StatusCode
}
