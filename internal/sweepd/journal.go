package sweepd

// journal.go is the coordinator's crash-recovery journal: a tiny JSON
// file beside the result store holding the fencing epoch and the shard
// geometry. The heavy state — which jobs are done — already lives in
// the content-addressed store and is re-derived on boot; the journal
// carries only what the store cannot: a monotone epoch that makes every
// restarted coordinator's lease tokens disjoint from its predecessor's
// (token = epoch<<32 | seq), so a worker still holding a pre-crash
// lease gets a clean 409 instead of colliding with a fresh token, and
// the shard count, so a restart partitions the remaining keyspace with
// the same geometry even if the flag changed. Saves are atomic
// (temp + rename + fsync), matching the netstore's write protocol.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Journal is the persisted coordinator identity. Epoch is the fencing
// generation: every boot through OpenJournal+Bump gets a strictly
// larger value than any token the previous incarnation ever issued.
type Journal struct {
	path string

	// Epoch is the current fencing generation (0: journal never used).
	Epoch uint32 `json:"epoch"`
	// Shards is the shard-count geometry of the sweep this journal
	// belongs to (0: not yet recorded; the coordinator's Config wins).
	Shards int `json:"shards"`
	// Cuts records every steal's cut point as the content key of the
	// first stolen job. Shard indices are meaningless across restarts
	// (the pending set differs), but the cut key locates the same
	// boundary in the re-derived partition, so a successor replays the
	// post-split geometry before issuing any lease. A cut whose key is
	// no longer pending (the job completed) replays as a no-op.
	Cuts []string `json:"cuts,omitempty"`
}

// OpenJournal reads the journal at path, or returns a zero journal if
// none exists yet. A corrupt journal is an error, not a silent reset —
// resetting the epoch would un-fence stale workers.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweepd: open journal: %w", err)
	}
	if err := json.Unmarshal(data, j); err != nil {
		return nil, fmt.Errorf("sweepd: parse journal %s: %w", path, err)
	}
	j.path = path
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Bump advances the fencing epoch and persists. Called once per
// coordinator boot, before any lease is issued: if the save fails the
// boot must fail too, or a second crash could reuse the epoch.
func (j *Journal) Bump(shards int) error {
	j.Epoch++
	if j.Shards == 0 {
		j.Shards = shards
	}
	return j.Save()
}

// AppendCut records one steal's cut key and persists before the split
// is applied in memory — write-ahead, so a coordinator crash between
// the append and the lease-table update still recovers the post-split
// geometry. If the save fails the steal must be abandoned.
func (j *Journal) AppendCut(key string) error {
	j.Cuts = append(j.Cuts, key)
	if err := j.Save(); err != nil {
		j.Cuts = j.Cuts[:len(j.Cuts)-1]
		return err
	}
	return nil
}

// Save persists the journal atomically: temp file, fsync, rename. A
// crash mid-save leaves the previous journal intact.
func (j *Journal) Save() error {
	if j.path == "" {
		return fmt.Errorf("sweepd: journal has no path")
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("sweepd: marshal journal: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("sweepd: save journal: %w", err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("sweepd: save journal: %w", e)
		}
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: save journal: %w", err)
	}
	return nil
}
