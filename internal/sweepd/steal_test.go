package sweepd

// steal_test.go pins the work-stealing subsystem with a hand-driven
// coordinator and an injected clock — no sleeps, no real stragglers.
// The scenarios are the ugly ones: a steal racing the victim's
// in-flight report (retained records land, stolen records are refused
// per-job without touching the lease), the thief winning the race (the
// victim's late record dedups), and a remainder-1 shard that must never
// split. Byte-identity of the final aggregates against a single-process
// run is asserted at the end of every path, because dedup-by-key is the
// invariant that makes stealing safe at all.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// summariesByKey runs the grid single-process and indexes the results,
// so hand-driven workers can "compute" a job by lookup.
func summariesByKey(t *testing.T, outs []sweep.Outcome) map[string]sweep.Record {
	t.Helper()
	recs := make(map[string]sweep.Record, len(outs))
	for _, o := range outs {
		recs[o.Job.Key()] = sweep.Record{Key: o.Job.Key(), Job: o.Job, Summary: o.Summary}
	}
	return recs
}

func TestStealSplitsStragglerShard(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)
	recs := summariesByKey(t, baseOuts)

	clk := newFakeClock()
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	store, err := sweep.OpenStore(t.TempDir() + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store, Shards: 2, LeaseTTL: time.Minute,
		Steal: true, StealAfter: 10 * time.Second,
		Telemetry: reg, RunLog: obs.NewRunLog(&logBuf), clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	slow := coord.claim("slow")
	fast := coord.claim("fast")
	if slow.Shard == nil || fast.Shard == nil {
		t.Fatalf("claims = %+v / %+v, want two shards", slow, fast)
	}
	slowJobs := slow.Shard.Jobs
	if len(slowJobs) != 8 || len(fast.Shard.Jobs) != 8 {
		t.Fatalf("shard sizes %d/%d, want 8/8", len(slowJobs), len(fast.Shard.Jobs))
	}

	report := func(worker string, shard *ShardClaim, js ...sweep.Job) ReportResponse {
		t.Helper()
		req := ReportRequest{Worker: worker, Shard: shard.ID, Lease: shard.Lease}
		for _, j := range js {
			req.Records = append(req.Records, recs[j.Key()])
		}
		resp, err := coord.report(req)
		if err != nil {
			t.Fatalf("%s report: %v", worker, err)
		}
		return resp
	}

	// The fast worker finishes its whole shard while the slow one sits
	// on everything; the fleet is now measurably ahead of the victim.
	clk.Advance(11 * time.Second)
	if r := report("fast", fast.Shard, fast.Shard.Jobs...); r.Accepted != 8 {
		t.Fatalf("fast report = %+v, want 8 accepted", r)
	}
	if err := coord.completeShard("fast", fast.Shard.ID, fast.Shard.Lease); err != nil {
		t.Fatal(err)
	}

	// Idle claim with nothing claimable: the steal policy must cut the
	// straggler's unreported suffix (half of 8) into a fresh shard.
	stolen := coord.claim("fast")
	if stolen.Shard == nil {
		t.Fatalf("thief claim = %+v, want a stolen shard", stolen)
	}
	if stolen.Shard.ID != 2 || len(stolen.Shard.Jobs) != 4 {
		t.Fatalf("stolen shard = id %d with %d jobs, want id 2 with 4", stolen.Shard.ID, len(stolen.Shard.Jobs))
	}
	for i, j := range stolen.Shard.Jobs {
		if want := slowJobs[4+i].Key(); j.Key() != want {
			t.Fatalf("stolen job %d = %s, want the victim's suffix job %s", i, j.Key(), want)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["sweepd.shards.split"] != 1 || snap.Counters["sweepd.jobs.stolen"] != 4 {
		t.Fatalf("steal counters = %+v, want 1 split / 4 stolen", snap.Counters)
	}

	// The victim's heartbeat now carries the stolen keys, so it can shed
	// them unrun.
	hbBody, _ := json.Marshal(HeartbeatRequest{
		Worker: "slow", Shard: slow.Shard.ID, Lease: slow.Shard.Lease, Done: 1, Total: 8,
	})
	hreq := httptest.NewRequest("POST", "/heartbeat", bytes.NewReader(hbBody))
	hrec := httptest.NewRecorder()
	coord.Handler().ServeHTTP(hrec, hreq)
	if hrec.Code != 200 {
		t.Fatalf("victim heartbeat after split = %d: %s", hrec.Code, hrec.Body.String())
	}
	var hb HeartbeatResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || len(hb.StolenKeys) != 4 {
		t.Fatalf("heartbeat response = %+v, want ok with 4 stolen keys", hb)
	}

	// The race: the victim's in-flight report carries one retained job
	// and one stolen job. The retained record must land; the stolen one
	// is refused per-job — the lease survives.
	r := report("slow", slow.Shard, slowJobs[0], slowJobs[7])
	if r.Accepted != 1 || r.Stolen != 1 || len(r.StolenKeys) != 4 {
		t.Fatalf("racing report = %+v, want 1 accepted / 1 stolen / 4 stolen keys", r)
	}

	// Thief lands the stolen suffix, including the job the victim just
	// tried to report.
	if r := report("fast", stolen.Shard, stolen.Shard.Jobs...); r.Accepted != 4 {
		t.Fatalf("thief report = %+v, want 4 accepted", r)
	}
	// Thief-won race: the victim re-sends a stolen job the thief already
	// landed — that is a plain duplicate now, not a stolen rejection.
	if r := report("slow", slow.Shard, slowJobs[7]); r.Duplicates != 1 || r.Stolen != 0 {
		t.Fatalf("late victim report = %+v, want 1 duplicate", r)
	}

	// Both sides retire their shards; the sweep completes.
	if r := report("slow", slow.Shard, slowJobs[1], slowJobs[2], slowJobs[3]); r.Accepted != 3 {
		t.Fatalf("victim retained report = %+v, want 3 accepted", r)
	}
	if err := coord.completeShard("slow", slow.Shard.ID, slow.Shard.Lease); err != nil {
		t.Fatalf("victim complete of retained prefix: %v", err)
	}
	if err := coord.completeShard("fast", stolen.Shard.ID, stolen.Shard.Lease); err != nil {
		t.Fatal(err)
	}
	if !coord.Finished() {
		t.Fatal("all shards complete but coordinator not finished")
	}

	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(coord.Outcomes())); md != baseMD {
		t.Fatalf("aggregates diverged across a steal:\n%s\nvs\n%s", md, baseMD)
	}
	if n := store.Len(); n != len(jobs) {
		t.Fatalf("store holds %d records, want %d", n, len(jobs))
	}

	// The split is on the record: a shard_split event naming victim,
	// thief, cut key, and the new shard.
	events, err := obs.ReadRunLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var split *obs.RunEvent
	for i := range events {
		if events[i].Event == "shard_split" {
			split = &events[i]
		}
	}
	if split == nil {
		t.Fatal("no shard_split event in run-log")
	}
	if split.Fields["thief"] != "fast" || split.Fields["cut"] != slowJobs[4].Key() {
		t.Fatalf("shard_split fields = %+v, want thief=fast cut=%s", split.Fields, slowJobs[4].Key())
	}
	if got := split.Fields["new_shard"].(float64); got != 2 {
		t.Fatalf("shard_split new_shard = %v, want 2", got)
	}

	// /status reflects the split in both tallies and per-shard detail.
	st := coord.Status()
	if st.Shards.Split != 1 || st.Shards.JobsStolen != 4 {
		t.Fatalf("status tally = %+v, want 1 split / 4 stolen", st.Shards)
	}
	if len(st.Shards.Detail) != 3 {
		t.Fatalf("status detail rows = %d, want 3", len(st.Shards.Detail))
	}
	if d := st.Shards.Detail[0]; d.Jobs != 4 || d.StolenJobs != 4 || d.State != "done" {
		t.Fatalf("victim detail row = %+v, want 4 jobs / 4 stolen / done", d)
	}
}

// TestStealRemainderOneRejected: a straggler holding a single
// unreported job is never split — there is no suffix that leaves it
// retained work — and the declined evaluation is counted.
func TestStealRemainderOneRejected(t *testing.T) {
	spec := sweep.Spec{
		Name: "tiny", Sizes: []int{64}, Deltas: []float64{0},
		Adversaries: []string{"none"}, Trials: 2, Seed: 7,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	outs, err := sweep.Run(jobs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := summariesByKey(t, outs)

	clk := newFakeClock()
	reg := obs.NewRegistry()
	store, err := sweep.OpenStore(t.TempDir() + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(jobs, Config{
		Name: "tiny", Store: store, Shards: 2, LeaseTTL: time.Minute,
		Steal: true, StealAfter: 10 * time.Second,
		Telemetry: reg, clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	slow := coord.claim("slow")
	fast := coord.claim("fast")
	if slow.Shard == nil || fast.Shard == nil || len(slow.Shard.Jobs) != 1 {
		t.Fatalf("claims = %+v / %+v, want two 1-job shards", slow, fast)
	}
	clk.Advance(11 * time.Second)
	if _, err := coord.report(ReportRequest{
		Worker: "fast", Shard: fast.Shard.ID, Lease: fast.Shard.Lease,
		Records: []sweep.Record{recs[fast.Shard.Jobs[0].Key()]},
	}); err != nil {
		t.Fatal(err)
	}
	if err := coord.completeShard("fast", fast.Shard.ID, fast.Shard.Lease); err != nil {
		t.Fatal(err)
	}

	// The victim is stale and the fleet is ahead, but its remainder is
	// one job: the claim must poll, not split.
	resp := coord.claim("fast")
	if resp.Shard != nil || resp.Done || resp.RetryMS <= 0 {
		t.Fatalf("claim = %+v, want a retry hint", resp)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweepd.shards.split"] != 0 {
		t.Fatal("remainder-1 shard was split")
	}
	if snap.Counters["sweepd.steals.rejected"] < 1 {
		t.Fatalf("declined steal not counted: %+v", snap.Counters)
	}

	// The straggler eventually delivers; nothing was lost or doubled.
	if _, err := coord.report(ReportRequest{
		Worker: "slow", Shard: slow.Shard.ID, Lease: slow.Shard.Lease,
		Records: []sweep.Record{recs[slow.Shard.Jobs[0].Key()]},
	}); err != nil {
		t.Fatal(err)
	}
	if err := coord.completeShard("slow", slow.Shard.ID, slow.Shard.Lease); err != nil {
		t.Fatal(err)
	}
	if !coord.Finished() || store.Len() != len(jobs) {
		t.Fatalf("finished=%v store=%d, want finished with %d records", coord.Finished(), store.Len(), len(jobs))
	}
}
