package sweepd

// lease.go is the coordinator's shard-assignment state machine: each
// shard is pending, leased (to a named worker, until an expiry), or
// done. Claims hand out the lowest-numbered claimable shard — pending,
// or leased but expired — under a fresh token; the token fences every
// later renew/complete, so a worker whose lease was reassigned cannot
// complete (or keep renewing) a shard someone else now owns. The clock
// is injected so lease expiry is unit-testable without sleeping.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLeaseLost is returned (and served as HTTP 409) when a renew,
// report, or complete arrives under a token that is stale or expired:
// the shard has been, or is about to be, reassigned. The worker's only
// correct move is to abandon the shard and claim again. Tokens embed
// the coordinator's fencing epoch (token = epoch<<32 | seq), so a
// worker that outlived a coordinator crash lands here too — its
// pre-crash token can never equal one the restarted coordinator
// issues.
var ErrLeaseLost = errors.New("sweepd: lease lost")

// errNoShard is returned (and served as HTTP 400) when a lease-scoped
// call names a shard index outside the table: a malformed or
// cross-sweep request, not a lease race — retrying cannot help.
var errNoShard = errors.New("sweepd: no such shard")

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

type shardLease struct {
	state   shardState
	worker  string
	token   int64
	expiry  time.Time
	assigns int // times leased; >1 means at least one reassignment
}

// leaseTable tracks shard assignment. All methods are safe for
// concurrent use.
type leaseTable struct {
	mu       sync.Mutex
	now      func() time.Time
	ttl      time.Duration
	epoch    uint32
	shards   []shardLease
	done     int
	nextSeq  int64
	lastSeen map[string]time.Time
}

// newLeaseTable builds the table. epoch fences tokens across
// coordinator incarnations: tokens are epoch<<32 | seq, so two tables
// with different epochs can never issue colliding tokens (epoch 0 —
// no journal — degrades to the plain sequence).
func newLeaseTable(shards int, ttl time.Duration, now func() time.Time, epoch uint32) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		now:      now,
		ttl:      ttl,
		epoch:    epoch,
		shards:   make([]shardLease, shards),
		lastSeen: make(map[string]time.Time),
	}
}

// Epoch returns the table's fencing epoch.
func (t *leaseTable) Epoch() uint32 { return t.epoch }

// Claim leases the lowest-numbered claimable shard to worker. ok is
// false when nothing is claimable — either every shard is done (check
// Done) or the remainder is leased to live workers (poll again).
// reassigned reports that the shard had been leased before, i.e. a
// previous owner died or went silent past its TTL.
func (t *leaseTable) Claim(worker string) (shard int, token int64, reassigned bool, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.lastSeen[worker] = now
	for i := range t.shards {
		s := &t.shards[i]
		claimable := s.state == shardPending ||
			(s.state == shardLeased && now.After(s.expiry))
		if !claimable {
			continue
		}
		t.nextSeq++
		reassigned = s.assigns > 0
		s.state = shardLeased
		s.worker = worker
		s.token = int64(t.epoch)<<32 | t.nextSeq
		s.expiry = now.Add(t.ttl)
		s.assigns++
		return i, s.token, reassigned, true
	}
	return 0, 0, false, false
}

// Renew extends the lease if token still owns shard and has not expired.
func (t *leaseTable) Renew(worker string, shard int, token int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.lastSeen[worker] = now
	s, err := t.holding(shard, token, now)
	if err != nil {
		return err
	}
	s.expiry = now.Add(t.ttl)
	return nil
}

// Complete marks shard done if token still owns it.
func (t *leaseTable) Complete(worker string, shard int, token int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.lastSeen[worker] = now
	s, err := t.holding(shard, token, now)
	if err != nil {
		return err
	}
	s.state = shardDone
	t.done++
	return nil
}

// Add appends a fresh pending shard (a steal's stolen suffix) and
// returns its index. The new shard is served through the ordinary
// Claim path.
func (t *leaseTable) Add() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shards = append(t.shards, shardLease{})
	return len(t.shards) - 1
}

// liveLease is one row of Leased: a shard currently held under an
// unexpired lease.
type liveLease struct {
	shard  int
	worker string
	token  int64
}

// Leased snapshots every shard held under a live (unexpired) lease.
// The steal policy uses it to enumerate victims; expired leases are
// excluded because lease expiry already reassigns those.
func (t *leaseTable) Leased() []liveLease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []liveLease
	for i := range t.shards {
		s := &t.shards[i]
		if s.state == shardLeased && !now.After(s.expiry) {
			out = append(out, liveLease{shard: i, worker: s.worker, token: s.token})
		}
	}
	return out
}

// shardView is one shard's assignment state for /status: "pending",
// "active" (live lease), or "done", plus the current or last holder.
type shardView struct {
	state  string
	worker string
}

// View snapshots every shard's assignment state. An expired lease
// shows as pending — it is claimable and its holder presumed dead.
func (t *leaseTable) View() []shardView {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]shardView, len(t.shards))
	for i := range t.shards {
		s := &t.shards[i]
		state := "pending"
		switch {
		case s.state == shardDone:
			state = "done"
		case s.state == shardLeased && !now.After(s.expiry):
			state = "active"
		}
		out[i] = shardView{state: state, worker: s.worker}
	}
	return out
}

// holding validates (shard, token) against the current leases; the
// caller holds t.mu.
func (t *leaseTable) holding(shard int, token int64, now time.Time) (*shardLease, error) {
	if shard < 0 || shard >= len(t.shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", errNoShard, shard, len(t.shards))
	}
	s := &t.shards[shard]
	if s.state != shardLeased || s.token != token || now.After(s.expiry) {
		return nil, ErrLeaseLost
	}
	return s, nil
}

// Done reports whether every shard is complete.
func (t *leaseTable) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.shards)
}

// Counts tallies shard states; leases past their expiry count as
// pending — they are claimable, their worker is presumed dead.
func (t *leaseTable) Counts() (pending, active, done int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for i := range t.shards {
		switch s := &t.shards[i]; {
		case s.state == shardDone:
			done++
		case s.state == shardLeased && !now.After(s.expiry):
			active++
		default:
			pending++
		}
	}
	return
}

// Workers snapshots every worker the table has heard from and whether
// it has been seen within one TTL (the liveness horizon).
func (t *leaseTable) Workers() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make(map[string]time.Duration, len(t.lastSeen))
	for w, seen := range t.lastSeen {
		out[w] = now.Sub(seen)
	}
	return out
}

// Alive counts workers seen within one TTL.
func (t *leaseTable) Alive() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	n := 0
	for _, seen := range t.lastSeen {
		if now.Sub(seen) <= t.ttl {
			n++
		}
	}
	return n
}
