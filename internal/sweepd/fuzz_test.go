package sweepd

// fuzz_test.go fuzzes the coordinator's HTTP decode surface: arbitrary
// bodies against every protocol endpoint must be answered 2xx or 4xx —
// never a panic, never a 5xx. The selector byte picks the endpoint so
// one corpus covers the whole mux. The coordinator is shared across
// iterations (leases accumulate), which is the realistic shape: a
// long-lived server fielding junk between legitimate calls.

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

var fuzzEndpoints = []string{"/claim", "/heartbeat", "/report", "/complete", "/status"}

var fuzzOnce struct {
	sync.Once
	handler *Coordinator
	err     error
}

func fuzzCoordinator() (*Coordinator, error) {
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sweepd-fuzz-*")
		if err != nil {
			fuzzOnce.err = err
			return
		}
		store, err := sweep.OpenStore(filepath.Join(dir, "results.jsonl"))
		if err != nil {
			fuzzOnce.err = err
			return
		}
		spec := sweep.Spec{
			Name: "fuzz", Sizes: []int{64}, Deltas: []float64{0},
			Adversaries: []string{"none"}, Trials: 2, Seed: 7,
		}
		jobs, err := spec.Jobs()
		if err != nil {
			fuzzOnce.err = err
			return
		}
		// Stealing on with a hair-trigger staleness threshold: fuzzed
		// claims against leased-out shards walk the trySteal path too.
		fuzzOnce.handler, fuzzOnce.err = NewCoordinator(jobs, Config{
			Name: "fuzz", Store: store, Shards: 2, Telemetry: obs.NewRegistry(),
			Steal: true, StealAfter: time.Millisecond,
		})
	})
	return fuzzOnce.handler, fuzzOnce.err
}

func FuzzProtocolDecode(f *testing.F) {
	f.Add([]byte(`{"worker":"w1"}`), byte(0))
	f.Add([]byte(`{"worker":"w1","shard":0,"lease":1}`), byte(1))
	f.Add([]byte(`{"worker":"w1","shard":0,"lease":1,"records":[{"key":"k","job":{},"summary":{}}]}`), byte(2))
	f.Add([]byte(`{"worker":"w1","shard":99,"lease":-1}`), byte(3))
	f.Add([]byte(``), byte(4))
	f.Add([]byte(`{"worker": tr`), byte(0))
	f.Add([]byte(`[[[[[[[[`), byte(2))
	f.Add([]byte(`{"shard":4294967296,"lease":9223372036854775807}`), byte(1))
	f.Add([]byte("{\"worker\":\"\x00\xff\"}"), byte(0))
	// Progress piggyback fields (done/total on heartbeat and report) and
	// the stolen-keys response path: adversarial counts must never leak
	// out of the per-shard bookkeeping as a panic or 5xx.
	f.Add([]byte(`{"worker":"w1","shard":0,"lease":1,"done":3,"total":9}`), byte(1))
	f.Add([]byte(`{"worker":"w1","shard":0,"lease":1,"done":7,"total":2,"records":[{"key":"k","job":{},"summary":{}}]}`), byte(2))
	f.Add([]byte(`{"worker":"w1","shard":1,"lease":1,"done":-3,"total":99999999999999999}`), byte(1))

	f.Fuzz(func(t *testing.T, body []byte, which byte) {
		coord, err := fuzzCoordinator()
		if err != nil {
			t.Fatal(err)
		}
		path := fuzzEndpoints[int(which)%len(fuzzEndpoints)]
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		coord.Handler().ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s with %d-byte body: status %d, want 2xx/4xx (body: %q)",
				path, len(body), rec.Code, rec.Body.String())
		}
	})
}
