package sweepd

// worker.go is the client side: a Worker claims shards, runs them
// through the unchanged sweep scheduler (per-worker arenas, batch
// planner, netstore disk tier — sweep.Options carries all of it), and
// streams each finished job's Record back as it completes while a
// heartbeat keeps the lease alive through long jobs. Losing the lease
// (HTTP 409 on any call) cancels the shard's context, which drains
// exactly like a Ctrl-C'd cmd/sweep — in-flight jobs finish and report,
// the rest are abandoned for whichever worker holds the lease now.
// Every coordinator call retries transient failures under exponential
// backoff with jitter; only a lease loss and a context cancellation are
// terminal.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name identifies this worker in leases, /status, and run-logs
	// ("" derives host.pid).
	Name string
	// Opts is the local execution configuration — Workers, RunWorkers,
	// Batch, Cache, Telemetry, RunLog all apply per shard. Store and
	// Progress are owned by the worker loop (results belong to the
	// coordinator's store).
	Opts sweep.Options
	// Client is the HTTP client (nil: a default client with no blanket
	// Timeout — deadlines are per request, per endpoint; see
	// CallTimeout and ReportTimeout).
	Client *http.Client
	// Retries is how many times a transient coordinator failure is
	// retried per call (0: 5).
	Retries int
	// Backoff is the first retry delay, doubled per attempt with ±50%
	// jitter (0: 200 ms).
	Backoff time.Duration
	// Poll is the idle claim interval when the server sends no hint
	// (0: 500 ms).
	Poll time.Duration
	// CallTimeout bounds one attempt of a control call — claim,
	// heartbeat, complete (0: DefaultCallTimeout).
	CallTimeout time.Duration
	// ReportTimeout bounds one attempt of a /report, which may stream a
	// large record batch (0: DefaultReportTimeout). The old blanket
	// client timeout could kill a legitimate slow report.
	ReportTimeout time.Duration
	// MaxOffline is how long the worker keeps polling an unreachable
	// coordinator before draining and exiting resumably (0: 90 s;
	// negative: forever).
	MaxOffline time.Duration

	// OnOutcome, when non-nil, observes every job outcome the worker
	// produces, before it is reported (tests and progress displays).
	OnOutcome func(sweep.Outcome)
}

// Worker runs the claim/run/report loop against one coordinator.
type Worker struct {
	o  WorkerOptions
	c  *client
	mu sync.Mutex
	// shardsRun counts shards this worker completed (tests).
	shardsRun int
}

// NewWorker builds a worker; see WorkerOptions for defaults.
func NewWorker(o WorkerOptions) *Worker {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.MaxOffline == 0 {
		o.MaxOffline = 90 * time.Second
	}
	return &Worker{o: o, c: newClient(o.Coordinator, o.Client,
		o.Retries, o.Backoff, o.CallTimeout, o.ReportTimeout, o.Opts.Telemetry)}
}

// Name returns the worker's lease identity.
func (w *Worker) Name() string { return w.o.Name }

// ShardsCompleted returns how many shards this worker has completed.
func (w *Worker) ShardsCompleted() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shardsRun
}

// Run claims and executes shards until the coordinator reports the
// sweep done (returns nil), ctx is canceled (returns ctx's error after
// draining the current shard), or the coordinator stays unreachable
// past MaxOffline — in which case Run returns an error wrapping
// ErrUnreachable after draining, and a later restart of the same
// worker resumes cleanly: all sweep state lives with the coordinator.
func (w *Worker) Run(ctx context.Context) error {
	var offlineSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp ClaimResponse
		if err := w.c.post(ctx, "/claim", ClaimRequest{Worker: w.o.Name}, &resp); err != nil {
			if !isUnreachable(err) {
				return fmt.Errorf("sweepd: claim: %w", err)
			}
			// The coordinator may be mid-restart (crash recovery):
			// keep polling inside the offline budget, give up — with
			// everything already reported safe in its store — past it.
			now := time.Now()
			if offlineSince.IsZero() {
				offlineSince = now
			}
			if w.o.MaxOffline >= 0 && now.Sub(offlineSince) > w.o.MaxOffline {
				return fmt.Errorf("sweepd: coordinator offline for %s: %w",
					now.Sub(offlineSince).Round(time.Second), ErrUnreachable)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.o.Poll):
			}
			continue
		}
		offlineSince = time.Time{}
		switch {
		case resp.Done:
			return nil
		case resp.Shard == nil:
			wait := w.o.Poll
			if resp.RetryMS > 0 {
				wait = time.Duration(resp.RetryMS) * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		default:
			if err := w.runShard(ctx, resp.Shard); err != nil {
				return err
			}
		}
	}
}

// runShard executes one claimed shard. Neither lease loss nor an
// unreachable coordinator is an error here — both abandon the shard
// mid-drain and send the loop back to claiming (where the offline
// budget decides whether to keep polling); only ctx cancellation
// propagates. Records that could not be delivered are simply never
// accounted: the shard's lease expires and the work reassigns.
func (w *Worker) runShard(ctx context.Context, shard *ShardClaim) error {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// jobsDone mirrors the scheduler's progress count for the Done/Total
	// fields heartbeats and reports piggyback; stolenSet collects keys
	// the coordinator cut out of this shard (work stealing) so the
	// scheduler sheds them unrun via Options.Drop. Learning about a
	// steal is best-effort — a job run anyway just reports a record the
	// coordinator refuses (or dedups), which is harmless by design.
	var jobsDone atomic.Int64
	var stolenMu sync.Mutex
	stolenSet := make(map[string]bool)
	noteStolen := func(keys []string) {
		if len(keys) == 0 {
			return
		}
		stolenMu.Lock()
		for _, k := range keys {
			stolenSet[k] = true
		}
		stolenMu.Unlock()
	}

	var lost, offline atomic.Bool
	abandon := func(err error) {
		if isLeaseLost(err) {
			lost.Store(true)
			cancel()
		}
		if isUnreachable(err) {
			// Burning CPU on jobs whose records cannot be delivered is
			// pointless; drain and let the claim loop wait it out.
			offline.Store(true)
			cancel()
		}
	}

	// Heartbeat at a third of the TTL: two beats may be lost before the
	// lease expires. Reports renew too; this covers jobs longer than
	// the TTL.
	hbEvery := time.Duration(shard.LeaseMS) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-shardCtx.Done():
				return
			case <-t.C:
				var resp HeartbeatResponse
				err := w.c.post(shardCtx, "/heartbeat", HeartbeatRequest{
					Worker: w.o.Name, Shard: shard.ID, Lease: shard.Lease,
					Done: int(jobsDone.Load()), Total: len(shard.Jobs),
				}, &resp)
				if err != nil {
					abandon(err)
					continue
				}
				noteStolen(resp.StolenKeys)
			}
		}
	}()

	// Streaming sender: outcomes queue as the scheduler's serial
	// Progress callback fires; the sender drains the queue greedily, so
	// one report carries however many jobs finished while the previous
	// report was in flight.
	outcomes := make(chan sweep.Outcome, len(shard.Jobs))
	var sendWG sync.WaitGroup
	sendWG.Add(1)
	go func() {
		defer sendWG.Done()
		for out := range outcomes {
			batch := []sweep.Outcome{out}
		drain:
			for {
				select {
				case more, ok := <-outcomes:
					if !ok {
						break drain
					}
					batch = append(batch, more)
				default:
					break drain
				}
			}
			req := ReportRequest{
				Worker: w.o.Name, Shard: shard.ID, Lease: shard.Lease,
				Done: int(jobsDone.Load()), Total: len(shard.Jobs),
			}
			for _, o := range batch {
				if o.Err != nil {
					req.Errors = append(req.Errors, JobError{
						Key: o.Job.Key(), Label: o.Job.Label(), Error: o.Err.Error(),
					})
					continue
				}
				req.Records = append(req.Records, sweep.Record{
					Key:     o.Job.Key(),
					Job:     o.Job,
					Summary: o.Summary,
					ElapsedMS: float64((o.Stages.CacheLookup + o.Stages.Run +
						o.Stages.Aggregate).Microseconds()) / 1000,
				})
			}
			// Report outside shardCtx: a drained in-flight job's record
			// is still worth delivering after a local cancel (though not
			// after a lease loss — the coordinator refuses it anyway).
			var resp ReportResponse
			if err := w.c.post(ctx, "/report", req, &resp); err != nil {
				abandon(err)
				continue
			}
			noteStolen(resp.StolenKeys)
		}
	}()

	opts := w.o.Opts
	opts.Store = nil
	opts.Drop = func(j sweep.Job) bool {
		stolenMu.Lock()
		defer stolenMu.Unlock()
		return stolenSet[j.Key()]
	}
	opts.Progress = func(done, total int, out sweep.Outcome) {
		jobsDone.Store(int64(done))
		if w.o.OnOutcome != nil {
			w.o.OnOutcome(out)
		}
		if out.Dropped {
			// A shed stolen job produced nothing to report; the thief
			// owns it now.
			return
		}
		outcomes <- out
	}
	_, runErr := sweep.RunContext(shardCtx, shard.Jobs, opts)

	close(outcomes)
	sendWG.Wait()
	close(hbStop)
	hbWG.Wait()

	if lost.Load() || offline.Load() {
		// The lease moved on (or the coordinator did): whatever we
		// reported is deduped, the rest reassigns. Back to claiming.
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// A non-nil runErr here is a job-level failure: it already rode the
	// reports as a JobError (the scheduler fires every job's Progress
	// callback), so the shard still completes — the coordinator accounts
	// errored jobs as final.
	_ = runErr
	err := w.c.post(ctx, "/complete", CompleteRequest{
		Worker: w.o.Name, Shard: shard.ID, Lease: shard.Lease,
	}, &OKResponse{})
	if err != nil {
		if isLeaseLost(err) || isUnreachable(err) {
			// An undeliverable complete is safe to walk away from: the
			// lease expires and the next claimant finds every job
			// reported, auto-completing the shard without recompute.
			return nil
		}
		return fmt.Errorf("sweepd: complete shard %d: %w", shard.ID, err)
	}
	w.mu.Lock()
	w.shardsRun++
	w.mu.Unlock()
	return nil
}
