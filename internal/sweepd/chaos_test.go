package sweepd

// chaos_test.go is the randomized fault-schedule property suite the
// whole robustness layer answers to: for any seeded schedule of
// dropped, delayed, duplicated, and truncated coordinator calls — and
// for a coordinator crash-and-restart mid-sweep — the merged store and
// the rendered aggregates must stay byte-identical to a clean
// single-process run. Faults come from chaos.Transport on each worker's
// HTTP client; recovery comes from the machinery under test: client
// retries, lease TTL reassignment, epoch fencing, dedup by content key,
// and the journal. CHAOS_SEEDS widens the schedule sweep in CI.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// chaosSeeds returns the fault-schedule seeds to sweep: 1..3 by
// default, 1..$CHAOS_SEEDS when set (the CI chaos job widens it).
func chaosSeeds(t *testing.T) []uint64 {
	n := 3
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_SEEDS=%q: want a positive integer", env)
		}
		n = v
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// chaosPlan is the standard mixed-fault schedule: every fault kind on,
// rates high enough that a run of the 16-job grid injects dozens of
// faults, low enough that retries converge fast.
func chaosPlan(seed uint64) chaos.NetPlan {
	return chaos.NetPlan{
		Seed:             seed,
		DropRequest:      0.05,
		DropResponse:     0.05,
		Delay:            0.20,
		DupRequest:       0.05,
		TruncateRequest:  0.03,
		TruncateResponse: 0.05,
		MaxDelay:         10 * time.Millisecond,
	}
}

// chaosWorker builds a worker whose every coordinator call runs through
// a fault-injecting transport. An optional outcome hook makes the
// worker a controllable straggler (see runStragglerFleet).
func chaosWorker(url, name string, seed uint64, onOutcome ...func(sweep.Outcome)) (*Worker, *chaos.Transport) {
	tr := &chaos.Transport{Plan: chaosPlan(seed)}
	o := WorkerOptions{
		Coordinator: url,
		Name:        name,
		Opts:        sweep.Options{Workers: 2},
		Client:      &http.Client{Transport: tr},
		Retries:     4,
		Backoff:     5 * time.Millisecond,
		Poll:        20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
		MaxOffline:  -1, // the coordinator is alive (or restarting): poll through
	}
	if len(onOutcome) > 0 {
		o.OnOutcome = onOutcome[0]
	}
	return NewWorker(o), tr
}

// runChaosFleet keeps n chaos workers running — respawning any that
// exits early — until stop() reports the sweep is over.
func runChaosFleet(ctx context.Context, t *testing.T, url string, n int, seed uint64, stop func() bool) []*chaos.Transport {
	t.Helper()
	var mu sync.Mutex
	var transports []*chaos.Transport
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 0; !stop() && ctx.Err() == nil; gen++ {
				w, tr := chaosWorker(url, fmt.Sprintf("w%d.%d", i, gen), seed*100+uint64(i*10+gen))
				mu.Lock()
				transports = append(transports, tr)
				mu.Unlock()
				if err := w.Run(ctx); err != nil && ctx.Err() == nil && !stop() {
					t.Logf("worker w%d.%d exited early (%v), respawning", i, gen, err)
				}
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return transports
}

// totalFaults sums injected faults across a fleet's transports.
func totalFaults(transports []*chaos.Transport) int64 {
	var n int64
	for _, tr := range transports {
		for _, v := range tr.Counts() {
			n += v
		}
	}
	return n
}

// TestChaosNetworkFaultsByteIdentical is the headline property over
// network faults alone: for each seeded schedule, a 3-worker fleet
// behind fault-injecting transports reproduces the single-process
// outcomes and aggregates byte for byte.
func TestChaosNetworkFaultsByteIdentical(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)

	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			store, err := sweep.OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			coord, err := NewCoordinator(jobs, Config{
				Name:  "dist",
				Store: store,
				// Several shards and a short real TTL: dropped acks and
				// abandoned shards must actually reassign within the
				// test's lifetime.
				Shards:    4,
				LeaseTTL:  1500 * time.Millisecond,
				Telemetry: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(coord.Handler())
			defer srv.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			transports := runChaosFleet(ctx, t, srv.URL, 3, seed, coord.Finished)
			if ctx.Err() != nil {
				t.Fatalf("fleet did not converge under schedule %d", seed)
			}
			if !coord.Finished() {
				t.Fatal("workers drained but coordinator not finished")
			}
			if n := totalFaults(transports); n == 0 {
				t.Fatalf("schedule %d injected no faults — the property is vacuous", seed)
			} else {
				t.Logf("schedule %d: %d faults injected, store=%d records", seed, n, store.Len())
			}

			outs := coord.Outcomes()
			if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
				t.Fatalf("aggregates diverged from clean run under schedule %d:\n%s\nvs\n%s", seed, md, baseMD)
			}
			for i := range outs {
				if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
					t.Fatalf("schedule %d: job %d summary diverged", seed, i)
				}
			}
			// Store parity: every job's record present and matching.
			for i, j := range jobs {
				rec, ok := store.Lookup(j.Key())
				if !ok {
					t.Fatalf("schedule %d: store missing record for job %d", seed, i)
				}
				if !reflect.DeepEqual(rec.Summary, baseOuts[i].Summary) {
					t.Fatalf("schedule %d: stored summary for job %d diverged", seed, i)
				}
			}
		})
	}
}

// TestChaosCoordinatorCrashRestart is the crash-recovery property end
// to end: the coordinator is killed mid-sweep (listener torn down, no
// graceful close, store left unsynced) while chaos workers hammer it,
// a successor reboots from the same store and journal on the same
// address, fences the old epoch, and the finished sweep is still
// byte-identical to the clean run.
func TestChaosCoordinatorCrashRestart(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)
	dir := t.TempDir()
	storePath := filepath.Join(dir, "results.jsonl")
	journalPath := filepath.Join(dir, "sweep.journal")

	boot := func(addr string) (*Coordinator, *Journal, *sweep.Store, net.Listener) {
		t.Helper()
		store, err := sweep.OpenStore(storePath)
		if err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(jobs, Config{
			Name: "dist", Store: store, Shards: 4, Journal: j,
			LeaseTTL: 1500 * time.Millisecond, Telemetry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// The successor rebinds the predecessor's address so live
		// workers rejoin without reconfiguration. The port can linger
		// briefly after the old listener closes; retry the bind.
		var ln net.Listener
		deadline := time.Now().Add(10 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		return coord, j, store, ln
	}

	c1, j1, store1, ln1 := boot("127.0.0.1:0")
	if j1.Epoch != 1 {
		t.Fatalf("first boot epoch = %d, want 1", j1.Epoch)
	}
	addr := ln1.Addr().String()
	srv1 := &http.Server{Handler: c1.Handler()}
	go srv1.Serve(ln1)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var phase2 func() bool // set after the restart; nil-safe via closure
	var mu sync.Mutex
	stop := func() bool {
		mu.Lock()
		f := phase2
		mu.Unlock()
		return f != nil && f()
	}
	fleetDone := make(chan []*chaos.Transport, 1)
	go func() { fleetDone <- runChaosFleet(ctx, t, "http://"+addr, 3, 42, stop) }()

	// Let the fleet make real progress, then pull the plug.
	for deadline := time.Now().Add(time.Minute); ; {
		if c1.Status().Shards.RecordsAccepted >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet made no progress before planned crash")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv1.Close() // crash: in-flight calls die, no handover, no store close
	// Give the dying handlers a beat so the successor's store open does
	// not interleave with their final appends (a cross-process kill -9 —
	// the CI smoke — has no such window and relies on the torn-line
	// repair instead).
	time.Sleep(50 * time.Millisecond)

	c2, j2, store2, ln2 := boot(addr)
	defer store2.Close()
	if j2.Epoch != 2 {
		t.Fatalf("post-crash boot epoch = %d, want 2", j2.Epoch)
	}
	if got := c2.Status().Epoch; got != 2 {
		t.Fatalf("successor /status epoch = %d, want 2", got)
	}
	if c2.Status().Sweep.Done == 0 {
		t.Fatal("successor resumed nothing from the crashed store")
	}
	srv2 := &http.Server{Handler: c2.Handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()
	mu.Lock()
	phase2 = c2.Finished
	mu.Unlock()

	select {
	case <-c2.Done():
	case <-ctx.Done():
		t.Fatal("sweep did not finish after coordinator restart")
	}
	transports := <-fleetDone
	if n := totalFaults(transports); n == 0 {
		t.Fatal("crash run injected no network faults — weaken nothing, fix the plan")
	}

	// Byte identity against the clean run, with the outcome set stitched
	// from both incarnations: records accepted before the crash arrive
	// as store resumes, the rest were recomputed under epoch 2.
	outs := c2.Outcomes()
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
		t.Fatalf("aggregates diverged across coordinator crash:\n%s\nvs\n%s", md, baseMD)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
			t.Fatalf("job %d summary diverged across coordinator crash", i)
		}
	}
	for i, j := range jobs {
		rec, ok := store2.Lookup(j.Key())
		if !ok {
			t.Fatalf("store missing record for job %d after crash recovery", i)
		}
		if !reflect.DeepEqual(rec.Summary, baseOuts[i].Summary) {
			t.Fatalf("stored summary for job %d diverged across crash", i)
		}
	}
	_ = store1 // deliberately never closed: the crash dropped it
}

// runStragglerFleet runs n chaos workers until stop(); worker 0 is a
// straggler whose first finished job stalls the scheduler's serial
// progress callback for stall — its shard keeps heartbeating (the lease
// stays live) while reporting nothing, which is exactly the profile the
// steal policy exists for.
func runStragglerFleet(ctx context.Context, t *testing.T, url string, n int, seed uint64, stall time.Duration, stop func() bool) []*chaos.Transport {
	t.Helper()
	var stallOnce sync.Once
	stallFirst := func(sweep.Outcome) {
		stallOnce.Do(func() {
			select {
			case <-time.After(stall):
			case <-ctx.Done():
			}
		})
	}
	var mu sync.Mutex
	var transports []*chaos.Transport
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 0; !stop() && ctx.Err() == nil; gen++ {
				var hook func(sweep.Outcome)
				if i == 0 {
					hook = stallFirst
				}
				w, tr := chaosWorker(url, fmt.Sprintf("w%d.%d", i, gen), seed*100+uint64(i*10+gen), hook)
				mu.Lock()
				transports = append(transports, tr)
				mu.Unlock()
				if err := w.Run(ctx); err != nil && ctx.Err() == nil && !stop() {
					t.Logf("worker w%d.%d exited early (%v), respawning", i, gen, err)
				}
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return transports
}

// TestChaosStragglerStealByteIdentical is the tentpole property: with a
// straggler pinning its shard under a live lease — the lease TTL is a
// minute, so expiry-based reassignment cannot be what saves the sweep —
// the idle rest of the fleet must steal the straggler's unreported
// remainder, and the finished sweep must still be byte-identical to a
// clean single-process run. Non-vacuity is asserted: at least one shard
// was actually split.
func TestChaosStragglerStealByteIdentical(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)

	store, err := sweep.OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store, Shards: 4,
		// A long TTL forces the point: the straggler's shard can only
		// finish through a split, never through lease expiry.
		LeaseTTL: time.Minute, Steal: true, StealAfter: 300 * time.Millisecond,
		Telemetry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	transports := runStragglerFleet(ctx, t, srv.URL, 3, 7, 2*time.Second, coord.Finished)
	if ctx.Err() != nil {
		t.Fatal("fleet did not converge around the straggler")
	}
	if !coord.Finished() {
		t.Fatal("workers drained but coordinator not finished")
	}
	if n := totalFaults(transports); n == 0 {
		t.Fatal("straggler run injected no network faults — the property is vacuous")
	}
	st := coord.Status()
	if st.Shards.Split < 1 {
		t.Fatal("no shard was split — the steal property is vacuous")
	}
	t.Logf("steals: %d splits, %d jobs stolen, %d declined", st.Shards.Split, st.Shards.JobsStolen, st.Shards.StealsRejected)

	outs := coord.Outcomes()
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
		t.Fatalf("aggregates diverged from clean run across a steal:\n%s\nvs\n%s", md, baseMD)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
			t.Fatalf("job %d summary diverged across a steal", i)
		}
	}
	for i, j := range jobs {
		rec, ok := store.Lookup(j.Key())
		if !ok {
			t.Fatalf("store missing record for job %d", i)
		}
		if !reflect.DeepEqual(rec.Summary, baseOuts[i].Summary) {
			t.Fatalf("stored summary for job %d diverged", i)
		}
	}
}

// TestChaosCoordinatorCrashAfterSplit kills the coordinator after a
// steal has been journaled but before the sweep finishes: the successor
// must recover the post-split geometry from the journal's cut keys,
// fence every pre-crash lease (victim's and thief's alike), and drain
// to byte-identical aggregates with the work-stealing fleet still
// hammering it.
func TestChaosCoordinatorCrashAfterSplit(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)
	dir := t.TempDir()
	storePath := filepath.Join(dir, "results.jsonl")
	journalPath := filepath.Join(dir, "sweep.journal")

	boot := func(addr string) (*Coordinator, *Journal, *sweep.Store, net.Listener) {
		t.Helper()
		store, err := sweep.OpenStore(storePath)
		if err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		// The TTL is long enough that the pre-crash split comes from the
		// steal policy (staleness threshold 300ms), but finite: a chaos
		// schedule can eat a /claim response, leaving a 1-job shard —
		// which stealing refuses to split, by design — leased to a worker
		// that never learned it owns it. Only expiry recovers that.
		coord, err := NewCoordinator(jobs, Config{
			Name: "dist", Store: store, Shards: 4, Journal: j,
			LeaseTTL: 5 * time.Second, Steal: true, StealAfter: 300 * time.Millisecond,
			Telemetry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var ln net.Listener
		deadline := time.Now().Add(10 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		return coord, j, store, ln
	}

	c1, j1, store1, ln1 := boot("127.0.0.1:0")
	if j1.Epoch != 1 {
		t.Fatalf("first boot epoch = %d, want 1", j1.Epoch)
	}
	addr := ln1.Addr().String()
	srv1 := &http.Server{Handler: c1.Handler()}
	go srv1.Serve(ln1)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var phase2 func() bool
	var mu sync.Mutex
	stop := func() bool {
		mu.Lock()
		f := phase2
		mu.Unlock()
		return f != nil && f()
	}
	fleetDone := make(chan []*chaos.Transport, 1)
	go func() { fleetDone <- runStragglerFleet(ctx, t, "http://"+addr, 3, 42, 2*time.Second, stop) }()

	// The crash is aimed: wait until a split is journaled, then pull the
	// plug with the sweep unfinished.
	for deadline := time.Now().Add(time.Minute); ; {
		if c1.Status().Shards.Split >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no split happened before the planned crash")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv1.Close() // crash: no handover, no store close, split only in the journal
	time.Sleep(50 * time.Millisecond)

	c2, j2, store2, ln2 := boot(addr)
	defer store2.Close()
	if j2.Epoch != 2 {
		t.Fatalf("post-crash boot epoch = %d, want 2", j2.Epoch)
	}
	if len(j2.Cuts) < 1 {
		t.Fatal("successor journal lost the recorded cut")
	}
	srv2 := &http.Server{Handler: c2.Handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()
	mu.Lock()
	phase2 = c2.Finished
	mu.Unlock()

	select {
	case <-c2.Done():
	case <-ctx.Done():
		t.Fatal("sweep did not finish after the mid-split crash")
	}
	transports := <-fleetDone
	if n := totalFaults(transports); n == 0 {
		t.Fatal("crash run injected no network faults — weaken nothing, fix the plan")
	}

	outs := c2.Outcomes()
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
		t.Fatalf("aggregates diverged across a mid-split crash:\n%s\nvs\n%s", md, baseMD)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
			t.Fatalf("job %d summary diverged across a mid-split crash", i)
		}
	}
	for i, j := range jobs {
		rec, ok := store2.Lookup(j.Key())
		if !ok {
			t.Fatalf("store missing record for job %d after mid-split crash", i)
		}
		if !reflect.DeepEqual(rec.Summary, baseOuts[i].Summary) {
			t.Fatalf("stored summary for job %d diverged across mid-split crash", i)
		}
	}
	_ = store1 // never closed: the crash dropped it
}
