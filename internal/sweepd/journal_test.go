package sweepd

// journal_test.go pins the crash-recovery journal and the epoch fencing
// it exists for: the epoch is monotone across opens, saves are atomic,
// a corrupt journal refuses to load (resetting the epoch would un-fence
// stale workers), and — the point of the whole mechanism — a lease
// token issued before a coordinator restart is rejected with
// ErrLeaseLost by the successor, never silently honored.

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sweep"
)

func TestJournalZeroThenBump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Epoch != 0 || j.Shards != 0 {
		t.Fatalf("fresh journal = %+v, want zero", j)
	}
	if err := j.Bump(8); err != nil {
		t.Fatal(err)
	}
	if j.Epoch != 1 || j.Shards != 8 {
		t.Fatalf("after first bump = %+v, want epoch 1 shards 8", j)
	}

	// A reopen (the restarted coordinator) sees the persisted state and
	// bumps past it; the recorded geometry survives a changed request.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Epoch != 1 || j2.Shards != 8 {
		t.Fatalf("reopened journal = %+v, want epoch 1 shards 8", j2)
	}
	if err := j2.Bump(16); err != nil {
		t.Fatal(err)
	}
	if j2.Epoch != 2 || j2.Shards != 8 {
		t.Fatalf("after second bump = %+v, want epoch 2, original shards 8", j2)
	}
}

func TestJournalCorruptRefusesLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt journal loaded as zero state — stale workers un-fenced")
	}
}

func TestJournalSaveLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bump(4); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.journal" {
		t.Fatalf("journal dir = %v, want exactly sweep.journal", entries)
	}
}

// TestLeaseEpochFencing: tokens from a table with epoch E are rejected
// by a table with epoch E+1 over the same shards — the in-memory half
// of coordinator crash recovery.
func TestLeaseEpochFencing(t *testing.T) {
	clk := newFakeClock()
	old := newLeaseTable(2, time.Minute, clk.Now, 1)
	shard, staleToken, _, ok := old.Claim("w1")
	if !ok {
		t.Fatal("claim failed")
	}

	// Coordinator "crashes"; successor builds a fresh table at epoch 2.
	succ := newLeaseTable(2, time.Minute, clk.Now, 2)
	if err := succ.Renew("w1", shard, staleToken); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale-epoch renew = %v, want ErrLeaseLost", err)
	}
	// Even after the successor leases the same shard to someone, the old
	// token still cannot complete it.
	if _, _, _, ok := succ.Claim("w2"); !ok {
		t.Fatal("successor claim failed")
	}
	if err := succ.Complete("w1", shard, staleToken); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale-epoch complete = %v, want ErrLeaseLost", err)
	}
	// The fenced worker re-claims cleanly: shard 1 is still free.
	if _, tok, _, ok := succ.Claim("w1"); !ok || tok>>32 != 2 {
		t.Fatalf("re-claim after fencing: ok=%v token=%d, want epoch-2 token", ok, tok)
	}
}

func TestLeaseNoShardIsNotLeaseLost(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(1, time.Minute, clk.Now, 0)
	err := lt.Renew("w", 7, 1)
	if !errors.Is(err, errNoShard) {
		t.Fatalf("out-of-range renew = %v, want errNoShard", err)
	}
	if errors.Is(err, ErrLeaseLost) {
		t.Fatal("errNoShard must not read as a lease race")
	}
}

// TestCoordinatorRestartFencesStaleToken drives the fencing end to end
// over HTTP: a worker claims from coordinator #1, the coordinator is
// replaced (same store, same journal), and the worker's held token gets
// 409 from coordinator #2 — the client maps that to ErrLeaseLost, which
// sends a real Worker back to claiming.
func TestCoordinatorRestartFencesStaleToken(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(t)

	newCoord := func() (*Coordinator, *Journal) {
		t.Helper()
		store, err := sweep.OpenStore(filepath.Join(dir, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		j, err := OpenJournal(filepath.Join(dir, "sweep.journal"))
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(jobs, Config{
			Name: "dist", Store: store, Shards: 4, Journal: j,
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord, j
	}

	ctx := context.Background()
	c1, j1 := newCoord()
	if j1.Epoch != 1 {
		t.Fatalf("first boot epoch = %d, want 1", j1.Epoch)
	}
	srv1 := httptest.NewServer(c1.Handler())
	cl1 := newClient(srv1.URL, srv1.Client(), 1, time.Millisecond, 0, 0, nil)
	var resp ClaimResponse
	if err := cl1.post(ctx, "/claim", ClaimRequest{Worker: "w1"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shard == nil {
		t.Fatalf("claim = %+v, want a shard", resp)
	}
	shard, stale := resp.Shard.ID, resp.Shard.Lease
	if stale>>32 != 1 {
		t.Fatalf("token %d does not embed epoch 1", stale)
	}
	srv1.Close() // crash: no store close, no lease handover

	c2, j2 := newCoord()
	if j2.Epoch != 2 {
		t.Fatalf("second boot epoch = %d, want 2", j2.Epoch)
	}
	if got := c2.Status().Epoch; got != 2 {
		t.Fatalf("/status epoch = %d, want 2", got)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	cl2 := newClient(srv2.URL, srv2.Client(), 1, time.Millisecond, 0, 0, nil)
	err := cl2.post(ctx, "/heartbeat", HeartbeatRequest{Worker: "w1", Shard: shard, Lease: stale}, &OKResponse{})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale heartbeat after restart = %v, want ErrLeaseLost", err)
	}
	err = cl2.post(ctx, "/report", ReportRequest{Worker: "w1", Shard: shard, Lease: stale}, &ReportResponse{})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale report after restart = %v, want ErrLeaseLost", err)
	}
	// And the fenced worker's recovery move works: a fresh claim under
	// the new epoch.
	var resp2 ClaimResponse
	if err := cl2.post(ctx, "/claim", ClaimRequest{Worker: "w1"}, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Shard == nil || resp2.Shard.Lease>>32 != 2 {
		t.Fatalf("re-claim = %+v, want an epoch-2 lease", resp2)
	}
}

// TestCoordinatorRestartRecoversJournaledSplit crashes the coordinator
// after a steal has been journaled and checks the successor recovers
// the post-split geometry: the cut key — not a shard index, which the
// re-derived partition would invalidate — is replayed against the
// successor's own partition of the remaining work, stale pre-crash
// tokens (the victim's and the thief's) are fenced, and a fresh fleet
// drains to byte-identical aggregates.
func TestCoordinatorRestartRecoversJournaledSplit(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)
	recs := summariesByKey(t, baseOuts)

	// Coordinator #1: three shards of 16 jobs → 5/5/6. The fast worker
	// holds and clears shards 0 and 1 while the slow one sits on the
	// 6-job shard 2; fast's next idle claim steals half of its
	// remainder. (The victim must be the 6-job shard: a 5-job victim's
	// cut position happens to coincide with a partition boundary of the
	// successor's re-derived geometry, which would make the replay
	// vacuously succeed without exercising the split.)
	store1, err := sweep.OpenStore(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store1.Close() })
	j1, err := OpenJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c1, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store1, Shards: 3, Journal: j1,
		LeaseTTL: time.Minute, Steal: true, StealAfter: 10 * time.Second,
		clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	fastShards := []ClaimResponse{c1.claim("fast"), c1.claim("fast")}
	slow := c1.claim("slow")
	if slow.Shard == nil || len(slow.Shard.Jobs) != 6 {
		t.Fatalf("slow claim = %+v, want the 6-job shard", slow)
	}
	clk.Advance(11 * time.Second)
	for i, fast := range fastShards {
		if fast.Shard == nil || len(fast.Shard.Jobs) != 5 {
			t.Fatalf("fast claim %d = %+v, want a 5-job shard", i, fast)
		}
		req := ReportRequest{Worker: "fast", Shard: fast.Shard.ID, Lease: fast.Shard.Lease}
		for _, j := range fast.Shard.Jobs {
			req.Records = append(req.Records, recs[j.Key()])
		}
		if _, err := c1.report(req); err != nil {
			t.Fatal(err)
		}
		if err := c1.completeShard("fast", fast.Shard.ID, fast.Shard.Lease); err != nil {
			t.Fatal(err)
		}
	}
	thief := c1.claim("fast")
	if thief.Shard == nil || thief.Shard.ID != 3 || len(thief.Shard.Jobs) != 3 {
		t.Fatalf("thief claim = %+v, want stolen shard 3 with 3 jobs", thief)
	}
	cutKey := slow.Shard.Jobs[3].Key()
	if len(j1.Cuts) != 1 || j1.Cuts[0] != cutKey {
		t.Fatalf("journal cuts = %v, want exactly [%s]", j1.Cuts, cutKey)
	}
	// Crash: no completes, no store close, both leases left dangling.

	// Successor: stealing off — the replay is unconditional, recovery
	// must not depend on the feature staying enabled. The journal's
	// recorded base geometry (3) overrides the changed request, and the
	// replayed cut makes it 4 shards over the 6 remaining jobs.
	store2, err := sweep.OpenStore(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	j2, err := OpenJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Cuts) != 1 {
		t.Fatalf("reopened journal cuts = %v, want the recorded cut", j2.Cuts)
	}
	c2, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store2, Shards: 5, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Epoch != 2 {
		t.Fatalf("successor epoch = %d, want 2", j2.Epoch)
	}
	st := c2.Status()
	if st.Shards.Total != 4 {
		t.Fatalf("successor shard total = %d, want 4 (3 journaled base + 1 replayed split)", st.Shards.Total)
	}

	// Both pre-crash tokens are fenced by the successor's epoch.
	if _, err := c2.report(ReportRequest{
		Worker: "slow", Shard: slow.Shard.ID, Lease: slow.Shard.Lease,
		Records: []sweep.Record{recs[slow.Shard.Jobs[0].Key()]},
	}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("victim's stale report = %v, want ErrLeaseLost", err)
	}
	if err := c2.completeShard("fast", thief.Shard.ID, thief.Shard.Lease); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("thief's stale complete = %v, want ErrLeaseLost", err)
	}

	// A fresh fleet drains the recovered geometry; dedup over the store
	// keeps the aggregates byte-identical to the single-process run.
	runFleet(t, c2, 2)
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(c2.Outcomes())); md != baseMD {
		t.Fatalf("aggregates diverged across crash + split recovery:\n%s\nvs\n%s", md, baseMD)
	}
	if n := store2.Len(); n != len(jobs) {
		t.Fatalf("store holds %d records, want %d", n, len(jobs))
	}
}
