package sweepd

// The package's one invariant, tested end to end: a sharded fleet's
// aggregates are byte-identical to a single-process sweep of the same
// grid — for any shard count, any worker count, and across a worker
// death mid-shard (with the dead worker's partial results deduplicated,
// not recomputed into divergence). The coordinator runs over
// net/http/httptest; workers are real Worker loops; the dead worker is
// simulated by hand so the test controls exactly what it reported
// before "dying", and lease expiry rides the injected clock.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

func testJobs(t *testing.T) []sweep.Job {
	t.Helper()
	spec := sweep.Spec{
		Name:        "dist",
		Sizes:       []int{64, 128},
		Deltas:      []float64{0, 0.75},
		Adversaries: []string{"none", "inflate"},
		Trials:      2,
		Seed:        7,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// baseline runs the grid single-process and returns its outcomes and
// rendered aggregates — the byte-identity reference.
func baseline(t *testing.T, jobs []sweep.Job) ([]sweep.Outcome, string) {
	t.Helper()
	outs, err := sweep.Run(jobs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return outs, sweep.Markdown("Sweep dist", sweep.Aggregate(outs))
}

// runFleet drives a coordinator over httptest with n concurrent workers
// until the sweep completes, and returns the coordinator for
// inspection.
func runFleet(t *testing.T, coord *Coordinator, workers int) {
	t.Helper()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		w := NewWorker(WorkerOptions{
			Coordinator: srv.URL,
			Name:        string(rune('a' + i)),
			Opts:        sweep.Options{Workers: 2},
			Poll:        20 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !coord.Finished() {
		t.Fatal("fleet drained but coordinator not finished")
	}
}

// TestShardedAggregatesByteIdentical is the headline invariance matrix:
// shard counts 1, 2, 4 × worker counts 1, 2 all reproduce the
// single-process aggregates byte for byte, and every per-job Summary
// matches exactly.
func TestShardedAggregatesByteIdentical(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)

	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {2, 2}, {4, 2},
	} {
		store, err := sweep.OpenStore(t.TempDir() + "/results.jsonl")
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(jobs, Config{
			Name:      "dist",
			Store:     store,
			Shards:    tc.shards,
			LeaseTTL:  time.Minute,
			Telemetry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		runFleet(t, coord, tc.workers)

		outs := coord.Outcomes()
		if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
			t.Fatalf("shards=%d workers=%d: aggregates diverged from single-process run:\n%s\nvs\n%s",
				tc.shards, tc.workers, md, baseMD)
		}
		for i := range outs {
			if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
				t.Fatalf("shards=%d workers=%d: job %d summary diverged", tc.shards, tc.workers, i)
			}
		}
		if n := store.Len(); n != len(jobs) {
			t.Fatalf("shards=%d workers=%d: store holds %d records, want %d", tc.shards, tc.workers, n, len(jobs))
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkerDeathMidShard kills a worker after it reported part of a
// shard: the lease expires (fake clock), the shard reassigns, the
// replacements recompute only the unreported jobs, the dead worker's
// re-sent records count as duplicates — and the aggregates still match
// the single-process run byte for byte.
func TestWorkerDeathMidShard(t *testing.T) {
	jobs := testJobs(t)
	baseOuts, baseMD := baseline(t, jobs)

	clk := newFakeClock()
	reg := obs.NewRegistry()
	store, err := sweep.OpenStore(t.TempDir() + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ttl := time.Minute
	coord, err := NewCoordinator(jobs, Config{
		Name:      "dist",
		Store:     store,
		Shards:    4,
		LeaseTTL:  ttl,
		Telemetry: reg,
		clock:     clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker claims a shard, computes and reports exactly one
	// job, re-sends the same report (a retry after a flaky ack), then
	// goes silent forever.
	resp := coord.claim("doomed")
	if resp.Shard == nil {
		t.Fatal("doomed worker got no shard")
	}
	shard := resp.Shard
	firstJob := shard.Jobs[0]
	partial, err := sweep.Run([]sweep.Job{firstJob}, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	report := ReportRequest{
		Worker: "doomed", Shard: shard.ID, Lease: shard.Lease,
		Records: []sweep.Record{{
			Key: firstJob.Key(), Job: firstJob, Summary: partial[0].Summary,
		}},
	}
	if rr, err := coord.report(report); err != nil || rr.Accepted != 1 {
		t.Fatalf("first report = (%+v, %v), want 1 accepted", rr, err)
	}
	if rr, err := coord.report(report); err != nil || rr.Duplicates != 1 {
		t.Fatalf("duplicate report = (%+v, %v), want 1 duplicate", rr, err)
	}

	// Death: no heartbeats past the TTL. The survivors' clocks are the
	// same fake — static from here on, so their own leases never lapse.
	clk.Advance(ttl + time.Second)

	runFleet(t, coord, 2)

	outs := coord.Outcomes()
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
		t.Fatalf("aggregates diverged after worker death:\n%s\nvs\n%s", md, baseMD)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i].Summary, baseOuts[i].Summary) {
			t.Fatalf("job %d summary diverged after worker death", i)
		}
	}
	if n := store.Len(); n != len(jobs) {
		t.Fatalf("store holds %d records, want %d (no duplicate appends)", n, len(jobs))
	}

	snap := reg.Snapshot()
	if snap.Counters["sweepd.shards.reassigned"] < 1 {
		t.Fatalf("no reassignment recorded: %+v", snap.Counters)
	}
	if snap.Counters["sweepd.records.duplicate"] < 1 {
		t.Fatalf("no duplicate recorded: %+v", snap.Counters)
	}
	st := coord.Status()
	if st.Shards.Completed != st.Shards.Total {
		t.Fatalf("shard tally = %+v, want all completed", st.Shards)
	}
}

// TestCoordinatorResume re-opens a completed sweep's store: every job
// resolves as a store hit, the coordinator is born finished, no worker
// ever runs, and the aggregates still match byte for byte.
func TestCoordinatorResume(t *testing.T) {
	jobs := testJobs(t)
	_, baseMD := baseline(t, jobs)

	dir := t.TempDir()
	store, err := sweep.OpenStore(dir + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store, Shards: 2, Telemetry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runFleet(t, coord, 1)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := sweep.OpenStore(dir + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	coord2, err := NewCoordinator(jobs, Config{
		Name: "dist", Store: store2, Shards: 2, Telemetry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord2.Done():
	default:
		t.Fatal("fully resumed coordinator not born finished")
	}
	outs := coord2.Outcomes()
	for i, o := range outs {
		if !o.FromStore {
			t.Fatalf("job %d not resumed from store", i)
		}
	}
	if md := sweep.Markdown("Sweep dist", sweep.Aggregate(outs)); md != baseMD {
		t.Fatal("resumed aggregates diverged")
	}
}

// TestPartitionByKey pins the sharding function: every pending index
// appears in exactly one shard, shards are internally in expansion
// order, no shard is empty, and the split is stable across calls.
func TestPartitionByKey(t *testing.T) {
	jobs := testJobs(t)
	pending := make([]int, len(jobs))
	for i := range pending {
		pending[i] = i
	}
	for _, shards := range []int{1, 3, 4, 100} {
		parts := sweep.PartitionByKey(jobs, pending, shards)
		if len(parts) > shards {
			t.Fatalf("shards=%d: got %d parts", shards, len(parts))
		}
		seen := map[int]bool{}
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatalf("shards=%d: empty shard", shards)
			}
			for k := 1; k < len(part); k++ {
				if part[k-1] >= part[k] {
					t.Fatalf("shards=%d: shard not in expansion order: %v", shards, part)
				}
			}
			for _, i := range part {
				if seen[i] {
					t.Fatalf("shards=%d: index %d in two shards", shards, i)
				}
				seen[i] = true
			}
		}
		if len(seen) != len(pending) {
			t.Fatalf("shards=%d: %d of %d indices covered", shards, len(seen), len(pending))
		}
		again := sweep.PartitionByKey(jobs, pending, shards)
		if !reflect.DeepEqual(parts, again) {
			t.Fatalf("shards=%d: partition not deterministic", shards)
		}
	}
}
