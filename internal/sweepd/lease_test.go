package sweepd

// Lease-table tests run against an injected clock: expiry and
// reassignment are pinned without a single sleep.

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLeaseClaimAssignsLowestShard(t *testing.T) {
	clk := newFakeClock()
	lt := newLeaseTable(3, time.Minute, clk.Now, 0)

	shard, tok, reassigned, ok := lt.Claim("a")
	if !ok || shard != 0 || reassigned {
		t.Fatalf("first claim = (%d, %v, %v), want shard 0 fresh", shard, reassigned, ok)
	}
	shard2, tok2, _, ok := lt.Claim("b")
	if !ok || shard2 != 1 {
		t.Fatalf("second claim = shard %d, want 1", shard2)
	}
	if tok == tok2 {
		t.Fatal("two live leases share a token")
	}
	if _, _, _, ok := lt.Claim("c"); !ok {
		t.Fatal("third shard should be claimable")
	}
	if _, _, _, ok := lt.Claim("d"); ok {
		t.Fatal("claim succeeded with every shard leased and live")
	}
}

func TestLeaseExpiryReassigns(t *testing.T) {
	clk := newFakeClock()
	ttl := time.Minute
	lt := newLeaseTable(1, ttl, clk.Now, 0)

	shard, tok, _, ok := lt.Claim("dead")
	if !ok {
		t.Fatal("claim failed")
	}
	// One tick short of expiry the lease holds; the shard is not claimable.
	clk.Advance(ttl)
	if err := lt.Renew("dead", shard, tok); err != nil {
		t.Fatalf("renew at exactly TTL: %v", err)
	}
	if _, _, _, ok := lt.Claim("vulture"); ok {
		t.Fatal("live lease was stolen")
	}

	// Past expiry the shard reassigns under a fresh token, and the old
	// token is fenced out of every later call.
	clk.Advance(ttl + time.Second)
	shard2, tok2, reassigned, ok := lt.Claim("heir")
	if !ok || shard2 != shard || !reassigned {
		t.Fatalf("expired claim = (%d, %v, %v), want shard %d reassigned", shard2, reassigned, ok, shard)
	}
	if tok2 == tok {
		t.Fatal("reassigned lease reused the dead worker's token")
	}
	if err := lt.Renew("dead", shard, tok); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew = %v, want ErrLeaseLost", err)
	}
	if err := lt.Complete("dead", shard, tok); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale complete = %v, want ErrLeaseLost", err)
	}
	// The heir's token still works.
	if err := lt.Complete("heir", shard2, tok2); err != nil {
		t.Fatalf("heir complete: %v", err)
	}
	if !lt.Done() {
		t.Fatal("single shard completed but table not done")
	}
}

func TestLeaseRenewExtends(t *testing.T) {
	clk := newFakeClock()
	ttl := time.Minute
	lt := newLeaseTable(1, ttl, clk.Now, 0)

	shard, tok, _, _ := lt.Claim("w")
	// Keep renewing at half-TTL strides: the lease never expires even
	// far past the original horizon.
	for i := 0; i < 10; i++ {
		clk.Advance(ttl / 2)
		if err := lt.Renew("w", shard, tok); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if _, _, _, ok := lt.Claim("vulture"); ok {
		t.Fatal("renewed lease was stolen")
	}
	// Stop renewing: it expires on schedule.
	clk.Advance(ttl + time.Second)
	if err := lt.Renew("w", shard, tok); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew after silence = %v, want ErrLeaseLost", err)
	}
}

func TestLeaseExpiredCompleteRefused(t *testing.T) {
	clk := newFakeClock()
	ttl := time.Minute
	lt := newLeaseTable(1, ttl, clk.Now, 0)

	shard, tok, _, _ := lt.Claim("slow")
	clk.Advance(ttl + time.Second)
	// The worker finished its jobs but its lease already lapsed — the
	// complete must be refused even though no one else claimed yet,
	// because the shard is claimable and a double-complete would follow.
	if err := lt.Complete("slow", shard, tok); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("expired complete = %v, want ErrLeaseLost", err)
	}
	if lt.Done() {
		t.Fatal("table done after refused complete")
	}
}

func TestLeaseCountsAndLiveness(t *testing.T) {
	clk := newFakeClock()
	ttl := time.Minute
	lt := newLeaseTable(3, ttl, clk.Now, 0)

	s0, t0, _, _ := lt.Claim("a")
	lt.Claim("b")
	if p, a, d := lt.Counts(); p != 1 || a != 2 || d != 0 {
		t.Fatalf("counts = (%d, %d, %d), want (1, 2, 0)", p, a, d)
	}
	if err := lt.Complete("a", s0, t0); err != nil {
		t.Fatal(err)
	}
	if p, a, d := lt.Counts(); p != 1 || a != 1 || d != 1 {
		t.Fatalf("counts = (%d, %d, %d), want (1, 1, 1)", p, a, d)
	}
	if lt.Alive() != 2 {
		t.Fatalf("alive = %d, want 2", lt.Alive())
	}
	// b goes silent past the TTL: its shard counts as pending again and
	// it drops off the liveness tally.
	clk.Advance(ttl + time.Second)
	if p, a, d := lt.Counts(); p != 2 || a != 0 || d != 1 {
		t.Fatalf("counts after expiry = (%d, %d, %d), want (2, 0, 1)", p, a, d)
	}
	if lt.Alive() != 0 {
		t.Fatalf("alive after silence = %d, want 0", lt.Alive())
	}
}
