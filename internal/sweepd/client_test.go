package sweepd

// client_test.go pins the call layer's failure semantics: truncated or
// garbled 200 bodies retry (a wire fault is not a protocol fault),
// exhausted budgets surface ErrUnreachable, the circuit breaker stops
// hammering a dead coordinator, and a worker whose coordinator stays
// gone past MaxOffline exits resumably instead of hanging forever.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientRetriesGarbledResponse(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Write([]byte(`{"ok": tr`)) // truncated mid-token
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}))
	defer srv.Close()
	c := newClient(srv.URL, srv.Client(), 2, time.Millisecond, 0, 0, nil)
	var out OKResponse
	if err := c.post(context.Background(), "/claim", ClaimRequest{}, &out); err != nil {
		t.Fatalf("post with one garbled body = %v, want retried success", err)
	}
	if !out.OK || hits.Load() != 2 {
		t.Fatalf("ok=%v hits=%d, want retried once", out.OK, hits.Load())
	}
}

func TestClientPermanent4xxNotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such shard", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := newClient(srv.URL, srv.Client(), 3, time.Millisecond, 0, 0, nil)
	err := c.post(context.Background(), "/heartbeat", HeartbeatRequest{}, &OKResponse{})
	if err == nil || isUnreachable(err) || isLeaseLost(err) {
		t.Fatalf("4xx = %v, want a permanent protocol error", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx hit the server %d times, want 1 (no retry)", hits.Load())
	}
}

func TestClientUnreachableAndCircuit(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := newClient(srv.URL, srv.Client(), 0, time.Millisecond, 0, 0, nil)

	// breakAfter exhausted calls trip the breaker...
	for i := 0; i < breakAfter; i++ {
		err := c.post(context.Background(), "/claim", ClaimRequest{}, &OKResponse{})
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d = %v, want ErrUnreachable", i, err)
		}
	}
	before := hits.Load()
	// ...after which calls fail fast without touching the network.
	err := c.post(context.Background(), "/claim", ClaimRequest{}, &OKResponse{})
	if !errors.Is(err, ErrUnreachable) || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("post with open circuit = %v, want fast ErrUnreachable", err)
	}
	if hits.Load() != before {
		t.Fatal("open circuit still hit the server")
	}
}

func TestClientCircuitHalfOpenRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}))
	defer srv.Close()
	c := newClient(srv.URL, srv.Client(), 0, time.Millisecond, 0, 0, nil)
	c.brk.cooldown = 10 * time.Millisecond
	for i := 0; i < breakAfter; i++ {
		_ = c.post(context.Background(), "/claim", ClaimRequest{}, &OKResponse{})
	}
	if c.brk.allow(time.Now()) {
		t.Fatal("circuit not open after threshold failures")
	}
	healthy.Store(true)
	time.Sleep(15 * time.Millisecond)
	// Cooldown lapsed: the half-open probe goes through and closes it.
	if err := c.post(context.Background(), "/claim", ClaimRequest{}, &OKResponse{}); err != nil {
		t.Fatalf("half-open probe = %v, want success", err)
	}
	if !c.brk.allow(time.Now()) {
		t.Fatal("circuit still open after successful probe")
	}
}

// TestWorkerMaxOfflineResumableExit: a worker whose coordinator is gone
// drains and exits with ErrUnreachable once the offline budget runs
// out — not an infinite poll, not a crash.
func TestWorkerMaxOfflineResumableExit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listening: connection refused from the start
	w := NewWorker(WorkerOptions{
		Coordinator: srv.URL,
		Name:        "w",
		Retries:     1,
		Backoff:     time.Millisecond,
		Poll:        5 * time.Millisecond,
		MaxOffline:  50 * time.Millisecond,
	})
	start := time.Now()
	err := w.Run(context.Background())
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Run against dead coordinator = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("offline exit took %s, budget was 50ms", elapsed)
	}
}
