// Package sweepd is the distributed sweep sharding service (DESIGN §5,
// ROADMAP item 1): a coordinator expands a Spec once, resolves store
// hits up front exactly as sweep.Run does, partitions the pending jobs
// into contiguous Job.Key() ranges, and serves those shards over HTTP
// with lease-based assignment. Worker processes (the same binary in
// -worker mode) claim a shard, run it through the existing scheduler —
// per-worker arenas, batch planner, netstore disk tier all unchanged —
// stream Records back, and heartbeat; a lease that expires is reassigned
// to the next claimant, so worker death is survived by the same resume
// semantics an interrupted single-process sweep uses: the coordinator
// refilters a reassigned shard against the store, and duplicate results
// dedup by content key.
//
// The invariant the whole design leans on is inherited from PR 1:
// aggregates fold in expansion order from content-addressed records, so
// the merged store's aggregates are byte-identical regardless of shard
// count, worker count, or how many times a shard was retried
// (TestShardedAggregatesByteIdentical pins it, including a mid-shard
// worker kill).
package sweepd

import "repro/internal/sweep"

// Protocol: JSON request/response bodies over plain HTTP POST. Every
// lease-scoped call carries (Worker, Shard, Lease); a stale or stolen
// lease is answered with HTTP 409, which the client surfaces as
// ErrLeaseLost — never retried, the worker abandons the shard and goes
// back to claiming.

// ClaimRequest asks for a shard assignment.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse carries at most one of: a shard to run, a done flag
// (every shard complete — the worker exits), or a retry hint (all
// remaining shards are leased to live workers — poll again).
type ClaimResponse struct {
	Done    bool        `json:"done,omitempty"`
	RetryMS int64       `json:"retry_ms,omitempty"`
	Shard   *ShardClaim `json:"shard,omitempty"`
}

// ShardClaim is one leased shard: the jobs still pending (the
// coordinator filters out every key its store already holds, which is
// how a reassigned shard resumes instead of recomputing), the lease
// token to echo on every subsequent call, and the lease TTL the worker
// must heartbeat inside.
type ShardClaim struct {
	ID      int         `json:"id"`
	Lease   int64       `json:"lease"`
	LeaseMS int64       `json:"lease_ms"`
	Jobs    []sweep.Job `json:"jobs"`
}

// HeartbeatRequest renews a lease. Reports renew implicitly; explicit
// heartbeats cover jobs that run longer than the TTL. Done/Total carry
// the worker's per-shard progress (jobs finished locally vs. jobs in
// the claim) so the coordinator can see staleness before the lease
// lapses; zero values mean "not reported" and are omitted on the wire,
// keeping pre-progress workers' requests byte-identical.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Lease  int64  `json:"lease"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
}

// HeartbeatResponse acknowledges a renewal. StolenKeys lists job keys
// the coordinator has cut out of the shard since the claim (work
// stealing); the worker should shed them unrun. Empty when stealing is
// off, which keeps the body identical to the old OKResponse bytes.
type HeartbeatResponse struct {
	OK         bool     `json:"ok"`
	StolenKeys []string `json:"stolen_keys,omitempty"`
}

// JobError reports a job that executed and failed (as opposed to one
// the worker never reached — those stay pending and reassign).
type JobError struct {
	Key   string `json:"key"`
	Label string `json:"label,omitempty"`
	Error string `json:"error"`
}

// ReportRequest streams completed work back: records for jobs that
// succeeded, errors for jobs that failed. A valid report renews the
// shard's lease. Done/Total piggyback the same per-shard progress as
// HeartbeatRequest (omitted when zero).
type ReportRequest struct {
	Worker  string         `json:"worker"`
	Shard   int            `json:"shard"`
	Lease   int64          `json:"lease"`
	Records []sweep.Record `json:"records,omitempty"`
	Errors  []JobError     `json:"errors,omitempty"`
	Done    int            `json:"done,omitempty"`
	Total   int            `json:"total,omitempty"`
}

// ReportResponse accounts the report: Accepted records were appended to
// the store, Duplicates were already there (a reassigned shard's first
// worker got them in before dying), Rejected failed the key integrity
// check (Record.Key must equal Record.Job.Key()). Stolen counts records
// for jobs cut out of this shard by a steal — the record was not
// accepted under this shard (the thief owns the job now; if the thief
// already reported it the result deduped instead), and StolenKeys names
// every such key so the victim can stop running the rest of the stolen
// suffix.
type ReportResponse struct {
	Accepted   int      `json:"accepted"`
	Duplicates int      `json:"duplicates,omitempty"`
	Rejected   int      `json:"rejected,omitempty"`
	Stolen     int      `json:"stolen,omitempty"`
	StolenKeys []string `json:"stolen_keys,omitempty"`
}

// CompleteRequest marks a shard finished. The coordinator verifies every
// job in the shard is accounted (reported or errored) and syncs the
// store to stable storage before acking — a machine crash after the ack
// cannot lose records the worker was told are durable.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Lease  int64  `json:"lease"`
}

// OKResponse is the generic acknowledgment body.
type OKResponse struct {
	OK bool `json:"ok"`
}
