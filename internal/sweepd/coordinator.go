package sweepd

// coordinator.go is the server side of the sharding service. A
// Coordinator owns the canonical job list and the one merged store:
// store hits are resolved up front (exactly as sweep.Run does, with the
// same run-log discipline — sweep_start first, then the buffered
// skips), the remainder is partitioned by content-key range
// (sweep.PartitionByKey), and shards are served over HTTP under leases.
// Every record a worker streams back is integrity-checked
// (Key == Job.Key()), deduplicated against the store, appended, and
// folded into the sweep.Monitor — so /status, the run-log, and the
// end-of-sweep breakdown keep working fleet-wide, and the final
// aggregates fold in expansion order from Outcomes just as a
// single-process sweep's do.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// DefaultShards is the shard count when Config leaves it zero: enough
// ranges that a handful of workers stay busy and a death forfeits at
// most one range's progress-in-flight, few enough that claim traffic is
// noise.
const DefaultShards = 8

// DefaultLeaseTTL is the lease horizon when Config leaves it zero.
const DefaultLeaseTTL = 15 * time.Second

// Config parameterizes a Coordinator.
type Config struct {
	// Name labels the sweep (the Monitor's spec name).
	Name string
	// Store is the merged result store (required). The coordinator is
	// its only writer; workers never see it.
	Store *sweep.Store
	// Shards is the number of content-key ranges (0: DefaultShards).
	Shards int
	// LeaseTTL is how long a silent worker keeps a shard before it is
	// reassigned (0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// RetryMS is the poll hint served when every remaining shard is
	// leased (0: 500).
	RetryMS int64
	// Monitor folds fleet-wide progress (nil: a fresh one over the job
	// list). Its Status is embedded in /status.
	Monitor *sweep.Monitor
	// Telemetry receives the coordinator counters (nil: obs.Default).
	Telemetry *obs.Registry
	// RunLog receives coordinator lifecycle events (nil: disabled).
	RunLog *obs.RunLog
	// Journal is the crash-recovery journal (nil: epoch fencing off, as
	// for an ephemeral in-test coordinator). When set, NewCoordinator
	// bumps its epoch and persists before serving: lease tokens embed
	// the epoch, so tokens from a pre-crash incarnation 409 instead of
	// colliding, and the journal's recorded shard count overrides
	// Config.Shards so a restart re-partitions the remaining keyspace
	// with the original geometry.
	Journal *Journal

	// clock overrides time.Now for lease-expiry tests.
	clock func() time.Time
}

// Coordinator serves shards of one expanded job list and folds the
// fleet's results back into one store and one Outcome list.
type Coordinator struct {
	cfg    Config
	jobs   []sweep.Job
	keyIdx map[string][]int // content key -> job indices (dup keys: all)
	shards [][]int          // shard -> job indices
	leases *leaseTable
	mon    *sweep.Monitor
	start  time.Time

	mu        sync.Mutex
	outs      []sweep.Outcome
	accounted []bool
	done      int // accounted jobs, store hits included
	resumed   int
	errs      int
	finished  bool
	aborted   bool
	doneCh    chan struct{}

	served       *obs.Counter // "sweepd.shards.served"
	reassigned   *obs.Counter // "sweepd.shards.reassigned"
	completed    *obs.Counter // "sweepd.shards.completed"
	recAccepted  *obs.Counter // "sweepd.records.accepted"
	recDuplicate *obs.Counter // "sweepd.records.duplicate"
	recRejected  *obs.Counter // "sweepd.records.rejected"
	workersAlive *obs.Gauge   // "sweepd.workers.alive"
}

// NewCoordinator builds a coordinator over jobs. Store hits are
// resolved immediately: their outcomes are final before any worker
// connects, and a coordinator whose store already holds everything is
// born finished.
func NewCoordinator(jobs []sweep.Job, cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("sweepd: coordinator needs a store")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	// A journaled restart must re-partition with the geometry the first
	// incarnation used, whatever today's flag says: shard indices in
	// workers' still-live claims are meaningless otherwise.
	if cfg.Journal != nil && cfg.Journal.Shards > 0 {
		cfg.Shards = cfg.Journal.Shards
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.RetryMS <= 0 {
		cfg.RetryMS = 500
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.Default
	}
	if cfg.Monitor == nil {
		cfg.Monitor = sweep.NewMonitor(cfg.Name, len(jobs), nil, cfg.Telemetry)
	}

	c := &Coordinator{
		cfg:       cfg,
		jobs:      jobs,
		keyIdx:    make(map[string][]int, len(jobs)),
		mon:       cfg.Monitor,
		start:     time.Now(),
		outs:      make([]sweep.Outcome, len(jobs)),
		accounted: make([]bool, len(jobs)),
		doneCh:    make(chan struct{}),

		served:       cfg.Telemetry.Counter("sweepd.shards.served"),
		reassigned:   cfg.Telemetry.Counter("sweepd.shards.reassigned"),
		completed:    cfg.Telemetry.Counter("sweepd.shards.completed"),
		recAccepted:  cfg.Telemetry.Counter("sweepd.records.accepted"),
		recDuplicate: cfg.Telemetry.Counter("sweepd.records.duplicate"),
		recRejected:  cfg.Telemetry.Counter("sweepd.records.rejected"),
		workersAlive: cfg.Telemetry.Gauge("sweepd.workers.alive"),
	}

	// Resolve store hits up front, buffering skip events so the run-log
	// opens with sweep_start (the runner's lifecycle ordering).
	var pending, skipped []int
	for i, j := range jobs {
		key := j.Key()
		c.keyIdx[key] = append(c.keyIdx[key], i)
		if rec, ok := cfg.Store.Lookup(key); ok {
			c.outs[i] = sweep.Outcome{Job: j, Summary: rec.Summary, FromStore: true, Worker: -1}
			c.accounted[i] = true
			c.done++
			c.resumed++
			skipped = append(skipped, i)
			continue
		}
		pending = append(pending, i)
	}
	c.shards = sweep.PartitionByKey(jobs, pending, cfg.Shards)
	// Fence this incarnation before any lease exists: a failed journal
	// save fails the boot, or a later crash could reuse the epoch and
	// hand a stale worker a colliding token.
	var epoch uint32
	if cfg.Journal != nil {
		if err := cfg.Journal.Bump(cfg.Shards); err != nil {
			return nil, err
		}
		epoch = cfg.Journal.Epoch
	}
	c.leases = newLeaseTable(len(c.shards), cfg.LeaseTTL, cfg.clock, epoch)

	_ = cfg.RunLog.Event("sweep_start", map[string]any{
		"jobs": len(jobs), "pending": len(pending),
		"resumed": len(skipped), "shards": len(c.shards),
		"epoch": epoch,
	})
	for pos, i := range skipped {
		_ = cfg.RunLog.Event("job_skip", map[string]any{
			"key": jobs[i].Key(), "label": jobs[i].Label(),
		})
		c.mon.Observe(pos+1, len(jobs), c.outs[i])
	}
	if len(c.shards) == 0 {
		c.finish()
	}
	return c, nil
}

// Done is closed when every shard is complete (or the coordinator was
// aborted).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Finished reports completion without blocking.
func (c *Coordinator) Finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}

// Outcomes returns the outcome list in expansion order. Call after Done
// fires; earlier calls see whatever has been folded so far.
func (c *Coordinator) Outcomes() []sweep.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]sweep.Outcome, len(c.outs))
	copy(outs, c.outs)
	return outs
}

// Errors counts jobs whose workers reported a failure.
func (c *Coordinator) Errors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// Abort marks the sweep ended without completion: the run-log gets its
// sweep_end with aborted:true and Done fires. In-flight worker calls
// after an abort are answered done, so the fleet drains.
func (c *Coordinator) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	c.aborted = true
	c.finishLocked()
}

// finish closes out the sweep (all shards complete).
func (c *Coordinator) finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishLocked()
}

func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	end := map[string]any{
		"ran": c.done - c.resumed, "resumed": c.resumed, "errors": c.errs,
		"elapsed_ms": float64(time.Since(c.start).Microseconds()) / 1000,
	}
	if c.aborted {
		end["aborted"] = true
	}
	_ = c.cfg.RunLog.Event("sweep_end", end)
	close(c.doneCh)
}

// pendingJobs filters a shard down to jobs not yet accounted — the
// resume semantics a reassigned shard inherits.
func (c *Coordinator) pendingJobs(shard int) []sweep.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	var jobs []sweep.Job
	for _, i := range c.shards[shard] {
		if !c.accounted[i] {
			jobs = append(jobs, c.jobs[i])
		}
	}
	return jobs
}

// claim implements shard assignment: hand out the first claimable
// shard that still has pending work, auto-completing any claimable
// shard whose jobs were all reported by a previous (dead) owner.
func (c *Coordinator) claim(worker string) ClaimResponse {
	for {
		if c.Finished() || c.leases.Done() {
			if !c.Finished() {
				c.finish()
			}
			return ClaimResponse{Done: true}
		}
		shard, token, reassigned, ok := c.leases.Claim(worker)
		c.workersAlive.Set(int64(c.leases.Alive()))
		if !ok {
			if c.leases.Done() {
				c.finish()
				return ClaimResponse{Done: true}
			}
			return ClaimResponse{RetryMS: c.cfg.RetryMS}
		}
		c.served.Inc()
		if reassigned {
			c.reassigned.Inc()
			_ = c.cfg.RunLog.Event("shard_reassign", map[string]any{
				"shard": shard, "worker": worker,
			})
		}
		jobs := c.pendingJobs(shard)
		if len(jobs) == 0 {
			// A previous owner reported everything, then died before
			// completing: nothing to recompute, retire the shard here.
			_ = c.completeShard(worker, shard, token)
			continue
		}
		_ = c.cfg.RunLog.Event("shard_claim", map[string]any{
			"shard": shard, "worker": worker, "jobs": len(jobs),
			"reassigned": reassigned,
		})
		return ClaimResponse{Shard: &ShardClaim{
			ID:      shard,
			Lease:   token,
			LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
			Jobs:    jobs,
		}}
	}
}

// report folds a worker's streamed results in under its lease.
func (c *Coordinator) report(req ReportRequest) (ReportResponse, error) {
	// A valid report is also a heartbeat.
	if err := c.leases.Renew(req.Worker, req.Shard, req.Lease); err != nil {
		return ReportResponse{}, err
	}
	c.workersAlive.Set(int64(c.leases.Alive()))
	var resp ReportResponse
	for _, rec := range req.Records {
		idxs, ok := c.keyIdx[rec.Key]
		if !ok || rec.Key != rec.Job.Key() {
			resp.Rejected++
			c.recRejected.Inc()
			continue
		}
		c.mu.Lock()
		var fresh []int
		for _, i := range idxs {
			if !c.accounted[i] {
				fresh = append(fresh, i)
			}
		}
		if len(fresh) == 0 {
			c.mu.Unlock()
			resp.Duplicates++
			c.recDuplicate.Inc()
			continue
		}
		// Persist before accounting: a record the coordinator failed to
		// append stays unaccounted, so its job reassigns rather than
		// silently evaporating from the store.
		if err := c.cfg.Store.Put(rec); err != nil {
			c.mu.Unlock()
			return resp, err
		}
		for _, i := range fresh {
			out := sweep.Outcome{Job: c.jobs[i], Summary: rec.Summary, Worker: -1}
			// The worker's wall clock for the job rides ElapsedMS; fold
			// it into the run stage so the fleet-wide breakdown and
			// /status stay meaningful.
			out.Stages.Run = time.Duration(rec.ElapsedMS * float64(time.Millisecond))
			c.outs[i] = out
			c.accounted[i] = true
			c.done++
			c.mon.Observe(c.done, len(c.jobs), out)
			_ = c.cfg.RunLog.Event("job_done", map[string]any{
				"key": rec.Key, "label": c.jobs[i].Label(),
				"worker": req.Worker, "shard": req.Shard, "ms": rec.ElapsedMS,
			})
		}
		c.mu.Unlock()
		resp.Accepted++
		c.recAccepted.Inc()
	}
	for _, je := range req.Errors {
		idxs, ok := c.keyIdx[je.Key]
		if !ok {
			resp.Rejected++
			c.recRejected.Inc()
			continue
		}
		c.mu.Lock()
		for _, i := range idxs {
			if c.accounted[i] {
				continue
			}
			out := sweep.Outcome{Job: c.jobs[i], Err: errors.New(je.Error), Worker: -1}
			c.outs[i] = out
			c.accounted[i] = true
			c.done++
			c.errs++
			c.mon.Observe(c.done, len(c.jobs), out)
			_ = c.cfg.RunLog.Event("job_done", map[string]any{
				"key": je.Key, "label": c.jobs[i].Label(),
				"worker": req.Worker, "shard": req.Shard, "err": je.Error,
			})
		}
		c.mu.Unlock()
	}
	return resp, nil
}

// completeShard retires a shard under its lease: verify every job is
// accounted, sync the store to stable storage, then ack.
func (c *Coordinator) completeShard(worker string, shard int, token int64) error {
	// Bounds-check before indexing: the shard number came off the wire
	// (FuzzProtocolDecode found the panic this guards against).
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("%w: shard %d of %d", errNoShard, shard, len(c.shards))
	}
	c.mu.Lock()
	for _, i := range c.shards[shard] {
		if !c.accounted[i] {
			c.mu.Unlock()
			// Served as 409, not 500: a complete for a shard with
			// unreported jobs means the worker's reports were lost (a
			// dropped /report, a coordinator restart) — retrying the
			// complete cannot ever succeed, but abandoning the lease
			// lets the shard reassign and the missing jobs recompute.
			return fmt.Errorf("%w: shard %d incomplete: job %s unreported",
				ErrLeaseLost, shard, c.jobs[i].Label())
		}
	}
	c.mu.Unlock()
	// The durability half of the ack: records this shard reported are on
	// stable storage before the worker is told the shard is done.
	if err := c.cfg.Store.Sync(); err != nil {
		return err
	}
	if err := c.leases.Complete(worker, shard, token); err != nil {
		return err
	}
	c.completed.Inc()
	_ = c.cfg.RunLog.Event("shard_complete", map[string]any{
		"shard": shard, "worker": worker,
	})
	if c.leases.Done() {
		c.finish()
	}
	return nil
}

// ShardTally is the /status shard accounting.
type ShardTally struct {
	Total     int   `json:"total"`
	Pending   int   `json:"pending"`
	Active    int   `json:"active"`
	Completed int   `json:"completed"`
	Served    int64 `json:"served"`
	// Reassigned counts leases handed out for shards a previous worker
	// had held — each one is a survived worker death (or stall).
	Reassigned       int64 `json:"reassigned"`
	RecordsAccepted  int64 `json:"records_accepted"`
	RecordsDuplicate int64 `json:"records_duplicate"`
	RecordsRejected  int64 `json:"records_rejected,omitempty"`
}

// WorkerInfo is one worker's liveness row.
type WorkerInfo struct {
	Name string `json:"name"`
	// SinceSeenMS is how long ago the worker last called in; Alive is
	// whether that is within one lease TTL.
	SinceSeenMS float64 `json:"since_seen_ms"`
	Alive       bool    `json:"alive"`
}

// Status is the coordinator's /status document: the familiar sweep
// Monitor document plus the shard and worker view.
type Status struct {
	Sweep  sweep.Status `json:"sweep"`
	Shards ShardTally   `json:"shards"`
	// Epoch is the coordinator's fencing generation: how many times a
	// coordinator has booted against this sweep's journal (0: no
	// journal). A bump between two /status polls is a crash+restart.
	Epoch   uint32       `json:"epoch,omitempty"`
	Workers []WorkerInfo `json:"workers,omitempty"`
	Done    bool         `json:"done"`
	Aborted bool         `json:"aborted,omitempty"`
}

// Status renders the live fleet view.
func (c *Coordinator) Status() Status {
	pending, active, done := c.leases.Counts()
	c.workersAlive.Set(int64(c.leases.Alive()))
	s := Status{
		Sweep: c.mon.Status(),
		Epoch: c.leases.Epoch(),
		Shards: ShardTally{
			Total:            len(c.shards),
			Pending:          pending,
			Active:           active,
			Completed:        done,
			Served:           c.served.Load(),
			Reassigned:       c.reassigned.Load(),
			RecordsAccepted:  c.recAccepted.Load(),
			RecordsDuplicate: c.recDuplicate.Load(),
			RecordsRejected:  c.recRejected.Load(),
		},
	}
	workers := c.leases.Workers()
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		since := workers[name]
		s.Workers = append(s.Workers, WorkerInfo{
			Name:        name,
			SinceSeenMS: float64(since.Microseconds()) / 1000,
			Alive:       since <= c.cfg.LeaseTTL,
		})
	}
	c.mu.Lock()
	s.Done = c.finished
	s.Aborted = c.aborted
	c.mu.Unlock()
	return s
}

// Handler mounts the coordinator's HTTP surface: the lease protocol
// (/claim, /heartbeat, /report, /complete) and the /status document.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decode(w, r, &req) {
			return
		}
		writeJSON(w, c.claim(req.Worker))
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.leases.Renew(req.Worker, req.Shard, req.Lease); err != nil {
			leaseError(w, err)
			return
		}
		c.workersAlive.Set(int64(c.leases.Alive()))
		writeJSON(w, OKResponse{OK: true})
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.report(req)
		if err != nil {
			leaseError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.completeShard(req.Worker, req.Shard, req.Lease); err != nil {
			leaseError(w, err)
			return
		}
		writeJSON(w, OKResponse{OK: true})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	return mux
}

// maxRequestBody bounds any protocol request body. The largest
// legitimate body is a /report batch; at a few hundred bytes per record
// this allows batches far beyond any real shard, while a hostile or
// corrupted Content-Length cannot make the decoder buffer unbounded.
const maxRequestBody = 64 << 20

// decode parses a protocol request body. Anything malformed — wrong
// method, oversized, truncated, or garbled JSON — is answered 4xx,
// never a panic and never a 5xx (FuzzProtocolDecode holds it to that).
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// leaseError maps lease losses to 409 (the client's abandon signal),
// nonexistent shards to 400 (malformed request, retrying cannot help),
// and everything else to 500 (retryable).
func leaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, errNoShard):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
