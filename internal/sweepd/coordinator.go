package sweepd

// coordinator.go is the server side of the sharding service. A
// Coordinator owns the canonical job list and the one merged store:
// store hits are resolved up front (exactly as sweep.Run does, with the
// same run-log discipline — sweep_start first, then the buffered
// skips), the remainder is partitioned by content-key range
// (sweep.PartitionByKey), and shards are served over HTTP under leases.
// Every record a worker streams back is integrity-checked
// (Key == Job.Key()), deduplicated against the store, appended, and
// folded into the sweep.Monitor — so /status, the run-log, and the
// end-of-sweep breakdown keep working fleet-wide, and the final
// aggregates fold in expansion order from Outcomes just as a
// single-process sweep's do.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// DefaultShards is the shard count when Config leaves it zero: enough
// ranges that a handful of workers stay busy and a death forfeits at
// most one range's progress-in-flight, few enough that claim traffic is
// noise.
const DefaultShards = 8

// DefaultLeaseTTL is the lease horizon when Config leaves it zero.
const DefaultLeaseTTL = 15 * time.Second

// Config parameterizes a Coordinator.
type Config struct {
	// Name labels the sweep (the Monitor's spec name).
	Name string
	// Store is the merged result store (required). The coordinator is
	// its only writer; workers never see it.
	Store *sweep.Store
	// Shards is the number of content-key ranges (0: DefaultShards).
	Shards int
	// LeaseTTL is how long a silent worker keeps a shard before it is
	// reassigned (0: DefaultLeaseTTL).
	LeaseTTL time.Duration
	// RetryMS is the poll hint served when every remaining shard is
	// leased (0: 500).
	RetryMS int64
	// Monitor folds fleet-wide progress (nil: a fresh one over the job
	// list). Its Status is embedded in /status.
	Monitor *sweep.Monitor
	// Telemetry receives the coordinator counters (nil: obs.Default).
	Telemetry *obs.Registry
	// RunLog receives coordinator lifecycle events (nil: disabled).
	RunLog *obs.RunLog
	// Journal is the crash-recovery journal (nil: epoch fencing off, as
	// for an ephemeral in-test coordinator). When set, NewCoordinator
	// bumps its epoch and persists before serving: lease tokens embed
	// the epoch, so tokens from a pre-crash incarnation 409 instead of
	// colliding, and the journal's recorded shard count overrides
	// Config.Shards so a restart re-partitions the remaining keyspace
	// with the original geometry (journaled steal cuts replay on top).
	Journal *Journal

	// Steal enables work stealing: an idle claimer may trigger a split
	// of a straggling shard's unreported suffix instead of polling
	// until the straggler's lease expires. Off (the default) preserves
	// the lease-expiry-only coordinator bit-for-bit.
	Steal bool
	// StealMin is the minimum unreported remainder (jobs) a shard must
	// hold to be split (0: DefaultStealMin). A remainder of 1 never
	// splits — the victim must retain work.
	StealMin int
	// StealAfter is how long a shard must go without progress before it
	// counts as straggling (0: LeaseTTL/2).
	StealAfter time.Duration

	// clock overrides time.Now for lease-expiry tests.
	clock func() time.Time
}

// shardMeta is the coordinator's per-shard progress view, fed by the
// Done/Total fields workers piggyback on heartbeats and reports plus
// the records they land. It exists for observability (/status rows)
// and as the steal policy's staleness signal; nothing here affects
// which records are accepted.
type shardMeta struct {
	done       int       // worker-reported jobs finished under the current claim
	total      int       // worker-reported claim size
	lastReport time.Time // last heartbeat/report touching this shard
	// lastAdvance is the last time this shard made observable progress
	// (reported done count grew, or a record/error was accounted). A
	// shard whose lastAdvance trails the fleet's by StealAfter is a
	// steal victim.
	lastAdvance time.Time
	// stolenKeys are job keys cut out of this shard since its current
	// lease; piggybacked on heartbeat/report responses so the victim
	// sheds them unrun.
	stolenKeys []string
}

// Coordinator serves shards of one expanded job list and folds the
// fleet's results back into one store and one Outcome list.
type Coordinator struct {
	cfg        Config
	stealMin   int
	stealAfter time.Duration
	jobs       []sweep.Job
	keyIdx     map[string][]int // content key -> job indices (dup keys: all)
	leases     *leaseTable
	mon        *sweep.Monitor
	start      time.Time

	mu        sync.Mutex
	shards    [][]int // shard -> job indices (suffixes move on split)
	meta      []shardMeta
	jobShard  []int  // job index -> owning shard (-1: resolved up front)
	stolen    []bool // job was cut out of its original shard by a steal
	fleet     time.Time
	outs      []sweep.Outcome
	accounted []bool
	done      int // accounted jobs, store hits included
	resumed   int
	errs      int
	finished  bool
	aborted   bool
	doneCh    chan struct{}

	served         *obs.Counter // "sweepd.shards.served"
	reassigned     *obs.Counter // "sweepd.shards.reassigned"
	completed      *obs.Counter // "sweepd.shards.completed"
	splits         *obs.Counter // "sweepd.shards.split"
	jobsStolen     *obs.Counter // "sweepd.jobs.stolen"
	stealsRejected *obs.Counter // "sweepd.steals.rejected"
	recAccepted    *obs.Counter // "sweepd.records.accepted"
	recDuplicate   *obs.Counter // "sweepd.records.duplicate"
	recRejected    *obs.Counter // "sweepd.records.rejected"
	workersAlive   *obs.Gauge   // "sweepd.workers.alive"
}

// now is the coordinator's clock (injectable for tests).
func (c *Coordinator) now() time.Time {
	if c.cfg.clock != nil {
		return c.cfg.clock()
	}
	return time.Now()
}

// NewCoordinator builds a coordinator over jobs. Store hits are
// resolved immediately: their outcomes are final before any worker
// connects, and a coordinator whose store already holds everything is
// born finished.
func NewCoordinator(jobs []sweep.Job, cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("sweepd: coordinator needs a store")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	// A journaled restart must re-partition with the geometry the first
	// incarnation used, whatever today's flag says: shard indices in
	// workers' still-live claims are meaningless otherwise.
	if cfg.Journal != nil && cfg.Journal.Shards > 0 {
		cfg.Shards = cfg.Journal.Shards
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.RetryMS <= 0 {
		cfg.RetryMS = 500
	}
	if cfg.StealMin <= 0 {
		cfg.StealMin = DefaultStealMin
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = cfg.LeaseTTL / 2
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = obs.Default
	}
	if cfg.Monitor == nil {
		cfg.Monitor = sweep.NewMonitor(cfg.Name, len(jobs), nil, cfg.Telemetry)
	}

	c := &Coordinator{
		cfg:        cfg,
		stealMin:   cfg.StealMin,
		stealAfter: cfg.StealAfter,
		jobs:       jobs,
		keyIdx:     make(map[string][]int, len(jobs)),
		mon:        cfg.Monitor,
		start:      time.Now(),
		outs:       make([]sweep.Outcome, len(jobs)),
		accounted:  make([]bool, len(jobs)),
		jobShard:   make([]int, len(jobs)),
		stolen:     make([]bool, len(jobs)),
		doneCh:     make(chan struct{}),

		served:         cfg.Telemetry.Counter("sweepd.shards.served"),
		reassigned:     cfg.Telemetry.Counter("sweepd.shards.reassigned"),
		completed:      cfg.Telemetry.Counter("sweepd.shards.completed"),
		splits:         cfg.Telemetry.Counter("sweepd.shards.split"),
		jobsStolen:     cfg.Telemetry.Counter("sweepd.jobs.stolen"),
		stealsRejected: cfg.Telemetry.Counter("sweepd.steals.rejected"),
		recAccepted:    cfg.Telemetry.Counter("sweepd.records.accepted"),
		recDuplicate:   cfg.Telemetry.Counter("sweepd.records.duplicate"),
		recRejected:    cfg.Telemetry.Counter("sweepd.records.rejected"),
		workersAlive:   cfg.Telemetry.Gauge("sweepd.workers.alive"),
	}

	// Resolve store hits up front, buffering skip events so the run-log
	// opens with sweep_start (the runner's lifecycle ordering).
	var pending, skipped []int
	for i, j := range jobs {
		key := j.Key()
		c.keyIdx[key] = append(c.keyIdx[key], i)
		if rec, ok := cfg.Store.Lookup(key); ok {
			c.outs[i] = sweep.Outcome{Job: j, Summary: rec.Summary, FromStore: true, Worker: -1}
			c.accounted[i] = true
			c.done++
			c.resumed++
			skipped = append(skipped, i)
			continue
		}
		pending = append(pending, i)
	}
	c.shards = sweep.PartitionByKey(jobs, pending, cfg.Shards)
	// Replay journaled steal cuts on top of the base partition: a
	// coordinator that crashed mid-split comes back with the post-split
	// geometry, under the bumped epoch. Cuts whose key is no longer
	// pending (the stolen job completed) replay as no-ops.
	if cfg.Journal != nil {
		for _, key := range cfg.Journal.Cuts {
			c.replayCut(key)
		}
	}
	for i := range c.jobShard {
		c.jobShard[i] = -1
	}
	for s, idxs := range c.shards {
		for _, i := range idxs {
			if c.jobShard[i] < 0 {
				c.jobShard[i] = s
			}
		}
	}
	boot := c.now()
	c.fleet = boot
	c.meta = make([]shardMeta, len(c.shards))
	for i := range c.meta {
		c.meta[i] = shardMeta{lastReport: boot, lastAdvance: boot}
	}
	// Fence this incarnation before any lease exists: a failed journal
	// save fails the boot, or a later crash could reuse the epoch and
	// hand a stale worker a colliding token.
	var epoch uint32
	if cfg.Journal != nil {
		if err := cfg.Journal.Bump(cfg.Shards); err != nil {
			return nil, err
		}
		epoch = cfg.Journal.Epoch
	}
	c.leases = newLeaseTable(len(c.shards), cfg.LeaseTTL, cfg.clock, epoch)

	startFields := map[string]any{
		"jobs": len(jobs), "pending": len(pending),
		"resumed": len(skipped), "shards": len(c.shards),
		"epoch": epoch,
	}
	if cfg.Steal {
		// Only stamped when stealing is on, so an off-mode run-log stays
		// byte-identical to the pre-steal coordinator's.
		startFields["steal"] = true
	}
	_ = cfg.RunLog.Event("sweep_start", startFields)
	for pos, i := range skipped {
		_ = cfg.RunLog.Event("job_skip", map[string]any{
			"key": jobs[i].Key(), "label": jobs[i].Label(),
		})
		c.mon.Observe(pos+1, len(jobs), c.outs[i])
	}
	if len(c.shards) == 0 {
		c.finish()
	}
	return c, nil
}

// Done is closed when every shard is complete (or the coordinator was
// aborted).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Finished reports completion without blocking.
func (c *Coordinator) Finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}

// Outcomes returns the outcome list in expansion order. Call after Done
// fires; earlier calls see whatever has been folded so far.
func (c *Coordinator) Outcomes() []sweep.Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	outs := make([]sweep.Outcome, len(c.outs))
	copy(outs, c.outs)
	return outs
}

// Errors counts jobs whose workers reported a failure.
func (c *Coordinator) Errors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}

// Abort marks the sweep ended without completion: the run-log gets its
// sweep_end with aborted:true and Done fires. In-flight worker calls
// after an abort are answered done, so the fleet drains.
func (c *Coordinator) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	c.aborted = true
	c.finishLocked()
}

// finish closes out the sweep (all shards complete).
func (c *Coordinator) finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishLocked()
}

func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	end := map[string]any{
		"ran": c.done - c.resumed, "resumed": c.resumed, "errors": c.errs,
		"elapsed_ms": float64(time.Since(c.start).Microseconds()) / 1000,
	}
	if c.aborted {
		end["aborted"] = true
	}
	_ = c.cfg.RunLog.Event("sweep_end", end)
	close(c.doneCh)
}

// pendingJobs filters a shard down to jobs not yet accounted — the
// resume semantics a reassigned shard inherits.
func (c *Coordinator) pendingJobs(shard int) []sweep.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	var jobs []sweep.Job
	for _, i := range c.shards[shard] {
		if !c.accounted[i] {
			jobs = append(jobs, c.jobs[i])
		}
	}
	return jobs
}

// replayCut re-applies one journaled steal cut to the freshly derived
// partition (boot-time only, no locking). The journal records cuts as
// the first stolen job's content key because shard indices don't
// survive a restart: the successor partitions only the still-pending
// jobs, so the same key sits at a different position. A key that is no
// longer pending, or that already begins a shard, replays vacuously.
func (c *Coordinator) replayCut(key string) {
	for s := range c.shards {
		for p, i := range c.shards[s] {
			if c.jobs[i].Key() != key {
				continue
			}
			if p == 0 {
				return
			}
			suffix := append([]int(nil), c.shards[s][p:]...)
			c.shards[s] = c.shards[s][:p:p]
			c.shards = append(c.shards, suffix)
			for _, j := range suffix {
				c.stolen[j] = true
			}
			return
		}
	}
}

// noteProgressLocked folds a worker's piggybacked Done/Total for shard
// into the coordinator's per-shard view; the caller holds c.mu. A
// growing done count is observable progress and advances the shard's
// (and the fleet's) staleness clock.
func (c *Coordinator) noteProgressLocked(shard, done, total int) {
	if shard < 0 || shard >= len(c.meta) {
		return
	}
	m := &c.meta[shard]
	now := c.now()
	m.lastReport = now
	if total > 0 {
		m.total = total
	}
	if done > m.done {
		m.done = done
		c.advanceLocked(shard, now)
	}
}

// advanceLocked stamps observable progress on shard; caller holds c.mu.
func (c *Coordinator) advanceLocked(shard int, now time.Time) {
	if shard < 0 || shard >= len(c.meta) {
		return
	}
	c.meta[shard].lastAdvance = now
	c.fleet = now
}

// trySteal is the steal policy, consulted when an idle worker's claim
// found nothing claimable. It picks the straggler holding the most
// unreported work — a live-leased shard whose remainder is at least
// StealMin, that has not advanced for StealAfter, and that the rest of
// the fleet has advanced past — journals the cut (write-ahead: a crash
// between the append and the in-memory split recovers post-split), then
// cuts the victim's unreported suffix into a fresh pending shard the
// caller's next Claim will win. The victim keeps its lease and its
// retained prefix; only its reports for stolen jobs are refused, and
// only per-job. Returns whether a split happened.
func (c *Coordinator) trySteal(thief string) bool {
	live := c.leases.Leased()
	if len(live) == 0 {
		return false
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	victim, victimWorker, best := -1, "", 0
	considered := false
	for _, l := range live {
		if l.shard >= len(c.shards) {
			continue
		}
		remaining := 0
		for _, i := range c.shards[l.shard] {
			if !c.accounted[i] {
				remaining++
			}
		}
		if remaining > 0 {
			considered = true
		}
		if remaining < c.stealMin || remaining < 2 {
			continue
		}
		m := &c.meta[l.shard]
		if now.Sub(m.lastAdvance) < c.stealAfter {
			continue
		}
		// Fleet-ahead check: somebody else advanced after this shard
		// last did. A uniformly idle fleet (nothing has progressed
		// anywhere) is not straggling, it is starting up.
		if !c.fleet.After(m.lastAdvance) {
			continue
		}
		if remaining > best {
			victim, victimWorker, best = l.shard, l.worker, remaining
		}
	}
	if victim < 0 {
		if considered {
			c.stealsRejected.Inc()
		}
		return false
	}
	// Cut half the unreported remainder, as the positional suffix that
	// contains k unaccounted jobs and begins at one (the cut key must be
	// pending for a restart's replay to find it). k <= remaining-1, so
	// the victim always retains at least one unaccounted job.
	k := best / 2
	if k < 1 {
		k = 1
	}
	list := c.shards[victim]
	p, cnt := len(list)-1, 0
	for ; p >= 0; p-- {
		if !c.accounted[list[p]] {
			cnt++
			if cnt == k {
				break
			}
		}
	}
	if p <= 0 {
		return false
	}
	cutKey := c.jobs[list[p]].Key()
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.AppendCut(cutKey); err != nil {
			// The cut isn't durable; applying it anyway would let a
			// crash resurrect pre-split geometry under live post-split
			// leases. Abandon the steal.
			return false
		}
	}
	suffix := append([]int(nil), list[p:]...)
	c.shards[victim] = list[:p:p]
	newShard := c.leases.Add()
	c.shards = append(c.shards, suffix)
	c.meta = append(c.meta, shardMeta{lastReport: now, lastAdvance: now})
	stolenJobs := 0
	for _, i := range suffix {
		c.jobShard[i] = newShard
		if !c.accounted[i] {
			c.stolen[i] = true
			c.meta[victim].stolenKeys = append(c.meta[victim].stolenKeys, c.jobs[i].Key())
			stolenJobs++
		}
	}
	c.splits.Inc()
	c.jobsStolen.Add(int64(stolenJobs))
	_ = c.cfg.RunLog.Event("shard_split", map[string]any{
		"shard": victim, "worker": victimWorker, "thief": thief,
		"new_shard": newShard, "cut": cutKey, "jobs": stolenJobs,
		"epoch": c.leases.Epoch(),
	})
	return true
}

// claim implements shard assignment: hand out the first claimable
// shard that still has pending work, auto-completing any claimable
// shard whose jobs were all reported by a previous (dead) owner.
func (c *Coordinator) claim(worker string) ClaimResponse {
	for {
		if c.Finished() || c.leases.Done() {
			if !c.Finished() {
				c.finish()
			}
			return ClaimResponse{Done: true}
		}
		shard, token, reassigned, ok := c.leases.Claim(worker)
		c.workersAlive.Set(int64(c.leases.Alive()))
		if !ok {
			if c.leases.Done() {
				c.finish()
				return ClaimResponse{Done: true}
			}
			// An idle worker and no claimable shard is exactly the
			// straggler window: try to split a stalled shard's suffix
			// rather than making the claimer wait out a healthy-looking
			// lease. A successful split loops back into Claim.
			if c.cfg.Steal && c.trySteal(worker) {
				continue
			}
			return ClaimResponse{RetryMS: c.cfg.RetryMS}
		}
		c.served.Inc()
		// A fresh claim resets the shard's progress view: done/total are
		// the claimant's local counts, staleness starts now, and stolen
		// keys from a previous holder's split are not this worker's —
		// its claim never contained them.
		c.mu.Lock()
		if shard >= 0 && shard < len(c.meta) {
			now := c.now()
			c.meta[shard] = shardMeta{lastReport: now, lastAdvance: now}
		}
		c.mu.Unlock()
		if reassigned {
			c.reassigned.Inc()
			_ = c.cfg.RunLog.Event("shard_reassign", map[string]any{
				"shard": shard, "worker": worker,
			})
		}
		jobs := c.pendingJobs(shard)
		if len(jobs) == 0 {
			// A previous owner reported everything, then died before
			// completing: nothing to recompute, retire the shard here.
			_ = c.completeShard(worker, shard, token)
			continue
		}
		_ = c.cfg.RunLog.Event("shard_claim", map[string]any{
			"shard": shard, "worker": worker, "jobs": len(jobs),
			"reassigned": reassigned,
		})
		return ClaimResponse{Shard: &ShardClaim{
			ID:      shard,
			Lease:   token,
			LeaseMS: c.cfg.LeaseTTL.Milliseconds(),
			Jobs:    jobs,
		}}
	}
}

// report folds a worker's streamed results in under its lease.
func (c *Coordinator) report(req ReportRequest) (ReportResponse, error) {
	// A valid report is also a heartbeat.
	if err := c.leases.Renew(req.Worker, req.Shard, req.Lease); err != nil {
		return ReportResponse{}, err
	}
	c.workersAlive.Set(int64(c.leases.Alive()))
	c.mu.Lock()
	c.noteProgressLocked(req.Shard, req.Done, req.Total)
	c.mu.Unlock()
	var resp ReportResponse
	for _, rec := range req.Records {
		idxs, ok := c.keyIdx[rec.Key]
		if !ok || rec.Key != rec.Job.Key() {
			resp.Rejected++
			c.recRejected.Inc()
			continue
		}
		c.mu.Lock()
		var fresh []int
		owned := false
		for _, i := range idxs {
			if c.accounted[i] {
				continue
			}
			fresh = append(fresh, i)
			if !c.stolen[i] || c.jobShard[i] == req.Shard {
				owned = true
			}
		}
		if len(fresh) == 0 {
			c.mu.Unlock()
			resp.Duplicates++
			c.recDuplicate.Inc()
			continue
		}
		// Per-job steal fencing: a record for a job cut out of the
		// reporting shard belongs to the thief now — refuse it without
		// touching the lease, so the victim's retained work still
		// lands. (The thief reporting the same key later is the fresh
		// accept; if it raced ahead, the victim hit the duplicate path
		// above instead.)
		if !owned {
			c.mu.Unlock()
			resp.Stolen++
			continue
		}
		// Persist before accounting: a record the coordinator failed to
		// append stays unaccounted, so its job reassigns rather than
		// silently evaporating from the store.
		if err := c.cfg.Store.Put(rec); err != nil {
			c.mu.Unlock()
			return resp, err
		}
		c.advanceLocked(req.Shard, c.now())
		for _, i := range fresh {
			out := sweep.Outcome{Job: c.jobs[i], Summary: rec.Summary, Worker: -1}
			// The worker's wall clock for the job rides ElapsedMS; fold
			// it into the run stage so the fleet-wide breakdown and
			// /status stay meaningful.
			out.Stages.Run = time.Duration(rec.ElapsedMS * float64(time.Millisecond))
			c.outs[i] = out
			c.accounted[i] = true
			c.done++
			c.mon.Observe(c.done, len(c.jobs), out)
			_ = c.cfg.RunLog.Event("job_done", map[string]any{
				"key": rec.Key, "label": c.jobs[i].Label(),
				"worker": req.Worker, "shard": req.Shard, "ms": rec.ElapsedMS,
			})
		}
		c.mu.Unlock()
		resp.Accepted++
		c.recAccepted.Inc()
	}
	for _, je := range req.Errors {
		idxs, ok := c.keyIdx[je.Key]
		if !ok {
			resp.Rejected++
			c.recRejected.Inc()
			continue
		}
		c.mu.Lock()
		for _, i := range idxs {
			if c.accounted[i] {
				continue
			}
			// A stolen job's failure is the thief's to report (or
			// succeed at); the victim's error for it is dropped like
			// its records are.
			if c.stolen[i] && c.jobShard[i] != req.Shard {
				continue
			}
			out := sweep.Outcome{Job: c.jobs[i], Err: errors.New(je.Error), Worker: -1}
			c.outs[i] = out
			c.accounted[i] = true
			c.done++
			c.errs++
			c.advanceLocked(req.Shard, c.now())
			c.mon.Observe(c.done, len(c.jobs), out)
			_ = c.cfg.RunLog.Event("job_done", map[string]any{
				"key": je.Key, "label": c.jobs[i].Label(),
				"worker": req.Worker, "shard": req.Shard, "err": je.Error,
			})
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	if req.Shard >= 0 && req.Shard < len(c.meta) {
		if keys := c.meta[req.Shard].stolenKeys; len(keys) > 0 {
			resp.StolenKeys = append([]string(nil), keys...)
		}
	}
	c.mu.Unlock()
	return resp, nil
}

// completeShard retires a shard under its lease: verify every job is
// accounted, sync the store to stable storage, then ack.
func (c *Coordinator) completeShard(worker string, shard int, token int64) error {
	c.mu.Lock()
	// Bounds-check before indexing: the shard number came off the wire
	// (FuzzProtocolDecode found the panic this guards against). Under
	// c.mu because splits append shards.
	if shard < 0 || shard >= len(c.shards) {
		n := len(c.shards)
		c.mu.Unlock()
		return fmt.Errorf("%w: shard %d of %d", errNoShard, shard, n)
	}
	for _, i := range c.shards[shard] {
		if !c.accounted[i] {
			c.mu.Unlock()
			// Served as 409, not 500: a complete for a shard with
			// unreported jobs means the worker's reports were lost (a
			// dropped /report, a coordinator restart) — retrying the
			// complete cannot ever succeed, but abandoning the lease
			// lets the shard reassign and the missing jobs recompute.
			return fmt.Errorf("%w: shard %d incomplete: job %s unreported",
				ErrLeaseLost, shard, c.jobs[i].Label())
		}
	}
	c.mu.Unlock()
	// The durability half of the ack: records this shard reported are on
	// stable storage before the worker is told the shard is done.
	if err := c.cfg.Store.Sync(); err != nil {
		return err
	}
	if err := c.leases.Complete(worker, shard, token); err != nil {
		return err
	}
	c.completed.Inc()
	_ = c.cfg.RunLog.Event("shard_complete", map[string]any{
		"shard": shard, "worker": worker,
	})
	if c.leases.Done() {
		c.finish()
	}
	return nil
}

// ShardTally is the /status shard accounting.
type ShardTally struct {
	Total     int   `json:"total"`
	Pending   int   `json:"pending"`
	Active    int   `json:"active"`
	Completed int   `json:"completed"`
	Served    int64 `json:"served"`
	// Reassigned counts leases handed out for shards a previous worker
	// had held — each one is a survived worker death (or stall).
	Reassigned       int64 `json:"reassigned"`
	RecordsAccepted  int64 `json:"records_accepted"`
	RecordsDuplicate int64 `json:"records_duplicate"`
	RecordsRejected  int64 `json:"records_rejected,omitempty"`
	// Split counts straggler shards whose unreported suffix was cut
	// into a new shard; JobsStolen the jobs those cuts moved;
	// StealsRejected the steal evaluations that found unfinished work
	// but no eligible victim (all zero with stealing off).
	Split          int64 `json:"split,omitempty"`
	JobsStolen     int64 `json:"jobs_stolen,omitempty"`
	StealsRejected int64 `json:"steals_rejected,omitempty"`
	// Detail is the per-shard progress view: size, accounted remainder,
	// the worker-reported done/total, and last-report age — staleness
	// is observable here even with stealing disabled.
	Detail []ShardStatus `json:"detail,omitempty"`
}

// ShardStatus is one shard's /status row.
type ShardStatus struct {
	ID    int    `json:"id"`
	State string `json:"state"` // pending | active | done
	// Worker is the current (or last) lease holder.
	Worker string `json:"worker,omitempty"`
	// Jobs is the shard's current job-list length (splits shrink it);
	// Remaining counts those not yet accounted coordinator-side.
	Jobs      int `json:"jobs"`
	Remaining int `json:"remaining"`
	// Done/Total echo the lease holder's self-reported progress.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// LastReportMS is the age of the last heartbeat/report touching
	// this shard; StolenJobs counts jobs cut out of it by steals.
	LastReportMS float64 `json:"last_report_ms"`
	StolenJobs   int     `json:"stolen_jobs,omitempty"`
}

// WorkerInfo is one worker's liveness row.
type WorkerInfo struct {
	Name string `json:"name"`
	// SinceSeenMS is how long ago the worker last called in; Alive is
	// whether that is within one lease TTL.
	SinceSeenMS float64 `json:"since_seen_ms"`
	Alive       bool    `json:"alive"`
}

// Status is the coordinator's /status document: the familiar sweep
// Monitor document plus the shard and worker view.
type Status struct {
	Sweep  sweep.Status `json:"sweep"`
	Shards ShardTally   `json:"shards"`
	// Epoch is the coordinator's fencing generation: how many times a
	// coordinator has booted against this sweep's journal (0: no
	// journal). A bump between two /status polls is a crash+restart.
	Epoch   uint32       `json:"epoch,omitempty"`
	Workers []WorkerInfo `json:"workers,omitempty"`
	Done    bool         `json:"done"`
	Aborted bool         `json:"aborted,omitempty"`
}

// Status renders the live fleet view.
func (c *Coordinator) Status() Status {
	pending, active, done := c.leases.Counts()
	views := c.leases.View()
	c.workersAlive.Set(int64(c.leases.Alive()))
	now := c.now()

	c.mu.Lock()
	total := len(c.shards)
	n := len(c.shards)
	if len(views) < n {
		// A split can land between the two snapshots; trim to the
		// shorter view rather than index past it.
		n = len(views)
	}
	detail := make([]ShardStatus, 0, n)
	for i := 0; i < n; i++ {
		remaining := 0
		for _, j := range c.shards[i] {
			if !c.accounted[j] {
				remaining++
			}
		}
		m := &c.meta[i]
		detail = append(detail, ShardStatus{
			ID:           i,
			State:        views[i].state,
			Worker:       views[i].worker,
			Jobs:         len(c.shards[i]),
			Remaining:    remaining,
			Done:         m.done,
			Total:        m.total,
			LastReportMS: float64(now.Sub(m.lastReport).Microseconds()) / 1000,
			StolenJobs:   len(m.stolenKeys),
		})
	}
	c.mu.Unlock()

	s := Status{
		Sweep: c.mon.Status(),
		Epoch: c.leases.Epoch(),
		Shards: ShardTally{
			Total:            total,
			Pending:          pending,
			Active:           active,
			Completed:        done,
			Served:           c.served.Load(),
			Reassigned:       c.reassigned.Load(),
			RecordsAccepted:  c.recAccepted.Load(),
			RecordsDuplicate: c.recDuplicate.Load(),
			RecordsRejected:  c.recRejected.Load(),
			Split:            c.splits.Load(),
			JobsStolen:       c.jobsStolen.Load(),
			StealsRejected:   c.stealsRejected.Load(),
			Detail:           detail,
		},
	}
	workers := c.leases.Workers()
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		since := workers[name]
		s.Workers = append(s.Workers, WorkerInfo{
			Name:        name,
			SinceSeenMS: float64(since.Microseconds()) / 1000,
			Alive:       since <= c.cfg.LeaseTTL,
		})
	}
	c.mu.Lock()
	s.Done = c.finished
	s.Aborted = c.aborted
	c.mu.Unlock()
	return s
}

// Handler mounts the coordinator's HTTP surface: the lease protocol
// (/claim, /heartbeat, /report, /complete) and the /status document.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decode(w, r, &req) {
			return
		}
		writeJSON(w, c.claim(req.Worker))
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.leases.Renew(req.Worker, req.Shard, req.Lease); err != nil {
			leaseError(w, err)
			return
		}
		c.workersAlive.Set(int64(c.leases.Alive()))
		resp := HeartbeatResponse{OK: true}
		c.mu.Lock()
		c.noteProgressLocked(req.Shard, req.Done, req.Total)
		if req.Shard >= 0 && req.Shard < len(c.meta) {
			if keys := c.meta[req.Shard].stolenKeys; len(keys) > 0 {
				resp.StolenKeys = append([]string(nil), keys...)
			}
		}
		c.mu.Unlock()
		writeJSON(w, resp)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.report(req)
		if err != nil {
			leaseError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.completeShard(req.Worker, req.Shard, req.Lease); err != nil {
			leaseError(w, err)
			return
		}
		writeJSON(w, OKResponse{OK: true})
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	return mux
}

// maxRequestBody bounds any protocol request body. The largest
// legitimate body is a /report batch; at a few hundred bytes per record
// this allows batches far beyond any real shard, while a hostile or
// corrupted Content-Length cannot make the decoder buffer unbounded.
const maxRequestBody = 64 << 20

// decode parses a protocol request body. Anything malformed — wrong
// method, oversized, truncated, or garbled JSON — is answered 4xx,
// never a panic and never a 5xx (FuzzProtocolDecode holds it to that).
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// leaseError maps lease losses to 409 (the client's abandon signal),
// nonexistent shards to 400 (malformed request, retrying cannot help),
// and everything else to 500 (retryable).
func leaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, errNoShard):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
