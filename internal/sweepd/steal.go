package sweepd

// steal.go is the coordinator's work-stealing policy: when an idle
// worker asks for a shard and none is claimable, the coordinator may
// split a straggler's unreported suffix into a fresh shard and serve
// that instead of making the claimer wait for lease expiry. The policy
// is deliberately conservative — a victim must hold meaningfully more
// unreported work than the threshold AND have gone longer without
// progress than the rest of the fleet — because the cost of a wrong
// steal is only duplicate execution (dedup-by-Job.Key at append time
// absorbs it), but the cost of an eager one is wasted CPU on a worker
// that was about to report.

import (
	"fmt"
	"os"
	"sync"
)

// DefaultStealMin is the minimum unreported remainder (in jobs) a
// shard must hold to be a steal victim. A remainder of 1 is never
// split: there is no suffix to cut that leaves the victim any retained
// work.
const DefaultStealMin = 2

// ResolveSteal maps a -steal flag / REPRO_STEAL value to an enablement
// decision, using the same vocabulary as REPRO_NETSTORE/REPRO_BATCH:
// empty, "off", and "0" disable (the default — lease expiry remains
// the only reassignment path, bit-for-bit identical to the pre-steal
// coordinator); "on" and "1" enable.
func ResolveSteal(v string) (bool, error) {
	switch v {
	case "", "off", "0":
		return false, nil
	case "on", "1":
		return true, nil
	}
	return false, fmt.Errorf("sweepd: bad steal selector %q (want on|off)", v)
}

var envSteal = sync.OnceValue(func() bool {
	on, err := ResolveSteal(os.Getenv("REPRO_STEAL"))
	if err != nil {
		return false
	}
	return on
})

// EnvSteal resolves the REPRO_STEAL environment variable; unparseable
// values degrade to off — stealing is an optimization, never a
// prerequisite.
func EnvSteal() bool { return envSteal() }
