package spectral

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// The normalized adjacency spectrum of C_n is {cos(2πj/n)}. For even n the
// most negative eigenvalue is -1, so max|λ_nontrivial| = 1. Use odd n where
// it is max(cos(2π/n), |cos(π(n-1)/n)|) = cos(π/n) for the negative end...
// simplest check: λ for C_n (odd) ≥ cos(2π/n) and ≤ 1.
func TestSecondEigenCycle(t *testing.T) {
	n := 31
	g := cycle(n)
	res, _ := SecondEigen(g, Options{})
	if !res.Converged {
		t.Fatal("did not converge on C31")
	}
	// Exact: eigenvalues cos(2πj/n); the largest magnitude nontrivial one
	// for odd n is |cos(π(n-1)/n)| = cos(π/n).
	want := math.Cos(math.Pi / float64(n))
	if math.Abs(res.Lambda-want) > 1e-6 {
		t.Fatalf("C%d lambda = %v, want %v", n, res.Lambda, want)
	}
}

// K_n normalized adjacency: eigenvalues 1 and -1/(n-1).
func TestSecondEigenComplete(t *testing.T) {
	n := 12
	g := complete(n)
	res, _ := SecondEigen(g, Options{})
	want := 1.0 / float64(n-1)
	if math.Abs(res.Lambda-want) > 1e-6 {
		t.Fatalf("K%d lambda = %v, want %v", n, res.Lambda, want)
	}
	if res.Gap < 0.9 {
		t.Fatalf("K%d gap = %v, want ~%v", n, res.Gap, 1-want)
	}
}

// Two disjoint cliques joined by a single edge: conductance must be tiny
// and the sweep cut must find the bottleneck (half the nodes).
func TestSweepCutFindsBottleneck(t *testing.T) {
	const half = 10
	b := graph.NewBuilder(2 * half)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			b.AddEdge(i, j)
			b.AddEdge(half+i, half+j)
		}
	}
	b.AddEdge(0, half)
	g := b.Build()
	res, vec := SecondEigen(g, Options{})
	if res.Gap > 0.2 {
		t.Fatalf("barbell gap = %v, should be near 0", res.Gap)
	}
	phi, h, size := SweepCut(g, vec)
	if size != half {
		t.Fatalf("sweep found cut of size %d, want %d", size, half)
	}
	// One crossing edge: φ = 1/vol(half) and h = 1/half.
	if phi > 0.03 {
		t.Fatalf("conductance = %v, want ~1/91", phi)
	}
	if math.Abs(h-1.0/half) > 1e-9 {
		t.Fatalf("edge expansion = %v, want %v", h, 1.0/half)
	}
}

// Lemma 19 shape: H(n,d) spectral gap bounded away from zero, λ near the
// Ramanujan reference 2√(d−1)/d.
func TestHGraphIsExpander(t *testing.T) {
	for _, d := range []int{8, 12} {
		h := hgraph.GenerateH(2048, d, rng.New(uint64(d)))
		m := Measure(h, Options{})
		if !m.Converged {
			t.Fatalf("d=%d: did not converge", d)
		}
		if m.Gap < 0.2 {
			t.Fatalf("d=%d: gap = %v, want >= 0.2", d, m.Gap)
		}
		// Friedman: λ ≤ 2√(d−1)/d + o(1) w.h.p. Allow 20% slack for the
		// o(1) term at n=2048.
		if m.Lambda > m.RamanujanRef*1.2 {
			t.Fatalf("d=%d: lambda = %v exceeds Ramanujan ref %v by >20%%", d, m.Lambda, m.RamanujanRef)
		}
		if m.EdgeExpansion < 0.5 {
			t.Fatalf("d=%d: edge expansion = %v too small", d, m.EdgeExpansion)
		}
	}
}

// The mixing bound should be Θ(log n) for expanders.
func TestMixingBoundScaling(t *testing.T) {
	m1 := Measure(hgraph.GenerateH(512, 8, rng.New(1)), Options{})
	m2 := Measure(hgraph.GenerateH(4096, 8, rng.New(2)), Options{})
	if m2.MixingBound <= m1.MixingBound {
		t.Fatalf("mixing bound not increasing: %v -> %v", m1.MixingBound, m2.MixingBound)
	}
	if m2.MixingBound > 3*m1.MixingBound {
		t.Fatalf("mixing bound grew superlogarithmically: %v -> %v", m1.MixingBound, m2.MixingBound)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	res, _ := SecondEigen(empty, Options{})
	if !res.Converged {
		t.Fatal("empty graph should trivially converge")
	}
	single := graph.NewBuilder(1).Build()
	res, vec := SecondEigen(single, Options{})
	if !res.Converged {
		t.Fatal("single isolated vertex should converge")
	}
	phi, h, _ := SweepCut(single, vec)
	if phi != 0 || h != 0 {
		t.Fatalf("sweep on single vertex: %v %v", phi, h)
	}
}

func TestMeasureOnDisconnected(t *testing.T) {
	// Two disjoint edges: λ = 1 (second component carries a copy of the
	// top eigenvalue), so the gap is 0 and the mixing bound infinite.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	m := Measure(g, Options{})
	if m.Lambda < 0.99 {
		t.Fatalf("disconnected lambda = %v, want ~1", m.Lambda)
	}
	if !math.IsInf(m.MixingBound, 1) && m.MixingBound < 100 {
		t.Fatalf("disconnected mixing bound should be huge, got %v", m.MixingBound)
	}
}

func BenchmarkSecondEigenH2048(b *testing.B) {
	h := hgraph.GenerateH(2048, 8, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SecondEigen(h, Options{})
	}
}
