// Package spectral measures the expansion properties the paper's analysis
// relies on: the second eigenvalue of the (normalized) adjacency operator,
// the spectral gap, a Cheeger sweep-cut estimate of edge expansion, and the
// implied mixing-time bound.
//
// Lemma 19 (via Friedman) states H(n,d) is a near-Ramanujan expander w.h.p.
// (λ ≈ 2√(d−1)/d for the normalized operator). Rather than assuming it,
// the experiment harness measures λ for every generated instance.
package spectral

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Result summarizes the spectral measurement of a graph.
type Result struct {
	Lambda     float64 // max |non-trivial eigenvalue| of D^{-1/2} A D^{-1/2}
	Gap        float64 // 1 - Lambda
	Iterations int     // power-iteration rounds used
	Converged  bool
}

// Options controls the power iteration.
type Options struct {
	MaxIter int     // default 2000
	Tol     float64 // relative eigenvalue tolerance; default 1e-9
	Seed    uint64  // start-vector seed; default 1
}

func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 2000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// SecondEigen estimates λ = max(|λ₂|, |λₙ|) of the symmetric normalized
// adjacency operator M = D^{-1/2} A D^{-1/2} by power iteration with
// deflation against the top eigenvector (√deg). It also returns the
// converged eigenvector (in the D^{-1/2} embedding) for sweep cuts.
//
// Isolated (degree-0) vertices are treated as fixed points and excluded.
func SecondEigen(g *graph.Graph, opts Options) (Result, []float64) {
	opts.defaults()
	n := g.N()
	if n == 0 {
		return Result{Converged: true}, nil
	}

	sqrtDeg := make([]float64, n)
	var volume float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		sqrtDeg[v] = math.Sqrt(d)
		volume += d
	}
	if volume == 0 {
		return Result{Converged: true}, make([]float64, n)
	}

	// Top eigenvector of M is u ∝ √deg, eigenvalue 1; deflate x ← x − <x,u>u.
	uNorm := math.Sqrt(volume)
	deflate := func(x []float64) {
		var dot float64
		for v := 0; v < n; v++ {
			dot += x[v] * sqrtDeg[v]
		}
		dot /= uNorm
		for v := 0; v < n; v++ {
			x[v] -= dot * sqrtDeg[v] / uNorm
		}
	}

	matVec := func(dst, x []float64) {
		for v := 0; v < n; v++ {
			if sqrtDeg[v] == 0 {
				dst[v] = 0
				continue
			}
			var sum float64
			for _, w := range g.Neighbors(v) {
				if sqrtDeg[w] != 0 {
					sum += x[w] / sqrtDeg[w]
				}
			}
			dst[v] = sum / sqrtDeg[v]
		}
	}

	src := rng.New(opts.Seed)
	x := make([]float64, n)
	y := make([]float64, n)
	for v := range x {
		x[v] = src.Float64() - 0.5
	}
	deflate(x)
	normalize(x)

	var lambda, prev float64
	res := Result{}
	for it := 1; it <= opts.MaxIter; it++ {
		// Two applications per step so negative eigenvalues converge too;
		// we report |λ| which is what the mixing bound uses.
		matVec(y, x)
		deflate(y)
		matVec(x, y)
		deflate(x)
		norm := normalize(x)
		lambda = math.Sqrt(norm) // since we applied M twice: |λ|² per step
		res.Iterations = it
		if it > 4 && math.Abs(lambda-prev) <= opts.Tol*math.Max(lambda, 1e-300) {
			res.Converged = true
			break
		}
		prev = lambda
	}
	res.Lambda = lambda
	res.Gap = 1 - lambda
	return res, x
}

func normalize(x []float64) float64 {
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= norm
	}
	return norm
}

// SweepCut runs the Cheeger sweep on the given embedding vector: vertices
// are sorted by x[v]/√deg(v) and the best prefix cut is reported.
// It returns the minimum conductance φ(S) = cut(S, S̄)/min(vol S, vol S̄)
// and the matching edge expansion h(S) = cut(S, S̄)/min(|S|, |S̄|).
func SweepCut(g *graph.Graph, x []float64) (conductance, expansion float64, setSize int) {
	n := g.N()
	if n < 2 {
		return 0, 0, 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	score := make([]float64, n)
	var volume int
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		volume += d
		if d > 0 {
			score[v] = x[v] / math.Sqrt(float64(d))
		}
	}
	sort.Slice(order, func(i, j int) bool { return score[order[i]] < score[order[j]] })

	inSet := make([]bool, n)
	cut, volS := 0, 0
	bestPhi, bestH := math.Inf(1), math.Inf(1)
	bestSize := 0
	for idx := 0; idx < n-1; idx++ {
		v := order[idx]
		internal := 0
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				internal++
			}
		}
		deg := g.Degree(v)
		cut += deg - 2*internal
		volS += deg
		inSet[v] = true

		sizeS := idx + 1
		minVol := volS
		if volume-volS < minVol {
			minVol = volume - volS
		}
		minSize := sizeS
		if n-sizeS < minSize {
			minSize = n - sizeS
		}
		if minVol > 0 {
			if phi := float64(cut) / float64(minVol); phi < bestPhi {
				bestPhi = phi
				bestSize = sizeS
			}
		}
		if minSize > 0 {
			if h := float64(cut) / float64(minSize); h < bestH {
				bestH = h
			}
		}
	}
	return bestPhi, bestH, bestSize
}

// Measure runs the full spectral measurement: eigenvalue, gap, sweep-cut
// conductance/expansion, and the mixing-time bound t ≈ ln(n)/gap.
type Measurement struct {
	Result
	Conductance   float64
	EdgeExpansion float64
	MixingBound   float64
	RamanujanRef  float64 // 2√(d−1)/d for the graph's max degree
}

// Measure computes a Measurement for g.
func Measure(g *graph.Graph, opts Options) Measurement {
	res, vec := SecondEigen(g, opts)
	phi, h, _ := SweepCut(g, vec)
	m := Measurement{Result: res, Conductance: phi, EdgeExpansion: h}
	if res.Gap > 0 && g.N() > 1 {
		m.MixingBound = math.Log(float64(g.N())) / res.Gap
	} else {
		m.MixingBound = math.Inf(1)
	}
	if d := g.Degrees().Max; d > 1 {
		m.RamanujanRef = 2 * math.Sqrt(float64(d-1)) / float64(d)
	}
	return m
}
