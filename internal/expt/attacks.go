package expt

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// E10Core measures the Lemma 14/15 pair under the Figure 1 attack: the
// TopologyLiar crashes its audience instead of fooling it, and the
// surviving Core remains a large connected expander.
func E10Core(sc Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Lemmas 14–15: crashes, the Core, and its expansion",
		PaperClaim: "Lemma 15: Byzantine nodes cannot fake a k-chain without crashing the " +
			"observer. Lemma 14: the largest uncrashed component (Core) has n − o(n) " +
			"nodes and constant edge expansion.",
		Columns: []string{"n", "B(n)", "crashed", "crash bound B·|ball_k|", "core size", "core frac", "core gap", "fooled survivors"},
		Notes: "Crashed counts honest nodes that shut down in the exchange; the bound is the " +
			"union of the liars' radius-k audiences (each lie is heard only within the " +
			"ball). Fooled survivors — uncrashed nodes outside the constant band — " +
			"must be ≈ 0: the attack converts would-be victims into crashes, exactly " +
			"as Lemma 15 states. Core gap is the spectral gap of the surviving subgraph.",
	}
	const delta = 0.85 // small B so the lie-audience does not cover the graph
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(ci, trial)
			jobs = append(jobs, sweep.Job{
				Net:       hgraph.Params{N: n, D: 8, Seed: seed},
				Delta:     delta,
				ByzCount:  b,
				PlaceSeed: seed + 5,
				Adversary: "topology-liar",
				Algorithm: core.AlgorithmByzantine,
				RunSeed:   seed + 9,
			})
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for _, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		var crashed, coreFrac, coreGap, fooled stats.Online
		var coreSize, bound int
		for trial := 0; trial < sc.Trials; trial++ {
			out := outs[idx]
			idx++
			res, net, byz := out.Result, out.Net, out.Byz
			crashed.Add(float64(res.CrashedCount))

			// Audience bound: union of radius-k balls around liars.
			audience := map[int32]bool{}
			for v := 0; v < n; v++ {
				if byz[v] {
					for _, x := range net.H.Ball(v, net.K) {
						audience[x] = true
					}
				}
			}
			bound = len(audience)

			// Core: largest connected component of uncrashed honest nodes in H.
			keep := make([]bool, n)
			for v := 0; v < n; v++ {
				keep[v] = !byz[v] && !res.Crashed[v]
			}
			sub, _ := net.H.Induced(keep)
			comps := sub.Components()
			if len(comps) > 0 {
				coreSize = len(comps[0])
			}
			coreFrac.Add(float64(coreSize) / float64(n))
			m := spectral.Measure(sub, spectral.Options{MaxIter: 500})
			coreGap.Add(m.Gap)

			// Fooled survivors: uncrashed honest nodes outside the band.
			f := 0
			for v := 0; v < n; v++ {
				if byz[v] || res.Crashed[v] {
					continue
				}
				ratio, ok := res.Ratio(v)
				if !ok || ratio < metrics.DefaultBand.Lo || ratio > metrics.DefaultBand.Hi {
					f++
				}
			}
			fooled.Add(float64(f))
		}
		t.AddRow(n, b, crashed.Mean(), bound, coreSize, coreFrac.Mean(), coreGap.Mean(), fooled.Mean())
	}
	return t
}

// E12Injection measures the Lemma 16/17 pair: the acceptance window for
// Byzantine color injections under Algorithm 2.
func E12Injection(sc Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Lemma 16: the injection window",
		PaperClaim: "Lemma 16: a core node accepts a Byzantine-generated high color only in " +
			"rounds 1 ≤ t ≤ k−1 of a subphase. Lemma 17: such colors flood the Core and " +
			"termination still happens by i ≈ b·log n.",
		Columns: []string{"n", "adversary", "subphases w/ entry", "max entry round", "k−1", "nodes reached (spread)", "correct fraction"},
		Notes: "Entry = the first round of a subphase at which any honest node holds an " +
			"injected color: the quantity Lemma 16 bounds by k−1. ChainFaker (injecting " +
			"only at rounds ≥ k, with fabricated attestations) achieves zero entries — " +
			"no k-node Byzantine chains exist. Inflate's entries all land in rounds " +
			"1..k−1; the subsequent spread to other nodes is honest flooding, which " +
			"Lemma 17 shows is exactly what guarantees termination by b·log n anyway.",
	}
	advNames := []string{"chain-faker", "inflate"}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, 0.75)
		for ai, name := range advNames {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+ai, trial)
				jobs = append(jobs, sweep.Job{
					Net:                hgraph.Params{N: n, D: 8, Seed: seed},
					Delta:              0.75,
					ByzCount:           b,
					PlaceSeed:          seed + 0xB12,
					Adversary:          name,
					Algorithm:          core.AlgorithmByzantine,
					InjectionThreshold: adversary.InjectBase,
					RunSeed:            seed + 0x5EED,
				})
			}
		}
	}
	outs := runSweep(jobs, true, func(sweep.Job) core.Observer { return adversary.NewDetector() })
	idx := 0
	for _, n := range sc.Sizes {
		for _, name := range advNames {
			var entries, spread, correct stats.Online
			maxEntry := 0
			for trial := 0; trial < sc.Trials; trial++ {
				out := outs[idx]
				idx++
				res := out.Result
				det := out.Observer.(*adversary.Detector)
				total := 0
				for _, c := range res.InjectionEntryRounds {
					total += c
				}
				entries.Add(float64(total))
				if r := res.MaxInjectionEntryRound(); r > maxEntry {
					maxEntry = r
				}
				spread.Add(float64(det.TotalAccepted))
				correct.Add(out.Summary.CorrectFraction)
			}
			k := hgraph.DefaultK(8)
			t.AddRow(n, name, entries.Mean(), maxEntry, k-1, spread.Mean(), correct.Mean())
		}
	}
	return t
}

// RunAll executes the full suite in order.
func RunAll(sc Scale) []*Table {
	return []*Table{
		E01LocallyTreeLike(sc),
		E02Expansion(sc),
		E03SmallWorld(sc),
		E04Reconstruction(sc),
		E05ByzantineChains(sc),
		E06BasicCounting(sc),
		E07Theorem1(sc),
		E08Baselines(sc),
		E09Complexity(sc),
		E10Core(sc),
		E11EpsilonSweep(sc),
		E12Injection(sc),
		E13Placement(sc),
		E14Calibration(sc),
		E15Churn(sc),
		E16DegreeTradeoff(sc),
		E17Composition(sc),
		E18MessageLoss(sc),
		E19JoinChurn(sc),
		E20FrontierOccupancy(sc),
	}
}

// ByID returns the experiment function matching the given ID ("E1".."E20"),
// or nil if unknown.
func ByID(id string) func(Scale) *Table {
	m := map[string]func(Scale) *Table{
		"E1":  E01LocallyTreeLike,
		"E2":  E02Expansion,
		"E3":  E03SmallWorld,
		"E4":  E04Reconstruction,
		"E5":  E05ByzantineChains,
		"E6":  E06BasicCounting,
		"E7":  E07Theorem1,
		"E8":  E08Baselines,
		"E9":  E09Complexity,
		"E10": E10Core,
		"E11": E11EpsilonSweep,
		"E12": E12Injection,
		"E13": E13Placement,
		"E14": E14Calibration,
		"E15": E15Churn,
		"E16": E16DegreeTradeoff,
		"E17": E17Composition,
		"E18": E18MessageLoss,
		"E19": E19JoinChurn,
		"E20": E20FrontierOccupancy,
	}
	return m[id]
}
