// Package expt defines the reproduction experiment suite E1–E20 mapping
// every quantitative claim of the paper — plus the fault-model extensions
// beyond it — to a measurable run (see DESIGN.md §3 for the index). Each experiment produces a Table that cmd/experiments
// renders into EXPERIMENTS.md and that bench_test.go regenerates under
// `go test -bench`. The protocol-running experiments execute their runs
// through the internal/sweep scheduler (see sweeprun.go).
package expt

import (
	"fmt"
	"strings"

	"repro/internal/sweep"
)

// Table is one experiment's output: a titled markdown table plus the paper
// claim it reproduces.
type Table struct {
	ID         string // "E1", "E2", ...
	Title      string
	PaperClaim string // the lemma/theorem text being checked
	Columns    []string
	Rows       [][]string
	Notes      string // scale effects, substitutions, interpretation
}

// AddRow appends a formatted row; values are Sprint'ed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as RFC-4180-ish CSV (header row first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a Markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n", t.PaperClaim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	return b.String()
}

// Scale selects the experiment workload.
type Scale struct {
	Sizes  []int // network sizes for size sweeps
	Trials int   // independent trials per configuration
	Seed   uint64
}

// Quick is the CI-sized workload (seconds).
func Quick() Scale { return Scale{Sizes: []int{256, 512, 1024}, Trials: 2, Seed: 1} }

// Full is the report-sized workload (minutes).
func Full() Scale {
	return Scale{Sizes: []int{256, 512, 1024, 2048, 4096, 8192}, Trials: 5, Seed: 1}
}

// seedFor derives a per-(config,trial) seed so experiments are independent
// yet reproducible. It delegates to the one shared derivation formula in
// internal/sweep so experiment seeds and sweep-grid seeds cannot diverge.
func (s Scale) seedFor(config, trial int) uint64 {
	return sweep.SeedFor(s.Seed, config, trial)
}
