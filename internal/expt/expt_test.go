package expt

import (
	"fmt"
	"strings"
	"testing"
)

// tiny is a minimal scale for unit-testing the harness itself.
func tiny() Scale { return Scale{Sizes: []int{256, 512}, Trials: 1, Seed: 3} }

func checkTable(t *testing.T, tb *Table, wantID string) {
	t.Helper()
	if tb.ID != wantID {
		t.Fatalf("table ID = %q, want %q", tb.ID, wantID)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s produced no rows", wantID)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s row %d has %d cells for %d columns", wantID, i, len(row), len(tb.Columns))
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, tb.Title) {
		t.Fatalf("%s markdown missing title", wantID)
	}
	if !strings.Contains(md, "| --- |") && !strings.Contains(md, "--- |") {
		t.Fatalf("%s markdown missing separator", wantID)
	}
}

func TestE01(t *testing.T) { checkTable(t, E01LocallyTreeLike(tiny()), "E1") }

func TestE03(t *testing.T) { checkTable(t, E03SmallWorld(tiny()), "E3") }

func TestE05(t *testing.T) {
	sc := tiny()
	tb := E05ByzantineChains(sc)
	checkTable(t, tb, "E5")
	// 2 sizes × 3 deltas rows.
	if len(tb.Rows) != 6 {
		t.Fatalf("E5 rows = %d", len(tb.Rows))
	}
}

func TestE06(t *testing.T) {
	tb := E06BasicCounting(Scale{Sizes: []int{256}, Trials: 1, Seed: 5})
	checkTable(t, tb, "E6")
	if len(tb.Rows) != 3 { // three epsilons
		t.Fatalf("E6 rows = %d", len(tb.Rows))
	}
}

func TestE08(t *testing.T) {
	tb := E08Baselines(Scale{Sizes: []int{512}, Trials: 1, Seed: 7})
	checkTable(t, tb, "E8")
	if len(tb.Rows) != 8 {
		t.Fatalf("E8 rows = %d", len(tb.Rows))
	}
}

func TestE09FitNotes(t *testing.T) {
	tb := E09Complexity(Scale{Sizes: []int{256, 512, 1024}, Trials: 1, Seed: 9})
	checkTable(t, tb, "E9")
	if !strings.Contains(tb.Notes, "R²") {
		t.Fatalf("E9 missing fit notes: %q", tb.Notes)
	}
}

func TestE11(t *testing.T) {
	tb := E11EpsilonSweep(Scale{Sizes: []int{512}, Trials: 1, Seed: 11})
	checkTable(t, tb, "E11")
	if len(tb.Rows) != 5 {
		t.Fatalf("E11 rows = %d", len(tb.Rows))
	}
}

func TestE12(t *testing.T) {
	tb := E12Injection(Scale{Sizes: []int{512}, Trials: 1, Seed: 13})
	checkTable(t, tb, "E12")
}

func TestE20(t *testing.T) {
	tb := E20FrontierOccupancy(Scale{Sizes: []int{512}, Trials: 2, Seed: 17})
	checkTable(t, tb, "E20")
	sawClean, sawInflate := false, false
	for _, row := range tb.Rows {
		occ := row[3]
		var f float64
		if _, err := fmt.Sscanf(occ, "%g", &f); err != nil || f <= 0 || f > 1 {
			t.Fatalf("occupancy cell %q outside (0,1]", occ)
		}
		switch row[1] {
		case "none":
			sawClean = true
		case "inflate":
			sawInflate = true
		}
	}
	if !sawClean || !sawInflate {
		t.Fatalf("E20 missing an adversary arm (clean=%v inflate=%v)", sawClean, sawInflate)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"} {
		if ByID(id) == nil {
			t.Fatalf("ByID(%q) = nil", id)
		}
	}
	if ByID("E99") != nil {
		t.Fatal("unknown ID resolved")
	}
}

// The heavier experiments run under -short guards with minimal scales so
// every code path is exercised in CI.

func TestE02Heavy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkTable(t, E02Expansion(Scale{Sizes: []int{256}, Trials: 1, Seed: 21}), "E2")
}

func TestE04Heavy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := E04Reconstruction(Scale{Trials: 1, Seed: 23})
	checkTable(t, tb, "E4")
}

func TestE07Heavy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := E07Theorem1(Scale{Sizes: []int{512}, Trials: 1, Seed: 25})
	checkTable(t, tb, "E7")
	if len(tb.Rows) != 7 { // seven adversaries
		t.Fatalf("E7 rows = %d", len(tb.Rows))
	}
}

func TestE10Heavy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkTable(t, E10Core(Scale{Sizes: []int{512}, Trials: 1, Seed: 27}), "E10")
}

func TestE13(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb := E13Placement(Scale{Sizes: []int{256}, Trials: 1, Seed: 29})
	checkTable(t, tb, "E13")
	if len(tb.Rows) != 5 { // random, clustered, spread, degree, chain
		t.Fatalf("E13 rows = %d", len(tb.Rows))
	}
}

func TestE14(t *testing.T) {
	tb := E14Calibration(Scale{Sizes: []int{512}, Trials: 1, Seed: 31})
	checkTable(t, tb, "E14")
}

func TestE15(t *testing.T) {
	tb := E15Churn(Scale{Sizes: []int{256}, Trials: 1, Seed: 33})
	checkTable(t, tb, "E15")
	if len(tb.Rows) != 4 { // four churn fractions
		t.Fatalf("E15 rows = %d", len(tb.Rows))
	}
}

func TestE18(t *testing.T) {
	tb := E18MessageLoss(Scale{Sizes: []int{256}, Trials: 1, Seed: 35})
	checkTable(t, tb, "E18")
	if len(tb.Rows) != 10 { // five loss levels × two adversary regimes
		t.Fatalf("E18 rows = %d", len(tb.Rows))
	}
	// The p=0 clean row must show zero drops; some lossy row must not.
	if tb.Rows[0][7] != "0" {
		t.Fatalf("E18 reliable row reports drops: %v", tb.Rows[0])
	}
	sawDrops := false
	for _, row := range tb.Rows[2:] {
		if row[7] != "0" {
			sawDrops = true
		}
	}
	if !sawDrops {
		t.Fatal("E18 lossy rows report no drops")
	}
}

func TestE19(t *testing.T) {
	tb := E19JoinChurn(Scale{Sizes: []int{256}, Trials: 1, Seed: 37})
	checkTable(t, tb, "E19")
	if len(tb.Rows) != 4 { // four join fractions
		t.Fatalf("E19 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][2] != "0" {
		t.Fatalf("E19 zero-churn row reports rejoins: %v", tb.Rows[0])
	}
	if tb.Rows[3][2] == "0" {
		t.Fatalf("E19 20%% churn row reports no rejoins: %v", tb.Rows[3])
	}
}

// TestE18E19Deterministic re-runs both fault experiments and requires
// identical rendered tables: the scheduler may fan runs across any number
// of workers, but expansion-order aggregation must make the output
// invariant (the acceptance property for the fault-model tables).
func TestE18E19Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Scale{Sizes: []int{256}, Trials: 2, Seed: 39}
	if a, b := E18MessageLoss(sc).Markdown(), E18MessageLoss(sc).Markdown(); a != b {
		t.Fatal("E18 not deterministic across runs")
	}
	if a, b := E19JoinChurn(sc).Markdown(), E19JoinChurn(sc).Markdown(); a != b {
		t.Fatal("E19 not deterministic across runs")
	}
}

func TestCSVRendering(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(1, `x,"y`)
	csv := tb.CSV()
	want := "a,b\n1,\"x,\"\"y\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestAddRowFormatting(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b", "c"}}
	tb.AddRow(1, 0.123456789, "x")
	if tb.Rows[0][0] != "1" || tb.Rows[0][2] != "x" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
	if !strings.HasPrefix(tb.Rows[0][1], "0.1235") {
		t.Fatalf("float formatting = %q", tb.Rows[0][1])
	}
}

func TestSeedForDistinct(t *testing.T) {
	sc := Quick()
	seen := map[uint64]bool{}
	for c := 0; c < 20; c++ {
		for tr := 0; tr < 5; tr++ {
			s := sc.seedFor(c, tr)
			if seen[s] {
				t.Fatalf("seed collision at config %d trial %d", c, tr)
			}
			seen[s] = true
		}
	}
}
