package expt

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// E06BasicCounting validates Algorithm 1 in the Byzantine-free setting:
// correctness fraction, ratio concentration, and rounds (Lemma 11 + §3.2.2).
func E06BasicCounting(sc Scale) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Algorithm 1 (basic counting), Byzantine-free",
		PaperClaim: "§3.2 (Lemmas 11, 13): while i < a·log n at most an ε-fraction decides; by " +
			"i = b·log n all active nodes decide. Estimates are a constant-factor " +
			"approximation of log n.",
		Columns: []string{"n", "ε", "correct fraction", "ratio median (est/log₂n)", "ratio min..max", "rounds", "max phase"},
		Notes: "The ratio median sits near 1/log₂(d−1) ≈ 0.36 and is stable across n — that " +
			"stability IS the constant-factor guarantee. Rounds follow the Θ(log³ n) " +
			"schedule (E9 fits the exponent).",
	}
	epsilons := []float64{0.05, 0.1, 0.2}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for _, eps := range epsilons {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci, trial)
				jobs = append(jobs, sweep.Job{
					Net:       hgraph.Params{N: n, D: 8, Seed: seed},
					Algorithm: core.AlgorithmBasic,
					Epsilon:   eps,
					RunSeed:   seed + 7,
				})
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		for _, eps := range epsilons {
			var agg metrics.Aggregate
			var rmin, rmax float64 = 1e9, 0
			maxPhase := 0
			for trial := 0; trial < sc.Trials; trial++ {
				s := outs[idx].Summary
				idx++
				agg.Add(s)
				if s.RatioMin < rmin {
					rmin = s.RatioMin
				}
				if s.RatioMax > rmax {
					rmax = s.RatioMax
				}
				if s.Phases > maxPhase {
					maxPhase = s.Phases
				}
			}
			t.AddRow(n, eps, agg.CorrectFraction.Mean(), agg.RatioMedian.Mean(),
				formatRange(rmin, rmax), agg.Rounds.Mean(), maxPhase)
		}
	}
	return t
}

// E07Theorem1 is the headline experiment: Algorithm 2 against every
// adversary strategy.
func E07Theorem1(sc Scale) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Theorem 1: Algorithm 2 under attack",
		PaperClaim: "Theorem 1: with up to O(n^{1−δ}) randomly placed Byzantine nodes, all but " +
			"an ε-fraction of honest nodes obtain a constant-factor estimate of log n, " +
			"in Θ(log³ n) rounds, using small messages.",
		Columns: []string{"n", "B(n)", "adversary", "correct fraction", "survivor correct", "crashed", "undecided", "rounds"},
		Notes: "δ = 0.75 (B = n^0.25) keeps the Byzantine G-balls from covering the whole " +
			"graph at laptop n (the G-degree is ~(d−1)^k ≈ 450, a scale effect — " +
			"asymptotically any δ > 3/d works). TopologyLiar/Combo convert their " +
			"audience to crashes (Lemma 15): the survivor-correct column shows no " +
			"surviving node is ever fooled.",
	}
	const delta = 0.75
	advNames := adversary.Names()
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		for ai, name := range advNames {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+ai, trial)
				jobs = append(jobs, sweep.Job{
					Net:       hgraph.Params{N: n, D: 8, Seed: seed},
					Delta:     delta,
					ByzCount:  b,
					PlaceSeed: seed + 0xB12,
					Adversary: name,
					Algorithm: core.AlgorithmByzantine,
					RunSeed:   seed + 0x5EED,
				})
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		for _, name := range advNames {
			var agg metrics.Aggregate
			for trial := 0; trial < sc.Trials; trial++ {
				agg.Add(outs[idx].Summary)
				idx++
			}
			t.AddRow(n, b, name, agg.CorrectFraction.Mean(), agg.SurvivorCorrect.Mean(),
				agg.CrashedFraction.Mean(), agg.Undecided.Mean(), agg.Rounds.Mean())
		}
	}
	return t
}

// E11EpsilonSweep traces the ε knob: smaller ε costs more rounds and
// produces fewer early (wrong) deciders.
func E11EpsilonSweep(sc Scale) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Error parameter ε sweep",
		PaperClaim: "Footnote 3 / Lemma 11: ε controls exactly how large a fraction of honest " +
			"nodes may fail to get a constant-factor estimate; the schedule invests " +
			"α_i ∝ log(1/ε) repetitions to buy it.",
		Columns: []string{"n", "ε", "early deciders (< mode)", "bound ε", "rounds", "subphases phase 3"},
		Notes: "Early deciders = honest nodes deciding strictly below the modal phase, the " +
			"empirical analogue of deciding while i < a log n. The measured fraction " +
			"stays at or below ε while rounds grow as ε shrinks.",
	}
	n := sc.Sizes[len(sc.Sizes)-1]
	epsilons := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	var jobs []sweep.Job
	for ei, eps := range epsilons {
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(ei, trial)
			jobs = append(jobs, sweep.Job{
				Net:       hgraph.Params{N: n, D: 8, Seed: seed},
				Algorithm: core.AlgorithmByzantine,
				Epsilon:   eps,
				RunSeed:   seed + 3,
			})
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for _, eps := range epsilons {
		var early, rounds stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			res := outs[idx].Result
			idx++
			early.Add(earlyDeciderFraction(res))
			rounds.Add(float64(res.Rounds))
		}
		sched := core.Schedule{D: 8, Epsilon: eps}
		t.AddRow(n, eps, early.Mean(), eps, rounds.Mean(), sched.Subphases(3))
	}
	return t
}

// earlyDeciderFraction returns the fraction of honest nodes deciding
// strictly below the modal decided phase.
func earlyDeciderFraction(res *core.Result) float64 {
	counts := map[int32]int{}
	for v := 0; v < res.N; v++ {
		if e := res.Estimates[v]; e > 0 && !res.Byzantine[v] {
			counts[e]++
		}
	}
	var mode int32
	for e, c := range counts {
		if c > counts[mode] {
			mode = e
		}
	}
	early, honest := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Byzantine[v] {
			continue
		}
		honest++
		if e := res.Estimates[v]; e > 0 && e < mode {
			early++
		}
	}
	if honest == 0 {
		return 0
	}
	return float64(early) / float64(honest)
}

func formatRange(lo, hi float64) string {
	return fmt.Sprintf("%.3g..%.3g", lo, hi)
}
