package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// E20FrontierOccupancy quantifies the quiescence the frontier round
// engine exploits: the fraction of node-rounds actually stepped in each
// phase, on clean runs and under the Inflate attack. Clean floods
// stabilize once the subphase maximum has propagated — late phases go
// quiet and the engine skips most of the network — while Inflate's
// ever-increasing injections re-dirty receivers every round, so the
// attack is also a worst case for frontier scheduling. Runs through the
// sweep scheduler like every protocol experiment.
func E20FrontierOccupancy(sc Scale) *Table {
	t := &Table{
		ID:    "E20",
		Title: "Frontier round-engine occupancy",
		PaperClaim: "Engine-level extension (no paper claim): the protocol's flooding is a " +
			"repeated max-flood, so within an i-round subphase node state quiesces once " +
			"the flood has propagated — typically within the graph diameter, long " +
			"before round i in late phases. The frontier engine steps only nodes " +
			"whose inputs changed; occupancy is the fraction it could not skip.",
		Columns: []string{"n", "adversary", "phase", "mean occupancy", "trials"},
		Notes: "Occupancy 1.0 means every node was stepped every round (the dense-loop " +
			"cost); the engine's win on a phase is roughly 1/occupancy. Early phases " +
			"run at ~1: subphases are shorter than the flood's stabilization time, so " +
			"there is nothing to skip — the saturation bail keeps those rounds at " +
			"dense-loop cost. The final phases dip as deciders stop generating fresh " +
			"colors. Under Inflate the injected colors strictly increase every round, " +
			"keeping receivers dirty: occupancy stays pinned high, the engine's " +
			"designed worst case (Results are byte-identical either way; only cost " +
			"changes). The high-phase regime where occupancy collapses to ~0.2 is " +
			"benchmarked by core/run-hiphase in BENCH_core.json.",
	}
	advs := []struct {
		name  string
		delta float64
	}{
		{"none", 0},
		{"inflate", 0.75},
	}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for ai, a := range advs {
			b := 0
			if a.delta > 0 {
				b = hgraph.ByzantineBudget(n, a.delta)
			}
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+ai, trial)
				jobs = append(jobs, sweep.Job{
					Net:             hgraph.Params{N: n, D: 8, Seed: seed},
					Delta:           a.delta,
					ByzCount:        b,
					PlaceSeed:       seed + 0xB20,
					Adversary:       a.name,
					Algorithm:       core.AlgorithmByzantine,
					RunSeed:         seed + 0x5EED,
					RecordOccupancy: true,
				})
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		for _, a := range advs {
			var perPhase []stats.Online
			for trial := 0; trial < sc.Trials; trial++ {
				occ := outs[idx].Summary.FrontierOccupancy
				idx++
				for p, f := range occ {
					if p >= len(perPhase) {
						perPhase = append(perPhase, make([]stats.Online, p+1-len(perPhase))...)
					}
					perPhase[p].Add(f)
				}
			}
			for p := range perPhase {
				if perPhase[p].N() == 0 {
					continue
				}
				t.AddRow(n, a.name, p+1, perPhase[p].Mean(), fmt.Sprint(perPhase[p].N()))
			}
		}
	}
	return t
}
