package expt

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// E08Baselines is the "who wins" table: every non-Byzantine-tolerant
// estimator collapses under a single Byzantine node, while Algorithm 2
// absorbs n^{1−δ} of them.
func E08Baselines(sc Scale) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Baselines vs Algorithm 2 under Byzantine faults",
		PaperClaim: "§1.2: the geometric-max protocol (and support estimation, and " +
			"tree counting) fail when even one Byzantine node is present; hence a new " +
			"protocol is needed.",
		Columns: []string{"protocol", "Byzantine nodes", "correct fraction", "notes"},
		Notes: "Correct = estimate of log₂ n within the default constant band. One faker " +
			"zeroes out every baseline; Algorithm 1 (no verification) is kept alive forever " +
			"by the full-information adversary; Algorithm 2 holds the Theorem 1 guarantee.",
	}
	n := sc.Sizes[len(sc.Sizes)-1]
	seed := sc.seedFor(0, 0)
	net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: seed})
	band := metrics.DefaultBand

	one := make([]bool, n)
	one[n/3] = true
	bBudget := hgraph.ByzantineBudget(n, 0.75)
	many := hgraph.PlaceByzantine(n, bBudget, rng.New(seed+5))

	// GeoMax.
	honest := baseline.GeoMax(net.H, nil, 0, seed+1)
	t.AddRow("GeoMax (§1.2)", 0, honest.CorrectFraction(n, nil, band.Lo, band.Hi), "all nodes share the true max")
	attacked := baseline.GeoMax(net.H, one, 1<<40, seed+2)
	t.AddRow("GeoMax (§1.2)", 1, attacked.CorrectFraction(n, one, band.Lo, band.Hi), "one faked max poisons everyone")

	// Support estimation.
	se := baseline.SupportEstimation(net.H, nil, 64, false, seed+3)
	t.AddRow("Support estimation [6,4]", 0, se.CorrectFraction(n, nil, band.Lo, band.Hi), "s = 64 exponentials")
	seBad := baseline.SupportEstimation(net.H, one, 64, true, seed+4)
	t.AddRow("Support estimation [6,4]", 1, seBad.CorrectFraction(n, one, band.Lo, band.Hi), "zero minima inflate n̂ unboundedly")

	// Tree count.
	tc := baseline.TreeCount(net.H, nil, 0, 0)
	t.AddRow("BFS-tree count (oracle leader)", 0, tc.CorrectFraction(n, nil, band.Lo, band.Hi), "exact when honest")
	tcBad := baseline.TreeCount(net.H, one, 0, 1<<40)
	t.AddRow("BFS-tree count (oracle leader)", 1, tcBad.CorrectFraction(n, one, band.Lo, band.Hi), "one inflated subtree count")

	// Algorithm 1 under attack; both protocol runs share one arena (same
	// network, so the topology tables carry over too).
	arena := core.NewWorld()
	defer arena.Close()
	res1, err := arena.Run(net, many, &adversary.Inflate{}, core.Config{
		Algorithm: core.AlgorithmBasic, Seed: seed + 6, MaxPhase: 14,
	})
	if err != nil {
		panic(err)
	}
	s1 := metrics.Summarize(res1, band)
	t.AddRow("Algorithm 1 (no verification)", bBudget, s1.CorrectFraction,
		fmt.Sprintf("%d/%d never terminate (capped at phase 14)", s1.Undecided, s1.Honest))

	// Algorithm 2 under the same attack.
	res2, err := arena.Run(net, many, &adversary.Inflate{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: seed + 6,
	})
	if err != nil {
		panic(err)
	}
	s2 := metrics.Summarize(res2, band)
	t.AddRow("Algorithm 2 (this paper)", bBudget, s2.CorrectFraction,
		fmt.Sprintf("median ratio %.2f, %d rounds", s2.RatioMedian, s2.Rounds))
	return t
}

// E09Complexity fits the round bound and audits message sizes.
func E09Complexity(sc Scale) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Round complexity Θ(log³ n) and message sizes",
		PaperClaim: "Theorem 1: the protocol runs in Θ(log³ n) rounds; every message carries a " +
			"constant number of IDs plus O(log n) bits; per-round computation is small.",
		Columns: []string{"n", "log₂ n", "rounds (mean)", "schedule prediction", "max msg bits", "bits/node/round"},
		Notes:   "", // filled with the fit below
	}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(ci, trial)
			jobs = append(jobs, sweep.Job{
				Net:       hgraph.Params{N: n, D: 8, Seed: seed},
				Algorithm: core.AlgorithmByzantine,
				RunSeed:   seed + 0x5EED,
			})
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	var xs, ys []float64
	var maxBits int64
	for _, n := range sc.Sizes {
		var rounds, bitsPer stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			s := outs[idx].Summary
			idx++
			rounds.Add(float64(s.Rounds))
			bitsPer.Add(s.BitsPerNodeRound)
			if s.MaxMessageBits > maxBits {
				maxBits = s.MaxMessageBits
			}
		}
		sched := core.Schedule{D: 8, Epsilon: 0.1}
		// Prediction: rounds through the typical decision phase
		// (≈ diameter of H ≈ log n / log(d−1)).
		predPhase := int(float64(ilog2(n))/2.807) + 2
		xs = append(xs, float64(n))
		ys = append(ys, rounds.Mean())
		t.AddRow(n, ilog2(n), rounds.Mean(), sched.RoundsThrough(predPhase), maxBits, bitsPer.Mean())
	}
	if len(xs) >= 3 {
		p, c, r2 := stats.FitPolyLog(xs, ys)
		// The asymptotic exponent of the schedule itself, free of the
		// laptop-scale additive constant in the decision phase
		// (decision ≈ 0.36·log₂ n + O(1); the O(1) flattens raw fits).
		sched := core.Schedule{D: 8, Epsilon: 0.1}
		var sx, sy []float64
		for i := 10; i <= 60; i += 5 {
			sx = append(sx, float64(i))
			sy = append(sy, float64(sched.RoundsThrough(i)))
		}
		sp, _, sr2 := stats.FitPowerLaw(sx, sy)
		t.Notes = fmt.Sprintf(
			"Measured rounds ≈ %.3g·(log₂ n)^%.2f (R² = %.3f). The raw laptop-scale "+
				"exponent is depressed by the O(1) additive term in the decision phase "+
				"(≈ 0.36·log₂ n + 2); the schedule itself — which measured rounds match "+
				"column-for-column — is Θ(I^%.2f) in the decision phase I (R² = %.3f), "+
				"i.e. the paper's Θ(log³ n). Max message stays a few IDs + O(log n) bits.",
			c, p, r2, sp, sr2)
	}
	return t
}

func ilog2(n int) int {
	l := 0
	for x := n; x > 1; x >>= 1 {
		l++
	}
	return l
}
