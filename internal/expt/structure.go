package expt

import (
	"fmt"
	"math"

	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// E01LocallyTreeLike measures the fraction of locally tree-like nodes in
// H(n,d) against Lemma 1's n − O(n^0.8) envelope.
func E01LocallyTreeLike(sc Scale) *Table {
	t := &Table{
		ID:         "E1",
		Title:      "Locally tree-like nodes in H(n,d)",
		PaperClaim: "Lemma 1/21: w.h.p. at least n − O(n^0.8) nodes of H(n,d) are locally tree-like.",
		Columns:    []string{"n", "d", "radius r", "LTL fraction", "non-LTL count", "n^0.8 envelope"},
		Notes: "At the paper's radius formula r = log n/(10 log d) (clamped to ≥ 1) the " +
			"non-LTL count is driven by parallel edges and in-ball cross edges, Θ(d²) " +
			"in expectation per unit ball — comfortably inside the n^0.8 envelope, and " +
			"the fraction rises with n as the lemma requires.",
	}
	const d = 8
	for ci, n := range sc.Sizes {
		var frac, bad stats.Online
		r := hgraph.LTLRadius(n, d)
		for trial := 0; trial < sc.Trials; trial++ {
			h := hgraph.GenerateH(n, d, rng.New(sc.seedFor(ci, trial)))
			_, count := hgraph.LocallyTreeLike(h, r)
			frac.Add(float64(count) / float64(n))
			bad.Add(float64(n - count))
		}
		t.AddRow(n, d, r, frac.Mean(), bad.Mean(), math.Pow(float64(n), 0.8))
	}
	return t
}

// E02Expansion measures the spectral gap and edge expansion of H(n,d)
// against the Friedman/Ramanujan reference (Lemma 19).
func E02Expansion(sc Scale) *Table {
	t := &Table{
		ID:         "E2",
		Title:      "Expansion of H(n,d)",
		PaperClaim: "Lemma 19 (Friedman): H(n,d) is an expander w.h.p., near-Ramanujan: λ ≈ 2√(d−1)/d.",
		Columns:    []string{"n", "d", "λ (measured)", "2√(d−1)/d (ref)", "spectral gap", "edge expansion h", "mix bound (rounds)"},
		Notes: "λ is the largest non-trivial eigenvalue magnitude of the normalized adjacency " +
			"operator (power iteration); h is a sweep-cut upper bound on the minimum edge " +
			"expansion. The protocol's b log n bound uses h through Observation 7.",
	}
	for _, d := range []int{8, 12, 16} {
		for ci, n := range sc.Sizes {
			var lam, gap, h, mix stats.Online
			var ref float64
			for trial := 0; trial < sc.Trials; trial++ {
				hg := hgraph.GenerateH(n, d, rng.New(sc.seedFor(ci*100+d, trial)))
				m := spectral.Measure(hg, spectral.Options{})
				lam.Add(m.Lambda)
				gap.Add(m.Gap)
				h.Add(m.EdgeExpansion)
				mix.Add(m.MixingBound)
				ref = m.RamanujanRef
			}
			t.AddRow(n, d, lam.Mean(), ref, gap.Mean(), h.Mean(), mix.Mean())
		}
	}
	return t
}

// E03SmallWorld contrasts H, G = H∪L and Watts–Strogatz: clustering
// coefficient (the small-world property the protocol exploits) and
// diameter (which must stay Θ(log n)).
func E03SmallWorld(sc Scale) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Small-world structure: H vs G = H∪L vs Watts–Strogatz",
		PaperClaim: "§2.1: adding the lattice edges L makes G a small-world network — high " +
			"clustering coefficient on top of H's expander structure — while H alone has " +
			"vanishing clustering. (Watts–Strogatz is the inspiration but has unbounded degrees.)",
		Columns: []string{"n", "graph", "avg clustering", "diameter (2-sweep LB)", "max degree"},
		Notes: "G's clustering stays bounded away from 0 as n grows (every node's k/2-ball is a " +
			"clique-ish neighborhood), while H's decays like d/n. Diameters all grow " +
			"logarithmically. WS(k=4, β=0.1) shown for reference.",
	}
	for ci, n := range sc.Sizes {
		seed := sc.seedFor(ci, 0)
		net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: seed})
		ws := hgraph.WattsStrogatz(n, 4, 0.1, rng.New(seed+7))
		t.AddRow(n, "H(n,8)", net.H.AvgClustering(), net.H.DiameterLowerBound(4), net.H.Degrees().Max)
		t.AddRow(n, fmt.Sprintf("G (k=%d)", net.K), net.G.AvgClustering(), net.G.DiameterLowerBound(4), net.G.Degrees().Max)
		t.AddRow(n, "WS(4, 0.1)", ws.AvgClustering(), ws.DiameterLowerBound(4), ws.Degrees().Max)
	}
	return t
}
