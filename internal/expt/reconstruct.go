package expt

import (
	"math"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// E04Reconstruction measures the Lemma 3 derivation: the fraction of nodes
// that recover their H-neighborhood exactly from G-adjacency alone. The
// derivation is exact iff the radius-2k ball is shortcut-free, so the
// experiment uses d = 4 (k = 2) where that event is laptop-observable, and
// sweeps n to show the success probability approaching 1.
func E04Reconstruction(sc Scale) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Lemma 3: deriving H from G-adjacency",
		PaperClaim: "Lemma 3: an honest node with no Byzantine neighbor in G can faithfully " +
			"reconstruct the H-topology of its k-ball from its G-neighbors' adjacency lists.",
		Columns: []string{"n", "d", "k", "sampled nodes", "exact derivations", "success fraction", "2k-ball tree-free prob (est)"},
		Notes: "Derivation uses the paper's subset rules over closed neighborhoods. Success " +
			"requires the 2k-ball to be tree-like (intersection witnesses can travel up to " +
			"2k hops), so the success probability is ≈ (1 − c/n)^{|B(v,2k)|²} → 1. " +
			"The protocol engine itself uses the claims-based exchange (DESIGN.md §1), " +
			"which Lemma 15 shows is outcome-equivalent.",
	}
	const d, samples = 4, 200
	sizes := []int{20000, 60000, 180000}
	// One derivation arena across every sampled node: the membership
	// vectors and intersection slab are reused per call instead of
	// reallocated (this loop runs the Lemma 3 derivation hundreds of
	// times per generated network).
	deriver := core.NewDeriver()
	for ci, n := range sizes {
		var succ stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			net := hgraph.MustNew(hgraph.Params{N: n, D: d, Seed: sc.seedFor(ci, trial)})
			src := rng.New(sc.seedFor(ci, trial) + 101)
			matched := 0
			for s := 0; s < samples; s++ {
				v := src.Intn(n)
				ball := deriver.DeriveHFromG(net.G, v, net.K)
				if core.DerivationMatches(net.H, v, ball) {
					matched++
				}
			}
			succ.Add(float64(matched) / samples)
		}
		// Rough analytic reference: ball(2k) for d=4,k=2 has ~161 nodes;
		// shortcut probability ≈ 161²·(d-1)/n.
		ball2k := 161.0
		ref := math.Max(0, 1-ball2k*ball2k*float64(d-1)/float64(n))
		t.AddRow(n, d, 2, samples*sc.Trials, int(succ.Mean()*samples*float64(sc.Trials)), succ.Mean(), ref)
	}
	return t
}

// E05ByzantineChains measures Observation 6: the probability that randomly
// placed Byzantine nodes form a k-node chain in H, versus the union bound
// n·d^{k−1}·n^{−kδ}.
func E05ByzantineChains(sc Scale) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Observation 6: all-Byzantine k-chains",
		PaperClaim: "Observation 6: with B(n) = n^{1−δ} randomly placed Byzantine nodes and " +
			"kδ > 1, w.h.p. H contains no k-node all-Byzantine path.",
		Columns: []string{"n", "δ", "B(n)", "trials", "chains ≥ k", "empirical P", "union bound n·d^{k−1}·n^{−kδ}"},
		Notes: "k = ⌈d/3⌉ = 3 at d = 8. The union bound needs kδ > 1 (δ > 1/3); at δ = 0.4 " +
			"the bound is weak at laptop n (it exceeds 1) and chains do occasionally appear — " +
			"exactly the regime the paper's asymptotics warn about; by δ = 0.7 chains vanish.",
	}
	const d = 8
	k := hgraph.DefaultK(d)
	chainTrials := sc.Trials * 10
	for ci, n := range sc.Sizes {
		for di, delta := range []float64{0.4, 0.5, 0.7} {
			b := hgraph.ByzantineBudget(n, delta)
			hits := 0
			for trial := 0; trial < chainTrials; trial++ {
				seed := sc.seedFor(ci*10+di, trial)
				h := hgraph.GenerateH(n, d, rng.New(seed))
				byz := hgraph.PlaceByzantine(n, b, rng.New(seed+13))
				if hgraph.LongestByzantineChain(h, byz, k) >= k {
					hits++
				}
			}
			bound := float64(n) * math.Pow(float64(d), float64(k-1)) * math.Pow(float64(n), -float64(k)*delta)
			t.AddRow(n, delta, b, chainTrials, hits, float64(hits)/float64(chainTrials), math.Min(1, bound))
		}
	}
	return t
}
