package expt

import (
	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// E13Placement probes the paper's open problem: what happens when the
// Byzantine nodes are NOT randomly placed. Clustered placement
// manufactures the k-node Byzantine chains Observation 6 excludes,
// re-opening mid-subphase injection; spread placement is even more benign
// than random.
func E13Placement(sc Scale) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Extension: adversarial Byzantine placement (open problem §4)",
		PaperClaim: "The paper assumes randomly distributed Byzantine nodes and poses removing " +
			"that assumption as an open problem. This experiment measures exactly where " +
			"the assumption binds.",
		Columns: []string{"n", "B(n)", "placement", "byz chain", "entries past k−1", "undecided frac", "correct fraction"},
		Notes: "Attack: ChainFaker (mid-subphase injection with fabricated attestation). " +
			"Spread placement has no k-chains, verification rejects everything, and the " +
			"protocol is untouched. Clustered placement always creates k-chains, the " +
			"fabricated attestations go through, and the injections keep most honest " +
			"nodes active forever — the random-placement assumption is load-bearing, not " +
			"an artifact of the analysis. Random placement at δ = 0.5 sits exactly at " +
			"the boundary at laptop n (cf. E5: chains appear in a constant fraction of " +
			"instances, vanishing as n grows or δ rises), and the correct fraction " +
			"tracks the chain probability. The adaptive placements sharpen the point: " +
			"chain-seeking (self-avoiding walks) matches clustered with fewer wasted " +
			"nodes, and degree-targeted (maximum radius-k audience) shows that reach " +
			"alone, without adjacency, does not re-open the channel.",
	}
	const delta = 0.5
	k := hgraph.DefaultK(8)
	placements := hgraph.Placements()
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		for pi, placement := range placements {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+pi, trial)
				jobs = append(jobs, sweep.Job{
					Net:                hgraph.Params{N: n, D: 8, Seed: seed},
					Delta:              delta,
					ByzCount:           b,
					Placement:          placement.Name,
					PlaceSeed:          seed + 17,
					Adversary:          "chain-faker",
					Algorithm:          core.AlgorithmByzantine,
					InjectionThreshold: adversary.InjectBase,
					MaxPhase:           14,
					RunSeed:            seed + 19,
				})
			}
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for _, n := range sc.Sizes {
		b := hgraph.ByzantineBudget(n, delta)
		for _, placement := range placements {
			var chain, lateEntries, undecided, correct stats.Online
			for trial := 0; trial < sc.Trials; trial++ {
				out := outs[idx]
				idx++
				chain.Add(float64(hgraph.LongestByzantineChain(out.Net.H, out.Byz, k+3)))
				late := 0
				for round, count := range out.Result.InjectionEntryRounds {
					if round > k-1 {
						late += count
					}
				}
				lateEntries.Add(float64(late))
				s := out.Summary
				undecided.Add(float64(s.Undecided) / float64(s.Honest))
				correct.Add(s.CorrectFraction)
			}
			t.AddRow(n, b, placement.Name, chain.Mean(), lateEntries.Mean(), undecided.Mean(), correct.Mean())
		}
	}
	return t
}

// E15Churn injects mid-run crash failures: the protocol should keep its
// guarantee for the surviving nodes (the Core analysis is robust to node
// loss as long as the remainder stays an expander).
func E15Churn(sc Scale) *Table {
	t := &Table{
		ID:    "E15",
		Title: "Extension: crash churn during the run",
		PaperClaim: "Beyond the paper (which models crashes only at the exchange): random " +
			"crash failures strike mid-run. Related dynamic-network work ([5], [6]) is " +
			"the motivation; the surviving subgraph stays an expander w.h.p., so " +
			"estimation should survive.",
		Columns: []string{"n", "churn fraction", "crashed", "survivor correct", "undecided", "rounds"},
		Notes: "Victims crash-fail at the start of random phases 2..6. Survivor accuracy " +
			"holds through 10%+ node loss; estimates shift by at most one phase because " +
			"flooding routes around the losses on the remaining expander.",
	}
	fracs := []float64{0, 0.02, 0.05, 0.10}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for fi, frac := range fracs {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+fi, trial)
				jobs = append(jobs, sweep.Job{
					Net:          hgraph.Params{N: n, D: 8, Seed: seed},
					Algorithm:    core.AlgorithmByzantine,
					RunSeed:      seed + 23,
					ChurnCrashes: int(frac * float64(n)),
					ChurnSeed:    seed + 29,
				})
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		for _, frac := range fracs {
			var crashed, survivorCorrect, undecided, rounds stats.Online
			for trial := 0; trial < sc.Trials; trial++ {
				s := outs[idx].Summary
				idx++
				crashed.Add(float64(s.Crashed))
				survivorCorrect.Add(s.SurvivorCorrectFraction)
				undecided.Add(float64(s.Undecided))
				rounds.Add(float64(s.Rounds))
			}
			t.AddRow(n, frac, crashed.Mean(), survivorCorrect.Mean(), undecided.Mean(), rounds.Mean())
		}
	}
	return t
}

// E16DegreeTradeoff validates §2.1's robustness claim: larger d means
// larger k = ⌈d/3⌉, which means fabricated chains need more Byzantine
// nodes, which makes the same Byzantine budget strictly less dangerous.
func E16DegreeTradeoff(sc Scale) *Table {
	t := &Table{
		ID:    "E16",
		Title: "Ablation: degree d vs robustness",
		PaperClaim: "§2.1: \"Larger the degree d, larger will be k, and large will be the " +
			"robustness to Byzantine nodes, i.e., up to O(n^{1−δ}) Byzantine nodes can be " +
			"tolerated where 3/d < δ ≤ 1.\"",
		Columns: []string{"n", "d", "k", "B(n)", "P(chain ≥ k)", "entries past k−1", "correct fraction", "rounds"},
		Notes: "Attack: ChainFaker at δ = 0.5 (a budget that produces k-chains regularly at " +
			"d = 8, k = 3). The mechanism is the k-jump: moving to k = 4 (d ≥ 10) makes a " +
			"fabricated chain need one more Byzantine node, multiplying its probability " +
			"by B/n = n^{−δ}. Two laptop-scale caveats the asymptotics hide: the union " +
			"bound also carries a d^{k−1} path-count factor (so d = 12 is slightly worse " +
			"than d = 10 at the same k), and at these n the bound is Θ(1) for δ = 0.5 — " +
			"the chains column shows the empirical probabilities, the correct-fraction " +
			"column what each surviving chain costs.",
	}
	n := sc.Sizes[len(sc.Sizes)-1]
	const delta = 0.5
	b := hgraph.ByzantineBudget(n, delta)
	chainTrials := sc.Trials * 6
	degrees := []int{8, 10, 12}
	var jobs []sweep.Job
	for di, d := range degrees {
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(di*7+3, trial)
			jobs = append(jobs, sweep.Job{
				Net:                hgraph.Params{N: n, D: d, Seed: seed},
				Delta:              delta,
				ByzCount:           b,
				PlaceSeed:          seed + 41,
				Adversary:          "chain-faker",
				Algorithm:          core.AlgorithmByzantine,
				InjectionThreshold: adversary.InjectBase,
				MaxPhase:           14,
				RunSeed:            seed + 43,
			})
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for di, d := range degrees {
		k := hgraph.DefaultK(d)
		// Chain probability across many placements.
		chains := 0
		for trial := 0; trial < chainTrials; trial++ {
			seed := sc.seedFor(di*7, trial)
			h := hgraph.GenerateH(n, d, rng.New(seed))
			byz := hgraph.PlaceByzantine(n, b, rng.New(seed+41))
			if hgraph.LongestByzantineChain(h, byz, k) >= k {
				chains++
			}
		}
		// Protocol under ChainFaker.
		var late, correct, rounds stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			out := outs[idx]
			idx++
			lateCount := 0
			for round, count := range out.Result.InjectionEntryRounds {
				if round > k-1 {
					lateCount += count
				}
			}
			late.Add(float64(lateCount))
			correct.Add(out.Summary.CorrectFraction)
			rounds.Add(float64(out.Result.Rounds))
		}
		t.AddRow(n, d, k, b, float64(chains)/float64(chainTrials), late.Mean(), correct.Mean(), rounds.Mean())
	}
	return t
}

// E17Composition runs the paper's motivating pipeline: Byzantine counting
// supplies the log n estimate that budgets a downstream almost-everywhere
// majority consensus.
func E17Composition(sc Scale) *Table {
	t := &Table{
		ID:    "E17",
		Title: "Extension: counting as a building block (the §1 motivation)",
		PaperClaim: "§1: \"an efficient protocol for the Byzantine counting problem can serve " +
			"as a pre-processing step for protocols for Byzantine agreement, leader " +
			"election and other problems that either require or assume knowledge of an " +
			"estimate of n.\"",
		Columns: []string{"n", "modal estimate", "consensus rounds (4×est)", "agree w/ budget", "agree w/ 2 rounds"},
		Notes: "Pipeline: Algorithm 2 under the Inflate adversary produces a modal log-n " +
			"estimate; iterated local majority (62% initial bias, same Byzantine nodes " +
			"pushing the minority) runs with a 4×estimate budget versus a blind " +
			"2-round budget. The estimate-derived budget reaches (almost-)everywhere " +
			"agreement at every size; the blind budget degrades as n grows — which is " +
			"why counting matters.",
	}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(ci, trial)
			jobs = append(jobs, sweep.Job{
				Net:       hgraph.Params{N: n, D: 8, Seed: seed},
				Delta:     0.75,
				ByzCount:  hgraph.ByzantineBudget(n, 0.75),
				PlaceSeed: seed + 51,
				Adversary: "inflate",
				Algorithm: core.AlgorithmByzantine,
				RunSeed:   seed + 53,
			})
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for _, n := range sc.Sizes {
		var withBudget, blind, modalEst, budgetRounds stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			out := outs[idx]
			idx++
			res, net, byz := out.Result, out.Net, out.Byz
			seed := out.Job.Net.Seed // == sc.seedFor(ci, trial), as the serial suite used
			counts := map[int32]int{}
			for v := 0; v < n; v++ {
				if e := res.Estimates[v]; e > 0 {
					counts[e]++
				}
			}
			var modal int32
			for e, c := range counts {
				if c > counts[modal] {
					modal = e
				}
			}
			modalEst.Add(float64(modal))
			budget := agreement.RoundsFromEstimate(int(modal))
			budgetRounds.Add(float64(budget))
			initial := agreement.BiasedInitial(n, 0.62, rng.New(seed+55))
			full, err := agreement.Run(net.H, initial, byz, agreement.Config{Rounds: budget, Seed: seed + 57})
			if err != nil {
				panic(err)
			}
			short, err := agreement.Run(net.H, initial, byz, agreement.Config{Rounds: 2, Seed: seed + 57})
			if err != nil {
				panic(err)
			}
			withBudget.Add(full.AgreeFraction)
			blind.Add(short.AgreeFraction)
		}
		t.AddRow(n, modalEst.Mean(), budgetRounds.Mean(), withBudget.Mean(), blind.Mean())
	}
	return t
}

// E14Calibration evaluates the calibrated estimator extension
// ĉ(i) = (i−1)·log₂(d−1): how tightly the rescaled estimates concentrate
// around log₂ n.
func E14Calibration(sc Scale) *Table {
	t := &Table{
		ID:    "E14",
		Title: "Extension: degree-calibrated estimates (open problem §4)",
		PaperClaim: "The paper asks whether the approximation factor can approach 1 ± o(1). " +
			"Rescaling the decided phase by the known degree — ĉ(i) = (i−1)·log₂(d−1) — " +
			"is a heuristic step in that direction (no matching proof).",
		Columns: []string{"n", "raw ratio (median)", "calibrated ratio (median)", "within ±25%", "within ±40%"},
		Notes: "Calibrated ratios concentrate near 1 across the full size sweep, versus raw " +
			"ratios near 1/log₂(d−1) ≈ 0.36. The ±25% column is the fraction of honest " +
			"nodes with calibrated estimate in [0.75, 1.25]·log₂ n.",
	}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for trial := 0; trial < sc.Trials; trial++ {
			seed := sc.seedFor(ci, trial)
			jobs = append(jobs, sweep.Job{
				Net:       hgraph.Params{N: n, D: 8, Seed: seed},
				Algorithm: core.AlgorithmByzantine,
				RunSeed:   seed + 0x5EED,
			})
		}
	}
	outs := runSweep(jobs, true, nil)
	idx := 0
	for _, n := range sc.Sizes {
		var rawMed, calMed, in25, in40 stats.Online
		for trial := 0; trial < sc.Trials; trial++ {
			res := outs[idx].Result
			idx++
			var raw, cal []float64
			good25, good40, honest := 0, 0, 0
			for v := 0; v < n; v++ {
				if res.Byzantine[v] {
					continue
				}
				honest++
				if r, ok := res.Ratio(v); ok {
					raw = append(raw, r)
				}
				if c, ok := res.CalibratedRatio(v); ok {
					cal = append(cal, c)
					if c >= 0.75 && c <= 1.25 {
						good25++
					}
					if c >= 0.6 && c <= 1.4 {
						good40++
					}
				}
			}
			rawMed.Add(stats.Median(raw))
			calMed.Add(stats.Median(cal))
			in25.Add(float64(good25) / float64(honest))
			in40.Add(float64(good40) / float64(honest))
		}
		t.AddRow(n, rawMed.Mean(), calMed.Mean(), in25.Mean(), in40.Mean())
	}
	return t
}
