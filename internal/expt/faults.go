package expt

import (
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// faults.go holds the fault-model experiments E18 (message loss) and E19
// (dynamic join/rejoin churn): the two regimes the pluggable fault layer
// adds beyond the paper's static reliable-network model. Both build their
// job grids in aggregation order and run through the sweep scheduler, so
// the tables are deterministic and identical at any worker count.

// E18MessageLoss measures estimate quality under per-edge message
// omission, with and without a simultaneous Byzantine attack: the
// omission-fault regime Nesterenko & Tixeuil motivate for topology-aware
// protocols, applied here to the flooding rounds.
func E18MessageLoss(sc Scale) *Table {
	t := &Table{
		ID:    "E18",
		Title: "Extension: message loss during flooding",
		PaperClaim: "Beyond the paper (which assumes reliable synchronous links): every " +
			"directed H-edge reception is independently dropped with probability p. " +
			"Flooding reaches each node along many edge-disjoint expander paths, so " +
			"moderate omission should cost at most slowed propagation, not correctness.",
		Columns: []string{"n", "loss p", "adversary", "B(n)", "correct fraction", "undecided", "rounds", "dropped frac"},
		Notes: "Dropped frac = omitted receptions / honest messages sent. Estimates ride " +
			"the subphase maximum, which needs only one surviving path per node per " +
			"subphase; the correct fraction holds through p = 0.1 with rounds drifting " +
			"up as propagation slows by roughly 1/(1−p). Loss composes with the " +
			"Inflate attack (δ = 0.75) without interaction: verification never " +
			"mistakes a dropped message for a Byzantine one. At p = 0.2 the earliest " +
			"subphases start missing nodes and the undecided column begins to move.",
	}
	losses := []float64{0, 0.02, 0.05, 0.1, 0.2}
	advs := []struct {
		name  string
		delta float64
	}{
		{"none", 0},
		{"inflate", 0.75},
	}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for li, loss := range losses {
			for ai, a := range advs {
				b := 0
				if a.delta > 0 {
					b = hgraph.ByzantineBudget(n, a.delta)
				}
				for trial := 0; trial < sc.Trials; trial++ {
					seed := sc.seedFor(ci*100+li*10+ai, trial)
					jobs = append(jobs, sweep.Job{
						Net:       hgraph.Params{N: n, D: 8, Seed: seed},
						Delta:     a.delta,
						ByzCount:  b,
						PlaceSeed: seed + 0xB12,
						Adversary: a.name,
						Algorithm: core.AlgorithmByzantine,
						RunSeed:   seed + 0x5EED,
						LossProb:  loss,
					})
				}
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		for _, loss := range losses {
			for _, a := range advs {
				b := 0
				if a.delta > 0 {
					b = hgraph.ByzantineBudget(n, a.delta)
				}
				var correct, undecided, rounds, dropFrac stats.Online
				for trial := 0; trial < sc.Trials; trial++ {
					s := outs[idx].Summary
					idx++
					correct.Add(s.CorrectFraction)
					undecided.Add(float64(s.Undecided))
					rounds.Add(float64(s.Rounds))
					if s.Messages > 0 {
						dropFrac.Add(float64(s.DroppedMessages) / float64(s.Messages))
					}
				}
				t.AddRow(n, loss, a.name, b, correct.Mean(), undecided.Mean(), rounds.Mean(), dropFrac.Mean())
			}
		}
	}
	return t
}

// E19JoinChurn measures estimate quality under oblivious leave/rejoin
// churn: the dynamic-network regime of the successor paper
// (arXiv:2204.11951), where nodes drop out mid-run and return a few
// phases later expecting the protocol to still deliver them an estimate.
func E19JoinChurn(sc Scale) *Table {
	t := &Table{
		ID:    "E19",
		Title: "Extension: dynamic join/rejoin churn",
		PaperClaim: "Beyond the paper: an oblivious schedule takes a fraction of nodes " +
			"offline at phases 2..6 and returns them after 1–2 phases " +
			"(Byzantine-resilient counting in dynamic networks, arXiv:2204.11951, is " +
			"the motivating regime). Returning nodes must re-converge: the schedule's " +
			"later phases re-run the subphase maximum from scratch, so absentees lose " +
			"nothing but the phases they missed.",
		Columns: []string{"n", "join frac", "rejoined", "still down", "correct fraction", "undecided", "rounds"},
		Notes: "Rejoined = nodes whose leave/rejoin cycle completed; still down = " +
			"scheduled rejoins the run never reached (it ended first) plus cycles " +
			"pre-empted by exchange crashes. Rejoined nodes decide in the phases " +
			"after their return, so the correct fraction (counting every honest node, " +
			"down or not) tracks 1 − (still down)/n rather than 1 − join frac: " +
			"dynamic membership costs availability during the outage, not accuracy " +
			"after it.",
	}
	fracs := []float64{0, 0.05, 0.1, 0.2}
	var jobs []sweep.Job
	for ci, n := range sc.Sizes {
		for fi, frac := range fracs {
			for trial := 0; trial < sc.Trials; trial++ {
				seed := sc.seedFor(ci*10+fi, trial)
				jobs = append(jobs, sweep.Job{
					Net:        hgraph.Params{N: n, D: 8, Seed: seed},
					Algorithm:  core.AlgorithmByzantine,
					RunSeed:    seed + 23,
					FaultModel: "join",
					JoinFrac:   frac,
					ChurnSeed:  seed + 29,
				})
			}
		}
	}
	outs := runSweep(jobs, false, nil)
	idx := 0
	for _, n := range sc.Sizes {
		for _, frac := range fracs {
			var rejoined, down, correct, undecided, rounds stats.Online
			for trial := 0; trial < sc.Trials; trial++ {
				s := outs[idx].Summary
				idx++
				rejoined.Add(float64(s.Rejoins))
				down.Add(float64(s.Crashed))
				correct.Add(s.CorrectFraction)
				undecided.Add(float64(s.Undecided))
				rounds.Add(float64(s.Rounds))
			}
			t.AddRow(n, frac, rejoined.Mean(), down.Mean(), correct.Mean(), undecided.Mean(), rounds.Mean())
		}
	}
	return t
}
