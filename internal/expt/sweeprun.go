package expt

import (
	"repro/internal/core"
	"repro/internal/sweep"
)

// runSweep executes jobs through the sweep scheduler, returning outcomes
// in job order. The experiments build their job lists in the same
// nested-loop order as their aggregation loops, so each experiment's
// folding code stays sequential and its table output stays
// byte-identical — only the protocol runs themselves fan out across
// cores (worker-count independence of each run is guarded by the
// determinism regression test in internal/sweep).
//
// keep retains each job's full Result/Network/Byzantine state on the
// outcome; experiments that fold Summaries alone pass false so the grid
// holds O(1) results in memory instead of O(jobs · n).
//
// Execution cost per job is the arena steady state: each scheduler worker
// reuses one core.World across its jobs, and cache-hit networks carry
// their precomputed topology tables.
func runSweep(jobs []sweep.Job, keep bool, obs func(sweep.Job) core.Observer) []sweep.Outcome {
	outs, err := sweep.Run(jobs, sweep.Options{KeepResults: keep, Observer: obs})
	if err != nil {
		panic(err)
	}
	return outs
}
