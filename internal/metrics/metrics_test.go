package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

// fabricate builds a synthetic Result for unit testing the accounting.
func fabricate() *core.Result {
	// n=8: nodes 0..7; node 0 Byzantine; node 1 crashed; node 2 undecided;
	// nodes 3..7 decided with estimates {3,3,3,1,30} (logN = 3).
	r := &core.Result{
		N:              8,
		LogN:           3,
		Estimates:      []int32{0, 0, 0, 3, 3, 3, 1, 30},
		Crashed:        []bool{false, true, false, false, false, false, false, false},
		Byzantine:      []bool{true, false, false, false, false, false, false, false},
		HonestCount:    7,
		CrashedCount:   1,
		UndecidedCount: 1,
		Rounds:         100,
		Bits:           70000,
		Messages:       900,
		MaxMessageBits: 128,
	}
	r.DecidedAt = make([]int64, 8)
	return r
}

func TestSummarizeCounts(t *testing.T) {
	s := Summarize(fabricate(), Band{Lo: 0.5, Hi: 2.0})
	// Ratios: node 3,4,5 → 1.0 (in band); node 6 → 1/3 (out); node 7 → 10 (out).
	if s.Correct != 3 {
		t.Fatalf("correct = %d, want 3", s.Correct)
	}
	if math.Abs(s.CorrectFraction-3.0/7) > 1e-12 {
		t.Fatalf("fraction = %v, want 3/7", s.CorrectFraction)
	}
	if math.Abs(s.SurvivorCorrectFraction-3.0/6) > 1e-12 {
		t.Fatalf("survivor fraction = %v, want 1/2", s.SurvivorCorrectFraction)
	}
	if s.Crashed != 1 || s.Undecided != 1 {
		t.Fatalf("crashed=%d undecided=%d", s.Crashed, s.Undecided)
	}
	if s.RatioMin != 1.0/3 || s.RatioMax != 10 {
		t.Fatalf("ratio range [%v, %v]", s.RatioMin, s.RatioMax)
	}
	if s.RatioMedian != 1.0 {
		t.Fatalf("ratio median %v", s.RatioMedian)
	}
	// Bits per node-round: 70000 / (7 * 100) = 100.
	if math.Abs(s.BitsPerNodeRound-100) > 1e-9 {
		t.Fatalf("bits/node/round = %v", s.BitsPerNodeRound)
	}
}

func TestAggregate(t *testing.T) {
	var agg Aggregate
	s := Summarize(fabricate(), DefaultBand)
	agg.Add(s)
	agg.Add(s)
	if agg.Trials != 2 {
		t.Fatalf("trials = %d", agg.Trials)
	}
	if agg.CorrectFraction.Mean() != s.CorrectFraction {
		t.Fatalf("agg mean %v vs %v", agg.CorrectFraction.Mean(), s.CorrectFraction)
	}
	if agg.MaxMsgBits != 128 {
		t.Fatalf("max bits %d", agg.MaxMsgBits)
	}
}

func TestSummarizeRealRun(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 512, D: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(net, nil, nil, core.Config{Algorithm: core.AlgorithmBasic, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res, DefaultBand)
	if s.CorrectFraction < 0.9 {
		t.Fatalf("real run correct fraction %v", s.CorrectFraction)
	}
	if s.RatioMin <= 0 || s.RatioMax < s.RatioMin {
		t.Fatalf("ratio range [%v, %v]", s.RatioMin, s.RatioMax)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummarizeEmptyHonest(t *testing.T) {
	r := &core.Result{
		N:         1,
		LogN:      0,
		Estimates: []int32{0},
		Crashed:   []bool{false},
		Byzantine: []bool{true},
	}
	r.DecidedAt = []int64{0}
	s := Summarize(r, DefaultBand)
	if s.CorrectFraction != 0 || s.SurvivorCorrectFraction != 0 {
		t.Fatal("degenerate run should report zeros")
	}
}
