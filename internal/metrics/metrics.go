// Package metrics turns raw protocol results into the quantities the
// paper's claims are stated in: the fraction of honest nodes holding a
// constant-factor estimate of log n, the spread of estimate ratios, round
// and message totals, and aggregates across independent trials.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// Band is an acceptance interval for estimate/log₂(n) ratios: a node is
// "correct" (Definition 1) if its ratio lies in [Lo, Hi].
type Band struct{ Lo, Hi float64 }

// DefaultBand is the constant-factor band used throughout the experiments.
// The empirical ratio concentrates near 1/log₂(d−1) ≈ 0.36 at d = 8; the
// band is deliberately generous — what matters is that it is FIXED across
// all n (a constant factor), which experiment E6/E7 verify by tracking the
// ratio itself.
var DefaultBand = Band{Lo: 0.15, Hi: 3.0}

// Summary condenses one protocol run.
type Summary struct {
	N    int
	LogN float64

	Honest    int
	Crashed   int
	Undecided int
	Correct   int // honest nodes in band (crashed/undecided count against)

	// CorrectFraction = Correct / Honest: the Theorem 1 quantity.
	CorrectFraction float64
	// SurvivorCorrectFraction = Correct / (Honest − Crashed): accuracy among
	// nodes that did not shut down (Lemma 15 guarantees crashes, not fooling).
	SurvivorCorrectFraction float64

	RatioMin, RatioMax, RatioMedian, RatioMean float64

	Rounds         int64
	Phases         int
	Messages       int64
	Bits           int64
	MaxMessageBits int64

	// Rejoins counts nodes brought back by join/rejoin churn;
	// DroppedMessages counts receptions omitted by message loss. Zero
	// (and absent from stored JSON) without the corresponding fault
	// model, so pre-fault-model store records stay compatible.
	Rejoins         int   `json:"rejoins,omitempty"`
	DroppedMessages int64 `json:"dropped_messages,omitempty"`
	// FrontierOccupancy is the per-phase fraction of node-rounds the
	// round engine stepped (experiment E20). Absent unless the run
	// recorded it, keeping older store records compatible.
	FrontierOccupancy []float64 `json:"frontier_occupancy,omitempty"`
	// BitsPerNodeRound normalizes communication: total bits over honest
	// nodes and rounds.
	BitsPerNodeRound float64
}

// Summarize computes the Summary of r under band.
func Summarize(r *core.Result, band Band) Summary {
	s := Summary{
		N:               r.N,
		LogN:            r.LogN,
		Honest:          r.HonestCount,
		Crashed:         r.CrashedCount,
		Undecided:       r.UndecidedCount,
		Rounds:          r.Rounds,
		Phases:          r.Phases,
		Messages:        r.Messages,
		Bits:            r.Bits,
		MaxMessageBits:  r.MaxMessageBits,
		Rejoins:         r.Rejoins,
		DroppedMessages: r.DroppedMessages,
	}
	if len(r.FrontierOccupancy) > 0 {
		s.FrontierOccupancy = append([]float64(nil), r.FrontierOccupancy...)
	}
	var ratios []float64
	for v := 0; v < r.N; v++ {
		// Crashed nodes are never "correct": even if they decided before
		// crashing (possible under churn), they are no longer part of the
		// live system the guarantee speaks about.
		if r.Byzantine[v] || r.Crashed[v] {
			continue
		}
		ratio, ok := r.Ratio(v)
		if !ok {
			continue
		}
		ratios = append(ratios, ratio)
		if ratio >= band.Lo && ratio <= band.Hi {
			s.Correct++
		}
	}
	if s.Honest > 0 {
		s.CorrectFraction = float64(s.Correct) / float64(s.Honest)
	}
	if survivors := s.Honest - s.Crashed; survivors > 0 {
		s.SurvivorCorrectFraction = float64(s.Correct) / float64(survivors)
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		s.RatioMin = ratios[0]
		s.RatioMax = ratios[len(ratios)-1]
		s.RatioMedian = stats.Median(ratios)
		s.RatioMean = stats.Mean(ratios)
	}
	if s.Honest > 0 && r.Rounds > 0 {
		s.BitsPerNodeRound = float64(r.Bits) / (float64(s.Honest) * float64(r.Rounds))
	}
	return s
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d correct=%.3f (survivors %.3f) crashed=%d undecided=%d ratio[med %.2f, %.2f..%.2f] rounds=%d",
		s.N, s.CorrectFraction, s.SurvivorCorrectFraction, s.Crashed, s.Undecided,
		s.RatioMedian, s.RatioMin, s.RatioMax, s.Rounds)
}

// Aggregate accumulates summaries across independent trials.
type Aggregate struct {
	Trials          int
	CorrectFraction stats.Online
	SurvivorCorrect stats.Online
	CrashedFraction stats.Online
	Undecided       stats.Online
	RatioMedian     stats.Online
	Rounds          stats.Online
	Messages        stats.Online
	BitsPerNodeRnd  stats.Online
	MaxMsgBits      int64
}

// Merge folds b's accumulated trials into a, as if every Summary Added to
// b had been Added to a (up to floating-point reassociation). Sweep
// aggregation uses it to combine per-cell aggregates into totals.
func (a *Aggregate) Merge(b Aggregate) {
	a.Trials += b.Trials
	a.CorrectFraction.Merge(b.CorrectFraction)
	a.SurvivorCorrect.Merge(b.SurvivorCorrect)
	a.CrashedFraction.Merge(b.CrashedFraction)
	a.Undecided.Merge(b.Undecided)
	a.RatioMedian.Merge(b.RatioMedian)
	a.Rounds.Merge(b.Rounds)
	a.Messages.Merge(b.Messages)
	a.BitsPerNodeRnd.Merge(b.BitsPerNodeRnd)
	if b.MaxMsgBits > a.MaxMsgBits {
		a.MaxMsgBits = b.MaxMsgBits
	}
}

// Add incorporates one run's summary.
func (a *Aggregate) Add(s Summary) {
	a.Trials++
	a.CorrectFraction.Add(s.CorrectFraction)
	a.SurvivorCorrect.Add(s.SurvivorCorrectFraction)
	if s.Honest > 0 {
		a.CrashedFraction.Add(float64(s.Crashed) / float64(s.Honest))
		a.Undecided.Add(float64(s.Undecided) / float64(s.Honest))
	}
	a.RatioMedian.Add(s.RatioMedian)
	a.Rounds.Add(float64(s.Rounds))
	a.Messages.Add(float64(s.Messages))
	a.BitsPerNodeRnd.Add(s.BitsPerNodeRound)
	if s.MaxMessageBits > a.MaxMsgBits {
		a.MaxMsgBits = s.MaxMessageBits
	}
}
