// Package stats provides the small statistical toolkit used by the
// experiment harness: online moments, quantiles, histograms, least-squares
// fits in log space (for round-complexity exponents), and binomial
// confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// Merge folds other into o, producing the same moments as if every
// observation Added to other had been Added to o directly (up to
// floating-point reassociation). This is the parallel-combine step of
// Chan et al.'s variance formula; the sweep aggregator uses it to fold
// per-cell aggregates into grand totals.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	o.mean += delta * n2 / (n1 + n2)
	o.m2 += other.m2 + delta*delta*n1*n2/(n1+n2)
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}

// N returns the number of samples.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean (0 for no samples).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 for < 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample (0 for no samples).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 for no samples).
func (o *Online) Max() float64 { return o.max }

// StdErr returns the standard error of the mean.
func (o *Online) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return o.Std() / math.Sqrt(float64(o.n))
}

// String renders "mean ± stderr".
func (o *Online) String() string {
	return fmt.Sprintf("%.4g ± %.2g", o.Mean(), o.StdErr())
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram counts samples into uniform-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Under    int // samples below Min
	Over     int // samples above Max
}

// NewHistogram creates a histogram with bins uniform bins over [min, max].
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		bin := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
		if bin == len(h.Counts) {
			bin--
		}
		h.Counts[bin]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FitPowerLaw fits y ≈ c · x^p by least squares in log-log space and
// returns the exponent p, the coefficient c, and R². All inputs must be
// positive; it panics on mismatched or short inputs.
func FitPowerLaw(xs, ys []float64) (p, c, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r := LinearFit(lx, ly)
	return slope, math.Exp(intercept), r
}

// FitPolyLog fits y ≈ c · (log₂ x)^p and returns p, c, R². This is the
// natural model for the paper's Θ(log³ n) round bound.
func FitPolyLog(xs, ys []float64) (p, c, r2 float64) {
	lx := make([]float64, len(xs))
	for i := range xs {
		lx[i] = math.Log2(xs[i])
	}
	return FitPowerLaw(lx, ys)
}

// LinearFit fits y ≈ slope·x + intercept by ordinary least squares and
// returns the coefficients and R². It panics if the inputs differ in
// length or have fewer than two points.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs >= 2 equal-length samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range xs {
		res := ys[i] - (slope*xs[i] + intercept)
		ssRes += res * res
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with successes out of trials.
func WilsonInterval(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th percentile of N(0,1)
	n := float64(trials)
	phat := float64(successes) / n
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
