package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOnlineMoments(t *testing.T) {
	var o Online
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", o.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v, want %v", o.Var(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.StdErr() != 0 {
		t.Fatal("zero-value Online should report zeros")
	}
	o.Add(3)
	if o.Var() != 0 {
		t.Fatal("single sample variance should be 0")
	}
}

// Property: Online matches the two-pass formulas.
func TestOnlineMatchesTwoPass(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(100)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = src.Float64()*200 - 100
			o.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(o.Mean()-mean) < 1e-9 && math.Abs(o.Var()-wantVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Median(xs); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Interpolation between order statistics.
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Fatalf("interpolated median = %v", q)
	}
	// Input not modified.
	ys := []float64{3, 1, 2}
	Median(ys)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// 0 and 1.9 in bin 0; 2 in bin 1; 5 in bin 2; 9.99 and 10 in bin 4.
	want := []int{2, 1, 1, 0, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, r2 := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Fatalf("fit = %v x + %v", slope, intercept)
	}
	if r2 < 1-1e-12 {
		t.Fatalf("r2 = %v, want 1", r2)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^2.5
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 2.5)
	}
	p, c, r2 := FitPowerLaw(xs, ys)
	if math.Abs(p-2.5) > 1e-9 || math.Abs(c-3) > 1e-9 || r2 < 1-1e-9 {
		t.Fatalf("power fit: p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestFitPolyLog(t *testing.T) {
	// y = 0.5 (log2 x)^3, the paper's round-complexity shape.
	xs := []float64{256, 512, 1024, 2048, 4096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5 * math.Pow(math.Log2(x), 3)
	}
	p, c, r2 := FitPolyLog(xs, ys)
	if math.Abs(p-3) > 1e-9 || math.Abs(c-0.5) > 1e-9 || r2 < 1-1e-9 {
		t.Fatalf("polylog fit: p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("50/100 interval [%v, %v] excludes 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("50/100 interval too wide: [%v, %v]", lo, hi)
	}
	// Extremes stay in [0,1] and are one-sided-ish.
	lo, hi = WilsonInterval(0, 20)
	if lo != 0 || hi < 0.05 || hi > 0.3 {
		t.Fatalf("0/20 interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(20, 20)
	if hi != 1 || lo > 0.95 {
		t.Fatalf("20/20 interval [%v, %v]", lo, hi)
	}
}

// Property: Wilson interval always contains the point estimate.
func TestWilsonContainsPointEstimate(t *testing.T) {
	f := func(s, n uint8) bool {
		trials := int(n%100) + 1
		succ := int(s) % (trials + 1)
		lo, hi := WilsonInterval(succ, trials)
		p := float64(succ) / float64(trials)
		return lo <= p+1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

// Property: merging two Online accumulators matches adding every sample
// to one accumulator directly.
func TestOnlineMergeMatchesSequential(t *testing.T) {
	f := func(raw []uint8, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/17 - 5
		}
		cut := int(split) % (len(xs) + 1)
		var whole, left, right Online
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:cut] {
			left.Add(x)
		}
		for _, x := range xs[cut:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(left.Var()-whole.Var()) < 1e-9 &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(3)
	a.Merge(b) // no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge with empty changed a: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(a) // adopt
	if b.N() != 1 || b.Mean() != 3 || b.Min() != 3 || b.Max() != 3 {
		t.Fatalf("empty.Merge(a) = n=%d mean=%v", b.N(), b.Mean())
	}
}
