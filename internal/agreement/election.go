package agreement

import (
	"fmt"

	"repro/internal/graph"
)

// election.go demonstrates the paper's second named downstream task.
// Footnote 5 of the paper observes that an honest leader makes counting
// easy (flood and time the wavefront) — and conversely that electing a
// leader without knowing n "appears to be a hard problem in the Byzantine
// setting". Min-ID flooding needs a round budget of Θ(log n) (again: the
// counting estimate), and is trivially hijacked by a Byzantine node faking
// a minimal ID — both facts are measurable here.

// ElectionResult reports a min-ID flooding election.
type ElectionResult struct {
	// LeaderOf[v] is the ID node v believes won.
	LeaderOf []uint64
	// AgreeFraction is the fraction of honest nodes agreeing on the
	// modal winner.
	AgreeFraction float64
	// WinnerByzantine reports whether the modal winner is a Byzantine
	// node's (possibly faked) ID.
	WinnerByzantine bool
	Rounds          int
}

// ElectLeader floods the minimum ID for the given number of rounds. ids
// must be distinct and nonzero. If fakeID is nonzero, every Byzantine node
// floods fakeID instead of its own (the trivial hijack).
func ElectLeader(h *graph.Graph, ids []uint64, byz []bool, fakeID uint64, rounds int) (*ElectionResult, error) {
	n := h.N()
	if len(ids) != n {
		return nil, fmt.Errorf("agreement: ids length %d != n %d", len(ids), n)
	}
	if byz != nil && len(byz) != n {
		return nil, fmt.Errorf("agreement: byz length %d != n %d", len(byz), n)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("agreement: non-positive round budget %d", rounds)
	}
	isByz := func(v int) bool { return byz != nil && byz[v] }

	cur := make([]uint64, n)
	next := make([]uint64, n)
	for v := 0; v < n; v++ {
		if isByz(v) && fakeID != 0 {
			cur[v] = fakeID
		} else {
			cur[v] = ids[v]
		}
	}
	for round := 0; round < rounds; round++ {
		for v := 0; v < n; v++ {
			best := cur[v]
			for _, u := range h.Neighbors(v) {
				if cur[u] < best {
					best = cur[u]
				}
			}
			if isByz(v) && fakeID != 0 {
				best = fakeID
			}
			next[v] = best
		}
		cur, next = next, cur
	}

	res := &ElectionResult{LeaderOf: append([]uint64(nil), cur...), Rounds: rounds}
	counts := map[uint64]int{}
	honest := 0
	for v := 0; v < n; v++ {
		if isByz(v) {
			continue
		}
		honest++
		counts[cur[v]]++
	}
	var modal uint64
	for id, c := range counts {
		if c > counts[modal] {
			modal = id
		}
	}
	if honest > 0 {
		res.AgreeFraction = float64(counts[modal]) / float64(honest)
	}
	if fakeID != 0 && modal == fakeID {
		res.WinnerByzantine = true
	} else {
		for v := 0; v < n; v++ {
			if isByz(v) && ids[v] == modal {
				res.WinnerByzantine = true
			}
		}
	}
	return res, nil
}
