package agreement

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

func TestElectionHonestConverges(t *testing.T) {
	net := testH(t, 1024, 21)
	ids := hgraph.AssignIDs(1024, rng.New(22))
	res, err := ElectLeader(net.H, ids, nil, 0, RoundsFromEstimate(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.AgreeFraction != 1 {
		t.Fatalf("agreement %v, want 1", res.AgreeFraction)
	}
	// The winner is the global minimum ID.
	min := ids[0]
	for _, id := range ids {
		if id < min {
			min = id
		}
	}
	if res.LeaderOf[0] != min {
		t.Fatalf("winner %d, want %d", res.LeaderOf[0], min)
	}
	if res.WinnerByzantine {
		t.Fatal("honest election flagged byzantine winner")
	}
}

func TestElectionTooFewRounds(t *testing.T) {
	net := testH(t, 4096, 23)
	ids := hgraph.AssignIDs(4096, rng.New(24))
	short, err := ElectLeader(net.H, ids, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if short.AgreeFraction > 0.5 {
		t.Fatalf("1-round election agreed %v — should be far from consensus", short.AgreeFraction)
	}
}

// The paper's point: a single Byzantine node hijacks min-ID election by
// faking the smallest ID, which is why leader-election-first approaches to
// counting do not work.
func TestElectionHijackedByByzantine(t *testing.T) {
	net := testH(t, 1024, 25)
	ids := hgraph.AssignIDs(1024, rng.New(26))
	byz := hgraph.PlaceByzantine(1024, 1, rng.New(27))
	res, err := ElectLeader(net.H, ids, byz, 1, RoundsFromEstimate(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.WinnerByzantine {
		t.Fatal("byzantine fake minimal ID did not win")
	}
	if res.AgreeFraction != 1 {
		t.Fatalf("hijack should still converge everyone: %v", res.AgreeFraction)
	}
}

func TestElectionValidation(t *testing.T) {
	net := testH(t, 64, 29)
	ids := hgraph.AssignIDs(64, rng.New(30))
	if _, err := ElectLeader(net.H, ids[:3], nil, 0, 5); err == nil {
		t.Fatal("bad ids length accepted")
	}
	if _, err := ElectLeader(net.H, ids, make([]bool, 3), 0, 5); err == nil {
		t.Fatal("bad byz length accepted")
	}
	if _, err := ElectLeader(net.H, ids, nil, 0, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}
