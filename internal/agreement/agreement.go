// Package agreement demonstrates the paper's motivating use of Byzantine
// counting as a building block (§1: "an efficient protocol for the
// Byzantine counting problem can serve as a pre-processing step for
// protocols for Byzantine agreement, leader election and other problems
// that either require or assume knowledge of an estimate of n").
//
// The downstream task here is almost-everywhere binary consensus by
// iterated local majority on the expander H: every honest node starts with
// a bit, repeatedly adopts the majority bit of its neighborhood, and —
// crucially — must run for Θ(log n) rounds to let the global majority
// sweep the graph. Without an estimate of n there is no principled round
// budget; with the counting protocol's estimate there is.
//
// This is a demonstration of composition, not a reproduction of an
// agreement paper: iterated majority on expanders converges almost
// everywhere w.h.p. when the initial bias is nontrivial and the Byzantine
// fraction is small, which is the regime exercised here.
package agreement

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config parameterizes a majority-consensus run.
type Config struct {
	// Rounds is the round budget. The intended source is
	// core.Result estimates: a constant multiple of the counting
	// protocol's log-n estimate (see RoundsFromEstimate).
	Rounds int
	// Seed drives tie-breaking coins.
	Seed uint64
}

// RoundsFromEstimate converts a counting estimate of log n into a majority
// round budget. Majority dynamics on a spectral expander contracts the
// minority by a constant factor per round, so c·log n rounds suffice; c=4
// is comfortable for the λ ≈ 0.66 of H(n,8).
func RoundsFromEstimate(logNEstimate int) int {
	if logNEstimate < 1 {
		logNEstimate = 1
	}
	return 4 * logNEstimate
}

// Result reports a consensus run.
type Result struct {
	// Bits is the final bit of every node (Byzantine nodes report their
	// scripted bit).
	Bits []bool
	// AgreeFraction is the fraction of honest nodes holding the majority
	// final bit.
	AgreeFraction float64
	// AgreeWithInitial is the fraction of honest nodes whose final bit
	// matches the initial honest majority.
	AgreeWithInitial float64
	Rounds           int
}

// Run executes iterated local majority on h. initial holds every node's
// starting bit; byz marks Byzantine nodes, which always push the value
// minority (the strongest symmetric strategy for majority dynamics).
func Run(h *graph.Graph, initial []bool, byz []bool, cfg Config) (*Result, error) {
	n := h.N()
	if len(initial) != n {
		return nil, fmt.Errorf("agreement: initial length %d != n %d", len(initial), n)
	}
	if byz != nil && len(byz) != n {
		return nil, fmt.Errorf("agreement: byz length %d != n %d", len(byz), n)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("agreement: non-positive round budget %d", cfg.Rounds)
	}

	isByz := func(v int) bool { return byz != nil && byz[v] }

	// The initial honest majority is what consensus should converge to.
	initialMajority := honestMajority(initial, byz)

	cur := append([]bool(nil), initial...)
	next := make([]bool, n)
	src := rng.New(cfg.Seed)
	for round := 0; round < cfg.Rounds; round++ {
		// Byzantine nodes see the current honest counts and push the
		// minority (full information).
		minority := !honestMajority(cur, byz)
		for v := 0; v < n; v++ {
			if isByz(v) {
				next[v] = minority
				continue
			}
			ones, total := 0, 1
			if cur[v] {
				ones++
			}
			for _, u := range h.Neighbors(v) {
				total++
				if cur[u] {
					ones++
				}
			}
			switch {
			case 2*ones > total:
				next[v] = true
			case 2*ones < total:
				next[v] = false
			default:
				next[v] = src.Bool() // tie-break with a private coin
			}
		}
		cur, next = next, cur
	}

	res := &Result{Bits: append([]bool(nil), cur...), Rounds: cfg.Rounds}
	finalMajority := honestMajority(cur, byz)
	agree, withInitial, honest := 0, 0, 0
	for v := 0; v < n; v++ {
		if isByz(v) {
			continue
		}
		honest++
		if cur[v] == finalMajority {
			agree++
		}
		if cur[v] == initialMajority {
			withInitial++
		}
	}
	if honest > 0 {
		res.AgreeFraction = float64(agree) / float64(honest)
		res.AgreeWithInitial = float64(withInitial) / float64(honest)
	}
	return res, nil
}

// honestMajority returns the majority bit among honest nodes (true wins
// ties).
func honestMajority(bits []bool, byz []bool) bool {
	ones, total := 0, 0
	for v, b := range bits {
		if byz != nil && byz[v] {
			continue
		}
		total++
		if b {
			ones++
		}
	}
	return 2*ones >= total
}

// BiasedInitial returns a random bit vector with the given fraction of
// ones among all nodes.
func BiasedInitial(n int, onesFraction float64, src *rng.Source) []bool {
	bits := make([]bool, n)
	ones := int(onesFraction * float64(n))
	for _, v := range src.Sample(n, ones) {
		bits[v] = true
	}
	return bits
}
