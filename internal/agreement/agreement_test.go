package agreement

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

func testH(t testing.TB, n int, seed uint64) *hgraph.Network {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMajorityConvergesWithBias(t *testing.T) {
	net := testH(t, 1024, 1)
	initial := BiasedInitial(1024, 0.65, rng.New(2))
	res, err := Run(net.H, initial, nil, Config{Rounds: RoundsFromEstimate(10), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.AgreeFraction < 0.99 {
		t.Fatalf("agreement fraction %v", res.AgreeFraction)
	}
	if res.AgreeWithInitial < 0.99 {
		t.Fatalf("converged away from the initial majority: %v", res.AgreeWithInitial)
	}
}

func TestMajoritySurvivesByzantineMinorityPushers(t *testing.T) {
	net := testH(t, 1024, 5)
	initial := BiasedInitial(1024, 0.70, rng.New(6))
	byz := hgraph.PlaceByzantine(1024, 10, rng.New(7))
	res, err := Run(net.H, initial, byz, Config{Rounds: RoundsFromEstimate(10), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Almost-everywhere agreement: isolated pockets near Byzantine nodes
	// may hold out, the bulk agrees with the initial majority.
	if res.AgreeWithInitial < 0.95 {
		t.Fatalf("agreement with initial majority %v", res.AgreeWithInitial)
	}
}

func TestTooFewRoundsFailsToConverge(t *testing.T) {
	// The motivating point: without a log-n-scaled round budget the
	// dynamics stop short. One round cannot finish the sweep.
	net := testH(t, 4096, 9)
	initial := BiasedInitial(4096, 0.55, rng.New(10))
	short, err := Run(net.H, initial, nil, Config{Rounds: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(net.H, initial, nil, Config{Rounds: RoundsFromEstimate(12), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if short.AgreeFraction >= long.AgreeFraction {
		t.Fatalf("1 round (%v) should agree less than %d rounds (%v)",
			short.AgreeFraction, long.Rounds, long.AgreeFraction)
	}
	if long.AgreeFraction < 0.99 {
		t.Fatalf("full budget agreement %v", long.AgreeFraction)
	}
}

func TestRoundsFromEstimate(t *testing.T) {
	if r := RoundsFromEstimate(10); r != 40 {
		t.Fatalf("rounds = %d", r)
	}
	if r := RoundsFromEstimate(0); r != 4 {
		t.Fatalf("rounds for degenerate estimate = %d", r)
	}
}

func TestBiasedInitial(t *testing.T) {
	bits := BiasedInitial(1000, 0.3, rng.New(13))
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	if ones != 300 {
		t.Fatalf("ones = %d, want 300", ones)
	}
}

func TestRunValidation(t *testing.T) {
	net := testH(t, 64, 15)
	if _, err := Run(net.H, make([]bool, 3), nil, Config{Rounds: 4}); err == nil {
		t.Fatal("bad initial length accepted")
	}
	if _, err := Run(net.H, make([]bool, 64), make([]bool, 3), Config{Rounds: 4}); err == nil {
		t.Fatal("bad byz length accepted")
	}
	if _, err := Run(net.H, make([]bool, 64), nil, Config{Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	net := testH(t, 256, 17)
	initial := BiasedInitial(256, 0.6, rng.New(18))
	a, err := Run(net.H, initial, nil, Config{Rounds: 20, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net.H, initial, nil, Config{Rounds: 20, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			t.Fatal("non-deterministic run")
		}
	}
}
