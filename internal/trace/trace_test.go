package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
)

func runWithRecorder(t *testing.T, capacity int) (*Recorder, *core.Result) {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := New(capacity)
	res, err := core.Run(net, nil, nil, core.Config{
		Algorithm: core.AlgorithmBasic, Seed: 7, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCapturesDecisions(t *testing.T) {
	rec, res := runWithRecorder(t, 1<<20)
	decides := rec.Count(KindDecide)
	want := res.HonestCount - res.UndecidedCount
	if decides != want {
		t.Fatalf("recorded %d decisions, want %d", decides, want)
	}
	// Every decide event carries the node's final estimate.
	for _, e := range rec.Filter(KindDecide) {
		if e.Node < 0 || int(e.Node) >= res.N {
			t.Fatalf("decide event with bad node %d", e.Node)
		}
		if int32(e.Value) != res.Estimates[e.Node] {
			t.Fatalf("decide value %d != estimate %d", e.Value, res.Estimates[e.Node])
		}
	}
}

func TestRecorderPhaseEvents(t *testing.T) {
	rec, res := runWithRecorder(t, 1<<20)
	phases := rec.Filter(KindPhase)
	if len(phases) == 0 {
		t.Fatal("no phase events")
	}
	// Phases must be observed in increasing order 1, 2, ...
	for i, e := range phases {
		if e.Phase != i+1 {
			t.Fatalf("phase event %d has Phase=%d", i, e.Phase)
		}
	}
	if last := phases[len(phases)-1].Phase; last < res.Phases {
		t.Fatalf("last phase event %d < max decided phase %d", last, res.Phases)
	}
}

func TestRecorderGlobalMaxMonotone(t *testing.T) {
	rec, _ := runWithRecorder(t, 1<<20)
	maxima := rec.Filter(KindNewGlobalMax)
	if len(maxima) == 0 {
		t.Fatal("no max events")
	}
	// Within a subphase maxima increase; values reset between subphases,
	// so compare only inside one (phase, subphase) block.
	for i := 1; i < len(maxima); i++ {
		a, b := maxima[i-1], maxima[i]
		if a.Phase == b.Phase && a.Subphase == b.Subphase && b.Value <= a.Value {
			t.Fatalf("non-increasing max within a subphase: %v then %v", a, b)
		}
	}
}

func TestRecorderCapAndDrop(t *testing.T) {
	rec, _ := runWithRecorder(t, 64)
	if len(rec.Events()) > 64 {
		t.Fatalf("ring exceeded cap: %d", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("expected drops with tiny cap")
	}
	// Counts include dropped events.
	if rec.Count(KindDecide) < 200 {
		t.Fatalf("decide count %d lost dropped events", rec.Count(KindDecide))
	}
}

func TestDump(t *testing.T) {
	rec, _ := runWithRecorder(t, 128)
	out := rec.Dump(10)
	if !strings.Contains(out, "decide") && !strings.Contains(out, "phase") {
		t.Fatalf("dump missing events:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 13 {
		t.Fatalf("dump too long: %d lines", lines)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPhase: "phase", KindSubphase: "subphase",
		KindDecide: "decide", KindNewGlobalMax: "new-max",
		Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q", int(k), got)
		}
	}
}

func TestNewDefaultCapacity(t *testing.T) {
	r := New(0)
	if r.cap != 4096 {
		t.Fatalf("default cap = %d", r.cap)
	}
}

// TestRecorderReset pins arena-style reuse: a Recorder Reset between
// runs records exactly what a fresh Recorder does — no leaked decided
// set, no leaked global-max watermark, no leaked counts or drops.
func TestRecorderReset(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Algorithm: core.AlgorithmBasic, Seed: 7}

	reused := New(1 << 20)
	cfg.Observer = reused
	if _, err := core.Run(net, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}
	firstEvents := len(reused.Events())
	reused.Reset()
	if len(reused.Events()) != 0 || reused.Dropped() != 0 || reused.Count(KindDecide) != 0 {
		t.Fatal("Reset left state behind")
	}
	if _, err := core.Run(net, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}

	fresh := New(1 << 20)
	cfg.Observer = fresh
	if _, err := core.Run(net, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}

	got, want := reused.Events(), fresh.Events()
	if len(got) != len(want) || len(got) != firstEvents {
		t.Fatalf("reused recorder saw %d events, fresh saw %d, first run saw %d",
			len(got), len(want), firstEvents)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs after Reset: %v vs %v", i, got[i], want[i])
		}
	}
	for _, k := range []Kind{KindPhase, KindSubphase, KindDecide, KindNewGlobalMax} {
		if reused.Count(k) != fresh.Count(k) {
			t.Fatalf("count %v differs after Reset: %d vs %d", k, reused.Count(k), fresh.Count(k))
		}
	}
}

// TestRecorderResetAcrossSizes pins that a reused Recorder survives a
// larger network after a smaller one (the decided set must grow).
func TestRecorderResetAcrossSizes(t *testing.T) {
	rec := New(1 << 20)
	for _, n := range []int{64, 256, 128} {
		net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(net, nil, nil, core.Config{
			Algorithm: core.AlgorithmBasic, Seed: 7, Observer: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := res.HonestCount - res.UndecidedCount; rec.Count(KindDecide) != want {
			t.Fatalf("n=%d: %d decide events, want %d", n, rec.Count(KindDecide), want)
		}
		rec.Reset()
	}
}

// TestWriteJSONL round-trips the ring buffer through the JSONL export.
func TestWriteJSONL(t *testing.T) {
	rec, _ := runWithRecorder(t, 1<<20)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(rec.Events()) {
		t.Fatalf("%d JSONL lines for %d events", len(lines), len(rec.Events()))
	}
	for i, line := range lines {
		var e struct {
			Round int64  `json:"round"`
			Kind  string `json:"kind"`
			Node  int32  `json:"node"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		want := rec.Events()[i]
		if e.Round != want.Round || e.Kind != want.Kind.String() || e.Node != want.Node || e.Value != want.Value {
			t.Fatalf("line %d = %+v, want %v", i, e, want)
		}
	}
}

// TestWriteJSONLDroppedMeta pins the meta line announcing ring drops.
func TestWriteJSONLDroppedMeta(t *testing.T) {
	rec, _ := runWithRecorder(t, 64)
	if rec.Dropped() == 0 {
		t.Fatal("expected drops with tiny cap")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var meta struct {
		Kind    string `json:"kind"`
		Dropped int    `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(first), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "meta" || meta.Dropped != rec.Dropped() {
		t.Fatalf("meta line = %+v, want dropped=%d", meta, rec.Dropped())
	}
}
