// Package trace records structured protocol events (decisions, crashes,
// color-maximum movements) from a live run via the core.Observer hook,
// into a bounded ring buffer. It exists for debugging and for post-hoc
// analysis in the experiment harness; recording is allocation-light so it
// can stay enabled on large runs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Kind classifies an event.
type Kind int

const (
	// KindPhase marks the first round of a new phase.
	KindPhase Kind = iota
	// KindSubphase marks the first round of a new subphase.
	KindSubphase
	// KindDecide records a node fixing its estimate.
	KindDecide
	// KindNewGlobalMax records the network-wide held maximum increasing.
	KindNewGlobalMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindSubphase:
		return "subphase"
	case KindDecide:
		return "decide"
	case KindNewGlobalMax:
		return "new-max"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	Round    int64 // global round at which the event was observed
	Phase    int
	Subphase int
	T        int // round within the subphase
	Kind     Kind
	Node     int32 // the node concerned (-1 for network-wide events)
	Value    int64 // estimate for decides, color for maxima
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("r%05d i=%d j=%d t=%d %-8s node=%d value=%d",
		e.Round, e.Phase, e.Subphase, e.T, e.Kind, e.Node, e.Value)
}

// Recorder implements core.Observer. The zero value is not usable; create
// with New.
type Recorder struct {
	cap       int
	events    []Event
	dropped   int
	lastPhase int
	lastSub   int
	decided   []bool
	globalMax int64
	counts    map[Kind]int
}

// New returns a Recorder keeping at most capacity events (older events are
// dropped, counted in Dropped).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{cap: capacity, counts: make(map[Kind]int)}
}

func (r *Recorder) push(e Event) {
	r.counts[e.Kind]++
	if len(r.events) >= r.cap {
		// Drop the oldest half to amortize (simple ring compaction).
		half := r.cap / 2
		copy(r.events, r.events[half:])
		r.events = r.events[:len(r.events)-half]
		r.dropped += half
	}
	r.events = append(r.events, e)
}

// RoundEnd implements core.Observer.
func (r *Recorder) RoundEnd(w *core.World) {
	clock := w.Clock
	base := Event{Round: w.GlobalRound(), Phase: clock.Phase, Subphase: clock.Subphase, T: clock.Round, Node: -1}

	if clock.Phase != r.lastPhase {
		r.lastPhase = clock.Phase
		r.lastSub = 0
		e := base
		e.Kind = KindPhase
		r.push(e)
	}
	if clock.Subphase != r.lastSub {
		r.lastSub = clock.Subphase
		e := base
		e.Kind = KindSubphase
		r.push(e)
	}

	n := w.N()
	var roundMax int64
	for v := 0; v < n; v++ {
		if h := w.Held(v); h > roundMax && !w.Byz[v] {
			roundMax = h
		}
	}
	if roundMax > r.globalMax {
		r.globalMax = roundMax
		e := base
		e.Kind = KindNewGlobalMax
		e.Value = roundMax
		r.push(e)
	}
	r.scanDecisions(w, base)
}

// PhaseEnd implements core.PhaseObserver: decisions are assigned after a
// phase's last round, so they are collected here.
func (r *Recorder) PhaseEnd(w *core.World) {
	clock := w.Clock
	base := Event{Round: w.GlobalRound(), Phase: clock.Phase, Subphase: clock.Subphase, T: clock.Round, Node: -1}
	r.scanDecisions(w, base)
}

func (r *Recorder) scanDecisions(w *core.World, base Event) {
	n := w.N()
	if len(r.decided) < n {
		// First run, or a reused Recorder observing a larger network than
		// any before it: grow (Reset keeps capacity, so same-size reuse
		// never reallocates).
		r.decided = append(r.decided, make([]bool, n-len(r.decided))...)
	}
	for v := 0; v < n; v++ {
		if p := w.DecidedPhase(v); p > 0 && !r.decided[v] {
			r.decided[v] = true
			e := base
			e.Kind = KindDecide
			e.Node = int32(v)
			e.Value = int64(p)
			r.push(e)
		}
	}
}

// Reset rewinds the Recorder for a new run, arena-style: every
// accumulator (events, drop count, phase/subphase edge detectors, the
// per-node decided set, the global-maximum watermark, kind counts) is
// cleared in place while the backing allocations are kept, so one
// Recorder serves a whole sweep of runs the way one core.World does.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	r.lastPhase, r.lastSub = 0, 0
	for i := range r.decided {
		r.decided[i] = false
	}
	r.globalMax = 0
	for k := range r.counts {
		delete(r.counts, k)
	}
}

// jsonEvent is Event's JSONL wire shape: Kind rendered as its string
// name so the lines are self-describing to the same analysis pipeline
// that reads the scheduler run-log.
type jsonEvent struct {
	Round    int64  `json:"round"`
	Phase    int    `json:"phase"`
	Subphase int    `json:"subphase"`
	T        int    `json:"t"`
	Kind     string `json:"kind"`
	Node     int32  `json:"node"`
	Value    int64  `json:"value,omitempty"`
}

// WriteJSONL exports the retained events as JSON Lines, oldest first. A
// leading meta line records the drop count when the ring overflowed, so
// a consumer knows the prefix is missing rather than silently partial.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r.dropped > 0 {
		if err := writeLine(w, map[string]any{"kind": "meta", "dropped": r.dropped}); err != nil {
			return err
		}
	}
	for _, e := range r.events {
		je := jsonEvent{
			Round: e.Round, Phase: e.Phase, Subphase: e.Subphase, T: e.T,
			Kind: e.Kind.String(), Node: e.Node, Value: e.Value,
		}
		if err := writeLine(w, je); err != nil {
			return err
		}
	}
	return nil
}

func writeLine(w io.Writer, v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trace: marshal event: %w", err)
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// Events returns the recorded events (oldest first, after any drops).
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many old events were discarded to honor the cap.
func (r *Recorder) Dropped() int { return r.dropped }

// Count returns how many events of the given kind were observed in total
// (including dropped ones).
func (r *Recorder) Count(k Kind) int { return r.counts[k] }

// Filter returns the retained events of one kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events, at most limit lines (0 = all).
func (r *Recorder) Dump(limit int) string {
	var b strings.Builder
	if r.dropped > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", r.dropped)
	}
	events := r.events
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
		fmt.Fprintf(&b, "... showing last %d ...\n", limit)
	}
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

var _ core.Observer = (*Recorder)(nil)
