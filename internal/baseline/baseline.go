// Package baseline implements the size-estimation protocols the paper uses
// as motivation and comparison (§1.2, §1.3), none of which tolerate even a
// single Byzantine node:
//
//   - GeoMax: the geometric-distribution max-flooding protocol of §1.2.
//     Every node draws a Geometric(1/2) color and the network floods the
//     maximum; the global max is a constant-factor estimate of log n w.h.p.
//     A single Byzantine node faking a huge color corrupts every estimate.
//
//   - SupportEstimation: the exponential-distribution support estimation of
//     [Augustine et al., SODA'12]: flood coordinate-wise minima of s
//     exponentials; n̂ = (s−1)/Σ minima. A Byzantine node injecting zeros
//     drives every estimate to infinity.
//
//   - TreeCount: exact counting by BFS-tree convergecast, given an oracle
//     leader (the paper notes leader election under Byzantine faults is
//     itself as hard as counting). A Byzantine node inflates its subtree
//     count arbitrarily.
//
// Each function takes explicit Byzantine interference parameters so the
// experiments can show the failure mode quantitatively.
package baseline

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Outcome reports a baseline run.
type Outcome struct {
	// EstimateLog[v] is node v's estimate of log₂ n.
	EstimateLog []float64
	// Rounds is the number of synchronous rounds used.
	Rounds int
}

// GeoMax runs the §1.2 protocol on h. byz marks Byzantine nodes and inject
// is the fake color they flood (0 = behave honestly). Flooding runs until
// quiescence (bounded by n rounds).
func GeoMax(h *graph.Graph, byz []bool, inject int64, seed uint64) *Outcome {
	n := h.N()
	cur := make([]int64, n)
	next := make([]int64, n)
	for v := 0; v < n; v++ {
		if byz != nil && byz[v] && inject > 0 {
			cur[v] = inject
		} else {
			cur[v] = int64(rng.Split(seed, uint64(v)).Geometric())
		}
	}
	rounds := 0
	for ; rounds < n; rounds++ {
		changed := false
		for v := 0; v < n; v++ {
			best := cur[v]
			for _, w := range h.Neighbors(v) {
				if cur[w] > best {
					best = cur[w]
				}
			}
			if byz != nil && byz[v] && inject > 0 {
				best = inject // Byzantine nodes keep pushing the fake
			}
			if best != cur[v] {
				changed = true
			}
			next[v] = best
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	out := &Outcome{EstimateLog: make([]float64, n), Rounds: rounds}
	for v := 0; v < n; v++ {
		out.EstimateLog[v] = float64(cur[v])
	}
	return out
}

// SupportEstimation runs exponential support estimation with s repetitions.
// Byzantine nodes inject near-zero minima when sabotage is true.
func SupportEstimation(h *graph.Graph, byz []bool, s int, sabotage bool, seed uint64) *Outcome {
	if s < 2 {
		panic("baseline: support estimation needs s >= 2")
	}
	n := h.N()
	cur := make([][]float64, n)
	next := make([][]float64, n)
	for v := 0; v < n; v++ {
		src := rng.Split(seed, uint64(v))
		vec := make([]float64, s)
		for j := range vec {
			if byz != nil && byz[v] && sabotage {
				vec[j] = 1e-12
			} else {
				vec[j] = src.Exp()
			}
		}
		cur[v] = vec
		next[v] = make([]float64, s)
	}
	rounds := 0
	for ; rounds < n; rounds++ {
		changed := false
		for v := 0; v < n; v++ {
			copy(next[v], cur[v])
			for _, w := range h.Neighbors(v) {
				for j := 0; j < s; j++ {
					if cur[w][j] < next[v][j] {
						next[v][j] = cur[w][j]
					}
				}
			}
			for j := 0; j < s; j++ {
				if next[v][j] != cur[v][j] {
					changed = true
					break
				}
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	out := &Outcome{EstimateLog: make([]float64, n), Rounds: rounds}
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, m := range cur[v] {
			sum += m
		}
		nHat := float64(s-1) / sum
		out.EstimateLog[v] = math.Log2(nHat)
	}
	return out
}

// TreeCount counts exactly via a BFS tree rooted at root (an oracle-given
// leader) with convergecast of subtree sizes; every Byzantine node adds
// fakeCount to its reported subtree size. The final count is broadcast
// back down, so every node shares the root's (possibly corrupted) value.
func TreeCount(h *graph.Graph, byz []bool, root int, fakeCount int64) *Outcome {
	n := h.N()
	bfs := graph.NewBFS(h)
	dist := bfs.Run(root)
	order := bfs.Visited() // BFS order: parents precede children

	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	for _, v := range order {
		if v == int32(root) {
			continue
		}
		for _, w := range h.Neighbors(int(v)) {
			if dist[w] == dist[v]-1 {
				parent[v] = w
				break
			}
		}
	}

	subtree := make([]int64, n)
	for i := len(order) - 1; i >= 0; i-- { // reverse BFS = post-order-ish
		v := order[i]
		total := subtree[v] + 1
		if byz != nil && byz[v] {
			total += fakeCount
		}
		if p := parent[v]; p >= 0 {
			subtree[p] += total
		} else {
			subtree[v] = total
		}
	}
	count := subtree[root]

	var ecc int32
	for _, v := range order {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	out := &Outcome{EstimateLog: make([]float64, n), Rounds: int(2*ecc) + 1}
	logEst := math.Log2(float64(count))
	for _, v := range order {
		out.EstimateLog[v] = logEst
	}
	return out
}

// CorrectFraction returns the fraction of honest nodes whose estimate of
// log₂ n lies within [lo·log₂ n, hi·log₂ n].
func (o *Outcome) CorrectFraction(n int, byz []bool, lo, hi float64) float64 {
	logN := math.Log2(float64(n))
	good, honest := 0, 0
	for v, est := range o.EstimateLog {
		if byz != nil && byz[v] {
			continue
		}
		honest++
		if est >= lo*logN && est <= hi*logN {
			good++
		}
	}
	if honest == 0 {
		return 0
	}
	return float64(good) / float64(honest)
}
