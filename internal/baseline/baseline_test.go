package baseline

import (
	"math"
	"testing"

	"repro/internal/hgraph"
)

func testH(t testing.TB, n int, seed uint64) *hgraph.Network {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGeoMaxHonestEstimatesLogN(t *testing.T) {
	net := testH(t, 2048, 1)
	out := GeoMax(net.H, nil, 0, 7)
	logN := math.Log2(2048)
	// All nodes agree on the global max, which is in
	// [log n − log log n, 2 log n] w.h.p.
	first := out.EstimateLog[0]
	for v, e := range out.EstimateLog {
		if e != first {
			t.Fatalf("node %d disagrees: %v vs %v", v, e, first)
		}
	}
	if first < 0.5*logN || first > 2.5*logN {
		t.Fatalf("GeoMax estimate %v, want within [0.5, 2.5]·log n = [%v, %v]",
			first, 0.5*logN, 2.5*logN)
	}
	if f := out.CorrectFraction(2048, nil, 0.5, 2.5); f != 1 {
		t.Fatalf("correct fraction %v", f)
	}
	// Flooding stabilizes in about a diameter worth of rounds.
	if out.Rounds > 20 {
		t.Fatalf("GeoMax took %d rounds", out.Rounds)
	}
}

func TestGeoMaxSingleByzantineDestroysEveryone(t *testing.T) {
	net := testH(t, 1024, 2)
	byz := make([]bool, 1024)
	byz[17] = true
	out := GeoMax(net.H, byz, 1<<40, 9)
	// The fake max reaches every node: zero honest nodes stay correct.
	if f := out.CorrectFraction(1024, byz, 0.25, 3.0); f != 0 {
		t.Fatalf("correct fraction %v under 1 Byzantine node, want 0", f)
	}
}

func TestSupportEstimationHonest(t *testing.T) {
	net := testH(t, 1024, 3)
	out := SupportEstimation(net.H, nil, 64, false, 11)
	logN := math.Log2(1024)
	for v, e := range out.EstimateLog {
		if math.Abs(e-logN) > 1.0 { // s=64 gives ~12% relative error on n
			t.Fatalf("node %d support estimate %v, want ~%v", v, e, logN)
		}
	}
}

func TestSupportEstimationSabotaged(t *testing.T) {
	net := testH(t, 1024, 4)
	byz := make([]bool, 1024)
	byz[3] = true
	out := SupportEstimation(net.H, byz, 64, true, 13)
	// Zero minima drive n̂ to ~ (s-1)/(s·1e-12): estimates explode.
	if f := out.CorrectFraction(1024, byz, 0.25, 3.0); f != 0 {
		t.Fatalf("correct fraction %v under sabotage, want 0", f)
	}
}

func TestSupportEstimationPanicsOnTinyS(t *testing.T) {
	net := testH(t, 64, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for s=1")
		}
	}()
	SupportEstimation(net.H, nil, 1, false, 1)
}

func TestTreeCountExactWhenHonest(t *testing.T) {
	net := testH(t, 777, 5)
	out := TreeCount(net.H, nil, 0, 0)
	want := math.Log2(777)
	for v, e := range out.EstimateLog {
		if math.Abs(e-want) > 1e-9 {
			t.Fatalf("node %d tree count estimate %v, want %v", v, e, want)
		}
	}
	if out.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestTreeCountCorruptedByOneByzantine(t *testing.T) {
	net := testH(t, 1024, 6)
	byz := make([]bool, 1024)
	byz[100] = true
	out := TreeCount(net.H, byz, 0, 1<<30)
	// Count becomes ~2^30: log estimate ~30 instead of 10.
	if out.EstimateLog[0] < 25 {
		t.Fatalf("corrupted tree count log = %v, want ~30", out.EstimateLog[0])
	}
	if f := out.CorrectFraction(1024, byz, 0.25, 3.0); f != 0 {
		t.Fatalf("correct fraction %v, want 0", f)
	}
}

func TestTreeCountByzantineRootInflation(t *testing.T) {
	// Even the root itself being Byzantine corrupts everything (it IS the
	// oracle leader, which is the paper's point about leader election).
	net := testH(t, 512, 7)
	byz := make([]bool, 512)
	byz[0] = true
	out := TreeCount(net.H, byz, 0, 1<<20)
	if out.EstimateLog[5] < 15 {
		t.Fatalf("estimate %v, want ~20", out.EstimateLog[5])
	}
}

func TestGeoMaxDeterministic(t *testing.T) {
	net := testH(t, 256, 8)
	a := GeoMax(net.H, nil, 0, 42)
	b := GeoMax(net.H, nil, 0, 42)
	for v := range a.EstimateLog {
		if a.EstimateLog[v] != b.EstimateLog[v] {
			t.Fatal("GeoMax not deterministic")
		}
	}
}

func TestCorrectFractionEdges(t *testing.T) {
	o := &Outcome{EstimateLog: []float64{10, 10, 100}}
	byz := []bool{false, false, true}
	if f := o.CorrectFraction(1024, byz, 0.5, 2); f != 1 {
		t.Fatalf("fraction %v, want 1 (byz excluded)", f)
	}
	if f := o.CorrectFraction(1024, nil, 0.5, 2); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("fraction %v, want 2/3", f)
	}
}

var sink float64

func BenchmarkGeoMax2048(b *testing.B) {
	net, _ := hgraph.New(hgraph.Params{N: 2048, D: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := GeoMax(net.H, nil, 0, uint64(i))
		sink += out.EstimateLog[0]
	}
}
