package adversary

import (
	"testing"

	"repro/internal/core"
)

// TestChaosInvariants is the failure-injection suite: whatever random
// garbage the Byzantine nodes emit, the engine must terminate cleanly with
// a consistent result.
func TestChaosInvariants(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		net := testNet(t, 512, 100+seed)
		byz := placeByz(512, 6, 200+seed)
		res, err := core.Run(net, byz, &Chaos{Seed: seed}, core.Config{
			Algorithm: core.AlgorithmByzantine,
			Seed:      300 + seed,
			MaxPhase:  12,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Partition: every node is exactly one of byzantine / crashed /
		// decided / undecided.
		decided := 0
		for v := 0; v < res.N; v++ {
			switch {
			case res.Byzantine[v]:
				if res.Crashed[v] {
					t.Fatalf("seed %d: byzantine node %d crashed", seed, v)
				}
			case res.Crashed[v]:
			case res.Estimates[v] > 0:
				decided++
				if int(res.Estimates[v]) > 12 {
					t.Fatalf("seed %d: estimate %d exceeds MaxPhase", seed, res.Estimates[v])
				}
			}
		}
		if got := res.HonestCount - res.CrashedCount - res.UndecidedCount; got != decided {
			t.Fatalf("seed %d: partition inconsistent: %d vs %d", seed, got, decided)
		}
		if res.Rounds <= 0 || res.Messages <= 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
	}
}

// Chaos runs must be reproducible bit-for-bit.
func TestChaosDeterministic(t *testing.T) {
	net := testNet(t, 256, 401)
	byz := placeByz(256, 4, 402)
	run := func() *core.Result {
		res, err := core.Run(net, byz, &Chaos{Seed: 9}, core.Config{
			Algorithm: core.AlgorithmByzantine, Seed: 403, MaxPhase: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.CrashedCount != b.CrashedCount {
		t.Fatal("chaos run not reproducible")
	}
	for v := range a.Estimates {
		if a.Estimates[v] != b.Estimates[v] {
			t.Fatal("chaos estimates not reproducible")
		}
	}
}

// Against Algorithm 1 the chaos injections (which include huge colors
// every round) keep most nodes alive — the unprotected algorithm fails
// even against unstructured noise.
func TestChaosBreaksAlgorithm1(t *testing.T) {
	net := testNet(t, 512, 405)
	byz := placeByz(512, 6, 406)
	res, err := core.Run(net, byz, &Chaos{Seed: 11}, core.Config{
		Algorithm: core.AlgorithmBasic, Seed: 407, MaxPhase: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos is noise, not a targeted schedule, so it keeps fewer victims
	// alive than Inflate — but even noise visibly breaks the unprotected
	// algorithm.
	if res.UndecidedCount < res.HonestCount/10 {
		t.Fatalf("only %d/%d undecided under chaos against Algorithm 1",
			res.UndecidedCount, res.HonestCount)
	}
}

func TestChaosName(t *testing.T) {
	if (&Chaos{}).Name() != "chaos" {
		t.Fatal("name")
	}
}
