// Package adversary implements Byzantine strategies for the counting
// protocol, exercising every attack surface the paper analyzes:
//
//   - Inflate: flood enormous, ever-increasing colors every round. Against
//     Algorithm 1 this keeps every honest node active forever (the
//     full-information adversary times arrivals to hit the final round of
//     each subphase at every distance). Against Algorithm 2, chain
//     attestation confines acceptance to rounds 1..k−1 (Lemma 16), so the
//     attack only delays termination by O(k) phases for o(n) nodes.
//
//   - Suppress: total silence — never forward, never attest. Models
//     crash-like behaviour plus refusal to cooperate in verification.
//
//   - TopologyLiar: the Figure 1 attack — hide a real H-child and invent a
//     fake one during the exchange. Lemma 15: victims crash rather than
//     being fooled.
//
//   - ChainFaker: inject high colors only in rounds ≥ k, attesting to
//     fabricated provenance chains. Observation 6 makes all-Byzantine
//     chains of length k vanishingly rare, so (w.h.p.) nothing is accepted.
//
//   - Combo: TopologyLiar's exchange lies plus Inflate's floods.
//
// All strategies honor the Adversary concurrency contract: Send is latched
// serially by the engine; Attest is pure.
package adversary

import (
	"repro/internal/core"
)

// InjectBase is the color floor used by injecting strategies; any honest
// node observed holding a color >= InjectBase has accepted Byzantine input.
const InjectBase = int64(1) << 30

// Inflate floods strictly increasing huge colors on every edge, every
// round, and attests to anything. The increasing values make every arrival
// "fresh", which is what keeps Algorithm 1 nodes alive forever.
type Inflate struct {
	// MaxRound limits injection to subphase rounds 1..MaxRound
	// (0 = no limit). ChainFaker uses the complementary window.
	MaxRound int
	counter  int64
}

// Name implements core.Adversary.
func (a *Inflate) Name() string { return "inflate" }

// Init implements core.Adversary.
func (a *Inflate) Init(*core.World) { a.counter = 0 }

// ClaimHNeighbors implements core.Adversary: truthful topology.
func (a *Inflate) ClaimHNeighbors(*core.World, int, int) []int32 { return nil }

// SubphaseStart implements core.Adversary.
func (a *Inflate) SubphaseStart(*core.World) { a.counter++ }

// value returns the injection color for round t of the current subphase:
// strictly increasing across subphases and across rounds within one.
func (a *Inflate) value(t int) int64 {
	return InjectBase + a.counter*1024 + int64(t)
}

// Send implements core.Adversary.
func (a *Inflate) Send(w *core.World, b, v, t int) int64 {
	if a.MaxRound > 0 && t > a.MaxRound {
		return w.Held(b)
	}
	return a.value(t)
}

// Attest implements core.Adversary: vouch for everything.
func (a *Inflate) Attest(*core.World, int, int, int64, int) bool { return true }

// Suppress is total silence: no floods, no attestations, truthful topology.
type Suppress struct{}

// Name implements core.Adversary.
func (Suppress) Name() string { return "suppress" }

// Init implements core.Adversary.
func (Suppress) Init(*core.World) {}

// ClaimHNeighbors implements core.Adversary.
func (Suppress) ClaimHNeighbors(*core.World, int, int) []int32 { return nil }

// SubphaseStart implements core.Adversary.
func (Suppress) SubphaseStart(*core.World) {}

// Send implements core.Adversary: silence.
func (Suppress) Send(*core.World, int, int, int) int64 { return 0 }

// Attest implements core.Adversary: deny everything.
func (Suppress) Attest(*core.World, int, int, int64, int) bool { return false }

// TopologyLiar performs the Figure 1 exchange attack: every Byzantine node
// reports an adjacency list with one real neighbor hidden and a fake child
// inserted. The hidden honest neighbor's own truthful report contradicts
// the lie, so every honest node that can hear both crashes (Lemma 15).
// Otherwise the liar follows the protocol.
type TopologyLiar struct{}

// Name implements core.Adversary.
func (TopologyLiar) Name() string { return "topology-liar" }

// Init implements core.Adversary.
func (TopologyLiar) Init(*core.World) {}

// ClaimHNeighbors implements core.Adversary.
func (TopologyLiar) ClaimHNeighbors(w *core.World, b, v int) []int32 {
	truth := w.Net.H.Neighbors(b)
	claim := append([]int32(nil), truth...)
	// Insert a fake child: prefer another Byzantine node (a consistent
	// co-conspirator), else any node, in place of the first real neighbor.
	fake := int32(b) // fallback: a self-claim is still a lie
	for _, other := range w.ByzantineNodes() {
		if int(other) != b {
			fake = other
			break
		}
	}
	claim[0] = fake
	return claim
}

// SubphaseStart implements core.Adversary.
func (TopologyLiar) SubphaseStart(*core.World) {}

// Send implements core.Adversary: otherwise protocol-following.
func (TopologyLiar) Send(w *core.World, b, v, t int) int64 { return w.Held(b) }

// Attest implements core.Adversary: truthful attestation.
func (TopologyLiar) Attest(w *core.World, b, v int, c int64, r int) bool {
	return w.HeldLogAt(b, r) >= c
}

// ChainFaker injects huge colors only in rounds >= k, backed by
// attest-everything: the pure mid-subphase fabrication attack that chain
// verification must reject (Lemma 16). Topology reports are truthful.
type ChainFaker struct {
	inner Inflate
}

// Name implements core.Adversary.
func (a *ChainFaker) Name() string { return "chain-faker" }

// Init implements core.Adversary.
func (a *ChainFaker) Init(w *core.World) { a.inner.Init(w) }

// ClaimHNeighbors implements core.Adversary.
func (a *ChainFaker) ClaimHNeighbors(*core.World, int, int) []int32 { return nil }

// SubphaseStart implements core.Adversary.
func (a *ChainFaker) SubphaseStart(w *core.World) { a.inner.SubphaseStart(w) }

// Send implements core.Adversary: inject only at rounds >= k, behave
// honestly before that.
func (a *ChainFaker) Send(w *core.World, b, v, t int) int64 {
	if t < w.Net.K {
		return w.Held(b)
	}
	return a.inner.value(t)
}

// Attest implements core.Adversary: vouch for everything, including the
// fabricated chains.
func (a *ChainFaker) Attest(*core.World, int, int, int64, int) bool { return true }

// Oracle demonstrates the full-information model at its sharpest: at every
// subphase start it reads every honest node's freshly drawn color (the
// adversary sees all coins, §2.1), identifies the global maximum, and then
// selectively suppresses exactly that value — relaying everything else
// faithfully and refusing to attest for the max. This is the most surgical
// suppression available to Byzantine nodes; the expander's redundant paths
// are what defeat it.
type Oracle struct {
	subphaseMax int64
}

// Name implements core.Adversary.
func (a *Oracle) Name() string { return "oracle" }

// Init implements core.Adversary.
func (a *Oracle) Init(*core.World) { a.subphaseMax = 0 }

// ClaimHNeighbors implements core.Adversary: truthful topology.
func (a *Oracle) ClaimHNeighbors(*core.World, int, int) []int32 { return nil }

// SubphaseStart implements core.Adversary: read everyone's coins.
func (a *Oracle) SubphaseStart(w *core.World) {
	a.subphaseMax = 0
	for v := 0; v < w.N(); v++ {
		if c := w.OwnColor(v); c > a.subphaseMax {
			a.subphaseMax = c
		}
	}
}

// Send implements core.Adversary: relay the held value unless it IS the
// subphase's true maximum, which is silently dropped.
func (a *Oracle) Send(w *core.World, b, v, t int) int64 {
	held := w.Held(b)
	if held >= a.subphaseMax && a.subphaseMax > 0 {
		// Send the best value strictly below the max that b has seen: its
		// own color (bookkeeping keeps only the max, so approximate with
		// silence — suppression of the top value).
		return 0
	}
	return held
}

// Attest implements core.Adversary: refuse to vouch for the max, answer
// honestly otherwise.
func (a *Oracle) Attest(w *core.World, b, v int, c int64, r int) bool {
	if c >= a.subphaseMax && a.subphaseMax > 0 {
		return false
	}
	return w.HeldLogAt(b, r) >= c
}

// Combo layers TopologyLiar's exchange lies over Inflate's floods.
type Combo struct {
	liar    TopologyLiar
	inflate Inflate
}

// Name implements core.Adversary.
func (a *Combo) Name() string { return "combo" }

// Init implements core.Adversary.
func (a *Combo) Init(w *core.World) { a.inflate.Init(w) }

// ClaimHNeighbors implements core.Adversary.
func (a *Combo) ClaimHNeighbors(w *core.World, b, v int) []int32 {
	return a.liar.ClaimHNeighbors(w, b, v)
}

// SubphaseStart implements core.Adversary.
func (a *Combo) SubphaseStart(w *core.World) { a.inflate.SubphaseStart(w) }

// Send implements core.Adversary.
func (a *Combo) Send(w *core.World, b, v, t int) int64 { return a.inflate.Send(w, b, v, t) }

// Attest implements core.Adversary.
func (a *Combo) Attest(*core.World, int, int, int64, int) bool { return true }

// FinalRoundInflate injects a huge color only in the final round of each
// subphase — the Lemma 16 timing attack at its extreme: k_i becomes an
// unbeatable record for the injectors' H-neighbors, so under Algorithm 1
// they continue phase after phase (to the MaxPhase cap) while everyone
// else decides normally and the honest flood quiesces between sweeps.
// This is the canonical high-phase, low-occupancy workload: the
// core/run-hiphase benchmark, the frontier occupancy test, and E20's
// narrative all ride on it. Resolvable via ByName("final-round") but
// deliberately absent from All(): it is an engine-regime driver, not a
// Theorem 1 scenario for the headline E7 table.
type FinalRoundInflate struct{}

// Name implements core.Adversary.
func (FinalRoundInflate) Name() string { return "final-round" }

// Init implements core.Adversary.
func (FinalRoundInflate) Init(*core.World) {}

// ClaimHNeighbors implements core.Adversary: truthful topology.
func (FinalRoundInflate) ClaimHNeighbors(*core.World, int, int) []int32 { return nil }

// SubphaseStart implements core.Adversary.
func (FinalRoundInflate) SubphaseStart(*core.World) {}

// Send implements core.Adversary: silence until the subphase's final
// round, then an unbeatable constant.
func (FinalRoundInflate) Send(w *core.World, b, v, t int) int64 {
	if t == w.Clock.Phase { // final round of an i-round subphase
		return InjectBase << 10
	}
	return 0
}

// Attest implements core.Adversary: vouch for everything.
func (FinalRoundInflate) Attest(*core.World, int, int, int64, int) bool { return true }

// All returns one instance of every strategy, including the honest null
// strategy, for experiment sweeps.
func All() []core.Adversary {
	return []core.Adversary{
		core.HonestAdversary{},
		&Inflate{},
		Suppress{},
		&Oracle{},
		TopologyLiar{},
		&ChainFaker{},
		&Combo{},
	}
}

// ByName returns a fresh instance of the named strategy. Fresh matters:
// several strategies carry per-run state (Inflate's counter, Oracle's
// subphase max), and the sweep scheduler runs jobs concurrently, so
// sharing one instance across runs would race. "" and "none" select nil
// (no adversary: Byzantine nodes, if any, follow the protocol).
func ByName(name string) (core.Adversary, bool) {
	switch name {
	case "", "none":
		return nil, true
	case "honest":
		return core.HonestAdversary{}, true
	case "inflate":
		return &Inflate{}, true
	case "suppress":
		return Suppress{}, true
	case "oracle":
		return &Oracle{}, true
	case "topology-liar":
		return TopologyLiar{}, true
	case "chain-faker":
		return &ChainFaker{}, true
	case "combo":
		return &Combo{}, true
	case "final-round":
		return FinalRoundInflate{}, true
	}
	return nil, false
}

// Names returns the strategy names resolvable by ByName, in All() order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return names
}

var (
	_ core.Adversary = (*Inflate)(nil)
	_ core.Adversary = Suppress{}
	_ core.Adversary = (*Oracle)(nil)
	_ core.Adversary = TopologyLiar{}
	_ core.Adversary = (*ChainFaker)(nil)
	_ core.Adversary = (*Combo)(nil)
)
