package adversary

// reuse_test.go pins the adversary-instance reuse contract that arena
// reuse leans on: every stateful strategy (Inflate's subphase counter,
// Oracle's subphase max, Combo's inner Inflate) must fully re-initialize
// in Init, so one instance driven across consecutive runs — as
// cmd/byzcount's trial loop and any caller holding a core.World do —
// behaves exactly like a fresh instance per run.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

func TestStatefulAdversaryReuseAcrossRuns(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 128, D: 8, Seed: 61})
	byz := hgraph.PlaceByzantine(128, 4, rng.New(62))
	cfg := core.Config{Algorithm: core.AlgorithmByzantine, Seed: 63, Workers: 1}

	for _, name := range Names() {
		if name == "none" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			reused, _ := ByName(name)
			arena := core.NewWorld()
			defer arena.Close()
			// Dirty the instance's state with a first run, then re-run.
			if _, err := arena.Run(net, byz, reused, cfg); err != nil {
				t.Fatal(err)
			}
			second, err := arena.Run(net, byz, reused, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, _ := ByName(name)
			want, err := core.Run(net, byz, fresh, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, second) {
				t.Fatalf("%s: reused adversary instance diverged from a fresh one", name)
			}
		})
	}
}
