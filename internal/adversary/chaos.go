package adversary

import (
	"repro/internal/core"
	"repro/internal/rng"
)

// Chaos drives Byzantine nodes with seeded random behaviour across the
// whole attack surface: random colors (occasionally huge), random
// attestation answers, and randomly perturbed topology claims. It is not a
// clever strategy — it exists for failure-injection testing: whatever a
// confused or arbitrarily faulty implementation might emit, the protocol
// engine must neither panic nor violate its invariants.
type Chaos struct {
	Seed uint64
	src  *rng.Source
}

// Name implements core.Adversary.
func (c *Chaos) Name() string { return "chaos" }

// Init implements core.Adversary.
func (c *Chaos) Init(*core.World) { c.src = rng.New(c.Seed ^ 0xC4A05) }

// ClaimHNeighbors implements core.Adversary: half the time truthful, half
// the time the claim has one entry replaced by a random node (which may be
// a phantom, a duplicate, or an accidental truth).
func (c *Chaos) ClaimHNeighbors(w *core.World, b, v int) []int32 {
	if c.src.Bool() {
		return nil
	}
	truth := w.Net.H.Neighbors(b)
	claim := append([]int32(nil), truth...)
	claim[c.src.Intn(len(claim))] = int32(c.src.Intn(w.N()))
	return claim
}

// SubphaseStart implements core.Adversary.
func (c *Chaos) SubphaseStart(*core.World) {}

// Send implements core.Adversary: silence, echo, a small random color, or
// a huge one — picked at random per edge per round.
func (c *Chaos) Send(w *core.World, b, v, t int) int64 {
	switch c.src.Intn(4) {
	case 0:
		return 0
	case 1:
		return w.Held(b)
	case 2:
		return int64(1 + c.src.Intn(64))
	default:
		return InjectBase + int64(c.src.Intn(1<<20))
	}
}

// Attest implements core.Adversary. It must be pure (called concurrently),
// so the answer is a deterministic hash of the query rather than a stream
// draw.
func (c *Chaos) Attest(w *core.World, b, v int, col int64, r int) bool {
	h := uint64(b)*0x9e3779b97f4a7c15 ^ uint64(v)*0xbf58476d1ce4e5b9 ^
		uint64(col)*0x94d049bb133111eb ^ uint64(r) ^ c.Seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return h&1 == 1
}

var _ core.Adversary = (*Chaos)(nil)
