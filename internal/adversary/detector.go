package adversary

import "repro/internal/core"

// Detector is a core.Observer that watches for honest nodes accepting
// Byzantine-injected colors (values >= Threshold). It records, per subphase
// round, how many honest nodes first held an injected color at that round —
// the empirical version of Lemma 16's claim that acceptance can only occur
// in rounds 1..k−1.
type Detector struct {
	Threshold int64
	// AcceptedAtRound[t] counts honest nodes whose held color first
	// crossed Threshold at subphase round t.
	AcceptedAtRound map[int]int
	// TotalAccepted counts (node, subphase) acceptance events.
	TotalAccepted int
	seen          []bool
}

// NewDetector returns a Detector using InjectBase as the threshold.
func NewDetector() *Detector {
	return &Detector{Threshold: InjectBase, AcceptedAtRound: make(map[int]int)}
}

// RoundEnd implements core.Observer.
func (d *Detector) RoundEnd(w *core.World) {
	n := w.N()
	if d.seen == nil || len(d.seen) != n {
		d.seen = make([]bool, n)
	}
	if w.Clock.Round == 1 {
		for i := range d.seen {
			d.seen[i] = false
		}
	}
	for v := 0; v < n; v++ {
		if w.Byz[v] || w.IsCrashed(v) || d.seen[v] {
			continue
		}
		if w.Held(v) >= d.Threshold {
			d.seen[v] = true
			d.AcceptedAtRound[w.Clock.Round]++
			d.TotalAccepted++
		}
	}
}

// MaxAcceptRound returns the largest subphase round at which any honest
// node accepted an injected color (0 if none ever did). Lemma 16 predicts
// MaxAcceptRound <= k−1 under Algorithm 2.
func (d *Detector) MaxAcceptRound() int {
	max := 0
	for t := range d.AcceptedAtRound {
		if t > max {
			max = t
		}
	}
	return max
}

var _ core.Observer = (*Detector)(nil)
