package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

func testNet(t testing.TB, n int, seed uint64) *hgraph.Network {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func placeByz(n, count int, seed uint64) []bool {
	return hgraph.PlaceByzantine(n, count, rng.New(seed))
}

// correctFraction counts honest nodes with estimate/log2 n inside [lo, hi];
// crashed and undecided honest nodes count against.
func correctFraction(r *core.Result, lo, hi float64) float64 {
	good, honest := 0, 0
	for v := 0; v < r.N; v++ {
		if r.Byzantine[v] {
			continue
		}
		honest++
		if ratio, ok := r.Ratio(v); ok && ratio >= lo && ratio <= hi {
			good++
		}
	}
	return float64(good) / float64(honest)
}

// TestInflateDestroysAlgorithm1 reproduces the paper's motivation: without
// verification, a full-information adversary keeps every honest node active
// forever (no node ever terminates).
func TestInflateDestroysAlgorithm1(t *testing.T) {
	net := testNet(t, 512, 1)
	byz := placeByz(512, 4, 2)
	res, err := core.Run(net, byz, &Inflate{}, core.Config{
		Algorithm: core.AlgorithmBasic, Seed: 3, MaxPhase: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != res.HonestCount {
		t.Fatalf("Algorithm 1 under Inflate: %d/%d undecided, want all",
			res.UndecidedCount, res.HonestCount)
	}
}

// TestInflateContainedByAlgorithm2 is the headline Theorem 1 shape: the
// same attack against Algorithm 2 delays, but does not prevent, accurate
// termination for the vast majority of honest nodes.
func TestInflateContainedByAlgorithm2(t *testing.T) {
	net := testNet(t, 1024, 5)
	byz := placeByz(1024, 6, 6)
	res, err := core.Run(net, byz, &Inflate{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedCount != 0 {
		t.Fatalf("Inflate does not lie about topology but %d nodes crashed", res.CrashedCount)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d honest nodes never terminated under Algorithm 2", res.UndecidedCount)
	}
	if f := correctFraction(res, 0.15, 3.0); f < 0.85 {
		t.Fatalf("correct fraction %v under Inflate, want >= 0.85", f)
	}
}

// TestInflateAcceptanceWindow: under Algorithm 2 any accepted injection
// must happen within rounds 1..k−1 (Lemma 16 empirically).
func TestInflateAcceptanceWindow(t *testing.T) {
	net := testNet(t, 1024, 9)
	byz := placeByz(1024, 6, 10)
	det := NewDetector()
	_, err := core.Run(net, byz, &Inflate{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 11, Observer: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalAccepted == 0 {
		t.Fatal("expected some first-round acceptances (the paper allows them)")
	}
	// Acceptance at round t means the color ENTERED the network at a round
	// <= k-1 (it spreads by honest flooding afterwards, which is allowed).
	// The Lemma 16 statement bounds entry, so check the earliest
	// acceptance round is 1 and entries at rounds >= k never occur in a
	// subphase where no earlier acceptance happened.
	if det.AcceptedAtRound[1] == 0 {
		t.Fatal("no round-1 acceptances recorded")
	}
}

// TestChainFakerFullyRejected: injections attempted only at rounds >= k
// must never be accepted by any honest node (no Byzantine k-chains exist
// at this scale).
func TestChainFakerFullyRejected(t *testing.T) {
	net := testNet(t, 1024, 13)
	byz := placeByz(1024, 6, 14)
	if chain := hgraph.LongestByzantineChain(net.H, byz, net.K); chain >= net.K {
		t.Skipf("random placement produced a %d-chain; skip (probability o(1))", chain)
	}
	det := NewDetector()
	res, err := core.Run(net, byz, &ChainFaker{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 15, Observer: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalAccepted != 0 {
		t.Fatalf("%d honest nodes accepted mid-subphase injections (max round %d)",
			det.TotalAccepted, det.MaxAcceptRound())
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d honest nodes undecided", res.UndecidedCount)
	}
	if f := correctFraction(res, 0.15, 3.0); f < 0.9 {
		t.Fatalf("correct fraction %v under ChainFaker", f)
	}
}

// TestChainFakerDefeatsAlgorithm1 contrasts: without verification, the same
// mid-subphase injections keep everyone alive.
func TestChainFakerDefeatsAlgorithm1(t *testing.T) {
	net := testNet(t, 512, 17)
	byz := placeByz(512, 4, 18)
	res, err := core.Run(net, byz, &ChainFaker{}, core.Config{
		Algorithm: core.AlgorithmBasic, Seed: 19, MaxPhase: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds >= k injections reach nodes at distance i-k by round i; with
	// increasing values most nodes keep seeing fresh finals.
	if res.UndecidedCount < res.HonestCount/2 {
		t.Fatalf("Algorithm 1 under ChainFaker: only %d/%d undecided",
			res.UndecidedCount, res.HonestCount)
	}
}

// TestSuppressIsHarmless: silence can only make estimates (slightly)
// smaller; accuracy and termination must survive.
func TestSuppressIsHarmless(t *testing.T) {
	net := testNet(t, 1024, 21)
	byz := placeByz(1024, 6, 22)
	res, err := core.Run(net, byz, Suppress{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedCount != 0 || res.UndecidedCount != 0 {
		t.Fatalf("crashed=%d undecided=%d under Suppress", res.CrashedCount, res.UndecidedCount)
	}
	if f := correctFraction(res, 0.15, 3.0); f < 0.9 {
		t.Fatalf("correct fraction %v under Suppress", f)
	}
}

// TestTopologyLiarCrashesNotFools (Lemma 15): exchange lies crash their
// audience; every surviving honest node still estimates correctly.
func TestTopologyLiarCrashesNotFools(t *testing.T) {
	net := testNet(t, 1024, 25)
	byz := placeByz(1024, 3, 26)
	res, err := core.Run(net, byz, TopologyLiar{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 27,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedCount == 0 {
		t.Fatal("TopologyLiar caused no crashes")
	}
	// Survivors: everyone either crashed or decided.
	if res.UndecidedCount != 0 {
		t.Fatalf("%d survivors undecided", res.UndecidedCount)
	}
	// Accuracy among survivors.
	good, survivors := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Byzantine[v] || res.Crashed[v] {
			continue
		}
		survivors++
		if ratio, ok := res.Ratio(v); ok && ratio >= 0.15 && ratio <= 3.0 {
			good++
		}
	}
	if survivors == 0 {
		t.Skip("all nodes crashed at this scale (lie radius covers the graph)")
	}
	if f := float64(good) / float64(survivors); f < 0.9 {
		t.Fatalf("survivor accuracy %v", f)
	}
}

// TestComboContained: lies crash their audience, floods are contained for
// the rest.
func TestComboContained(t *testing.T) {
	net := testNet(t, 1024, 29)
	byz := placeByz(1024, 3, 30)
	res, err := core.Run(net, byz, &Combo{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d honest nodes undecided under Combo", res.UndecidedCount)
	}
	good, survivors := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Byzantine[v] || res.Crashed[v] {
			continue
		}
		survivors++
		if ratio, ok := res.Ratio(v); ok && ratio >= 0.15 && ratio <= 3.0 {
			good++
		}
	}
	if survivors > 0 {
		if f := float64(good) / float64(survivors); f < 0.85 {
			t.Fatalf("survivor accuracy %v under Combo", f)
		}
	}
}

// TestOracleSuppressionSurvived: even the surgically targeted suppression
// (drop exactly the true max, known from the adversary's view of the
// coins) cannot break the estimate — the max routes around the Byzantine
// nodes on the expander.
func TestOracleSuppressionSurvived(t *testing.T) {
	net := testNet(t, 1024, 71)
	byz := placeByz(1024, 8, 72)
	res, err := core.Run(net, byz, &Oracle{}, core.Config{
		Algorithm: core.AlgorithmByzantine, Seed: 73,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != 0 || res.CrashedCount != 0 {
		t.Fatalf("undecided=%d crashed=%d under Oracle", res.UndecidedCount, res.CrashedCount)
	}
	if f := correctFraction(res, 0.15, 3.0); f < 0.9 {
		t.Fatalf("correct fraction %v under Oracle", f)
	}
}

func TestAllListsEveryStrategy(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() returned %d strategies", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		if names[a.Name()] {
			t.Fatalf("duplicate strategy name %q", a.Name())
		}
		names[a.Name()] = true
	}
}

// TestLemma16EntryWindow is the sharp version of Lemma 16: with the
// first-entry instrumentation, every subphase in which an injected color
// entered the honest population must have its entry in rounds 1..k−1.
func TestLemma16EntryWindow(t *testing.T) {
	net := testNet(t, 1024, 61)
	byz := placeByz(1024, 6, 62)
	if chain := hgraph.LongestByzantineChain(net.H, byz, net.K); chain >= net.K {
		t.Skipf("placement produced a %d-chain", chain)
	}
	res, err := core.Run(net, byz, &Inflate{}, core.Config{
		Algorithm:          core.AlgorithmByzantine,
		Seed:               63,
		InjectionThreshold: InjectBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InjectionEntryRounds) == 0 {
		t.Fatal("Inflate produced no entries at all")
	}
	if max := res.MaxInjectionEntryRound(); max > net.K-1 {
		t.Fatalf("injection entered at round %d > k-1 = %d (entries: %v)",
			max, net.K-1, res.InjectionEntryRounds)
	}
}

// The same instrumentation shows ChainFaker never gets a color in at all.
func TestLemma16ChainFakerZeroEntries(t *testing.T) {
	net := testNet(t, 1024, 65)
	byz := placeByz(1024, 6, 66)
	if chain := hgraph.LongestByzantineChain(net.H, byz, net.K); chain >= net.K {
		t.Skipf("placement produced a %d-chain", chain)
	}
	res, err := core.Run(net, byz, &ChainFaker{}, core.Config{
		Algorithm:          core.AlgorithmByzantine,
		Seed:               67,
		InjectionThreshold: InjectBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InjectionEntryRounds) != 0 {
		t.Fatalf("ChainFaker achieved entries: %v", res.InjectionEntryRounds)
	}
}

func TestDetectorResetsPerSubphase(t *testing.T) {
	d := NewDetector()
	if d.Threshold != InjectBase {
		t.Fatalf("threshold = %d", d.Threshold)
	}
	if d.MaxAcceptRound() != 0 {
		t.Fatal("fresh detector reports acceptances")
	}
}
