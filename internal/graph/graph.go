// Package graph provides the static graph substrate used by the network
// generators and the protocol simulator: compact CSR adjacency, BFS,
// distance balls, connected components, diameter, and clustering
// coefficients.
//
// Graphs are undirected and may be multigraphs (the H(n,d) model is a union
// of Hamiltonian cycles and can contain parallel edges and, at tiny n,
// self-loops; the paper keeps them, and so do we).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected (multi)graph in compressed sparse row
// form. Node IDs are dense integers [0, N).
type Graph struct {
	n       int
	offsets []int32 // len n+1
	adj     []int32 // concatenated sorted neighbor lists
}

// Builder accumulates edges and produces a Graph.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// Grow pre-sizes the edge accumulator for at least extra additional edges,
// so callers that know the edge count up front (generators, format
// readers) avoid the append-doubling copies of a growing edge list.
func (b *Builder) Grow(extra int) {
	if extra <= 0 {
		return
	}
	if free := cap(b.edges) - len(b.edges); free < extra {
		grown := make([][2]int32, len(b.edges), len(b.edges)+extra)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// AddEdge records an undirected edge {u, v}. Parallel edges are kept;
// self-loops are permitted and contribute a single adjacency entry.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// NumEdges reports the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the Builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		if e[0] != e[1] {
			deg[e[1]]++
		}
	}
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = v
		cursor[u]++
		if u != v {
			adj[cursor[v]] = u
			cursor[v]++
		}
	}
	g := &Graph{n: b.n, offsets: offsets, adj: adj}
	for v := 0; v < b.n; v++ {
		nb := g.adjSlice(int32(v))
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// FromCSR adopts prebuilt CSR arrays as a Graph after validating every
// structural invariant Build guarantees: offsets starts at 0, is
// monotone, and ends at len(adj); every adjacency entry is in range; and
// each row is sorted ascending (multiplicities allowed). It is the entry
// point for deserialized graphs — the binary network codec hands it
// untrusted arrays, so it must reject rather than panic. The slices are
// adopted, not copied; the caller must not modify them afterwards.
func FromCSR(offsets, adj []int32) (*Graph, error) {
	n := len(offsets) - 1
	if n < 0 {
		return nil, fmt.Errorf("graph: FromCSR needs len(offsets) >= 1")
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR offsets[0] = %d, want 0", offsets[0])
	}
	if int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: FromCSR offsets end at %d, adj has %d entries", offsets[n], len(adj))
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: FromCSR offsets not monotone at node %d", v)
		}
		if int(offsets[v+1]) > len(adj) {
			// Monotonicity alone admits an intermediate overshoot that
			// dips back down to len(adj) at the end; slicing it would
			// panic on untrusted input.
			return nil, fmt.Errorf("graph: FromCSR offsets overshoot adj at node %d", v)
		}
		row := adj[offsets[v]:offsets[v+1]]
		var prev int32 = -1
		for _, w := range row {
			if w < prev {
				return nil, fmt.Errorf("graph: FromCSR row %d not sorted", v)
			}
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: FromCSR entry %d in row %d out of range [0,%d)", w, v, n)
			}
			prev = w
		}
	}
	return &Graph{n: n, offsets: offsets, adj: adj}, nil
}

// FromCSRUnchecked adopts CSR arrays the caller guarantees already satisfy
// Build's invariants (see FromCSR). The network generator's fast path uses
// it for arrays it constructed row-by-row itself — its output is pinned
// byte-identical to the reference generator by golden digest tests, so
// revalidating every edge would only re-pay the generation cost.
func FromCSRUnchecked(offsets, adj []int32) *Graph {
	return &Graph{n: len(offsets) - 1, offsets: offsets, adj: adj}
}

func (g *Graph) adjSlice(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges (self-loops count once,
// parallel edges count separately).
func (g *Graph) NumEdges() int {
	loops := 0
	for v := int32(0); v < int32(g.n); v++ {
		for _, w := range g.adjSlice(v) {
			if w == v {
				loops++
			}
		}
	}
	return (len(g.adj)-loops)/2 + loops
}

// Degree returns the degree of v (self-loops count once, parallel edges
// count with multiplicity).
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor multiset of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adjSlice(int32(v))
}

// CSR exposes the graph's compressed-sparse-row arrays: offsets has length
// N()+1 and adj holds the concatenated sorted neighbor lists, so node v's
// neighbors are adj[offsets[v]:offsets[v+1]]. Both slices alias internal
// storage and must be treated as read-only. The protocol engine's inner
// loop indexes these directly (and aligns its Byzantine send-slot tables
// to adj positions) instead of calling Neighbors per node per round.
func (g *Graph) CSR() (offsets, adj []int32) {
	return g.offsets, g.adj
}

// HasEdge reports whether at least one edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.adjSlice(int32(u))
	t := int32(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	return i < len(nb) && nb[i] == t
}

// UniqueNeighbors returns the de-duplicated neighbor set of v, excluding v
// itself. A fresh slice is returned.
func (g *Graph) UniqueNeighbors(v int) []int32 {
	nb := g.adjSlice(int32(v))
	out := make([]int32, 0, len(nb))
	var prev int32 = -1
	for _, w := range nb {
		if w != prev && w != int32(v) {
			out = append(out, w)
		}
		prev = w
	}
	return out
}

// BFS holds reusable scratch space for breadth-first searches on a fixed
// graph. It is not safe for concurrent use; allocate one per goroutine.
type BFS struct {
	g     *Graph
	dist  []int32
	queue []int32
	// touched tracks which entries of dist were written so Reset is O(visited).
	touched []int32
}

// Unreached is the distance value for nodes not reached by the last search.
const Unreached = int32(-1)

// NewBFS returns BFS scratch space for g.
func NewBFS(g *Graph) *BFS {
	d := make([]int32, g.n)
	for i := range d {
		d[i] = Unreached
	}
	return &BFS{g: g, dist: d, queue: make([]int32, 0, 64)}
}

func (b *BFS) reset() {
	for _, v := range b.touched {
		b.dist[v] = Unreached
	}
	b.touched = b.touched[:0]
	b.queue = b.queue[:0]
}

// Run performs a full BFS from src and returns the distance slice, which is
// valid until the next Run/RunWithin call. Unreached nodes have distance
// Unreached.
func (b *BFS) Run(src int) []int32 {
	return b.RunWithin(src, int32(b.g.n))
}

// RunWithin performs a BFS from src truncated at distance maxDist
// (inclusive) and returns the distance slice, valid until the next call.
func (b *BFS) RunWithin(src int, maxDist int32) []int32 {
	b.reset()
	s := int32(src)
	b.dist[s] = 0
	b.touched = append(b.touched, s)
	b.queue = append(b.queue, s)
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		dv := b.dist[v]
		if dv >= maxDist {
			continue
		}
		for _, w := range b.g.adjSlice(v) {
			if b.dist[w] == Unreached {
				b.dist[w] = dv + 1
				b.touched = append(b.touched, w)
				b.queue = append(b.queue, w)
			}
		}
	}
	return b.dist
}

// Visited returns the nodes reached by the last search, in BFS order
// (starting with the source). The slice is valid until the next call.
func (b *BFS) Visited() []int32 { return b.queue }

// Eccentricity returns the maximum distance from src to any reachable node.
func (b *BFS) Eccentricity(src int) int32 {
	b.Run(src)
	var ecc int32
	for _, v := range b.queue {
		if b.dist[v] > ecc {
			ecc = b.dist[v]
		}
	}
	return ecc
}

// Ball returns the nodes within distance r of v (including v), in BFS
// order. A fresh slice is returned.
func (g *Graph) Ball(v int, r int) []int32 {
	b := NewBFS(g)
	b.RunWithin(v, int32(r))
	out := make([]int32, len(b.queue))
	copy(out, b.queue)
	return out
}

// BallWith returns, using caller-provided scratch, the nodes within
// distance r of v and their distances. The returned slices are valid until
// the next use of scratch.
func BallWith(scratch *BFS, v, r int) (nodes []int32, dist []int32) {
	scratch.RunWithin(v, int32(r))
	return scratch.queue, scratch.dist
}

// Boundary returns the nodes at distance exactly r from v (the paper's
// Bd(v, r)). A fresh slice is returned.
func (g *Graph) Boundary(v int, r int) []int32 {
	b := NewBFS(g)
	d := b.RunWithin(v, int32(r))
	var out []int32
	for _, w := range b.queue {
		if d[w] == int32(r) {
			out = append(out, w)
		}
	}
	return out
}

// Dist returns the length of a shortest path between u and v, or -1 if
// disconnected.
func (g *Graph) Dist(u, v int) int {
	b := NewBFS(g)
	d := b.Run(u)
	return int(d[v])
}

// Components returns the connected components as a slice of node slices,
// largest first.
func (g *Graph) Components() [][]int32 {
	seen := make([]bool, g.n)
	b := NewBFS(g)
	var comps [][]int32
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		b.Run(v)
		comp := make([]int32, len(b.queue))
		copy(comp, b.queue)
		for _, w := range comp {
			seen[w] = true
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// IsConnected reports whether the graph has a single connected component
// (true for the empty graph).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	b := NewBFS(g)
	b.Run(0)
	return len(b.queue) == g.n
}

// Diameter computes the exact diameter by all-pairs BFS: O(n·m). Suitable
// for the experiment scales used here (n up to a few tens of thousands).
// Returns -1 for disconnected graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	b := NewBFS(g)
	var diam int32
	for v := 0; v < g.n; v++ {
		b.Run(v)
		if len(b.queue) != g.n {
			return -1
		}
		for _, w := range b.queue {
			if b.dist[w] > diam {
				diam = b.dist[w]
			}
		}
	}
	return int(diam)
}

// DiameterLowerBound estimates the diameter with the classic iterated
// two-sweep heuristic: repeatedly BFS to the farthest node found. The
// result is an exact eccentricity, hence a lower bound on the diameter,
// and in practice tight on expanders. rounds controls the number of
// sweeps (>= 1).
func (g *Graph) DiameterLowerBound(rounds int) int {
	if g.n == 0 {
		return 0
	}
	b := NewBFS(g)
	src := 0
	var best int32
	for it := 0; it < rounds; it++ {
		d := b.Run(src)
		far, fd := src, int32(0)
		for _, w := range b.queue {
			if d[w] > fd {
				fd = d[w]
				far = int(w)
			}
		}
		if fd > best {
			best = fd
		}
		src = far
	}
	return int(best)
}

// LocalClustering returns the local clustering coefficient of v in the
// simple graph underlying g (parallel edges de-duplicated, self-loops
// ignored): the fraction of pairs of distinct neighbors that are adjacent.
// Nodes with fewer than two distinct neighbors have coefficient 0.
func (g *Graph) LocalClustering(v int) float64 {
	nb := g.UniqueNeighbors(v)
	k := len(nb)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(int(nb[i]), int(nb[j])) {
				links++
			}
		}
	}
	return float64(links) / float64(k*(k-1)/2)
}

// AvgClustering returns the mean local clustering coefficient over all
// nodes (the Watts–Strogatz clustering coefficient).
func (g *Graph) AvgClustering() float64 {
	if g.n == 0 {
		return 0
	}
	sum := 0.0
	for v := 0; v < g.n; v++ {
		sum += g.LocalClustering(v)
	}
	return sum / float64(g.n)
}

// DegreeStats summarizes the degree sequence.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns summary statistics of the degree sequence.
func (g *Graph) Degrees() DegreeStats {
	if g.n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for v := 0; v < g.n; v++ {
		d := g.Degree(v)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(g.n)
	return st
}

// Induced returns the subgraph induced by the nodes with keep[v] == true,
// along with the mapping from new to original node IDs. Edges with either
// endpoint dropped are removed; multiplicities are preserved.
func (g *Graph) Induced(keep []bool) (*Graph, []int32) {
	if len(keep) != g.n {
		panic("graph: keep vector length mismatch")
	}
	toNew := make([]int32, g.n)
	var toOld []int32
	for v := 0; v < g.n; v++ {
		if keep[v] {
			toNew[v] = int32(len(toOld))
			toOld = append(toOld, int32(v))
		} else {
			toNew[v] = -1
		}
	}
	b := NewBuilder(len(toOld))
	for v := 0; v < g.n; v++ {
		if !keep[v] {
			continue
		}
		for _, w := range g.adjSlice(int32(v)) {
			if int32(v) <= w && keep[w] { // each undirected edge once
				b.AddEdge(int(toNew[v]), int(toNew[w]))
			}
		}
	}
	return b.Build(), toOld
}

// EdgeMultiplicity returns the number of parallel {u,v} edges.
func (g *Graph) EdgeMultiplicity(u, v int) int {
	nb := g.adjSlice(int32(u))
	t := int32(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	count := 0
	for ; i < len(nb) && nb[i] == t; i++ {
		count++
	}
	return count
}
