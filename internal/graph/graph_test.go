package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// path builds a path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// cycle builds a cycle on n nodes.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// complete builds K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := path(5)
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestMultiEdgesAndLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2)
	g := b.Build()
	if g.EdgeMultiplicity(0, 1) != 2 {
		t.Fatalf("multiplicity = %d, want 2", g.EdgeMultiplicity(0, 1))
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2 (parallel edges count)", g.Degree(0))
	}
	if g.Degree(2) != 1 {
		t.Fatalf("Degree(2) = %d, want 1 (self-loop counts once)", g.Degree(2))
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	un := g.UniqueNeighbors(0)
	if len(un) != 1 || un[0] != 1 {
		t.Fatalf("UniqueNeighbors(0) = %v, want [1]", un)
	}
	// Self-loop excluded from unique neighbors.
	if len(g.UniqueNeighbors(2)) != 0 {
		t.Fatalf("UniqueNeighbors(2) = %v, want empty", g.UniqueNeighbors(2))
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := path(6)
	b := NewBFS(g)
	d := b.Run(0)
	for v := 0; v < 6; v++ {
		if d[v] != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], v)
		}
	}
}

func TestBFSWithinTruncates(t *testing.T) {
	g := path(10)
	b := NewBFS(g)
	d := b.RunWithin(0, 3)
	if d[3] != 3 {
		t.Fatalf("dist[3] = %d, want 3", d[3])
	}
	if d[4] != Unreached {
		t.Fatalf("dist[4] = %d, want Unreached", d[4])
	}
	if len(b.Visited()) != 4 {
		t.Fatalf("visited %d nodes, want 4", len(b.Visited()))
	}
}

func TestBFSReuseIsClean(t *testing.T) {
	g := path(8)
	b := NewBFS(g)
	b.Run(7)
	d := b.RunWithin(0, 2)
	if d[7] != Unreached {
		t.Fatalf("stale distance survived reuse: d[7] = %d", d[7])
	}
	if d[2] != 2 {
		t.Fatalf("d[2] = %d, want 2", d[2])
	}
}

func TestBallAndBoundary(t *testing.T) {
	g := cycle(10)
	ball := g.Ball(0, 2)
	if len(ball) != 5 { // 0, 1, 9, 2, 8
		t.Fatalf("Ball size = %d, want 5", len(ball))
	}
	bd := g.Boundary(0, 2)
	if len(bd) != 2 {
		t.Fatalf("Boundary size = %d, want 2", len(bd))
	}
	for _, v := range bd {
		if v != 2 && v != 8 {
			t.Fatalf("unexpected boundary node %d", v)
		}
	}
}

func TestDist(t *testing.T) {
	g := cycle(12)
	if d := g.Dist(0, 6); d != 6 {
		t.Fatalf("Dist(0,6) = %d, want 6", d)
	}
	if d := g.Dist(0, 11); d != 1 {
		t.Fatalf("Dist(0,11) = %d, want 1", d)
	}
	// Disconnected.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g2 := b.Build()
	if d := g2.Dist(0, 3); d != -1 {
		t.Fatalf("Dist across components = %d, want -1", d)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes wrong: %d %d", len(comps[0]), len(comps[1]))
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !cycle(5).IsConnected() {
		t.Fatal("cycle reported disconnected")
	}
}

func TestDiameterExact(t *testing.T) {
	if d := path(10).Diameter(); d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
	if d := cycle(10).Diameter(); d != 5 {
		t.Fatalf("cycle diameter = %d, want 5", d)
	}
	if d := complete(6).Diameter(); d != 1 {
		t.Fatalf("K6 diameter = %d, want 1", d)
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}

func TestDiameterLowerBound(t *testing.T) {
	g := path(50)
	lb := g.DiameterLowerBound(3)
	if lb != 49 {
		t.Fatalf("two-sweep on a path should be exact: got %d, want 49", lb)
	}
	c := cycle(20)
	lb = c.DiameterLowerBound(4)
	if lb > 10 || lb < 9 {
		t.Fatalf("cycle(20) lower bound = %d, want 9..10", lb)
	}
}

func TestClustering(t *testing.T) {
	if c := complete(5).AvgClustering(); c != 1.0 {
		t.Fatalf("K5 clustering = %v, want 1", c)
	}
	if c := cycle(10).AvgClustering(); c != 0.0 {
		t.Fatalf("C10 clustering = %v, want 0", c)
	}
	// Triangle with a pendant: node 3 attached to node 0.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	g := b.Build()
	// Node 0 has neighbors {1,2,3}: pairs (1,2) linked, (1,3),(2,3) not: 1/3.
	if c := g.LocalClustering(0); c < 0.333 || c > 0.334 {
		t.Fatalf("LocalClustering(0) = %v, want 1/3", c)
	}
	if c := g.LocalClustering(3); c != 0 {
		t.Fatalf("LocalClustering(3) = %v, want 0 (degree 1)", c)
	}
}

func TestDegreeStats(t *testing.T) {
	st := path(5).Degrees()
	if st.Min != 1 || st.Max != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 8.0/5 {
		t.Fatalf("mean = %v, want 1.6", st.Mean)
	}
}

// randomGraph builds an Erdos-Renyi-ish multigraph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	src := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(src.Intn(n), src.Intn(n))
	}
	return b.Build()
}

// Property: adjacency is symmetric (u in N(v) iff v in N(u) with equal
// multiplicity).
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 30, 60)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				if g.EdgeMultiplicity(u, v) != g.EdgeMultiplicity(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: balls are monotone in radius and Ball(v,r) = union of
// boundaries 0..r.
func TestBallMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 40, 80)
		v := int(seed % 40)
		prev := 0
		total := 0
		for r := 0; r <= 5; r++ {
			ball := len(g.Ball(v, r))
			if ball < prev {
				return false
			}
			total += len(g.Boundary(v, r))
			if total != ball {
				return false
			}
			prev = ball
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle-ish property along edges:
// |d(u) - d(w)| <= 1 for every edge (u,w) in the same component.
func TestBFSLipschitzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 35, 70)
		b := NewBFS(g)
		d := b.Run(0)
		for u := 0; u < g.N(); u++ {
			if d[u] == Unreached {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if d[w] == Unreached {
					return false // neighbor of reached node must be reached
				}
				diff := d[u] - d[w]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: sum of degrees = 2*edges - loops (handshake lemma with loops
// counted once in our convention).
func TestHandshakeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 25, 50)
		sum := 0
		loops := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
			loops += g.EdgeMultiplicity(v, v)
		}
		return sum == 2*g.NumEdges()-loops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(7)
	b := NewBFS(g)
	if e := b.Eccentricity(0); e != 6 {
		t.Fatalf("ecc(0) = %d, want 6", e)
	}
	if e := b.Eccentricity(3); e != 3 {
		t.Fatalf("ecc(3) = %d, want 3", e)
	}
}

func TestInduced(t *testing.T) {
	// Cycle 0-1-2-3-4-0; drop node 2: expect path 3-4-0-1.
	g := cycle(5)
	keep := []bool{true, true, false, true, true}
	sub, toOld := g.Induced(keep)
	if sub.N() != 4 {
		t.Fatalf("induced N = %d", sub.N())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("induced edges = %d, want 3", sub.NumEdges())
	}
	// Degree-1 endpoints are original nodes 1 and 3.
	var endpoints []int32
	for v := 0; v < sub.N(); v++ {
		if sub.Degree(v) == 1 {
			endpoints = append(endpoints, toOld[v])
		}
	}
	if len(endpoints) != 2 {
		t.Fatalf("endpoints = %v", endpoints)
	}
	for _, e := range endpoints {
		if e != 1 && e != 3 {
			t.Fatalf("unexpected endpoint %d", e)
		}
	}
}

func TestInducedPreservesMultiplicity(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	sub, _ := g.Induced([]bool{true, true, false})
	if sub.EdgeMultiplicity(0, 1) != 2 {
		t.Fatalf("multiplicity = %d", sub.EdgeMultiplicity(0, 1))
	}
}

func TestInducedKeepAll(t *testing.T) {
	g := cycle(6)
	keep := []bool{true, true, true, true, true, true}
	sub, toOld := g.Induced(keep)
	if sub.N() != 6 || sub.NumEdges() != 6 {
		t.Fatalf("identity induced wrong: %d nodes %d edges", sub.N(), sub.NumEdges())
	}
	for i, o := range toOld {
		if int32(i) != o {
			t.Fatal("identity mapping broken")
		}
	}
}

func BenchmarkBFS4096(b *testing.B) {
	g := randomGraph(1, 4096, 16384)
	scratch := NewBFS(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Run(i % 4096)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	for _, g := range []*Graph{path(7), cycle(9), complete(5), path(1)} {
		off, adj := g.CSR()
		got, err := FromCSR(off, adj)
		if err != nil {
			t.Fatalf("FromCSR on Build output: %v", err)
		}
		for v := 0; v < g.N(); v++ {
			nb, gb := g.Neighbors(v), got.Neighbors(v)
			if len(nb) != len(gb) {
				t.Fatalf("node %d: degree %d vs %d", v, len(nb), len(gb))
			}
			for i := range nb {
				if nb[i] != gb[i] {
					t.Fatalf("node %d: rows differ", v)
				}
			}
		}
	}
}

func TestFromCSRRejectsInvalid(t *testing.T) {
	cases := map[string]struct{ off, adj []int32 }{
		"empty offsets":      {[]int32{}, nil},
		"nonzero start":      {[]int32{1, 2}, []int32{0, 0}},
		"non-monotone":       {[]int32{0, 2, 1}, []int32{1, 2, 0}},
		"length mismatch":    {[]int32{0, 1}, []int32{0, 0}},
		"offset overshoot":   {[]int32{0, 5, 2}, []int32{0, 0}},
		"entry out of range": {[]int32{0, 1}, []int32{5}},
		"unsorted row":       {[]int32{0, 2}, []int32{1, 0}},
		"negative entry":     {[]int32{0, 1}, []int32{-1}},
	}
	for name, c := range cases {
		if _, err := FromCSR(c.off, c.adj); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFromCSRAcceptsMultiplicity(t *testing.T) {
	// Parallel edges and self-loops are legal: 0={1,1}, 1={0,0,1(self)}.
	off := []int32{0, 2, 5}
	adj := []int32{1, 1, 0, 0, 1}
	g, err := FromCSR(off, adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeMultiplicity(0, 1) != 2 {
		t.Errorf("multiplicity(0,1) = %d, want 2", g.EdgeMultiplicity(0, 1))
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.Grow(100)
	b.AddEdge(1, 2)
	b.Grow(-5) // no-op
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}
