package core

import "math"

// Schedule computes the phase structure of Algorithms 1 and 2: the number
// of subphase repetitions α_i, the per-phase subphase count i·α_i, and the
// continue-threshold θ_i.
//
// The paper's pseudocode gives two α_i branches whose denominators are
// non-positive for i ≤ 2 and one of which grows linearly (contradicting
// the Θ(log³ n) bound); we implement the rule both derive from
// (Appendix B, Lemma 26): α_i is the smallest integer with
// p_i^{α_i} ≤ ε/2^{i+1}, where p_i = min(1/2, 1/(d(d−1)^{i−2})) is the
// per-subphase failure bound of Lemma 25. See DESIGN.md §1.
type Schedule struct {
	D       int
	Epsilon float64
}

// failureBound returns p_i, the per-subphase failure probability bound for
// a safe node in phase i.
func (s Schedule) failureBound(i int) float64 {
	if i < 1 {
		panic("core: phase index must be >= 1")
	}
	// 1/(d(d-1)^{i-2}) in log2 space to avoid overflow for large i.
	log2p := -(math.Log2(float64(s.D)) + float64(i-2)*math.Log2(float64(s.D-1)))
	if log2p > -1 {
		log2p = -1 // clamp to 1/2 (i = 1 makes the raw bound exceed 1/2)
	}
	return math.Exp2(log2p)
}

// Alpha returns α_i, the number of independent repetitions per phase-unit;
// phase i runs i·α_i subphases.
func (s Schedule) Alpha(i int) int {
	p := s.failureBound(i)
	// Smallest α with p^α ≤ ε/2^{i+1}:
	// α ≥ (log2(1/ε) + i + 1) / log2(1/p).
	need := (math.Log2(1/s.Epsilon) + float64(i) + 1) / -math.Log2(p)
	a := int(math.Ceil(need))
	if a < 1 {
		a = 1
	}
	return a
}

// Subphases returns the number of subphases in phase i (i·α_i, per
// Algorithm 1 line 9).
func (s Schedule) Subphases(i int) int { return i * s.Alpha(i) }

// PhaseRounds returns the number of flooding rounds phase i consumes:
// i rounds per subphase times i·α_i subphases.
func (s Schedule) PhaseRounds(i int) int { return i * s.Subphases(i) }

// RoundsThrough returns the cumulative flooding rounds for phases 1..i.
func (s Schedule) RoundsThrough(i int) int {
	total := 0
	for p := 1; p <= i; p++ {
		total += s.PhaseRounds(p)
	}
	return total
}

// BoundaryLog returns l_i = log₂|Bd(v,i)| = log₂(d(d−1)^{i−1}), the log
// size of the distance-i boundary of a locally-tree-like ball.
func (s Schedule) BoundaryLog(i int) float64 {
	return math.Log2(float64(s.D)) + float64(i-1)*math.Log2(float64(s.D-1))
}

// Threshold returns θ_i, the minimum final-round fresh color required to
// continue past phase i (Algorithm 1 line 16 / Algorithm 2 line 18):
// θ_i = l_i − log₂(l_i), the near-maximum color expected from the
// ~d(d−1)^{i−1} nodes at distance exactly i.
func (s Schedule) Threshold(i int) float64 {
	l := s.BoundaryLog(i)
	return l - math.Log2(l)
}
