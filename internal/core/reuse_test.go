package core_test

// reuse_test.go pins the arena contract: a World Reset across a
// heterogeneous job sequence — different networks, sizes, Byzantine sets
// (including none after some), adversaries, algorithms, churn, MaxPhase —
// produces results byte-identical to a fresh engine per run. This is the
// regression guard for every piece of state Reset must rewind (held
// boards, logs, slot tables, coin streams, counters, views, crash flags).

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

type reuseJob struct {
	name      string
	net       *hgraph.Network
	byz       []bool
	adversary string
	cfg       core.Config
}

func reuseJobs(t *testing.T) []reuseJob {
	t.Helper()
	net128 := hgraph.MustNew(hgraph.Params{N: 128, D: 8, Seed: 41})
	net96 := hgraph.MustNew(hgraph.Params{N: 96, D: 12, Seed: 42})
	byz128 := hgraph.PlaceByzantine(128, 5, rng.New(43))
	byz96 := hgraph.PlaceByzantine(96, 3, rng.New(44))
	return []reuseJob{
		{name: "byzantine/inflate", net: net128, byz: byz128, adversary: "inflate",
			cfg: core.Config{Algorithm: core.AlgorithmByzantine, Seed: 51}},
		{name: "basic/no-byz-after-byz", net: net128, byz: nil, adversary: "",
			cfg: core.Config{Algorithm: core.AlgorithmBasic, Seed: 52}},
		{name: "other-net/oracle/churn", net: net96, byz: byz96, adversary: "oracle",
			cfg: core.Config{Algorithm: core.AlgorithmByzantine, Seed: 53,
				Churn: core.ChurnConfig{Crashes: 4, Seed: 54}}},
		{name: "back-to-first-net/suppress", net: net128, byz: byz128, adversary: "suppress",
			cfg: core.Config{Algorithm: core.AlgorithmByzantine, Seed: 55, MaxPhase: 12}},
		{name: "phase-activity+injection", net: net96, byz: byz96, adversary: "inflate",
			cfg: core.Config{Algorithm: core.AlgorithmByzantine, Seed: 56,
				RecordPhaseActivity: true, InjectionThreshold: adversary.InjectBase}},
		{name: "repeat-first", net: net128, byz: byz128, adversary: "inflate",
			cfg: core.Config{Algorithm: core.AlgorithmByzantine, Seed: 51}},
	}
}

func TestWorldReuseMatchesFresh(t *testing.T) {
	jobs := reuseJobs(t)
	arena := core.NewWorld()
	defer arena.Close()
	for _, j := range jobs {
		j := j
		t.Run(j.name, func(t *testing.T) {
			adv, ok := adversary.ByName(j.adversary)
			if !ok {
				t.Fatalf("unknown adversary %q", j.adversary)
			}
			got, err := arena.Run(j.net, j.byz, adv, j.cfg)
			if err != nil {
				t.Fatal(err)
			}
			freshAdv, _ := adversary.ByName(j.adversary)
			want, err := core.Run(j.net, j.byz, freshAdv, j.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("reused arena diverged from fresh engine:\nfresh  %v\nreused %v", want, got)
			}
		})
	}
}

// TestWorldReuseSharedTopology runs the same sequence through
// ResetTopology with caller-held Topology values, as the sweep runner
// does on cache hits.
func TestWorldReuseSharedTopology(t *testing.T) {
	jobs := reuseJobs(t)
	topos := map[*hgraph.Network]*core.Topology{}
	for _, j := range jobs {
		if topos[j.net] == nil {
			topos[j.net] = core.NewTopology(j.net)
		}
	}
	arena := core.NewWorld()
	defer arena.Close()
	for _, j := range jobs {
		j := j
		t.Run(j.name, func(t *testing.T) {
			adv, _ := adversary.ByName(j.adversary)
			got, err := arena.RunTopology(topos[j.net], j.byz, adv, j.cfg)
			if err != nil {
				t.Fatal(err)
			}
			freshAdv, _ := adversary.ByName(j.adversary)
			want, err := core.Run(j.net, j.byz, freshAdv, j.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("shared-topology arena diverged from fresh engine")
			}
		})
	}
}
