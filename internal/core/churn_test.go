package core

import (
	"testing"

	"repro/internal/hgraph"
)

func TestChurnCrashesScheduledNodes(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 1024, D: 8, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, nil, nil, Config{
		Algorithm: AlgorithmByzantine,
		Seed:      83,
		Churn:     ChurnConfig{Crashes: 50, Seed: 84},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnCrashes != 50 {
		t.Fatalf("churn crashes = %d, want 50", res.ChurnCrashes)
	}
	if res.CrashedCount != 50 {
		t.Fatalf("crashed count = %d, want 50", res.CrashedCount)
	}
	// A node may decide in an early phase and crash later; its estimate
	// survives (it decided while alive). But any estimate held by a
	// crashed node must have been decided strictly before the run's end,
	// and crashed nodes can never be counted undecided.
	for v := 0; v < res.N; v++ {
		if !res.Crashed[v] {
			continue
		}
		if res.Estimates[v] != 0 && res.DecidedAt[v] >= res.Rounds {
			t.Fatalf("crashed node %d decided at the final round", v)
		}
	}
}

func TestChurnSurvivorsStayAccurate(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 2048, D: 8, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	// 10% of the network crash-fails mid-run.
	res, err := Run(net, nil, nil, Config{
		Algorithm: AlgorithmByzantine,
		Seed:      87,
		Churn:     ChurnConfig{Crashes: 200, Seed: 88},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d survivors undecided under churn", res.UndecidedCount)
	}
	good, survivors := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Crashed[v] {
			continue
		}
		survivors++
		if ratio, ok := res.Ratio(v); ok && ratio >= 0.15 && ratio <= 3.0 {
			good++
		}
	}
	if f := float64(good) / float64(survivors); f < 0.9 {
		t.Fatalf("survivor accuracy %v under 10%% churn", f)
	}
}

func TestChurnZeroIsNoop(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 89})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 91, Churn: ChurnConfig{Crashes: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Estimates {
		if a.Estimates[v] != b.Estimates[v] {
			t.Fatal("zero churn changed results")
		}
	}
}

func TestChurnCapsAtHonestCount(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 64, D: 8, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, nil, nil, Config{
		Algorithm: AlgorithmBasic,
		Seed:      95,
		MaxPhase:  8,
		Churn:     ChurnConfig{Crashes: 1000, Seed: 96},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnCrashes > 64 {
		t.Fatalf("churn crashed %d > n", res.ChurnCrashes)
	}
}
