package core

import (
	"testing"

	"repro/internal/hgraph"
)

// verifyFixture builds a world on a known network, manually populating
// held logs so attestation chains can be unit-tested without running the
// full protocol.
type verifyFixture struct {
	w   *World
	net *hgraph.Network
}

func newVerifyFixture(t *testing.T, byzIdx []int, adv Adversary) *verifyFixture {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, 256)
	for _, b := range byzIdx {
		byz[b] = true
	}
	if adv == nil {
		adv = HonestAdversary{}
	}
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 303}.withDefaults(256)
	w := newWorld(net, byz, adv, cfg)
	t.Cleanup(w.Close)
	adv.Init(w)
	return &verifyFixture{w: w, net: net}
}

// holdFrom marks that node x held color c from round r0 onward (monotone
// held logs, as the engine maintains them). The watermark is advanced to
// the full log so attestation reads the populated entries directly
// instead of clamping to the (unwritten) round 0.
func (f *verifyFixture) holdFrom(x int, c int64, r0 int) {
	for r := r0; r < len(f.w.heldLog[x]); r++ {
		if f.w.heldLog[x][r] < c {
			f.w.heldLog[x][r] = c
		}
	}
	f.w.logUpTo[x] = int32(len(f.w.heldLog[x]) - 1)
}

// pathFrom returns some H-path v -> x1 -> x2 starting at a neighbor of v.
func pathFrom(net *hgraph.Network, v int, length int) []int32 {
	path := []int32{int32(v)}
	seen := map[int32]bool{int32(v): true}
	cur := int32(v)
	for len(path) <= length {
		advanced := false
		for _, nb := range net.H.UniqueNeighbors(int(cur)) {
			if !seen[nb] {
				path = append(path, nb)
				seen[nb] = true
				cur = nb
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	return path
}

// A color relayed along a genuine chain must verify: generator at x2 held
// from round 0, relay x1 from round 1, sender w from round 2; v receives
// at round 3 (k = 3, so the chain is x0=w, x1, x2 with budget 2).
func TestVerifyAcceptsGenuineChain(t *testing.T) {
	f := newVerifyFixture(t, nil, nil)
	path := pathFrom(f.net, 0, 3) // v=0, w=path[1], x1=path[2], x2=path[3]
	if len(path) < 4 {
		t.Skip("could not build a 3-hop path")
	}
	const c = int64(40)
	f.holdFrom(int(path[3]), c, 0) // generator
	f.holdFrom(int(path[2]), c, 1)
	f.holdFrom(int(path[1]), c, 2)
	if !f.w.verifyColor(0, path[1], c, 3) {
		t.Fatal("genuine chain rejected")
	}
}

// Without any holder, the same color must be rejected.
func TestVerifyRejectsUnsupportedColor(t *testing.T) {
	f := newVerifyFixture(t, nil, nil)
	path := pathFrom(f.net, 0, 1)
	if f.w.verifyColor(0, path[1], 40, 3) {
		t.Fatal("unsupported color accepted")
	}
}

// A chain that grounds out too late (generator claims round 1, but the
// timing requires holding at round 0) must be rejected: this is the
// "withheld color" case.
func TestVerifyRejectsLateChain(t *testing.T) {
	f := newVerifyFixture(t, nil, nil)
	path := pathFrom(f.net, 0, 3)
	if len(path) < 4 {
		t.Skip("could not build a 3-hop path")
	}
	const c = int64(40)
	// Everyone held from round 1 — nobody attests generation at round 0.
	f.holdFrom(int(path[3]), c, 1)
	f.holdFrom(int(path[2]), c, 1)
	f.holdFrom(int(path[1]), c, 2)
	if f.w.verifyColor(0, path[1], c, 3) {
		t.Fatal("late chain accepted: a color nobody generated at round 0 passed")
	}
}

// At round 1 only the sender's generation attestation matters.
func TestVerifyRoundOneGeneration(t *testing.T) {
	f := newVerifyFixture(t, nil, nil)
	path := pathFrom(f.net, 0, 1)
	w := path[1]
	const c = int64(17)
	if f.w.verifyColor(0, w, c, 1) {
		t.Fatal("round-1 color accepted without generation")
	}
	f.holdFrom(int(w), c, 0)
	if !f.w.verifyColor(0, w, c, 1) {
		t.Fatal("round-1 generated color rejected")
	}
}

// Attestation with held >= c (not equality) must pass: a bigger color
// upstream justifies the received one.
func TestVerifyAcceptsDominatingChain(t *testing.T) {
	f := newVerifyFixture(t, nil, nil)
	path := pathFrom(f.net, 0, 3)
	if len(path) < 4 {
		t.Skip("could not build a 3-hop path")
	}
	f.holdFrom(int(path[3]), 100, 0)
	f.holdFrom(int(path[2]), 100, 1)
	f.holdFrom(int(path[1]), 100, 2)
	if !f.w.verifyColor(0, path[1], 40, 3) {
		t.Fatal("dominated color rejected despite bigger legit color upstream")
	}
}

// attestYes is an adversary whose Byzantine nodes attest to anything.
type attestYes struct{ HonestAdversary }

func (attestYes) Attest(*World, int, int, int64, int) bool { return true }

// A single Byzantine node (no Byzantine chain) cannot make a round-k color
// pass: the DFS needs k-1 further attestors beyond the sender and honest
// ones refuse.
func TestVerifyRejectsIsolatedByzantineMidSubphase(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a Byzantine node whose neighbors are all honest and find an
	// honest victim adjacent to it.
	b := 13
	byz := make([]bool, 256)
	byz[b] = true
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 303}.withDefaults(256)
	adv := attestYes{}
	w := newWorld(net, byz, adv, cfg)
	defer w.Close()
	victim := int(net.H.UniqueNeighbors(b)[0])
	// t = k = 3: needs a chain of 2 beyond b; all of b's neighbors are
	// honest with empty logs.
	if w.verifyColor(victim, int32(b), 1<<30, 3) {
		t.Fatal("isolated Byzantine injected at round k")
	}
	// But t = 1 must pass (generation claim, Lemma 16 allows it).
	if !w.verifyColor(victim, int32(b), 1<<30, 1) {
		t.Fatal("round-1 Byzantine generation claim rejected")
	}
}

// The simple-path rule: two adjacent Byzantine nodes must not be able to
// simulate a longer chain by bouncing the attestation between themselves
// (w -> b2 -> w -> b2 ...).
func TestVerifySimplePathPreventsBouncing(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	// Find an H-adjacent pair to make Byzantine.
	var b1, b2 int = -1, -1
	for v := 0; v < 256 && b1 < 0; v++ {
		nb := net.H.UniqueNeighbors(v)
		if len(nb) > 0 {
			b1, b2 = v, int(nb[0])
		}
	}
	byz := make([]bool, 256)
	byz[b1], byz[b2] = true, true
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 303}.withDefaults(256)
	w := newWorld(net, byz, attestYes{}, cfg)
	defer w.Close()

	// Victim adjacent to b1 but not Byzantine.
	victim := -1
	for _, nb := range net.H.UniqueNeighbors(b1) {
		if !byz[nb] {
			victim = int(nb)
			break
		}
	}
	if victim < 0 {
		t.Skip("no honest victim adjacent to the pair")
	}
	// t = k = 3 needs chain b1 -> x1 -> x2 with distinct x's; the pair can
	// only offer b1 -> b2 -> (honest, refuses) or b1 -> b2 -> b1 (revisit,
	// blocked). Unless b2 has another Byzantine neighbor, this must fail.
	thirdByz := false
	for _, nb := range net.H.UniqueNeighbors(b2) {
		if byz[nb] && int(nb) != b1 {
			thirdByz = true
		}
	}
	if thirdByz {
		t.Skip("accidental byzantine triangle")
	}
	if w.verifyColor(victim, int32(b1), 1<<30, 3) {
		t.Fatal("two Byzantine nodes simulated a 3-chain via path revisits")
	}
}
