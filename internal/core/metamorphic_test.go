package core

import (
	"crypto/sha256"
	"encoding/binary"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

// metamorphic_test.go checks the engine's relabeling invariance: protocol
// dynamics are a function of network structure and per-node coin streams,
// never of node numbering. Running the same configuration on an
// isomorphic permuted network — with each node's coin stream carried
// along the permutation — must produce the permuted per-node results and
// the identical aggregate digest. A violation means some code path leaks
// node indices into the dynamics (iteration-order dependence, index
// arithmetic in a tie-break, a stray global counter keyed by label).

// permuteGraph relabels g by pi: node v becomes pi[v], multi-edges and
// adjacency multiplicities preserved.
func permuteGraph(t *testing.T, g *graph.Graph, pi []int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			switch {
			case int32(u) < v:
				b.AddEdge(pi[u], pi[int(v)])
			case int32(u) == v:
				b.AddEdge(pi[u], pi[u])
			}
		}
	}
	return b.Build()
}

// permuteNetwork builds the isomorphic relabeled instance of net.
func permuteNetwork(t *testing.T, net *hgraph.Network, pi []int) *hgraph.Network {
	t.Helper()
	ids := make([]uint64, len(net.IDs))
	for v, id := range net.IDs {
		ids[pi[v]] = id
	}
	return &hgraph.Network{
		Params: net.Params,
		H:      permuteGraph(t, net.H, pi),
		G:      permuteGraph(t, net.G, pi),
		K:      net.K,
		IDs:    ids,
	}
}

// aggregateDigest hashes the order-free run outcome: the sorted estimate
// multiset plus the totals every relabeling must preserve. Message/bit
// counters are deliberately excluded: Algorithm 2's attestation search
// stops at the first chain it finds, so the number of queries it pays
// depends on adjacency iteration order (which relabeling permutes) even
// though the accept/reject decision — and therefore every estimate — does
// not. TestMetamorphicRelabelInvariance asserts the counters separately
// for Algorithm 1, where accounting is search-free.
func aggregateDigest(r *Result) [32]byte {
	est := append([]int32(nil), r.Estimates...)
	slices.Sort(est)
	h := sha256.New()
	for _, e := range est {
		binary.Write(h, binary.LittleEndian, e)
	}
	binary.Write(h, binary.LittleEndian, r.Rounds)
	binary.Write(h, binary.LittleEndian, int64(r.Phases))
	binary.Write(h, binary.LittleEndian, int64(r.CrashedCount))
	binary.Write(h, binary.LittleEndian, int64(r.UndecidedCount))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func TestMetamorphicRelabelInvariance(t *testing.T) {
	cases := []struct {
		name      string
		algorithm Algorithm
		byzCount  int
	}{
		{"basic", AlgorithmBasic, 0},
		{"byzantine", AlgorithmByzantine, 0},
		{"byzantine/honest-byz", AlgorithmByzantine, 5},
	}
	const n = 192
	net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: 501})
	pi := rng.New(502).Perm(n)
	pnet := permuteNetwork(t, net, pi)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var byz, pbyz []bool
			if tc.byzCount > 0 {
				byz = hgraph.PlaceByzantine(n, tc.byzCount, rng.New(503))
				pbyz = make([]bool, n)
				for v, b := range byz {
					pbyz[pi[v]] = b
				}
			}
			cfg := Config{Algorithm: tc.algorithm, Seed: 504, Workers: 1}
			res, err := Run(net, byz, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// The permuted run: same config on the relabeled network, with
			// node pi[v] owning original node v's coin stream (the streams
			// are part of the node identity being relabeled).
			w := NewWorld()
			defer w.Close()
			if err := w.Reset(pnet, pbyz, nil, cfg); err != nil {
				t.Fatal(err)
			}
			for v := 0; v < n; v++ {
				w.colorSrc[pi[v]].SeedSplit(cfg.Seed, uint64(v))
			}
			pres, err := w.run()
			if err != nil {
				t.Fatal(err)
			}

			if res.Rounds != pres.Rounds {
				t.Fatalf("rounds %d != permuted %d", res.Rounds, pres.Rounds)
			}
			for v := 0; v < n; v++ {
				if res.Estimates[v] != pres.Estimates[pi[v]] {
					t.Fatalf("node %d estimate %d != permuted node %d estimate %d",
						v, res.Estimates[v], pi[v], pres.Estimates[pi[v]])
				}
				if res.DecidedAt[v] != pres.DecidedAt[pi[v]] {
					t.Fatalf("node %d decision round differs under relabeling", v)
				}
				if res.Crashed[v] != pres.Crashed[pi[v]] {
					t.Fatalf("node %d crash state differs under relabeling", v)
				}
			}
			if aggregateDigest(res) != aggregateDigest(pres) {
				t.Fatalf("aggregate digests differ under relabeling:\n%x\n%x",
					aggregateDigest(res), aggregateDigest(pres))
			}
			if tc.algorithm == AlgorithmBasic && (res.Messages != pres.Messages || res.Bits != pres.Bits) {
				t.Fatalf("Algorithm 1 communication changed under relabeling: %d/%d bits vs %d/%d",
					res.Messages, res.Bits, pres.Messages, pres.Bits)
			}
		})
	}
}

// TestMetamorphicPermutedNetworkIsIsomorphic sanity-checks the harness
// itself: the permuted instance must be a genuine isomorphic copy.
func TestMetamorphicPermutedNetworkIsIsomorphic(t *testing.T) {
	const n = 96
	net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: 505})
	pi := rng.New(506).Perm(n)
	pnet := permuteNetwork(t, net, pi)
	if pnet.H.NumEdges() != net.H.NumEdges() || pnet.G.NumEdges() != net.G.NumEdges() {
		t.Fatal("edge counts changed under permutation")
	}
	for v := 0; v < n; v++ {
		if net.H.Degree(v) != pnet.H.Degree(pi[v]) {
			t.Fatalf("H degree of %d changed under permutation", v)
		}
		// Adjacency multisets must map exactly.
		want := map[int32]int{}
		for _, nb := range net.H.Neighbors(v) {
			want[int32(pi[int(nb)])]++
		}
		for _, nb := range pnet.H.Neighbors(pi[v]) {
			want[nb]--
		}
		for nb, c := range want {
			if c != 0 {
				t.Fatalf("node %d: neighbor %d multiplicity off by %d", v, nb, c)
			}
		}
	}
}
