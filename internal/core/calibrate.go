package core

import "math"

// calibrate.go is an engineering extension beyond the paper (its §4 poses
// improving the approximation factor toward 1 ± o(1) as an open problem).
//
// The protocol's raw estimate is the decided phase i, which concentrates
// on the flooding horizon of the network: i ≈ ecc_H(v) + 1 ≈
// log n / log(d−1) + O(1). Since d is known to every node, a node can
// locally rescale:
//
//	ĉ(i) = (i − 1) · log₂(d − 1)
//
// which empirically lands within ~10–15% of log₂ n across the simulated
// range (experiment E14) — far tighter than the generic constant-factor
// band, though with no matching proof; the paper's open problem stands.

// CalibratedEstimate rescales a decided phase into a direct estimate of
// log₂ n using the known degree d.
func CalibratedEstimate(phase, d int) float64 {
	if phase <= 0 {
		return 0
	}
	return float64(phase-1) * math.Log2(float64(d-1))
}

// CalibratedRatio returns node v's calibrated estimate divided by the true
// log₂ n (the quantity E14 shows concentrating near 1), with ok=false for
// nodes without an estimate.
func (r *Result) CalibratedRatio(v int) (ratio float64, ok bool) {
	e, ok := r.EstimateOf(v)
	if !ok || r.LogN == 0 {
		return 0, false
	}
	return CalibratedEstimate(e, r.D) / r.LogN, true
}
