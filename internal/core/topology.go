package core

import (
	"fmt"

	"repro/internal/hgraph"
)

// Topology is the immutable half of the simulation arena: tables derived
// from a Network alone, computed once and shared by every run on that
// network (the sweep layer caches a Topology alongside each cached
// Network). The mutable half lives in World and is rewound by Reset.
//
// The tables are what let stepNode run allocation-free with O(1) lookups:
// the H adjacency in raw CSR form (one bounds-checked slice index per
// neighbor instead of a Neighbors call per node per round), and the
// reverse-edge index that Reset uses to build the CSR-aligned Byzantine
// send-slot table in O(Byzantine degree) time.
type Topology struct {
	// Net is the network these tables were derived from.
	Net *hgraph.Network

	// hOff/hAdj are H's CSR arrays (aliases of the graph's storage):
	// node v's H-neighbors are hAdj[hOff[v]:hOff[v+1]].
	hOff []int32
	hAdj []int32

	// rev[e] is the CSR position of entry e's reverse edge: if e is the
	// j-th occurrence of x in v's adjacency, rev[e] is the j-th occurrence
	// of v in x's adjacency (multigraph multiplicities pair off exactly;
	// a self-loop entry is its own reverse).
	rev []int32
}

// NewTopology precomputes the engine's per-network tables. The returned
// Topology is immutable and safe to share across Worlds and goroutines.
func NewTopology(net *hgraph.Network) *Topology {
	off, adj := net.H.CSR()
	return &Topology{
		Net:  net,
		hOff: off,
		hAdj: adj,
		rev:  buildReverse(off, adj),
	}
}

// Rev exposes the reverse-edge index for serialization (the topology
// store persists it alongside the network so a disk hit skips table
// construction entirely). The slice aliases internal storage and must be
// treated as read-only.
func (t *Topology) Rev() []int32 { return t.rev }

// TopologyFromRev reassembles a Topology from a network and a persisted
// reverse-edge index, validating that rev is exactly the canonical index
// buildReverse would produce: every entry in bounds, pointing back into
// the right row (adj[rev[e]] must be the row's owner), an involution
// (rev[rev[e]] == e), and parallel-edge runs paired occurrence-by-
// occurrence starting at the first occurrence — the pairing the engine's
// Byzantine send-slot latching depends on. Anything else is rejected, so
// a corrupt or hand-mangled store file can never reach the round loop.
func TopologyFromRev(net *hgraph.Network, rev []int32) (*Topology, error) {
	off, adj := net.H.CSR()
	if len(rev) != len(adj) {
		return nil, fmt.Errorf("core: rev has %d entries, H adjacency has %d", len(rev), len(adj))
	}
	n := len(off) - 1
	for v := 0; v < n; v++ {
		occStart := off[v] // first entry of the current parallel-edge run
		var revStart int32 // rev of that first entry
		for e := off[v]; e < off[v+1]; e++ {
			x := adj[e]
			r := rev[e]
			if r < 0 || int(r) >= len(adj) {
				return nil, fmt.Errorf("core: rev[%d] = %d out of range", e, r)
			}
			if adj[r] != int32(v) {
				return nil, fmt.Errorf("core: rev[%d] points at an edge of %d, want %d", e, adj[r], v)
			}
			if rev[r] != e {
				return nil, fmt.Errorf("core: rev not an involution at entry %d", e)
			}
			if e == off[v] || adj[e-1] != x {
				// New run: its reverse must start at x's first occurrence
				// of v (the entry before r, if any, must not be v).
				if r > off[x] && adj[r-1] == int32(v) {
					return nil, fmt.Errorf("core: rev[%d] skips occurrences of %d in row %d", e, v, x)
				}
				occStart, revStart = e, r
			} else if r != revStart+(e-occStart) {
				// Within a run, occurrences pair off in order.
				return nil, fmt.Errorf("core: rev[%d] breaks occurrence order in row %d", e, v)
			}
		}
	}
	return &Topology{Net: net, hOff: off, hAdj: adj, rev: rev}, nil
}

// buildReverse pairs every directed CSR entry with its reverse entry.
// Adjacency lists are sorted, so the occurrences of x in v's list are
// contiguous, and the j-th is matched to the j-th occurrence of v in x's
// list (found by binary search: O(E log d) once per network).
func buildReverse(off, adj []int32) []int32 {
	rev := make([]int32, len(adj))
	n := len(off) - 1
	for v := 0; v < n; v++ {
		occStart := off[v]
		for e := off[v]; e < off[v+1]; e++ {
			x := adj[e]
			if e > off[v] && adj[e-1] != x {
				occStart = e
			}
			j := e - occStart
			lo, hi := off[x], off[x+1]
			for lo < hi {
				mid := (lo + hi) / 2
				if adj[mid] < int32(v) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			rev[e] = lo + j
		}
	}
	return rev
}
