package core

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

// legacyScheduleChurn is the seed engine's map-based churn scheduler,
// kept verbatim as the reference the allocation-free FaultPlan path must
// reproduce draw-for-draw.
func legacyScheduleChurn(cfg Config, byz []bool) map[int][]int {
	if cfg.Churn.Crashes <= 0 {
		return nil
	}
	last := cfg.Churn.LastPhase
	if last == 0 {
		last = 6
	}
	if last < 2 {
		last = 2
	}
	src := rng.New(cfg.Churn.Seed + 0xC4A5)
	var honest []int
	for v, b := range byz {
		if !b {
			honest = append(honest, v)
		}
	}
	count := cfg.Churn.Crashes
	if count > len(honest) {
		count = len(honest)
	}
	schedule := make(map[int][]int, last)
	for _, idx := range src.Sample(len(honest), count) {
		phase := 2 + src.Intn(last-1)
		schedule[phase] = append(schedule[phase], honest[idx])
	}
	return schedule
}

// TestCrashChurnMatchesLegacySchedule pins the refactor: for both Sample
// branches (sparse and dense draws), the plan's crash events must be the
// legacy map's per-phase victim lists in identical replay order.
func TestCrashChurnMatchesLegacySchedule(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 300, D: 8, Seed: 31})
	byz := hgraph.PlaceByzantine(300, 7, rng.New(32))
	for _, crashes := range []int{1, 5, 30, 120, 299} { // 120+ hits the dense Perm branch
		cfg := Config{Algorithm: AlgorithmBasic, Seed: 33, Workers: 1,
			Churn: ChurnConfig{Crashes: crashes, Seed: 34, LastPhase: 9}}
		w := NewWorld()
		if err := w.Reset(net, byz, nil, cfg); err != nil {
			t.Fatal(err)
		}
		w.scheduleFaults()
		want := legacyScheduleChurn(cfg, byz)
		idx := 0
		for phase := 0; phase <= 9; phase++ {
			for _, victim := range want[phase] {
				if idx >= len(w.plan.events) {
					t.Fatalf("crashes=%d: plan has %d events, legacy has more", crashes, len(w.plan.events))
				}
				ev := w.plan.events[idx]
				idx++
				if ev.kind != faultCrash || int(ev.phase) != phase || int(ev.node) != victim {
					t.Fatalf("crashes=%d event %d: got (phase=%d node=%d kind=%d), want (phase=%d node=%d crash)",
						crashes, idx-1, ev.phase, ev.node, ev.kind, phase, victim)
				}
			}
		}
		if idx != len(w.plan.events) {
			t.Fatalf("crashes=%d: plan has %d extra events", crashes, len(w.plan.events)-idx)
		}
		w.Close()
	}
}

// TestFaultScheduleZeroAllocOnReuse is the regression for the legacy
// scheduler's per-run map[int][]int: on a warm arena, building and
// replaying a churn schedule (crash and join models together) must not
// allocate.
func TestFaultScheduleZeroAllocOnReuse(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 512, D: 8, Seed: 41})
	cfg := Config{Algorithm: AlgorithmBasic, Seed: 42, Workers: 1,
		Churn:  ChurnConfig{Crashes: 40, Seed: 43},
		Faults: []FaultModel{JoinChurn{Count: 30, Seed: 44}, MessageLoss{Prob: 0.05}},
	}
	w := NewWorld()
	defer w.Close()
	if err := w.Reset(net, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}
	w.scheduleFaults() // warm the slabs to steady state
	allocs := testing.AllocsPerRun(50, func() {
		w.plan.reset(w.N())
		w.scheduleFaults()
		for i := 1; i <= 10; i++ {
			w.applyFaults(i)
		}
	})
	if allocs != 0 {
		t.Errorf("fault scheduling allocates %.1f objects per run, want 0", allocs)
	}
}

func TestJoinChurnRejoinsAndStaysAccurate(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 1024, D: 8, Seed: 51})
	res, err := Run(net, nil, nil, Config{
		Algorithm: AlgorithmByzantine,
		Seed:      52,
		Faults:    []FaultModel{JoinChurn{Count: 100, Seed: 53}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnCrashes != 100 {
		t.Fatalf("join churn scheduled %d leaves, want 100", res.ChurnCrashes)
	}
	if res.Rejoins == 0 {
		t.Fatal("no node ever rejoined")
	}
	if res.Rejoins+res.CrashedCount != res.ChurnCrashes {
		t.Fatalf("rejoins %d + still-down %d != leaves %d", res.Rejoins, res.CrashedCount, res.ChurnCrashes)
	}
	// Rejoined nodes must re-converge: every honest uncrashed node decides,
	// and the aggregate accuracy holds.
	if res.UndecidedCount != 0 {
		t.Fatalf("%d rejoined/surviving nodes undecided", res.UndecidedCount)
	}
	good, survivors := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Crashed[v] {
			continue
		}
		survivors++
		if ratio, ok := res.Ratio(v); ok && ratio >= 0.15 && ratio <= 3.0 {
			good++
		}
	}
	if f := float64(good) / float64(survivors); f < 0.95 {
		t.Fatalf("survivor accuracy %v under join churn", f)
	}
}

// TestJoinChurnNeverRevivesExchangeCrashes: a node that crashed itself in
// the topology exchange must stay down even if the oblivious schedule
// had a leave/rejoin cycle for it.
func TestJoinChurnNeverRevivesExchangeCrashes(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 256, D: 8, Seed: 55})
	byz := hgraph.PlaceByzantine(256, 6, rng.New(56))
	adv := &liarAdversary{}
	w := NewWorld()
	defer w.Close()
	res, err := w.Run(net, byz, adv, Config{
		Algorithm: AlgorithmByzantine,
		Seed:      57,
		Faults:    []FaultModel{JoinChurn{Count: 200, Seed: 58}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run without churn to identify the exchange crashes.
	ref, err := Run(net, byz, &liarAdversary{}, Config{Algorithm: AlgorithmByzantine, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	if ref.CrashedCount == 0 {
		t.Skip("liar produced no exchange crashes at this seed")
	}
	for v := 0; v < res.N; v++ {
		if ref.Crashed[v] && !res.Crashed[v] {
			t.Fatalf("exchange-crashed node %d was revived by join churn", v)
		}
	}
}

// liarAdversary crashes its audience with a degree-violating claim: the
// simplest way to manufacture exchange crashes for the revival test.
type liarAdversary struct{ HonestAdversary }

func (a *liarAdversary) ClaimHNeighbors(w *World, b, v int) []int32 {
	return []int32{int32(v)} // wrong degree: v crashes on receipt
}

// TestPermanentCrashBeatsRejoin pins the composition semantics of
// permanent crashes (CrashChurn, exchange) against leave/rejoin cycles:
// whatever order the phases land in, a permanently crashed node never
// comes back.
func TestPermanentCrashBeatsRejoin(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 64, D: 8, Seed: 45})
	run := func(build func(p *FaultPlan)) *World {
		w := NewWorld()
		t.Cleanup(w.Close)
		if err := w.Reset(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 46, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		build(&w.plan)
		w.plan.seal()
		for i := 1; i <= 6; i++ {
			w.applyFaults(i)
		}
		return w
	}
	// Sanity: a lone leave/rejoin cycle revives the node.
	w := run(func(p *FaultPlan) { p.LeaveAt(2, 5); p.RejoinAt(4, 5) })
	if w.crashed[5] || w.rejoins != 1 {
		t.Fatalf("lone cycle: crashed=%v rejoins=%d, want revived", w.crashed[5], w.rejoins)
	}
	// Permanent crash lands while the node is temporarily down: the
	// pending rejoin must die with it.
	w = run(func(p *FaultPlan) { p.LeaveAt(2, 5); p.RejoinAt(4, 5); p.CrashAt(3, 5) })
	if !w.crashed[5] || w.rejoins != 0 {
		t.Fatalf("crash during absence: crashed=%v rejoins=%d, want permanently down", w.crashed[5], w.rejoins)
	}
	// Permanent crash first, leave/rejoin scheduled after: no-op leave,
	// no revival.
	w = run(func(p *FaultPlan) { p.CrashAt(2, 5); p.LeaveAt(3, 5); p.RejoinAt(4, 5) })
	if !w.crashed[5] || w.rejoins != 0 {
		t.Fatalf("crash before leave: crashed=%v rejoins=%d, want permanently down", w.crashed[5], w.rejoins)
	}
}

// TestCrashChurnVictimsStayDownUnderJoinChurn drives the same guarantee
// end-to-end through the composed models at a density where victim
// collisions are certain.
func TestCrashChurnVictimsStayDownUnderJoinChurn(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 64, D: 8, Seed: 47})
	// First run crash churn alone to learn its victims.
	ref, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 48, MaxPhase: 12,
		Churn: ChurnConfig{Crashes: 40, Seed: 49}})
	if err != nil {
		t.Fatal(err)
	}
	// Then compose with join churn over the same node population: 40+40
	// draws from 64 nodes must collide.
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 48, MaxPhase: 12,
		Churn:  ChurnConfig{Crashes: 40, Seed: 49},
		Faults: []FaultModel{JoinChurn{Count: 40, Seed: 50}}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < res.N; v++ {
		if ref.Crashed[v] && !res.Crashed[v] {
			t.Fatalf("crash-churn victim %d resurrected by composed join churn", v)
		}
	}
}

func TestMessageLossZeroIsNoop(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 256, D: 8, Seed: 61})
	a, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 62,
		Faults: []FaultModel{MessageLoss{Prob: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, a, b)
	if b.DroppedMessages != 0 {
		t.Fatalf("zero-probability loss dropped %d messages", b.DroppedMessages)
	}
}

func TestMessageLossDeterministicAcrossWorkers(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 512, D: 8, Seed: 63})
	byz := hgraph.PlaceByzantine(512, 4, rng.New(64))
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 65,
		Faults: []FaultModel{MessageLoss{Prob: 0.1}}}
	cfg.Workers = 1
	a, err := Run(net, byz, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Run(net, byz, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, a, b)
	if a.DroppedMessages == 0 {
		t.Fatal("loss at p=0.1 dropped nothing: the test exercises nothing")
	}
}

func TestMessageLossDegradesGracefully(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 1024, D: 8, Seed: 67})
	moderate, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 68,
		Faults: []FaultModel{MessageLoss{Prob: 0.1}}})
	if err != nil {
		t.Fatal(err)
	}
	if moderate.UndecidedCount != 0 {
		t.Fatalf("%d nodes undecided at 10%% loss", moderate.UndecidedCount)
	}
	good := 0
	for v := 0; v < moderate.N; v++ {
		if ratio, ok := moderate.Ratio(v); ok && ratio >= 0.15 && ratio <= 3.0 {
			good++
		}
	}
	if f := float64(good) / float64(moderate.N); f < 0.95 {
		t.Fatalf("correct fraction %v at 10%% loss", f)
	}
	// Near-total loss must visibly break estimation — the model is not a
	// no-op. With p=0.95 a node hears almost nothing, its k_i stays 0, the
	// continue criterion never fires, and it decides in the earliest
	// phases with a far-too-small estimate.
	broken, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 68,
		Faults: []FaultModel{MessageLoss{Prob: 0.95}}})
	if err != nil {
		t.Fatal(err)
	}
	if broken.DroppedMessages <= moderate.DroppedMessages {
		t.Fatal("p=0.95 dropped fewer messages than p=0.1")
	}
	mean := func(r *Result) float64 {
		sum, cnt := 0.0, 0
		for v := 0; v < r.N; v++ {
			if e := r.Estimates[v]; e > 0 {
				sum += float64(e)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if mb, mm := mean(broken), mean(moderate); mb >= mm-1 {
		t.Fatalf("near-total loss left estimates intact (%.2f vs %.2f): loss path suspect", mb, mm)
	}
}

func TestConfigValidatesFaultModels(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 64, D: 8, Seed: 71})
	for _, cfg := range []Config{
		{Algorithm: AlgorithmBasic, Faults: []FaultModel{MessageLoss{Prob: 1.5}}},
		{Algorithm: AlgorithmBasic, Faults: []FaultModel{MessageLoss{Prob: -0.1}}},
		{Algorithm: AlgorithmBasic, Faults: []FaultModel{JoinChurn{Count: -1}}},
		{Algorithm: AlgorithmBasic, Faults: []FaultModel{CrashChurn{Crashes: -2}}},
		{Algorithm: AlgorithmBasic, Churn: ChurnConfig{Crashes: -1}},
	} {
		if _, err := Run(net, nil, nil, cfg); err == nil {
			t.Fatalf("config %+v validated", cfg)
		}
	}
	// Nil fault entries are ignored, not dereferenced.
	if _, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 72,
		Faults: []FaultModel{nil, MessageLoss{Prob: 0.01}}}); err != nil {
		t.Fatalf("nil fault entry rejected: %v", err)
	}
}

// TestCrashChurnFaultMatchesChurnConfig: the same parameters through
// Config.Churn and through an explicit CrashChurn fault model must yield
// identical runs.
func TestCrashChurnFaultMatchesChurnConfig(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 512, D: 8, Seed: 73})
	a, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 74,
		Churn: ChurnConfig{Crashes: 25, Seed: 75, LastPhase: 8}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 74,
		Faults: []FaultModel{CrashChurn{Crashes: 25, Seed: 75, LastPhase: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, a, b)
}
