package core

import (
	"strings"
	"testing"

	"repro/internal/hgraph"
)

// TestTopologyFromRevAcceptsCanonical pins that the persisted reverse
// index round-trips: buildReverse output is accepted and reproduces the
// exact table.
func TestTopologyFromRevAcceptsCanonical(t *testing.T) {
	for _, p := range []hgraph.Params{
		{N: 16, D: 4, Seed: 3}, // tiny: parallel edges are near-certain
		{N: 96, D: 8, Seed: 701},
	} {
		net := hgraph.MustNew(p)
		want := NewTopology(net)
		got, err := TopologyFromRev(net, want.Rev())
		if err != nil {
			t.Fatalf("params %+v: canonical rev rejected: %v", p, err)
		}
		for e, r := range want.rev {
			if got.rev[e] != r {
				t.Fatalf("params %+v: rev differs at %d", p, e)
			}
		}
	}
}

// TestTopologyFromRevRejectsNonCanonical walks the reject space: length
// mismatch, out-of-range entries, broken involutions, and — the subtle
// one — a valid-looking involution that pairs parallel edges in the
// wrong order, which would silently reorder Byzantine send slots.
func TestTopologyFromRevRejectsNonCanonical(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 64, D: 8, Seed: 7})
	canon := NewTopology(net).Rev()

	mutate := func(f func(rev []int32)) []int32 {
		rev := make([]int32, len(canon))
		copy(rev, canon)
		f(rev)
		return rev
	}

	cases := map[string][]int32{
		"short":        canon[:len(canon)-1],
		"out-of-range": mutate(func(rev []int32) { rev[0] = int32(len(rev)) }),
		"negative":     mutate(func(rev []int32) { rev[3] = -1 }),
		"not-involution": mutate(func(rev []int32) {
			// Point two entries of the same row at each other's reverses
			// without fixing the back-pointers.
			rev[0], rev[1] = rev[1], rev[0]
		}),
	}
	for name, rev := range cases {
		if _, err := TopologyFromRev(net, rev); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Swap a parallel-edge pair completely (both directions), producing a
	// self-consistent involution that is not the canonical occurrence-
	// ordered pairing. Find a run of parallel edges first.
	off, adj := net.H.CSR()
	n := net.H.N()
	found := false
	for v := 0; v < n && !found; v++ {
		for e := off[v]; e+1 < off[v+1]; e++ {
			if adj[e] == adj[e+1] && adj[e] != int32(v) {
				rev := mutate(func(rev []int32) {
					r0, r1 := rev[e], rev[e+1]
					rev[e], rev[e+1] = r1, r0
					rev[r0], rev[r1] = e+1, e
				})
				if _, err := TopologyFromRev(net, rev); err == nil {
					t.Error("occurrence-swapped involution accepted")
				} else if !strings.Contains(err.Error(), "occurrence") {
					t.Errorf("occurrence swap rejected for the wrong reason: %v", err)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("instance has no parallel edges; widen the params")
	}
}
