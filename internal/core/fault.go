package core

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/rng"
)

// fault.go is the pluggable fault-model layer. The paper states Theorem 1
// for a static network with random Byzantine placement; the successor work
// (Byzantine-Resilient Counting in Networks, arXiv:2204.11951) studies
// dynamic and oblivious fault regimes, and Nesterenko & Tixeuil motivate
// stressing topology discovery under message omission. A FaultModel turns
// those regimes into first-class run parameters: each model contributes
// scheduled crash/rejoin transitions and/or per-edge message omission to a
// run's FaultPlan, and the engine replays the plan during the round loop.
//
// Two invariants the layer preserves:
//
//   - Determinism. Every model draws from value-typed rng.Sources seeded
//     from its own seed (or split from the run seed), and message-loss
//     coins are a stateless hash of (seed, CSR entry, global round) — the
//     same run is byte-identical at any worker count.
//   - The zero-allocation round loop. All schedule state lives in the
//     World's reusable FaultPlan scratch (event slab, permutation buffer,
//     ownership bitmap), and the per-edge loss check is pure arithmetic,
//     so TestRoundLoopZeroAlloc holds with fault models enabled.

// FaultModel is one pluggable source of runtime faults. Implementations
// are plain-data configs (CrashChurn, JoinChurn, MessageLoss); Schedule is
// called once per run, after the arena is Reset and the topology exchange
// has completed, to contribute the model's events to the run's plan.
type FaultModel interface {
	// Name identifies the model in reports and sweep axes.
	Name() string
	// Validate reports configuration errors (called by Config.Validate).
	Validate() error
	// Schedule contributes the model's fault events and loss parameters
	// to the run's plan. Implementations must draw all randomness from
	// seeds they own (or derive from w.Cfg.Seed) so runs stay pure
	// functions of their configuration.
	Schedule(w *World, plan *FaultPlan)
}

// faultKind distinguishes plan events.
type faultKind int8

const (
	faultCrash  faultKind = iota // the node crash-fails (permanently, unless rejoined)
	faultRejoin                  // the node rejoins: clears a crash this plan owns
)

// faultEvent is one scheduled transition. seq preserves insertion order
// within a phase so the replay matches the legacy per-phase append order;
// rejoinable marks a crash a later RejoinAt may undo (a leave), as
// opposed to a permanent crash.
type faultEvent struct {
	phase      int32
	seq        int32
	kind       faultKind
	rejoinable bool
	node       int32
}

// FaultPlan is the per-run fault schedule, built by the FaultModels'
// Schedule calls and replayed at phase starts. It lives in the World as
// reusable scratch: rewinding it between runs touches no allocator once
// the slabs reach steady-state size.
type FaultPlan struct {
	events []faultEvent
	cursor int

	// Message omission: a reception on CSR entry e in global round r is
	// dropped iff omitCoin(lossSeed, e, r) < lossThresh.
	lossThresh uint64
	lossSeed   uint64

	// down[v] marks nodes down from a rejoinable leave (LeaveAt): only
	// those may be rejoined. A node that crashed itself in the exchange,
	// or that a permanent CrashAt claimed — before or during its absence —
	// stays down even if a churn model scheduled a rejoin for it.
	down []bool

	// Reusable scratch for the scheduling helpers below.
	honest []int32
	perm   []int32
}

// reset rewinds the plan for a new run on an n-node network.
func (p *FaultPlan) reset(n int) {
	p.events = p.events[:0]
	p.cursor = 0
	p.lossThresh = 0
	p.lossSeed = 0
	p.down = resetSlice(p.down, n)
}

// CrashAt schedules node v to crash-fail permanently at the start of
// phase. A permanent crash landing on a node that is temporarily down
// cancels the node's pending rejoin: permanence wins regardless of the
// order the schedules drew their phases.
func (p *FaultPlan) CrashAt(phase, v int) {
	p.events = append(p.events, faultEvent{phase: int32(phase), seq: int32(len(p.events)), kind: faultCrash, node: int32(v)})
}

// LeaveAt schedules node v to go down at the start of phase, eligible for
// a later RejoinAt. A leave landing on an already-crashed node is a
// no-op (the earlier crash keeps its semantics).
func (p *FaultPlan) LeaveAt(phase, v int) {
	p.events = append(p.events, faultEvent{phase: int32(phase), seq: int32(len(p.events)), kind: faultCrash, rejoinable: true, node: int32(v)})
}

// RejoinAt schedules node v to rejoin at the start of phase. The rejoin
// fires only if the node is down from a LeaveAt of this plan and no
// permanent crash (exchange or CrashAt) has claimed it.
func (p *FaultPlan) RejoinAt(phase, v int) {
	p.events = append(p.events, faultEvent{phase: int32(phase), seq: int32(len(p.events)), kind: faultRejoin, node: int32(v)})
}

// SetLoss configures per-edge message omission: each directed reception is
// independently dropped with probability prob. Later calls override.
func (p *FaultPlan) SetLoss(prob float64, seed uint64) {
	switch {
	case prob <= 0:
		p.lossThresh = 0
	case prob >= 1:
		p.lossThresh = math.MaxUint64
	default:
		p.lossThresh = uint64(prob * (1 << 64))
	}
	p.lossSeed = seed
}

// seal orders the events for replay: by phase, insertion order within a
// phase (the order the legacy map-based schedule appended and replayed).
func (p *FaultPlan) seal() {
	slices.SortFunc(p.events, func(a, b faultEvent) int {
		if a.phase != b.phase {
			return int(a.phase - b.phase)
		}
		return int(a.seq - b.seq)
	})
}

// HonestNodes fills the plan's scratch with the indices of the non-
// Byzantine nodes and returns it (valid until the next scheduling call).
func (p *FaultPlan) HonestNodes(w *World) []int32 {
	p.honest = p.honest[:0]
	for v, b := range w.Byz {
		if !b {
			p.honest = append(p.honest, int32(v))
		}
	}
	return p.honest
}

// SampleInto draws a uniform m-subset of [0, n) using the plan's reusable
// permutation scratch. The draw sequence reproduces rng.Source.Sample
// exactly (including its small-m virtual-shuffle branch), so schedules
// built through the plan are byte-identical to the legacy per-run
// allocation they replaced.
func (p *FaultPlan) SampleInto(src *rng.Source, n, m int) []int32 {
	if m < 0 || m > n {
		panic("core: fault sample needs 0 <= m <= n")
	}
	if cap(p.perm) < n {
		p.perm = make([]int32, n)
	}
	perm := p.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	if m*8 < n {
		// Forward partial Fisher–Yates: the array realization of Sample's
		// map-based virtual shuffle (same Intn sequence, same outputs).
		for i := 0; i < m; i++ {
			j := i + src.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
	} else {
		// Full backward shuffle, as Sample's Perm branch draws it.
		for i := n - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm[:m]
}

// omitCoin is the stateless per-(edge, round) loss coin: a SplitMix64-style
// finalizer over the seed and coordinates. Pure arithmetic — deterministic
// at any worker count and free of allocation or shared state.
func omitCoin(seed, e, r uint64) uint64 {
	x := seed + e*0x9e3779b97f4a7c15 + r*0xd1342543de82ef95
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dropRecv reports whether the reception on CSR entry e is omitted in the
// current global round. Callers gate on w.plan.lossThresh != 0 so the
// reliable path pays one load and compare.
func (w *World) dropRecv(e int32) bool {
	return omitCoin(w.plan.lossSeed, uint64(e), uint64(w.globalRound)) < w.plan.lossThresh
}

// --- Concrete models ---

// CrashChurn schedules permanent mid-run crash failures: Crashes honest
// nodes, drawn uniformly, stop participating at the starts of uniform
// phases in [2, LastPhase]. This is the classic Config.Churn behavior
// refactored into the fault-model layer; ChurnConfig routes through it,
// and the two produce byte-identical schedules for equal parameters.
type CrashChurn struct {
	// Crashes is how many honest nodes crash-fail during the run.
	Crashes int
	// Seed drives victim and timing selection.
	Seed uint64
	// LastPhase bounds the phases at which crashes may fire (phases
	// 2..LastPhase); 0 selects 6.
	LastPhase int
}

// Name implements FaultModel.
func (CrashChurn) Name() string { return "crash" }

// Validate implements FaultModel.
func (m CrashChurn) Validate() error {
	if m.Crashes < 0 {
		return fmt.Errorf("core: negative churn crashes %d", m.Crashes)
	}
	return nil
}

// Schedule implements FaultModel.
func (m CrashChurn) Schedule(w *World, plan *FaultPlan) {
	if m.Crashes <= 0 {
		return
	}
	last := m.LastPhase
	if last == 0 {
		last = 6
	}
	if last < 2 {
		last = 2
	}
	var src rng.Source
	src.Seed(m.Seed + 0xC4A5)
	honest := plan.HonestNodes(w)
	count := m.Crashes
	if count > len(honest) {
		count = len(honest)
	}
	for _, idx := range plan.SampleInto(&src, len(honest), count) {
		phase := 2 + src.Intn(last-1)
		plan.CrashAt(phase, int(honest[idx]))
	}
}

// JoinChurn schedules oblivious leave/rejoin churn in the regime of the
// successor paper (arXiv:2204.11951): Count honest nodes leave (crash) at
// uniform phases in [2, LastPhase] and rejoin after a short uniform
// downtime, resuming the protocol where the schedule stands. The schedule
// is oblivious — fixed by the seed before the run, independent of
// execution — matching that paper's oblivious-adversary churn model. A
// node whose run ends (or whose exchange crash pre-empted the scheduled
// leave) before its rejoin phase stays down.
type JoinChurn struct {
	// Count is how many honest nodes go through a leave/rejoin cycle.
	Count int
	// Seed drives victim, leave-phase, and downtime selection.
	Seed uint64
	// LastPhase bounds the leave phases (2..LastPhase); 0 selects 6.
	LastPhase int
	// Downtime bounds how many phases a node stays down (uniform in
	// [1, Downtime]); 0 selects 2.
	Downtime int
}

// Name implements FaultModel.
func (JoinChurn) Name() string { return "join" }

// Validate implements FaultModel.
func (m JoinChurn) Validate() error {
	if m.Count < 0 {
		return fmt.Errorf("core: negative join-churn count %d", m.Count)
	}
	if m.Downtime < 0 {
		return fmt.Errorf("core: negative join-churn downtime %d", m.Downtime)
	}
	return nil
}

// Schedule implements FaultModel.
func (m JoinChurn) Schedule(w *World, plan *FaultPlan) {
	if m.Count <= 0 {
		return
	}
	last := m.LastPhase
	if last == 0 {
		last = 6
	}
	if last < 2 {
		last = 2
	}
	down := m.Downtime
	if down <= 0 {
		down = 2
	}
	var src rng.Source
	src.Seed(m.Seed + 0x10ABE)
	honest := plan.HonestNodes(w)
	count := m.Count
	if count > len(honest) {
		count = len(honest)
	}
	for _, idx := range plan.SampleInto(&src, len(honest), count) {
		leave := 2 + src.Intn(last-1)
		back := leave + 1 + src.Intn(down)
		plan.LeaveAt(leave, int(honest[idx]))
		plan.RejoinAt(back, int(honest[idx]))
	}
}

// MessageLoss drops each directed H-edge reception independently with
// probability Prob during the flooding rounds: the omission fault regime.
// Senders still pay transmission cost (the message is lost in transit,
// not suppressed), and the pre-phase topology exchange is assumed
// reliable — it is constant-round, so retransmission hides omission there
// (see DESIGN §1).
type MessageLoss struct {
	// Prob is the per-reception omission probability in [0, 1].
	Prob float64
	// Seed drives the loss coins; 0 derives one from the run seed, so
	// trials with different run seeds see different loss patterns.
	Seed uint64
}

// Name implements FaultModel.
func (MessageLoss) Name() string { return "loss" }

// Validate implements FaultModel.
func (m MessageLoss) Validate() error {
	if m.Prob < 0 || m.Prob > 1 {
		return fmt.Errorf("core: message-loss probability %v outside [0,1]", m.Prob)
	}
	return nil
}

// Schedule implements FaultModel.
func (m MessageLoss) Schedule(w *World, plan *FaultPlan) {
	if m.Prob <= 0 {
		return
	}
	seed := m.Seed
	if seed == 0 {
		seed = w.Cfg.Seed ^ 0x10_55C0_1D5
	}
	plan.SetLoss(m.Prob, seed)
}

// scheduleFaults rewinds the plan and lets every configured model
// contribute: the legacy ChurnConfig first (as a CrashChurn), then
// Config.Faults in order. Replays happen via applyFaults at phase starts.
func (w *World) scheduleFaults() {
	w.plan.reset(w.N())
	if c := w.Cfg.Churn; c.Crashes > 0 {
		CrashChurn{Crashes: c.Crashes, Seed: c.Seed, LastPhase: c.LastPhase}.Schedule(w, &w.plan)
	}
	for _, fm := range w.Cfg.Faults {
		if fm != nil {
			fm.Schedule(w, &w.plan)
		}
	}
	w.plan.seal()
}

// applyFaults replays the plan's transitions scheduled at or before the
// start of the given phase.
func (w *World) applyFaults(phase int) {
	p := &w.plan
	for p.cursor < len(p.events) && p.events[p.cursor].phase <= int32(phase) {
		ev := p.events[p.cursor]
		p.cursor++
		v := ev.node
		switch ev.kind {
		case faultCrash:
			if !w.crashed[v] {
				w.crashed[v] = true
				w.churnCrashes++
				p.down[v] = ev.rejoinable
			} else if !ev.rejoinable {
				// Permanent crash on a temporarily-down node: the pending
				// rejoin dies with it.
				p.down[v] = false
			}
		case faultRejoin:
			if p.down[v] {
				p.down[v] = false
				w.crashed[v] = false
				w.rejoins++
			}
		}
	}
}
