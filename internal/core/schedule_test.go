package core

import (
	"math"
	"testing"
)

func TestAlphaBoundsFailureProbability(t *testing.T) {
	s := Schedule{D: 8, Epsilon: 0.1}
	for i := 1; i <= 40; i++ {
		a := s.Alpha(i)
		if a < 1 {
			t.Fatalf("alpha(%d) = %d < 1", i, a)
		}
		p := s.failureBound(i)
		// The defining property: p^α ≤ ε / 2^{i+1}.
		if math.Pow(p, float64(a)) > s.Epsilon/math.Exp2(float64(i+1))*(1+1e-9) {
			t.Fatalf("alpha(%d) = %d does not drive failure below ε/2^{i+1}", i, a)
		}
	}
}

func TestAlphaEventuallyConstant(t *testing.T) {
	// The text's formula tends to a constant; linear growth would give
	// Θ(log⁴ n) rounds. Check α_i is non-increasing for large i and small.
	s := Schedule{D: 8, Epsilon: 0.1}
	if a := s.Alpha(30); a != 1 {
		t.Fatalf("alpha(30) = %d, want 1", a)
	}
	prev := s.Alpha(3)
	for i := 4; i <= 30; i++ {
		a := s.Alpha(i)
		if a > prev {
			t.Fatalf("alpha not non-increasing: alpha(%d)=%d > alpha(%d)=%d", i, a, i-1, prev)
		}
		prev = a
	}
}

func TestAlphaGrowsWithSmallerEpsilon(t *testing.T) {
	strict := Schedule{D: 8, Epsilon: 0.01}
	loose := Schedule{D: 8, Epsilon: 0.3}
	for _, i := range []int{1, 2, 3, 5} {
		if strict.Alpha(i) < loose.Alpha(i) {
			t.Fatalf("alpha(%d): stricter ε needs at least as many repetitions", i)
		}
	}
}

func TestRoundsThroughIsCubicInPhase(t *testing.T) {
	// Σ i²·α_i with eventually-constant α is Θ(I³): check the ratio
	// RoundsThrough(2I)/RoundsThrough(I) approaches 8.
	s := Schedule{D: 8, Epsilon: 0.1}
	r20 := s.RoundsThrough(20)
	r40 := s.RoundsThrough(40)
	ratio := float64(r40) / float64(r20)
	if ratio < 6.5 || ratio > 9.5 {
		t.Fatalf("rounds scaling ratio = %v, want ~8 (cubic)", ratio)
	}
}

func TestThresholdMatchesBoundary(t *testing.T) {
	s := Schedule{D: 8, Epsilon: 0.1}
	// θ_i = l_i − log₂ l_i with l_i = log₂(d(d−1)^{i−1}).
	for i := 1; i <= 10; i++ {
		l := math.Log2(8) + float64(i-1)*math.Log2(7)
		want := l - math.Log2(l)
		if got := s.Threshold(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("theta(%d) = %v, want %v", i, got, want)
		}
	}
	// θ grows roughly linearly: each phase adds ~log₂(d−1) minus a
	// shrinking log-log correction.
	for i := 2; i <= 20; i++ {
		delta := s.Threshold(i) - s.Threshold(i-1)
		if delta <= 0 || delta > math.Log2(7) {
			t.Fatalf("theta increment at %d = %v out of (0, log2(d-1)]", i, delta)
		}
	}
}

func TestSubphasesAndPhaseRounds(t *testing.T) {
	s := Schedule{D: 8, Epsilon: 0.1}
	for i := 1; i <= 12; i++ {
		if s.Subphases(i) != i*s.Alpha(i) {
			t.Fatalf("subphases(%d) != i*alpha", i)
		}
		if s.PhaseRounds(i) != i*i*s.Alpha(i) {
			t.Fatalf("phaseRounds(%d) != i²·alpha", i)
		}
	}
	if s.RoundsThrough(3) != s.PhaseRounds(1)+s.PhaseRounds(2)+s.PhaseRounds(3) {
		t.Fatal("RoundsThrough mismatch")
	}
}

func TestFailureBoundPanicsOnBadPhase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for phase 0")
		}
	}()
	Schedule{D: 8, Epsilon: 0.1}.failureBound(0)
}
