package core_test

// frontier_test.go is the dense-vs-frontier equivalence suite. The
// frontier engine (frontier.go) is only allowed to exist because it is
// byte-identical to the dense reference loop: these tests pin that across
// the golden grid (exact SHA-256 digests under FrontierOff, matching the
// FrontierOn digests TestGoldenResults checks), and across a randomized
// property grid spanning placements, adversaries, fault models, loss
// probabilities, and worker counts.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

// TestGoldenResultsFrontierOff replays the full golden grid with the
// dense reference loop. TestGoldenResults runs the same grid with the
// default (frontier) engine; both must hit the digests pinned from the
// seed engine, so an equivalence break in either direction fails loudly.
func TestGoldenResultsFrontierOff(t *testing.T) {
	if *printGolden {
		t.Skip("printing mode")
	}
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			res := runGoldenCaseMode(t, net, gc, 1, core.FrontierOff)
			if got := resultDigest(t, res); got != gc.digest {
				t.Errorf("dense-loop digest mismatch:\n got %s\nwant %s", got, gc.digest)
			}
		})
	}
}

// TestFrontierDenseEquivalenceProperty sweeps a randomized grid of
// (placement, adversary, algorithm, fault model, loss probability, worker
// count) configurations and asserts the two engines produce identical
// Results — field-for-field and digest-for-digest.
func TestFrontierDenseEquivalenceProperty(t *testing.T) {
	placements := []string{"random", "clustered", "spread", "degree", "chain"}
	adversaries := []string{"none", "honest", "inflate", "suppress", "oracle", "topology-liar", "chain-faker", "combo"}
	losses := []float64{0, 0, 0.05, 0.15} // loss off twice as often as any single prob
	src := rng.New(0xF407)

	trials := 24
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 96 + 32*src.Intn(3)
		netSeed := uint64(900 + trial)
		net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: netSeed})
		placement := placements[src.Intn(len(placements))]
		advName := adversaries[src.Intn(len(adversaries))]
		algorithm := core.AlgorithmByzantine
		if src.Intn(3) == 0 {
			algorithm = core.AlgorithmBasic
		}
		byzCount := src.Intn(5)
		loss := losses[src.Intn(len(losses))]
		workers := 1 + src.Intn(3)

		cfg := core.Config{
			Algorithm: algorithm,
			Seed:      netSeed + 7,
			Workers:   workers,
		}
		switch src.Intn(3) {
		case 1:
			cfg.Churn = core.ChurnConfig{Crashes: 1 + src.Intn(4), Seed: netSeed + 11}
		case 2:
			cfg.Faults = append(cfg.Faults, core.JoinChurn{Count: 1 + src.Intn(6), Seed: netSeed + 13})
		}
		if loss > 0 {
			cfg.Faults = append(cfg.Faults, core.MessageLoss{Prob: loss})
		}

		var byz []bool
		if byzCount > 0 {
			pl, ok := hgraph.PlacementByName(placement)
			if !ok {
				t.Fatalf("unknown placement %q", placement)
			}
			byz = pl.Place(net.H, byzCount, rng.New(netSeed+17))
		}

		label := fmt.Sprintf("trial=%d n=%d place=%s adv=%s alg=%s byz=%d loss=%g workers=%d churn=%d faults=%d",
			trial, n, placement, advName, algorithm, byzCount, loss, workers, cfg.Churn.Crashes, len(cfg.Faults))

		runMode := func(mode core.FrontierMode) *core.Result {
			adv, ok := adversary.ByName(advName)
			if !ok {
				t.Fatalf("unknown adversary %q", advName)
			}
			c := cfg
			c.FrontierRounds = mode
			res, err := core.Run(net, byz, adv, c)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			return res
		}
		frontier := runMode(core.FrontierOn)
		dense := runMode(core.FrontierOff)
		if !reflect.DeepEqual(frontier, dense) {
			t.Fatalf("%s: results diverge:\nfrontier %+v\ndense    %+v", label, frontier, dense)
		}
		if df, dd := resultDigest(t, frontier), resultDigest(t, dense); df != dd {
			t.Fatalf("%s: digests diverge: %s vs %s", label, df, dd)
		}
	}
}

// TestFrontierOccupancyRecording checks the E20 instrumentation: the
// frontier engine reports one in-(0,1] fraction per executed phase and
// actually dips below 1 on a quiescent high-phase run, while the dense
// loop reports exactly 1 everywhere.
func TestFrontierOccupancyRecording(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 512, D: 8, Seed: 31})
	byz := hgraph.PlaceByzantine(512, 1, rng.New(32))
	cfg := core.Config{
		Algorithm:               core.AlgorithmBasic,
		Seed:                    33,
		Workers:                 1,
		MaxPhase:                14,
		RecordFrontierOccupancy: true,
		FrontierRounds:          core.FrontierOn,
	}
	// The final-round injection timing attack (Lemma 16's entry window at
	// its extreme) keeps the injectors' neighbors active into high phases
	// while the honest flood quiesces — the regime E20 quantifies.
	res, err := core.Run(net, byz, adversary.FinalRoundInflate{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The timing attack keeps the injector's neighbors active to the
	// MaxPhase cap, so one fraction per capped phase must be recorded.
	if len(res.FrontierOccupancy) != cfg.MaxPhase {
		t.Fatalf("occupancy for %d phases, want %d (run should reach the MaxPhase cap)", len(res.FrontierOccupancy), cfg.MaxPhase)
	}
	if res.UndecidedCount == 0 {
		t.Fatal("no stragglers — the high-phase regime is not exercised")
	}
	sawQuiescence := false
	for i, f := range res.FrontierOccupancy {
		if f <= 0 || f > 1 {
			t.Fatalf("phase %d occupancy %v outside (0,1]", i+1, f)
		}
		if f < 0.9 {
			sawQuiescence = true
		}
	}
	if !sawQuiescence {
		t.Fatalf("no phase below 0.9 occupancy: %v — the high-phase regime is not exercised", res.FrontierOccupancy)
	}

	cfg.FrontierRounds = core.FrontierOff
	dense, err := core.Run(net, byz, adversary.FinalRoundInflate{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range dense.FrontierOccupancy {
		if f != 1 {
			t.Fatalf("dense loop phase %d occupancy %v, want 1", i+1, f)
		}
	}
}
