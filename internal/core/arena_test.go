package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/hgraph"
)

// TestTopologyReverse checks the reverse-edge index on multigraphs: every
// CSR entry's reverse points back at it and connects the same unordered
// pair. Small n with d close to n forces parallel edges and self-loops.
func TestTopologyReverse(t *testing.T) {
	for _, p := range []hgraph.Params{
		{N: 5, D: 4, Seed: 3},
		{N: 16, D: 8, Seed: 4},
		{N: 128, D: 8, Seed: 5},
	} {
		net := hgraph.MustNew(p)
		topo := NewTopology(net)
		off, adj := topo.hOff, topo.hAdj
		owner := make([]int32, len(adj))
		for v := 0; v < net.H.N(); v++ {
			for e := off[v]; e < off[v+1]; e++ {
				owner[e] = int32(v)
			}
		}
		for e := range adj {
			r := topo.rev[e]
			if topo.rev[r] != int32(e) {
				t.Fatalf("%+v: rev not involutive at entry %d (rev=%d, rev(rev)=%d)", p, e, r, topo.rev[r])
			}
			if adj[r] != owner[e] || owner[r] != adj[e] {
				t.Fatalf("%+v: entry %d (%d→%d) reversed to %d (%d→%d)",
					p, e, owner[e], adj[e], r, owner[r], adj[r])
			}
		}
	}
}

// TestCandInsertKeepsBest covers the maxCandidates overflow fix: the seed
// engine silently dropped candidates past the first 64; the bounded
// insert must instead retain the 64 largest seen.
func TestCandInsertKeepsBest(t *testing.T) {
	var cb candBuf
	overflows := 0
	insert := func(c int64, nb int32) {
		if cb.insert(c, nb) {
			overflows++
		}
	}
	// Fill with 100..163, then offer worse and better values.
	for i := 0; i < maxCandidates; i++ {
		insert(int64(100+i), int32(i))
	}
	if cb.n != maxCandidates {
		t.Fatalf("n = %d, want %d", cb.n, maxCandidates)
	}
	insert(50, 999) // worse than every kept value
	insert(500, 1000)
	insert(400, 1001)
	if cb.n != maxCandidates {
		t.Fatalf("overflow changed n to %d", cb.n)
	}
	if overflows != 3 {
		t.Fatalf("overflows = %d, want 3", overflows)
	}
	var min, max int64 = 1 << 62, 0
	has := map[int64]int32{}
	for q := 0; q < maxCandidates; q++ {
		has[cb.vals[q]] = cb.from[q]
		if cb.vals[q] < min {
			min = cb.vals[q]
		}
		if cb.vals[q] > max {
			max = cb.vals[q]
		}
	}
	if _, ok := has[50]; ok {
		t.Fatal("kept a candidate worse than the buffer minimum")
	}
	if f, ok := has[500]; !ok || f != 1000 {
		t.Fatalf("best overflow candidate not kept with its sender (has=%v from=%d)", ok, f)
	}
	if f, ok := has[400]; !ok || f != 1001 {
		t.Fatal("second overflow candidate not kept")
	}
	// 100 and 101 were the two smallest originals; both should be evicted.
	if _, ok := has[100]; ok {
		t.Fatal("smallest original survived eviction")
	}
	if _, ok := has[101]; ok {
		t.Fatal("second-smallest original survived eviction")
	}
	if min != 102 || max != 500 {
		t.Fatalf("kept range [%d,%d], want [102,500]", min, max)
	}
}

// TestCandBufMatchesReferenceEviction drives the cached-minimum overflow
// path against the O(maxCandidates)-per-call argmin scan it replaced:
// identical kept multisets, identical slot placement (ties evict the
// first minimal index), under an adversarial mix of ascending runs
// (every overflow replaces), descending runs (every overflow rejects in
// O(1)), and heavy ties.
func TestCandBufMatchesReferenceEviction(t *testing.T) {
	refInsert := func(vals *[maxCandidates]int64, from *[maxCandidates]int32, nc int, c int64, nb int32) int {
		if nc < maxCandidates {
			vals[nc], from[nc] = c, nb
			return nc + 1
		}
		mi := 0
		for q := 1; q < maxCandidates; q++ {
			if vals[q] < vals[mi] {
				mi = q
			}
		}
		if c > vals[mi] {
			vals[mi], from[mi] = c, nb
		}
		return nc
	}

	var seq []int64
	for i := 0; i < 3*maxCandidates; i++ { // ascending: worst case for the cache
		seq = append(seq, int64(i+1))
	}
	for i := 0; i < 2*maxCandidates; i++ { // descending: best case
		seq = append(seq, int64(1000-i))
	}
	for i := 0; i < 2*maxCandidates; i++ { // ties on the eviction floor
		seq = append(seq, int64(500+(i%3)))
	}

	var cb candBuf
	var refVals [maxCandidates]int64
	var refFrom [maxCandidates]int32
	refN := 0
	for idx, c := range seq {
		cb.insert(c, int32(idx))
		refN = refInsert(&refVals, &refFrom, refN, c, int32(idx))
	}
	if cb.n != refN {
		t.Fatalf("n = %d, reference %d", cb.n, refN)
	}
	for q := 0; q < maxCandidates; q++ {
		if cb.vals[q] != refVals[q] || cb.from[q] != refFrom[q] {
			t.Fatalf("slot %d: got (%d, %d), reference (%d, %d)",
				q, cb.vals[q], cb.from[q], refVals[q], refFrom[q])
		}
	}
}

// TestHighDegreeCandidateOverflow runs the engine at H-degree 160 — well
// past the candidate buffer, so the cached-minimum eviction path fires on
// real traffic — and checks that the overflow path actually fired (the
// regression would be vacuous otherwise), that the run completes with
// nodes deciding, and that frontier and dense scheduling agree even when
// eviction reshapes the candidate set.
func TestHighDegreeCandidateOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("dense network generation")
	}
	net := hgraph.MustNew(hgraph.Params{N: 360, D: 160, Seed: 9})
	w := NewWorld()
	defer w.Close()
	cfg := Config{Algorithm: AlgorithmBasic, Seed: 10, MaxPhase: 4, Workers: 1, FrontierRounds: FrontierOn}
	res, err := w.Run(net, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.candOverflows.Load() == 0 {
		t.Fatal("no candidate overflow at d=160: the regression test exercises nothing")
	}
	if res.UndecidedCount+res.CrashedCount == res.HonestCount {
		t.Fatal("no node decided")
	}
	cfg.FrontierRounds = FrontierOff
	dense, err := w.Run(net, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, dense, res)
}

// TestWorldCallerOwnedPool checks Config.Pool sharing: the arena must use
// and never close a caller-supplied pool.
func TestWorldCallerOwnedPool(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: 300, D: 8, Seed: 21})
	pool := newTestPool(t)
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 22, Pool: pool}
	w := NewWorld()
	ref, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 22, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		res, err := w.Run(net, nil, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, ref, res)
	}
	w.Close()
	// The pool must still be alive: run through it once more.
	var covered atomic.Int64
	pool.ForChunks(1000, func(start, end int) { covered.Add(int64(end - start)) })
	if covered.Load() != 1000 {
		t.Fatal("caller-owned pool dead after arena Close")
	}
}
