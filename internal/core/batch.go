package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"

	"repro/internal/rng"
	"repro/internal/sim"
)

// batch.go is the batched round engine: B protocol runs ("lanes") execute
// in lockstep over one shared immutable Topology, so each CSR edge
// traversal of the hot round loop services all B lanes before advancing.
// A sweep cell is tens of seed repetitions of core.Run on the same
// network; run alone, each repetition pays the memory-bound CSR walk —
// edge reads, random-access held-board cache misses, per-message atomic
// counter traffic — by itself. Batched, the held boards are laid out
// lane-major (struct-of-arrays: lane l's value at node v lives at
// cur[v*B+l]), so the random access a neighbor read costs pulls the
// values of ALL lanes in one or two cache lines, and per-node bookkeeping
// (crash, Byzantine, quiet, loss eligibility) collapses into 64-bit lane
// masks tested word-parallel.
//
// The engine is built for byte-identity with the scalar engines, per
// lane, not just statistical equivalence:
//
//   - Every lane keeps a full *World arena holding the canonical per-run
//     state the cold paths need — decided/crashed vectors, held logs and
//     watermarks, Byzantine send slots, fault plans, counters, adversary
//     and views. The topology exchange, fault scheduling, chain-
//     attestation verification, adversary callbacks, and Result
//     construction are the unmodified scalar code running on the lane's
//     World. Only the hot flood state (held boards, k_t bookkeeping,
//     color rng streams) moves into the batch's lane-major arrays, and
//     World.Held/CoinStream redirect there so adversaries observe the
//     batch state through the unchanged scalar API.
//
//   - Scheduling follows the PR 4 frontier argument, generalized to
//     (node, lane) pairs: a pair is skipped only when its inputs, own
//     value, latched Byzantine sends, and candidate state are unchanged,
//     with the quiet flood-cost aggregate maintained per lane so skipped
//     pairs are accounted in one AddAggregate fold per lane per round.
//     The batch worklist is the union over lanes — one node entry with a
//     lane mask — so neighborhood marking is a mask-OR per edge instead
//     of B separate passes. Stepping a pair the scalar frontier would
//     have skipped is a byte-identical no-op, so the union list being a
//     superset per lane is sound; the per-lane quiet aggregates cover
//     exactly the pairs not stepped, keeping Messages/Bits exact.
//
//   - Counters are folded per worker chunk: message/bit sums and the
//     per-lane max message size accumulate on the chunk's stack and
//     publish once per lane via Counters.AddAggregateMax — the same
//     totals (sums and max are order-independent) as the scalar engine's
//     per-node atomic calls, without the atomic traffic.
//
// Lanes must share the knobs that drive the lockstep schedule — the
// topology, Algorithm, Epsilon, MaxPhase, and frontier mode — and may
// differ in everything per-run: seed, Byzantine placement, adversary,
// and fault models. Lanes whose runs end early (all nodes decided) drop
// out of the live mask and stop paying anything. The round loop stays at
// 0 allocs/op (TestBatchRoundLoopZeroAlloc); Observer and
// RecordFrontierOccupancy are not supported — callers needing them run
// the scalar engines, which remain first-class (and are the oracles the
// golden and property suites pin this engine against).

// MaxBatchLanes is the lane-count ceiling: lane sets are addressed by
// 64-bit masks.
const MaxBatchLanes = 64

// LaneSpec describes one lane of a batched invocation: the per-run
// parameters that may vary across lanes of a shared topology.
type LaneSpec struct {
	// Byz marks the lane's Byzantine nodes (nil for none).
	Byz []bool
	// Adv drives the lane's Byzantine nodes (nil for HonestAdversary).
	Adv Adversary
	// Cfg is the lane's run configuration. Algorithm, Epsilon, MaxPhase,
	// and the resolved frontier mode must agree across lanes; Observer
	// and RecordFrontierOccupancy are unsupported in batch mode.
	Cfg Config
}

// batchAcc accumulates one worker chunk's per-lane counter deltas on the
// stack; fold publishes them in O(lanes) atomic calls.
type batchAcc struct {
	msgs  [MaxBatchLanes]int64
	bitsc [MaxBatchLanes]int64
	maxb  [MaxBatchLanes]int64
	drops [MaxBatchLanes]int64
	used  uint64
}

// fold publishes the accumulated deltas to the lane counters and rewinds
// the accumulator for reuse.
func (a *batchAcc) fold(bw *BatchWorld) {
	for m := a.used; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		w := bw.lanes[l]
		w.counters.AddAggregateMax(a.msgs[l], a.bitsc[l], a.maxb[l])
		if a.drops[l] != 0 {
			w.dropped.Add(a.drops[l])
		}
		a.msgs[l], a.bitsc[l], a.maxb[l], a.drops[l] = 0, 0, 0, 0
	}
	a.used = 0
}

// batchScratch is the per-chunk working set of the batched kernel: the
// counter accumulator plus per-lane registers for the node being stepped.
// It lives on the dispatch closure's stack, zeroed once per chunk rather
// than once per node (the candidate buffer is reused by resetting its
// length — its slots are written before they are read).
type batchScratch struct {
	acc    batchAcc
	held   [MaxBatchLanes]int64
	kt     [MaxBatchLanes]int64
	nd     [MaxBatchLanes]int64
	nh     [MaxBatchLanes]int64
	pfSink int64 // keeps the kernel's touch-ahead loads live
	cands  candBuf
}

// BatchWorld is the reusable arena of the batched engine. Like World it
// is rewound per invocation without reallocating steady-state buffers;
// unlike World it hosts up to MaxBatchLanes runs at once.
type BatchWorld struct {
	topo *Topology
	n    int // nodes
	nl   int // lanes (the lane-major stride)

	// arenas is the grow-only pool of lane Worlds; lanes aliases its
	// first nl entries for the current invocation.
	arenas []*World
	lanes  []*World

	pool      *sim.Pool
	poolOwned bool

	verify   bool // Algorithm == AlgorithmByzantine (shared across lanes)
	frontier bool // resolved frontier mode (shared across lanes)

	// Lane-major struct-of-arrays hot state: index v*nl + l.
	cur, next []int64
	maxEarly  []int64
	kFinal    []int64
	colorSrc  []rng.Source

	// blog is the shared held log, round-major then lane-major:
	// blog[r][v*nl+l] is lane l's entry for node v after round r. The
	// round-major layout makes the hot finalize write (every stepped pair,
	// every round) land in one contiguous 8·n·nl-byte row instead of nl
	// per-lane slabs with column stride; logAt redirects batch-bound
	// readers here. blogBuf is the backing slab. blogUp is the lane-major
	// watermark (the lane Worlds' logUpTo, index v*nl+l): without
	// verification no logAt reader runs concurrently with the dispatch, so
	// the advance is fused into the kernel's finalize instead of paying a
	// serial per-round pass; verify runs keep the serial advance because
	// chain attestation reads neighbors' logs mid-round.
	blog    [][]int64
	blogBuf []int64
	blogUp  []int32

	// Per-node lane masks (bit l = lane l).
	byzM     []uint64 // lane's Byzantine set
	crashedM []uint64 // lane's crashed set (rebuilt at phase boundaries)
	hasCandM []uint64 // pairs with a standing improvement candidate
	stepM    []uint64 // worklist mask for the upcoming round (epoch-stamped)
	steppedM []uint64 // mask actually stepped in the executing round
	changedM []uint64 // pairs whose held value changed this round

	liveM    uint64 // lanes still running
	lossyM   uint64 // lanes with message loss armed
	crashedL uint64 // lanes with ≥1 crashed node (refreshed per phase)

	// byzEdgeM[e] marks the lanes in which CSR entry e has a Byzantine
	// sender (so the hot loop tests one word instead of B slot tables).
	// byzRowM[v] is the OR over node v's row — a node whose row is clean
	// in every stepped lane takes the fused whole-row kernel.
	byzEdgeM []uint64
	byzRowM  []uint64

	// Union frontier worklist (see frontier.go for the scalar scheduler
	// this generalizes): fstamp[v] == fepoch marks v ∈ flist. nextFull is
	// the scalar scheduler's saturation bail on the union: when enough of
	// the network changed this round, the next round runs as a full sweep
	// and the marking pass is skipped.
	fstamp   []int64
	fepoch   int64
	flist    []int32
	fscratch []int32
	nextFull bool

	// Per-lane quiet flood-cost aggregates (the scalar engine's
	// quietMsgs/quietBits, one slot per lane), with quietM[v] marking the
	// (node, lane) pairs currently accounted.
	quietM    []uint64
	quietMsgs [MaxBatchLanes]int64
	quietBits [MaxBatchLanes]int64

	// Persistent dispatch closures and their parked loop variables
	// (allocation-free round dispatch, as in World).
	stepFn     func(start, end int)
	stepListFn func(start, end int)
	stepRound  int
	stepPhase  int
	stepFull   bool
}

// NewBatchWorld returns an empty batched arena. Close it when done.
func NewBatchWorld() *BatchWorld { return &BatchWorld{} }

// RunBatch executes one batched invocation on a fresh arena: lane l runs
// the protocol per lanes[l] on topo, and the returned Results are
// byte-identical to running each lane through core.Run alone. Callers
// executing many batches should hold a BatchWorld and use its
// RunTopology method, which reuses the arena across invocations.
func RunBatch(topo *Topology, lanes []LaneSpec) ([]*Result, error) {
	bw := NewBatchWorld()
	defer bw.Close()
	return bw.RunTopology(topo, lanes)
}

// RunTopology rewinds the arena for the given lane set and executes all
// lanes to completion in lockstep.
func (bw *BatchWorld) RunTopology(topo *Topology, lanes []LaneSpec) ([]*Result, error) {
	if err := bw.reset(topo, lanes); err != nil {
		return nil, err
	}
	bw.runBatch()
	out := make([]*Result, bw.nl)
	for l := range out {
		out[l] = bw.lanes[l].buildResult()
	}
	return out, nil
}

// Close releases the arena's worker pool and the lane arenas' resources.
// The BatchWorld can be reused after Close (a new pool is created).
func (bw *BatchWorld) Close() {
	for _, w := range bw.arenas {
		w.Close()
	}
	if bw.poolOwned && bw.pool != nil {
		bw.pool.Close()
	}
	bw.pool, bw.poolOwned = nil, false
}

// reset rewinds the arena for an invocation of the given lane set.
func (bw *BatchWorld) reset(topo *Topology, specs []LaneSpec) error {
	if topo == nil {
		return fmt.Errorf("core: batch needs a topology")
	}
	nl := len(specs)
	if nl < 1 || nl > MaxBatchLanes {
		return fmt.Errorf("core: batch lane count %d outside [1, %d]", nl, MaxBatchLanes)
	}
	n := topo.Net.H.N()

	// Pool lifecycle mirrors World: a caller-supplied pool (lane 0's
	// Config.Pool) is borrowed, otherwise the arena owns one sized by
	// lane 0's Workers and reuses it across invocations.
	workers := specs[0].Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case specs[0].Cfg.Pool != nil:
		if bw.poolOwned && bw.pool != nil {
			bw.pool.Close()
		}
		bw.pool, bw.poolOwned = specs[0].Cfg.Pool, false
	case bw.pool != nil && bw.poolOwned && bw.pool.Workers() == workers:
		// Reuse the arena's pool.
	default:
		if bw.poolOwned && bw.pool != nil {
			bw.pool.Close()
		}
		bw.pool, bw.poolOwned = sim.NewPool(workers), true
	}

	for len(bw.arenas) < nl {
		bw.arenas = append(bw.arenas, NewWorld())
	}
	bw.lanes = bw.arenas[:nl]
	for l, sp := range specs {
		cfg := sp.Cfg
		if cfg.Observer != nil {
			return fmt.Errorf("core: batch lane %d: Observer is unsupported in batch mode", l)
		}
		if cfg.RecordFrontierOccupancy {
			return fmt.Errorf("core: batch lane %d: RecordFrontierOccupancy is unsupported in batch mode", l)
		}
		cfg.Pool = bw.pool
		if err := bw.lanes[l].ResetTopology(topo, sp.Byz, sp.Adv, cfg); err != nil {
			return fmt.Errorf("core: batch lane %d: %w", l, err)
		}
	}
	w0 := bw.lanes[0]
	for l := 1; l < nl; l++ {
		c := bw.lanes[l].Cfg
		if c.Algorithm != w0.Cfg.Algorithm || c.Epsilon != w0.Cfg.Epsilon || c.MaxPhase != w0.Cfg.MaxPhase {
			return fmt.Errorf("core: batch lane %d: Algorithm/Epsilon/MaxPhase must match lane 0 (lockstep schedule)", l)
		}
		if c.FrontierRounds.enabled() != w0.Cfg.FrontierRounds.enabled() {
			return fmt.Errorf("core: batch lane %d: frontier mode must match lane 0", l)
		}
	}

	bw.topo = topo
	bw.n = n
	bw.nl = nl
	bw.verify = w0.Cfg.Algorithm == AlgorithmByzantine
	bw.frontier = w0.Cfg.FrontierRounds.enabled()

	bw.cur = resetSlice(bw.cur, n*nl)
	bw.next = resetSlice(bw.next, n*nl)
	bw.maxEarly = resetSlice(bw.maxEarly, n*nl)
	bw.kFinal = resetSlice(bw.kFinal, n*nl)
	logLen := w0.Cfg.MaxPhase + 1
	bw.blogBuf = resetSlice(bw.blogBuf, logLen*n*nl)
	bw.blog = resetSlice(bw.blog, logLen)
	for r := 0; r < logLen; r++ {
		bw.blog[r] = bw.blogBuf[r*n*nl : (r+1)*n*nl]
	}
	bw.blogUp = resetSlice(bw.blogUp, n*nl)
	if cap(bw.colorSrc) < n*nl {
		bw.colorSrc = make([]rng.Source, n*nl)
	} else {
		bw.colorSrc = bw.colorSrc[:n*nl]
	}
	for v := 0; v < n; v++ {
		base := v * nl
		for l := 0; l < nl; l++ {
			bw.colorSrc[base+l].SeedSplit(bw.lanes[l].Cfg.Seed, uint64(v))
		}
	}

	bw.byzM = resetSlice(bw.byzM, n)
	bw.crashedM = resetSlice(bw.crashedM, n)
	bw.hasCandM = resetSlice(bw.hasCandM, n)
	bw.stepM = resetSlice(bw.stepM, n)
	bw.steppedM = resetSlice(bw.steppedM, n)
	bw.changedM = resetSlice(bw.changedM, n)
	bw.quietM = resetSlice(bw.quietM, n)
	bw.byzEdgeM = resetSlice(bw.byzEdgeM, len(topo.hAdj))
	bw.byzRowM = resetSlice(bw.byzRowM, n)
	bw.fstamp = resetSlice(bw.fstamp, n)
	bw.fepoch = 0
	if cap(bw.flist) < n {
		bw.flist = make([]int32, 0, n)
	}
	if cap(bw.fscratch) < n {
		bw.fscratch = make([]int32, 0, n)
	}
	bw.flist = bw.flist[:0]
	bw.fscratch = bw.fscratch[:0]
	bw.nextFull = false
	bw.liveM = 0
	bw.lossyM = 0
	for l := range bw.quietMsgs {
		bw.quietMsgs[l], bw.quietBits[l] = 0, 0
	}

	// Bind the lanes so World.Held/CoinStream redirect into the batch
	// boards for adversaries and other scalar-API readers.
	for l, w := range bw.lanes {
		w.batch, w.lane = bw, l
	}

	if bw.stepFn == nil {
		bw.stepFn = func(start, end int) {
			var s batchScratch
			t, i, verify := bw.stepRound, bw.stepPhase, bw.verify
			for v := start; v < end; v++ {
				bw.stepLanes(v, t, i, verify, bw.liveM, false, &s)
			}
			s.acc.fold(bw)
		}
		bw.stepListFn = func(start, end int) {
			var s batchScratch
			t, i, verify := bw.stepRound, bw.stepPhase, bw.verify
			for idx := start; idx < end; idx++ {
				v := int(bw.flist[idx])
				bw.stepLanes(v, t, i, verify, bw.stepM[v]&bw.liveM, false, &s)
			}
			s.acc.fold(bw)
		}
	}
	return nil
}

// rebuildMasks derives the per-node lane masks from the lane Worlds'
// post-exchange, post-scheduling state.
func (bw *BatchWorld) rebuildMasks() {
	for l, w := range bw.lanes {
		bit := uint64(1) << uint(l)
		for v := 0; v < bw.n; v++ {
			if w.Byz[v] {
				bw.byzM[v] |= bit
			}
			if w.crashed[v] {
				bw.crashedM[v] |= bit
			}
		}
		if w.plan.lossThresh != 0 {
			bw.lossyM |= bit
		}
		for e, slot := range w.byzIn {
			if slot >= 0 {
				bw.byzEdgeM[e] |= bit
			}
		}
	}
	hOff := bw.topo.hOff
	for v := 0; v < bw.n; v++ {
		var m uint64
		for e := hOff[v]; e < hOff[v+1]; e++ {
			m |= bw.byzEdgeM[e]
		}
		bw.byzRowM[v] = m
	}
}

// updateCrashedLane refreshes lane l's crashedM bits for the fault events
// its plan replayed in [from, w.plan.cursor) — O(events fired), not O(n).
func (bw *BatchWorld) updateCrashedLane(l, from int) {
	w := bw.lanes[l]
	bit := uint64(1) << uint(l)
	for _, ev := range w.plan.events[from:w.plan.cursor] {
		if w.crashed[ev.node] {
			bw.crashedM[ev.node] |= bit
		} else {
			bw.crashedM[ev.node] &^= bit
		}
	}
}

// runBatch executes all lanes to completion, mirroring World.run lane by
// lane for the cold paths and running the rounds through the batched
// kernel.
func (bw *BatchWorld) runBatch() {
	for _, w := range bw.lanes {
		w.adv.Init(w)
	}
	if bw.verify {
		for _, w := range bw.lanes {
			w.runExchange()
		}
	}
	for _, w := range bw.lanes {
		w.scheduleFaults()
	}
	bw.rebuildMasks()
	bw.liveM = (uint64(1) << uint(bw.nl-1) << 1) - 1 // nl ones (nl may be 64)

	maxPhase := bw.lanes[0].Cfg.MaxPhase
	for i := 1; i <= maxPhase; i++ {
		for q := bw.liveM; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			before := w.plan.cursor
			w.applyFaults(i)
			if w.plan.cursor != before {
				bw.updateCrashedLane(l, before)
			}
			active := w.activeCount()
			if w.Cfg.RecordPhaseActivity {
				w.activePerPhase = append(w.activePerPhase, active)
			}
			if active == 0 {
				bw.liveM &^= uint64(1) << uint(l)
			}
		}
		if bw.liveM == 0 {
			break
		}
		bw.refreshCrashedLanes()
		bw.runPhaseBatch(i)
	}
}

// refreshCrashedLanes recomputes the union crash mask the kernel uses to
// skip the per-edge crashed-sender load when a lane has no crashes at all
// (crash state only changes at phase boundaries).
func (bw *BatchWorld) refreshCrashedLanes() {
	var u uint64
	for _, m := range bw.crashedM {
		u |= m
	}
	bw.crashedL = u
}

// runPhaseBatch is the batched runPhase: phase i for every live lane.
func (bw *BatchWorld) runPhaseBatch(i int) {
	n, B, live := bw.n, bw.nl, bw.liveM
	for q := live; q != 0; q &= q - 1 {
		w := bw.lanes[bits.TrailingZeros64(q)]
		for v := 0; v < n; v++ {
			w.continueFlag[v] = false
		}
	}
	sched := bw.lanes[0].Sched
	subphases := sched.Subphases(i)
	theta := sched.Threshold(i)
	for j := 1; j <= subphases; j++ {
		bw.runSubphaseBatch(i, j)
		for v := 0; v < n; v++ {
			base := v * B
			for q := live &^ bw.byzM[v] &^ bw.crashedM[v]; q != 0; q &= q - 1 {
				l := bits.TrailingZeros64(q)
				w := bw.lanes[l]
				if w.decided[v] != 0 {
					continue
				}
				if bw.kFinal[base+l] > bw.maxEarly[base+l] && float64(bw.kFinal[base+l]) > theta {
					w.continueFlag[v] = true
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		for q := live &^ bw.byzM[v] &^ bw.crashedM[v]; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			if w.decided[v] == 0 && !w.continueFlag[v] {
				w.decided[v] = int32(i)
				w.decidedRound[v] = w.globalRound
			}
		}
	}
}

// runSubphaseBatch is the batched runSubphase: color generation followed
// by i lockstep flooding rounds across all live lanes.
func (bw *BatchWorld) runSubphaseBatch(i, j int) {
	n, B, live := bw.n, bw.nl, bw.liveM
	topo := bw.topo
	hOff, hAdj, rev := topo.hOff, topo.hAdj, topo.rev

	for q := live; q != 0; q &= q - 1 {
		w := bw.lanes[bits.TrailingZeros64(q)]
		w.Clock = Clock{Phase: i, Subphase: j, Round: 0}
		w.entryRound = 0
	}

	// Color generation (lane-major); decided/crashed/Byzantine lanes of a
	// node generate nothing and consume no coins, exactly as the scalar
	// loop's IsActive gate.
	cur := bw.cur
	blog0 := bw.blog[0]
	for v := 0; v < n; v++ {
		base := v * B
		gen := live &^ bw.byzM[v] &^ bw.crashedM[v]
		for q := live; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			var c int64
			if gen&(uint64(1)<<uint(l)) != 0 && w.decided[v] == 0 {
				c = int64(bw.colorSrc[base+l].Geometric())
			}
			w.color[v] = c
			cur[base+l] = c
			blog0[base+l] = c
			bw.blogUp[base+l] = 0
			bw.maxEarly[base+l] = 0
			bw.kFinal[base+l] = 0
		}
	}
	for l := range bw.quietMsgs {
		bw.quietMsgs[l], bw.quietBits[l] = 0, 0
	}
	for q := live; q != 0; q &= q - 1 {
		w := bw.lanes[bits.TrailingZeros64(q)]
		w.adv.SubphaseStart(w)
	}

	frontier := bw.frontier
	for t := 1; t <= i; t++ {
		// The scalar saturation bail, on the union: when the previous
		// build found enough of the network changed, this round runs as a
		// full sweep. Stepping pairs a per-lane frontier would have
		// skipped is a byte-identical no-op (see the package comment), so
		// the dense superset is sound; it trades the worklist's random
		// access order for a sequential sweep in the propagation regime.
		full := !frontier || t == 1 || t == i || bw.nextFull
		bw.nextFull = false
		for q := live; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			w.Clock.Round = t
			for _, b := range w.byzList {
				for e := hOff[b]; e < hOff[b+1]; e++ {
					slot := w.byzIn[rev[e]]
					send := w.adv.Send(w, int(b), int(hAdj[e]), t)
					if !full && send != w.byzSends[slot] {
						bw.markBits(hAdj[e], uint64(1)<<uint(l))
					}
					w.byzSends[slot] = send
				}
			}
		}
		bw.stepRound, bw.stepPhase, bw.stepFull = t, i, full
		if full {
			bw.pool.ForChunks(n, bw.stepFn)
		} else {
			// Ascending node order turns the worklist's board and log
			// accesses into near-sequential sweeps (the list is built in
			// discovery order); membership passes are order-independent.
			slices.Sort(bw.flist)
			bw.pool.ForChunks(len(bw.flist), bw.stepListFn)
			if bw.lossyM&live != 0 {
				bw.quietLossPassBatch(t, i)
			}
			for q := live; q != 0; q &= q - 1 {
				l := bits.TrailingZeros64(q)
				bw.lanes[l].counters.AddAggregate(bw.quietMsgs[l], bw.quietBits[l])
			}
		}
		if bw.verify {
			// Without verification the kernel fuses the watermark advance
			// into its finalize (no concurrent logAt readers to race).
			bw.advanceLogWatermarkBatch(t, full)
		}
		if frontier && t+1 < i {
			bw.buildFrontierBatch(full)
		}
		bw.cur, bw.next = bw.next, bw.cur
		cur = bw.cur
		for q := live; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			w.counters.CountRound()
			w.globalRound++
		}
		for q := live; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			w := bw.lanes[l]
			if thr := w.Cfg.InjectionThreshold; thr > 0 && w.entryRound == 0 {
				for v := 0; v < n; v++ {
					if !w.Byz[v] && !w.crashed[v] && cur[v*B+l] >= thr {
						w.entryRound = t
						break
					}
				}
			}
		}
	}
	for q := live; q != 0; q &= q - 1 {
		w := bw.lanes[bits.TrailingZeros64(q)]
		if w.entryRound > 0 {
			if w.injectionEntries == nil {
				w.injectionEntries = make(map[int]int)
			}
			w.injectionEntries[w.entryRound]++
		}
		w.Clock.Round = 0
	}
}
