package core

import (
	"testing"

	"repro/internal/hgraph"
)

// smalln_test.go stresses the engine at degenerate scales: tiny networks,
// minimum degree, heavy fault loads. None of these configurations carry
// the paper's guarantees (all bounds are asymptotic); the requirement here
// is only that the engine terminates cleanly with a consistent Result.

func TestTinyNetworks(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		for _, d := range []int{4, 6, 8} {
			if n <= d {
				continue
			}
			net, err := hgraph.New(hgraph.Params{N: n, D: d, Seed: uint64(n*100 + d)})
			if err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			res, err := Run(net, nil, nil, Config{
				Algorithm: AlgorithmByzantine, Seed: uint64(n + d), MaxPhase: 12,
			})
			if err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			if res.Rounds <= 0 {
				t.Fatalf("n=%d d=%d: empty run", n, d)
			}
			decided := 0
			for v := 0; v < n; v++ {
				if res.Estimates[v] > 0 {
					decided++
				}
			}
			if decided+res.UndecidedCount != res.HonestCount {
				t.Fatalf("n=%d d=%d: inconsistent partition", n, d)
			}
		}
	}
}

func TestHeavyFaultLoad(t *testing.T) {
	// A quarter of the network Byzantine — far beyond any guarantee, but
	// the simulation must not wedge or panic.
	const n = 256
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	byz := hgraph.PlaceByzantine(n, n/4, nil2())
	res, err := Run(net, byz, HonestAdversary{}, Config{
		Algorithm: AlgorithmByzantine, Seed: 603, MaxPhase: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByzantineCount != n/4 {
		t.Fatalf("byzantine count %d", res.ByzantineCount)
	}
}

func TestAllNodesByzantine(t *testing.T) {
	// Degenerate: zero honest nodes. The run must return immediately with
	// an empty-but-consistent result.
	const n = 64
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: 605})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, n)
	for i := range byz {
		byz[i] = true
	}
	res, err := Run(net, byz, HonestAdversary{}, Config{
		Algorithm: AlgorithmByzantine, Seed: 607, MaxPhase: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HonestCount != 0 || res.Rounds != 0 {
		t.Fatalf("all-byzantine run: honest=%d rounds=%d", res.HonestCount, res.Rounds)
	}
}

func TestMinimumDegreeFour(t *testing.T) {
	// d = 4 gives k = 2: the smallest lattice radius. Verification chains
	// have length <= 1; the protocol still runs (with weaker tolerance,
	// as 3/d < δ then requires δ > 0.75).
	net, err := hgraph.New(hgraph.Params{N: 512, D: 4, Seed: 609})
	if err != nil {
		t.Fatal(err)
	}
	if net.K != 2 {
		t.Fatalf("k = %d, want 2", net.K)
	}
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 611})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d undecided at d=4", res.UndecidedCount)
	}
}
