package core_test

// golden_test.go pins SHA-256 digests of canonical core.Run results for a
// small grid spanning both algorithms, several adversaries (including the
// stateful ones), and churn on/off. The digests were captured from the
// seed engine (pre-arena, PR 1); any engine change that alters run
// dynamics — rather than just its cost — fails loudly here.
//
// To regenerate after an INTENTIONAL dynamics change:
//
//	go test ./internal/core/ -run TestGoldenResults -v -print-golden
//
// and paste the printed table, recording the reason in the commit message.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

var printGolden = flag.Bool("print-golden", false, "print the golden digest table instead of asserting")

// resultDigest canonicalizes a Result as JSON (struct field order is fixed,
// map keys are sorted by encoding/json) and hashes it.
func resultDigest(t testing.TB, res *core.Result) string {
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

type goldenCase struct {
	name      string
	algorithm core.Algorithm
	adversary string // adversary.ByName key
	byzCount  int
	churn     int
	loss      float64 // MessageLoss probability (0 = reliable links)
	join      int     // JoinChurn count (0 = no dynamic churn)
	digest    string
}

// The grid: n=96 d=8 keeps a case under ~10ms while exercising the
// exchange, chain attestation, Byzantine send latching, and churn paths.
const (
	goldenN       = 96
	goldenD       = 8
	goldenNetSeed = 701
	goldenRunSeed = 702
	goldenByzSeed = 703
)

var goldenCases = []goldenCase{
	{name: "basic/none", algorithm: core.AlgorithmBasic, adversary: "none", byzCount: 0, churn: 0,
		digest: "493825c820472f789cc7c1bfb0172ebc5ee82490c3c1d3c53289a59f3e57c32a"},
	{name: "basic/none/churn", algorithm: core.AlgorithmBasic, adversary: "none", byzCount: 0, churn: 4,
		digest: "91a6764ad059c2dec9fef125f1ad976b994072ae0c78ac50ddb312fff7cbc745"},
	{name: "basic/inflate", algorithm: core.AlgorithmBasic, adversary: "inflate", byzCount: 3, churn: 0,
		digest: "d7ed8d83b5f45594fd49ede96ca963bc4548ae13daec2ddfb0d0fac40ed59525"},
	{name: "byzantine/none", algorithm: core.AlgorithmByzantine, adversary: "none", byzCount: 0, churn: 0,
		digest: "6496e148d7a1a8928e69762dc174598aaeaa293649bdd7a4b69b0bde2b140528"},
	{name: "byzantine/honest-byz", algorithm: core.AlgorithmByzantine, adversary: "honest", byzCount: 3, churn: 0,
		digest: "d14c9ce340ea5131908e254fddc591dab63e792fab268dd86d0c18fdd4a4ddef"},
	{name: "byzantine/inflate", algorithm: core.AlgorithmByzantine, adversary: "inflate", byzCount: 3, churn: 0,
		digest: "5d5f77cffb51be57999e632af12fd47b46077685953e797e2d3f417a98c57016"},
	{name: "byzantine/inflate/churn", algorithm: core.AlgorithmByzantine, adversary: "inflate", byzCount: 3, churn: 4,
		digest: "7efd8092309ead25c1160388d0e469da23f836f8d5575fdb82945e407bb8cbf7"},
	{name: "byzantine/oracle", algorithm: core.AlgorithmByzantine, adversary: "oracle", byzCount: 3, churn: 0,
		digest: "688ec90af04c07e064d2e34803180ee0d7418eae08aa286d6d7e000b5020168a"},
	{name: "byzantine/suppress/churn", algorithm: core.AlgorithmByzantine, adversary: "suppress", byzCount: 3, churn: 4,
		digest: "5b7223160422c1a08a7f09ed6fbc2f3ae793cb7dc6486d186ab7a604d9156c32"},
	{name: "byzantine/combo", algorithm: core.AlgorithmByzantine, adversary: "combo", byzCount: 3, churn: 0,
		digest: "f7c31addf0efb6a44146ac844384c81dacd79079c063a504dfccd5164f988947"},

	// Fault-model cases (PR 3). The cases above run with Config.Faults
	// empty and pin the fault-model-off path byte-identical to the PR 2
	// engine (their digests are untouched from the seed capture); the
	// cases below pin the new message-loss and join-churn dynamics.
	{name: "basic/none/loss", algorithm: core.AlgorithmBasic, adversary: "none", byzCount: 0, loss: 0.1,
		digest: "c95802280d74cd77c96d3c4c616343742d2a15fad0bddb7edfd4e0c9375cf8bf"},
	{name: "byzantine/inflate/loss", algorithm: core.AlgorithmByzantine, adversary: "inflate", byzCount: 3, loss: 0.1,
		digest: "d22cf11bc06cad14b4612d5a8b29b82560bc5fdd9fad4bba51d97c066a842b39"},
	{name: "byzantine/none/join", algorithm: core.AlgorithmByzantine, adversary: "none", byzCount: 0, join: 8,
		digest: "1c03562a7995637c4c87e67125118bd96c783d287b0963d250ef6ba681935595"},
	{name: "byzantine/inflate/join+loss+churn", algorithm: core.AlgorithmByzantine, adversary: "inflate", byzCount: 3, churn: 4, loss: 0.05, join: 6,
		digest: "341fad05d1af4ce429d9e8083ad6b49e52dc29b8fbc7402b23f5c0cb8949e34b"},
}

func runGoldenCase(t testing.TB, net *hgraph.Network, gc goldenCase, workers int) *core.Result {
	return runGoldenCaseMode(t, net, gc, workers, core.FrontierAuto)
}

// runGoldenCaseMode is runGoldenCase with an explicit round-engine mode
// (the frontier equivalence suite replays the grid under FrontierOff).
func runGoldenCaseMode(t testing.TB, net *hgraph.Network, gc goldenCase, workers int, mode core.FrontierMode) *core.Result {
	var byz []bool
	if gc.byzCount > 0 {
		byz = hgraph.PlaceByzantine(goldenN, gc.byzCount, rng.New(goldenByzSeed))
	}
	adv, ok := adversary.ByName(gc.adversary)
	if !ok {
		t.Fatalf("unknown adversary %q", gc.adversary)
	}
	cfg := core.Config{
		Algorithm:      gc.algorithm,
		Seed:           goldenRunSeed,
		Workers:        workers,
		Churn:          core.ChurnConfig{Crashes: gc.churn, Seed: goldenRunSeed + 1},
		FrontierRounds: mode,
	}
	if gc.join > 0 {
		cfg.Faults = append(cfg.Faults, core.JoinChurn{Count: gc.join, Seed: goldenRunSeed + 2})
	}
	if gc.loss > 0 {
		cfg.Faults = append(cfg.Faults, core.MessageLoss{Prob: gc.loss})
	}
	res, err := core.Run(net, byz, adv, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestGoldenResults(t *testing.T) {
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			res := runGoldenCase(t, net, gc, 1)
			got := resultDigest(t, res)
			if *printGolden {
				fmt.Printf("GOLDEN\t%s\t%s\n", gc.name, got)
				return
			}
			if got != gc.digest {
				t.Errorf("digest mismatch:\n got %s\nwant %s\n(run dynamics changed; see golden_test.go header)", got, gc.digest)
			}
		})
	}
}

// TestGoldenResultsWorkerInvariant re-runs the Byzantine golden cases with
// parallel sim workers: the digest — not just DeepEqual against another
// in-process run — must match the pinned serial value.
func TestGoldenResultsWorkerInvariant(t *testing.T) {
	if *printGolden {
		t.Skip("printing mode")
	}
	net := hgraph.MustNew(hgraph.Params{N: goldenN, D: goldenD, Seed: goldenNetSeed})
	for _, gc := range goldenCases {
		if gc.algorithm != core.AlgorithmByzantine {
			continue
		}
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			res := runGoldenCase(t, net, gc, 4)
			if got := resultDigest(t, res); got != gc.digest {
				t.Errorf("digest with 4 sim workers:\n got %s\nwant %s", got, gc.digest)
			}
		})
	}
}
