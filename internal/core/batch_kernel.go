package core

import "math/bits"

// batch_kernel.go holds the batched engine's hot paths: the per-node
// multi-lane step kernel (one CSR row traversal services every stepped
// lane of the node) and the union-frontier scheduler (per-node lane-mask
// generalizations of mark/buildFrontier/advanceLogWatermark/
// quietLossPass from frontier.go). Each path mirrors its scalar
// counterpart statement-for-statement per lane; see batch.go for the
// byte-identity argument.

// stepLanes advances node v through round t of an i-round subphase for
// every lane in mask (already intersected with the live set). merge is
// set by quiet-loss promotion, which steps a single additional lane of a
// node after the parallel dispatch: the round's stepped/changed masks
// are extended instead of overwritten. Runs concurrently across nodes;
// all shared writes are per-node or folded through s.acc.
func (bw *BatchWorld) stepLanes(v, t, i int, verify bool, mask uint64, merge bool, s *batchScratch) {
	if merge {
		bw.steppedM[v] |= mask
	} else {
		bw.steppedM[v] = mask
		bw.changedM[v] = 0
	}
	if mask == 0 {
		bw.hasCandM[v] = 0
		return
	}
	B := bw.nl
	base := v * B
	topo := bw.topo
	hAdj := topo.hAdj
	begin, end := topo.hOff[v], topo.hOff[v+1]
	deg := int(end - begin)
	cur, next := bw.cur, bw.next
	logRow := bw.blog[t]
	origMask := mask
	var changed uint64
	acc := &s.acc
	acc.used |= mask

	// Crashed lanes: the node is silent and holds nothing (mirrors the
	// scalar early return; cur is already 0 for a crashed pair, the
	// compare keeps changedM exactly the next!=cur comparison the scalar
	// frontier performs).
	if cm := mask & bw.crashedM[v]; cm != 0 {
		for m := cm; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if cur[base+l] != 0 {
				changed |= uint64(1) << uint(l)
			}
			next[base+l] = 0
		}
		mask &^= cm
	}

	// Byzantine lanes: bookkeeping max of everything heard (scalar
	// Byzantine branch; no flood cost, no k_t updates, no drop counting).
	if bm := mask & bw.byzM[v]; bm != 0 {
		for m := bm; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			w := bw.lanes[l]
			heldv := cur[base+l]
			best := heldv
			lossy := w.plan.lossThresh != 0
			for e := begin; e < end; e++ {
				nb := int(hAdj[e])
				if bw.crashedM[nb]&(uint64(1)<<uint(l)) == 0 {
					if c := cur[nb*B+l]; c > best {
						if lossy && w.dropRecv(e) {
							continue
						}
						best = c
					}
				}
			}
			next[base+l] = best
			logRow[base+l] = best
			if best != heldv {
				changed |= uint64(1) << uint(l)
				if !verify {
					bw.bumpPair(base+l, t, heldv)
				}
			}
		}
		mask &^= bm
	}

	// Honest lanes: flood cost, then one edge traversal delivering to all
	// lanes — the lane-major cur layout turns each neighbor read into one
	// or two cache lines covering the whole batch.
	hon := mask
	if hon != 0 {
		lossyHon := hon & bw.lossyM
		for m := hon; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			h := cur[base+l]
			s.held[l] = h
			s.kt[l] = 0
			if lossyHon != 0 {
				s.nd[l] = 0
			}
			if h > 0 && deg > 0 {
				mb := int64(messageBits(h))
				acc.msgs[l] += int64(deg)
				acc.bitsc[l] += int64(deg) * mb
				if mb > acc.maxb[l] {
					acc.maxb[l] = mb
				}
			}
		}
		// Touch-ahead: the reception loop's neighbor rows are random
		// accesses in a board larger than L2; issuing one load per row
		// cache line up front lets the misses overlap instead of
		// serializing behind each row's consumption. The sink store keeps
		// the loads live.
		var pf int64
		for e := begin; e < end; e++ {
			nbase := int(hAdj[e]) * B
			pf += cur[nbase] + cur[nbase+B-1]
		}
		s.pfSink = pf
		var candM uint64
		crHon := hon & bw.crashedL
		if !verify && lossyHon == 0 && crHon == 0 && bw.byzRowM[v]&hon == 0 {
			// Whole-row kernel: every reception of every stepped lane is
			// fast-path (reliable links, honest live senders — the
			// steady-state bulk of all nodes; Byzantine in-rows are
			// precomputed in byzRowM), so the scan collapses to a fused
			// running max over the neighbors' contiguous lane rows, two
			// rows per pass to halve the kt read-modify-write traffic.
			e := begin
			for ; e+2 <= end; e += 2 {
				r1 := cur[int(hAdj[e])*B:][:B]
				r2 := cur[int(hAdj[e+1])*B:][:B]
				for l, c := range r1 {
					s.kt[l] = max(s.kt[l], max(c, r2[l]))
				}
			}
			if e < end {
				for l, c := range cur[int(hAdj[e])*B:][:B] {
					s.kt[l] = max(s.kt[l], c)
				}
			}
			begin = end // skip the per-edge scan below
		}
		for e := begin; e < end; e++ {
			nb := int(hAdj[e])
			nbase := nb * B
			bm := bw.byzEdgeM[e] & hon
			var ncr uint64
			if crHon != 0 {
				// Only pay the random crashed-sender load when some hon
				// lane has a crashed node at all (phase-constant).
				ncr = bw.crashedM[nb] & hon
			}
			if bm == 0 && ncr == 0 && lossyHon == 0 {
				// Fast path: reliable links, honest live sender in every
				// lane — the steady-state bulk of all receptions.
				if !verify {
					// Without verification every delivered reception folds
					// into one running maximum (candidates are just
					// receptions above held, recovered after the loop as
					// kt > held), so the hot loop is a branch-free max
					// over the neighbor's contiguous lane row. Lanes
					// outside hon accumulate garbage in kt; only hon
					// lanes are read back.
					for l, c := range cur[nbase : nbase+B] {
						s.kt[l] = max(s.kt[l], c)
					}
					continue
				}
				for m := hon; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					c := cur[nbase+l]
					if c == 0 {
						continue
					}
					if c > s.held[l] {
						candM |= uint64(1) << uint(l)
					} else if c > s.kt[l] {
						s.kt[l] = c
					}
				}
				continue
			}
			for m := hon; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				bit := uint64(1) << uint(l)
				var c int64
				if bm&bit != 0 {
					w := bw.lanes[l]
					c = w.byzSends[w.byzIn[e]]
				} else if ncr&bit == 0 {
					c = cur[nbase+l]
				}
				if c == 0 {
					continue
				}
				if lossyHon&bit != 0 && bw.lanes[l].dropRecv(e) {
					s.nd[l]++
					continue
				}
				if c > s.held[l] {
					candM |= bit
					if !verify && c > s.kt[l] {
						s.kt[l] = c
					}
				} else if c > s.kt[l] {
					s.kt[l] = c
				}
			}
		}
		if !verify {
			// Recover the candidate mask from the running maxima (the
			// branch-free fast path records no per-reception candidates):
			// a delivered reception above held is exactly kt > held.
			candM = 0
			for m := hon; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if s.kt[l] > s.held[l] {
					candM |= uint64(1) << uint(l)
				}
			}
		}

		// Lanes that saw improvement candidates under verification rerun
		// the scalar reception loop verbatim — bounded candidate buffer,
		// best-first chain-attestation, drop re-counting — discarding the
		// optimistic pass's tallies for that lane. Without verification a
		// candidate is just the running maximum and the optimistic pass
		// already holds the answer.
		if verify && candM != 0 {
			for m := candM; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				bit := uint64(1) << uint(l)
				w := bw.lanes[l]
				heldv := s.held[l]
				lossy := lossyHon&bit != 0
				var kt, nd int64
				cands := &s.cands
				cands.n = 0
				for e := begin; e < end; e++ {
					nb := int(hAdj[e])
					var c int64
					if bw.byzEdgeM[e]&bit != 0 {
						c = w.byzSends[w.byzIn[e]]
					} else if bw.crashedM[nb]&bit == 0 {
						c = cur[nb*B+l]
					}
					if c == 0 {
						continue
					}
					if lossy && w.dropRecv(e) {
						nd++
						continue
					}
					if c <= heldv {
						if c > kt {
							kt = c
						}
						continue
					}
					if cands.insert(c, hAdj[e]) {
						w.candOverflows.Add(1)
					}
				}
				newHeld := heldv
				for {
					best := -1
					var bc int64
					for q := 0; q < cands.n; q++ {
						if cands.vals[q] > bc {
							bc, best = cands.vals[q], q
						}
					}
					if best < 0 {
						break
					}
					cands.vals[best] = 0
					if !w.verifyColor(v, cands.from[best], bc, t) {
						continue
					}
					if bc > kt {
						kt = bc
					}
					newHeld = bc
					break
				}
				s.kt[l] = kt
				s.nd[l] = nd
				s.nh[l] = newHeld
			}
		}

		for m := hon; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			bit := uint64(1) << uint(l)
			var nh int64
			switch {
			case candM&bit == 0:
				nh = s.held[l]
			case verify:
				nh = s.nh[l]
			default:
				nh = s.kt[l] // max delivered reception, > held
			}
			next[base+l] = nh
			logRow[base+l] = nh
			if nh != s.held[l] {
				changed |= bit
				if !verify {
					bw.bumpPair(base+l, t, s.held[l])
				}
			}
			if t < i {
				if s.kt[l] > bw.maxEarly[base+l] {
					bw.maxEarly[base+l] = s.kt[l]
				}
			} else {
				bw.kFinal[base+l] = s.kt[l]
			}
			if lossyHon != 0 {
				acc.drops[l] += s.nd[l]
			}
		}
		// A standing candidate (delivered reception above held) forces a
		// re-step next round, verified or not — scalar hasCand semantics.
		bw.hasCandM[v] = (bw.hasCandM[v] &^ origMask) | candM
	} else {
		bw.hasCandM[v] &^= origMask
	}

	if merge {
		bw.changedM[v] |= changed
	} else {
		bw.changedM[v] = changed
	}
}

// markBits adds the lanes in m to node v's upcoming-round worklist mask,
// pulling newly marked pairs out of the quiet aggregate (the batched
// World.mark). Serial contexts only: the Byzantine latch loop, the
// frontier build, and quiet-loss promotion.
func (bw *BatchWorld) markBits(v int32, m uint64) {
	if bw.fstamp[v] != bw.fepoch {
		bw.fstamp[v] = bw.fepoch
		bw.stepM[v] = 0
		bw.flist = append(bw.flist, v)
	}
	add := m &^ bw.stepM[v]
	if add == 0 {
		return
	}
	bw.stepM[v] |= add
	if rm := add & bw.quietM[v]; rm != 0 {
		bw.quietM[v] &^= rm
		deg := int64(bw.topo.hOff[v+1] - bw.topo.hOff[v])
		base := int(v) * bw.nl
		for q := rm; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			bw.quietMsgs[l] -= deg
			bw.quietBits[l] -= deg * int64(messageBits(bw.cur[base+l]))
		}
	}
}

// promote pulls (v, l) into the current round's stepped set from the
// quiet-loss pass (the batched mark-for-promotion): out of the quiet
// aggregate, into the current worklist so the frontier build and
// watermark passes see it. A node not yet in the list gets its
// per-round masks initialized — the parallel dispatch never visited it.
func (bw *BatchWorld) promote(v, l int) {
	if bw.fstamp[v] != bw.fepoch {
		bw.fstamp[v] = bw.fepoch
		bw.stepM[v] = 0
		bw.steppedM[v] = 0
		bw.changedM[v] = 0
		bw.flist = append(bw.flist, int32(v))
	}
	bit := uint64(1) << uint(l)
	bw.stepM[v] |= bit
	if bw.quietM[v]&bit != 0 {
		bw.quietM[v] &^= bit
		deg := int64(bw.topo.hOff[v+1] - bw.topo.hOff[v])
		bw.quietMsgs[l] -= deg
		bw.quietBits[l] -= deg * int64(messageBits(bw.cur[v*bw.nl+l]))
	}
}

// buildFrontierBatch computes the next round's union worklist from the
// executed round's stepped masks: for every stepped (v, l) whose value
// changed, v and its H-neighbors are marked in lane l — one markBits
// call per edge covers every changed lane at once — and a standing
// candidate re-marks its own pair. Quiet-aggregate membership is then
// folded exactly as the scalar build: full rounds rebuild it from
// scratch, frontier rounds re-add the stepped pairs that were not
// re-marked.
func (bw *BatchWorld) buildFrontierBatch(full bool) {
	n, live := bw.n, bw.liveM
	hOff, hAdj := bw.topo.hOff, bw.topo.hAdj
	next := bw.next

	// Saturation bail (the scalar buildFrontier rule, on the union): count
	// the nodes with a changed lane first, and when at least a quarter of
	// the network changed — the propagation regime, where the marked
	// neighborhoods would cover ~everything — declare the next round full
	// instead of paying the marking pass for a worklist of size ~n. The
	// quiet aggregates are left stale; the rebuild after that full round
	// recomputes them from scratch.
	changedNodes := 0
	if full {
		for v := 0; v < n; v++ {
			if bw.changedM[v]&live != 0 {
				changedNodes++
			}
		}
	} else {
		for _, v := range bw.flist {
			if bw.changedM[v]&live != 0 {
				changedNodes++
			}
		}
	}
	if changedNodes*4 >= n {
		bw.nextFull = true
		return
	}

	bw.flist, bw.fscratch = bw.fscratch[:0], bw.flist
	bw.fepoch++

	if full {
		for v := 0; v < n; v++ {
			bw.markFrom(int32(v), hOff, hAdj)
		}
	} else {
		for _, v := range bw.fscratch {
			bw.markFrom(v, hOff, hAdj)
		}
	}
	if lm := bw.lossyM & live; lm != 0 {
		// Loss coins re-randomize every round: Byzantine bookkeeping in
		// lossy lanes can change with unchanged inputs, so those pairs
		// are always stepped (honest skipped pairs are covered by the
		// lazy quiet-loss pass instead).
		for q := lm; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			for _, b := range bw.lanes[l].byzList {
				bw.markBits(b, uint64(1)<<uint(l))
			}
		}
	}

	if full {
		for l := range bw.quietMsgs {
			bw.quietMsgs[l], bw.quietBits[l] = 0, 0
		}
		for v := 0; v < n; v++ {
			bw.quietM[v] = 0
			elig := live &^ bw.byzM[v] &^ bw.crashedM[v]
			if bw.fstamp[v] == bw.fepoch {
				elig &^= bw.stepM[v]
			}
			if elig == 0 {
				continue
			}
			base := v * bw.nl
			deg := int64(hOff[v+1] - hOff[v])
			for q := elig; q != 0; q &= q - 1 {
				l := bits.TrailingZeros64(q)
				if h := next[base+l]; h > 0 {
					bw.quietM[v] |= uint64(1) << uint(l)
					bw.quietMsgs[l] += deg
					bw.quietBits[l] += deg * int64(messageBits(h))
				}
			}
		}
	} else {
		for _, v := range bw.fscratch {
			addM := bw.steppedM[v] & live &^ bw.byzM[v] &^ bw.crashedM[v]
			if bw.fstamp[v] == bw.fepoch {
				addM &^= bw.stepM[v]
			}
			if addM == 0 {
				continue
			}
			base := int(v) * bw.nl
			deg := int64(hOff[v+1] - hOff[v])
			for q := addM; q != 0; q &= q - 1 {
				l := bits.TrailingZeros64(q)
				if h := next[base+l]; h > 0 {
					bw.quietM[v] |= uint64(1) << uint(l)
					bw.quietMsgs[l] += deg
					bw.quietBits[l] += deg * int64(messageBits(h))
				}
			}
		}
	}
}

// markFrom marks the consequences of node v's executed round: changed
// lanes dirty v and its neighborhood, standing candidates re-mark v.
func (bw *BatchWorld) markFrom(v int32, hOff, hAdj []int32) {
	sm := bw.steppedM[v] & bw.liveM
	if sm == 0 {
		return
	}
	cm := bw.changedM[v] & bw.liveM
	if selfM := (bw.hasCandM[v] | cm) & sm; selfM != 0 {
		bw.markBits(v, selfM)
	}
	if cm != 0 {
		for e := hOff[v]; e < hOff[v+1]; e++ {
			bw.markBits(hAdj[e], cm)
		}
	}
}

// bumpPair advances pair idx's watermark to round t, backfilling the
// slept rounds with the old constant. Called from the kernel's finalize
// on changed pairs (!verify dispatch, where no concurrent logAt reader
// exists) or from the serial advanceLogWatermarkBatch (verify runs).
func (bw *BatchWorld) bumpPair(idx, t int, old int64) {
	for r := int(bw.blogUp[idx]) + 1; r < t; r++ {
		bw.blog[r][idx] = old
	}
	bw.blogUp[idx] = int32(t)
}

// advanceLogWatermarkBatch is the batched advanceLogWatermark: for every
// pair whose value changed in round t, backfill the slept rounds with
// the old constant and move the lane's watermark to t. Verify runs only —
// without verification the kernel fuses the bump into its finalize.
func (bw *BatchWorld) advanceLogWatermarkBatch(t int, full bool) {
	cur := bw.cur
	B := bw.nl
	bump := func(v int32) {
		cm := bw.changedM[v] & bw.liveM
		if cm == 0 {
			return
		}
		base := int(v) * B
		for q := cm; q != 0; q &= q - 1 {
			l := bits.TrailingZeros64(q)
			bw.bumpPair(base+l, t, cur[base+l])
		}
	}
	if full {
		for v := 0; v < bw.n; v++ {
			bump(int32(v))
		}
		return
	}
	for _, v := range bw.flist {
		bump(v)
	}
}

// quietLossPassBatch replays the loss coins for every lossy-lane pair the
// union worklist skipped in round t (1 < t < i), exactly as the scalar
// quietLossPass does per run. Serial, after the parallel dispatch.
func (bw *BatchWorld) quietLossPassBatch(t, i int) {
	n := bw.n
	lossy := bw.lossyM & bw.liveM
	var s batchScratch
	for v := 0; v < n; v++ {
		pend := lossy &^ bw.byzM[v] &^ bw.crashedM[v]
		if bw.fstamp[v] == bw.fepoch {
			pend &^= bw.stepM[v]
		}
		for q := pend; q != 0; q &= q - 1 {
			bw.quietLossLane(v, bits.TrailingZeros64(q), t, i, &s)
		}
	}
	s.acc.fold(bw)
}

// quietLossLane mirrors quietLossNode for one skipped (node, lane) pair:
// replay the coins, count the drops, fold delivered echoes into the k_t
// bookkeeping — and on a delivered reception above the held value,
// promote the pair and run it through the full kernel (whose
// deterministic coin replay reproduces the partial scan, so the local
// tallies are discarded).
func (bw *BatchWorld) quietLossLane(v, l, t, i int, s *batchScratch) {
	w := bw.lanes[l]
	B := bw.nl
	bit := uint64(1) << uint(l)
	cur := bw.cur
	hAdj := bw.topo.hAdj
	begin, end := bw.topo.hOff[v], bw.topo.hOff[v+1]
	held := cur[v*B+l]
	var drops, kt int64
	for e := begin; e < end; e++ {
		nb := int(hAdj[e])
		var c int64
		if bw.byzEdgeM[e]&bit != 0 {
			c = w.byzSends[w.byzIn[e]]
		} else if bw.crashedM[nb]&bit == 0 {
			c = cur[nb*B+l]
		}
		if c == 0 {
			continue
		}
		if w.dropRecv(e) {
			drops++
			continue
		}
		if c > held {
			bw.promote(v, l)
			bw.stepLanes(v, t, i, bw.verify, bit, true, s)
			return
		}
		if c > kt {
			kt = c
		}
	}
	if drops > 0 {
		w.dropped.Add(drops)
	}
	// t < i always holds here (final rounds are full sweeps), so kt feeds
	// the running early maximum, never kFinal.
	if kt > bw.maxEarly[v*B+l] {
		bw.maxEarly[v*B+l] = kt
	}
}
