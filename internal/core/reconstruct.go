package core

import (
	"slices"

	"repro/internal/graph"
)

// reconstruct.go implements the literal Lemma 3 derivation: an honest node
// v that knows only its G-adjacency (and its G-neighbors' G-adjacency
// lists) recovers the H-topology of its radius-k ball using the subset
// rules
//
//	w is a child of u (w.r.t. v)  ⟺  N_G(w) ∩ N_G(v) ⊊ N_G(u) ∩ N_G(v),
//
// evaluated over G-adjacent pairs (a BFS-tree edge of H is in particular a
// G-edge). The derivation is exact when the ball is locally tree-like; the
// protocol engine itself uses the equivalent claims-based exchange (see
// doc.go), and experiment E4 uses this function to validate the lemma.

// DerivedBall is the output of DeriveHFromG.
type DerivedBall struct {
	// HNeighbors is v's derived set of H-neighbors (the BFS-tree roots).
	HNeighbors []int32
	// Parent maps each ball member to its derived BFS-tree parent
	// (members of HNeighbors map to v itself).
	Parent map[int32]int32
	// Ambiguous is true if some node matched multiple parents or the
	// subset relation was cyclic — the ball is not tree-like.
	Ambiguous bool
}

// Deriver is a reusable scratch arena for the Lemma 3 derivation, in the
// World mold: membership vectors, the intersection slab, and the match
// buffer survive across calls, so a caller sweeping many nodes of one
// network (E4 samples hundreds per graph) pays allocation only for the
// DerivedBall it keeps. A Deriver is not safe for concurrent use.
type Deriver struct {
	inBall  []bool
	idxPlus []int32 // node → 1 + its position in nv; 0 = not a G-neighbor
	buf     []int32 // slab holding every neighbor's sorted intersection
	off     []int32 // off[i]:off[i+1] slices buf for G-neighbor i
	matches []int32
}

// NewDeriver returns an empty derivation arena.
func NewDeriver() *Deriver { return &Deriver{} }

// DeriveHFromG runs the Lemma 3 derivation for node v on network (g, k),
// where g must be the simple small-world graph G built from the hidden H.
// Only information available to v in the model is consulted: N_G(v) and
// the N_G lists of v's G-neighbors.
func DeriveHFromG(g *graph.Graph, v, k int) *DerivedBall {
	return NewDeriver().DeriveHFromG(g, v, k)
}

// DeriveHFromG is the arena form of the package-level function: identical
// output, scratch reused across calls.
func (d *Deriver) DeriveHFromG(g *graph.Graph, v, k int) *DerivedBall {
	if n := g.N(); len(d.inBall) < n {
		d.inBall = make([]bool, n)
		d.idxPlus = make([]int32, n)
	}

	// G is simple and loop-free by construction (hgraph.BuildG), so the
	// CSR adjacency IS the unique neighbor set: use the aliasing accessor
	// throughout instead of materializing a deduplicated copy per node.
	nv := g.Neighbors(v)
	d.inBall[v] = true
	for _, u := range nv {
		d.inBall[u] = true
	}

	// I[u] = N_G[u] ∩ N_G[v] over *closed* neighborhoods (N_G[x] includes
	// x itself): with open neighborhoods a child's intersection contains
	// its parent but not vice versa, and the subset rule never fires.
	// Sorted slices keep this O(deg²) per node instead of O(deg³); they
	// live back to back in the reusable slab, indexed by idxPlus.
	d.buf = d.buf[:0]
	d.off = append(d.off[:0], 0)
	for i, u := range nv {
		d.idxPlus[u] = int32(i + 1)
		d.buf = append(d.buf, u)
		for _, x := range g.Neighbors(int(u)) {
			if d.inBall[x] {
				d.buf = append(d.buf, x)
			}
		}
		slices.Sort(d.buf[d.off[i]:])
		d.off = append(d.off, int32(len(d.buf)))
	}
	intersect := func(u int32) []int32 {
		i := d.idxPlus[u]
		return d.buf[d.off[i-1]:d.off[i]]
	}

	isSubset := func(a, b []int32) bool { // a ⊆ b for sorted slices
		i := 0
		for _, x := range a {
			for i < len(b) && b[i] < x {
				i++
			}
			if i >= len(b) || b[i] != x {
				return false
			}
		}
		return true
	}

	out := &DerivedBall{
		HNeighbors: make([]int32, 0, len(nv)),
		Parent:     make(map[int32]int32, len(nv)),
	}
	for _, wn := range nv {
		iw := intersect(wn)
		// Every proper ancestor of wn inside the ball satisfies the subset
		// rule (the intersections shrink down the tree), so wn may match
		// its parent, grandparent, … The true parent is the match with the
		// minimal intersection; matches must be totally ordered by ⊆ or
		// the ball is not tree-like.
		d.matches = d.matches[:0]
		for _, u := range g.Neighbors(int(wn)) {
			if u == wn || !d.inBall[u] || u == int32(v) {
				continue
			}
			iu := intersect(u)
			if len(iw) < len(iu) && isSubset(iw, iu) {
				d.matches = append(d.matches, u)
			}
		}
		switch {
		case len(d.matches) == 0:
			// No parent among the ball members: wn is a root, i.e. an
			// H-neighbor of v.
			out.HNeighbors = append(out.HNeighbors, wn)
			out.Parent[wn] = int32(v)
		default:
			best := d.matches[0]
			for _, u := range d.matches[1:] {
				if len(intersect(u)) < len(intersect(best)) {
					best = u
				}
			}
			for _, u := range d.matches {
				if u != best && !isSubset(intersect(best), intersect(u)) {
					out.Ambiguous = true
				}
			}
			out.Parent[wn] = best
		}
	}
	slices.Sort(out.HNeighbors)

	// Rewind the stamped membership state for the next call.
	d.inBall[v] = false
	for _, u := range nv {
		d.inBall[u] = false
		d.idxPlus[u] = 0
	}
	return out
}

// DerivationMatches compares a DerivedBall against the ground-truth H and
// reports whether v's derived H-neighbor set is exactly N_H(v) and every
// derived parent edge is a real H-edge.
func DerivationMatches(h *graph.Graph, v int, ball *DerivedBall) bool {
	if ball.Ambiguous {
		return false
	}
	truth := h.UniqueNeighbors(v)
	if len(truth) != len(ball.HNeighbors) {
		return false
	}
	for i := range truth {
		if truth[i] != ball.HNeighbors[i] {
			return false
		}
	}
	for child, parent := range ball.Parent {
		if parent == int32(v) {
			continue // already checked via HNeighbors
		}
		if !h.HasEdge(int(parent), int(child)) {
			return false
		}
	}
	return true
}
