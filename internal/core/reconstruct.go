package core

import (
	"sort"

	"repro/internal/graph"
)

// reconstruct.go implements the literal Lemma 3 derivation: an honest node
// v that knows only its G-adjacency (and its G-neighbors' G-adjacency
// lists) recovers the H-topology of its radius-k ball using the subset
// rules
//
//	w is a child of u (w.r.t. v)  ⟺  N_G(w) ∩ N_G(v) ⊊ N_G(u) ∩ N_G(v),
//
// evaluated over G-adjacent pairs (a BFS-tree edge of H is in particular a
// G-edge). The derivation is exact when the ball is locally tree-like; the
// protocol engine itself uses the equivalent claims-based exchange (see
// doc.go), and experiment E4 uses this function to validate the lemma.

// DerivedBall is the output of DeriveHFromG.
type DerivedBall struct {
	// HNeighbors is v's derived set of H-neighbors (the BFS-tree roots).
	HNeighbors []int32
	// Parent maps each ball member to its derived BFS-tree parent
	// (members of HNeighbors map to v itself).
	Parent map[int32]int32
	// Ambiguous is true if some node matched multiple parents or the
	// subset relation was cyclic — the ball is not tree-like.
	Ambiguous bool
}

// DeriveHFromG runs the Lemma 3 derivation for node v on network (g, k),
// where g must be the simple small-world graph G built from the hidden H.
// Only information available to v in the model is consulted: N_G(v) and
// the N_G lists of v's G-neighbors.
func DeriveHFromG(g *graph.Graph, v, k int) *DerivedBall {
	// G is simple and loop-free by construction (hgraph.BuildG), so the
	// CSR adjacency IS the unique neighbor set: use the aliasing accessor
	// throughout instead of materializing a deduplicated copy per node.
	nv := g.Neighbors(v)
	inBall := make(map[int32]bool, len(nv)+1)
	inBall[int32(v)] = true
	for _, u := range nv {
		inBall[u] = true
	}

	// I[u] = N_G[u] ∩ N_G[v] over *closed* neighborhoods (N_G[x] includes
	// x itself): with open neighborhoods a child's intersection contains
	// its parent but not vice versa, and the subset rule never fires.
	// Sorted slices keep this O(deg²) per node instead of O(deg³).
	intersect := make(map[int32][]int32, len(nv))
	for _, u := range nv {
		ix := []int32{u}
		for _, x := range g.Neighbors(int(u)) {
			if inBall[x] {
				ix = append(ix, x)
			}
		}
		sort.Slice(ix, func(a, b int) bool { return ix[a] < ix[b] })
		intersect[u] = ix
	}

	isSubset := func(a, b []int32) bool { // a ⊆ b for sorted slices
		i := 0
		for _, x := range a {
			for i < len(b) && b[i] < x {
				i++
			}
			if i >= len(b) || b[i] != x {
				return false
			}
		}
		return true
	}

	out := &DerivedBall{Parent: make(map[int32]int32, len(nv))}
	for _, wn := range nv {
		iw := intersect[wn]
		// Every proper ancestor of wn inside the ball satisfies the subset
		// rule (the intersections shrink down the tree), so wn may match
		// its parent, grandparent, … The true parent is the match with the
		// minimal intersection; matches must be totally ordered by ⊆ or
		// the ball is not tree-like.
		var matches []int32
		for _, u := range g.Neighbors(int(wn)) {
			if u == wn || !inBall[u] || u == int32(v) {
				continue
			}
			iu := intersect[u]
			if len(iw) < len(iu) && isSubset(iw, iu) {
				matches = append(matches, u)
			}
		}
		switch {
		case len(matches) == 0:
			// No parent among the ball members: wn is a root, i.e. an
			// H-neighbor of v.
			out.HNeighbors = append(out.HNeighbors, wn)
			out.Parent[wn] = int32(v)
		default:
			best := matches[0]
			for _, u := range matches[1:] {
				if len(intersect[u]) < len(intersect[best]) {
					best = u
				}
			}
			for _, u := range matches {
				if u != best && !isSubset(intersect[best], intersect[u]) {
					out.Ambiguous = true
				}
			}
			out.Parent[wn] = best
		}
	}
	sort.Slice(out.HNeighbors, func(a, b int) bool { return out.HNeighbors[a] < out.HNeighbors[b] })
	return out
}

// DerivationMatches compares a DerivedBall against the ground-truth H and
// reports whether v's derived H-neighbor set is exactly N_H(v) and every
// derived parent edge is a real H-edge.
func DerivationMatches(h *graph.Graph, v int, ball *DerivedBall) bool {
	if ball.Ambiguous {
		return false
	}
	truth := h.UniqueNeighbors(v)
	if len(truth) != len(ball.HNeighbors) {
		return false
	}
	for i := range truth {
		if truth[i] != ball.HNeighbors[i] {
			return false
		}
	}
	for child, parent := range ball.Parent {
		if parent == int32(v) {
			continue // already checked via HNeighbors
		}
		if !h.HasEdge(int(parent), int(child)) {
			return false
		}
	}
	return true
}
