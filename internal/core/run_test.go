package core

import (
	"math"
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

func testNet(t testing.TB, n int, seed uint64) *hgraph.Network {
	t.Helper()
	net, err := hgraph.New(hgraph.Params{N: n, D: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// fractionInBand returns the fraction of honest nodes whose estimate/log₂n
// ratio lies in [lo, hi]. Crashed and undecided nodes count as outside.
func fractionInBand(r *Result, lo, hi float64) float64 {
	good, honest := 0, 0
	for v := 0; v < r.N; v++ {
		if r.Byzantine[v] {
			continue
		}
		honest++
		if ratio, ok := r.Ratio(v); ok && ratio >= lo && ratio <= hi {
			good++
		}
	}
	if honest == 0 {
		return 0
	}
	return float64(good) / float64(honest)
}

func TestBasicRunTerminatesWithConstantFactorEstimates(t *testing.T) {
	net := testNet(t, 1024, 1)
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d nodes undecided", res.UndecidedCount)
	}
	if res.CrashedCount != 0 {
		t.Fatalf("%d nodes crashed in basic run", res.CrashedCount)
	}
	// Theorem 1 shape, Byzantine-free: ≥ (1−ε) of nodes in a constant
	// band around log n. The empirical ratio concentrates near
	// 1/log₂(d−1) ≈ 0.36 at d=8; use a generous constant band.
	if f := fractionInBand(res, 0.15, 3.0); f < 0.9 {
		t.Fatalf("only %v of nodes in band", f)
	}
	if res.Rounds <= 0 || res.Phases <= 0 {
		t.Fatalf("suspicious run: %v", res)
	}
}

func TestEstimatesConcentrate(t *testing.T) {
	// All honest deciders should land within a few phases of each other
	// (they all see ~the diameter).
	net := testNet(t, 2048, 3)
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	min, max := int32(1<<30), int32(0)
	for v := 0; v < res.N; v++ {
		e := res.Estimates[v]
		if e == 0 {
			continue
		}
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max-min > 6 {
		t.Fatalf("estimates spread too wide: [%d, %d]", min, max)
	}
}

func TestRunDeterministic(t *testing.T) {
	net := testNet(t, 512, 5)
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 11}
	byz := hgraph.PlaceByzantine(512, 4, nil2())
	a, err := Run(net, byz, HonestAdversary{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, byz, HonestAdversary{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for v := range a.Estimates {
		if a.Estimates[v] != b.Estimates[v] {
			t.Fatalf("estimate of %d differs: %d vs %d", v, a.Estimates[v], b.Estimates[v])
		}
	}
	if a.Messages != b.Messages || a.Bits != b.Bits {
		t.Fatalf("message accounting differs")
	}
}

func TestByzantineAlgorithmWithHonestAdversaryMatchesShape(t *testing.T) {
	// Algorithm 2 with protocol-following Byzantine nodes must behave like
	// Algorithm 1: no crashes, everyone decides, same band.
	net := testNet(t, 1024, 7)
	byz := hgraph.PlaceByzantine(1024, 8, nil2())
	res, err := Run(net, byz, HonestAdversary{}, Config{Algorithm: AlgorithmByzantine, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedCount != 0 {
		t.Fatalf("honest adversary caused %d crashes", res.CrashedCount)
	}
	if res.UndecidedCount != 0 {
		t.Fatalf("%d honest nodes undecided", res.UndecidedCount)
	}
	if f := fractionInBand(res, 0.15, 3.0); f < 0.9 {
		t.Fatalf("only %v in band", f)
	}
}

func TestVerificationAcceptsHonestTraffic(t *testing.T) {
	// With no Byzantine nodes at all, Algorithms 1 and 2 must produce
	// identical estimates: verification may never reject honest colors.
	net := testNet(t, 512, 9)
	basic, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	byzant, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 512; v++ {
		if basic.Estimates[v] != byzant.Estimates[v] {
			t.Fatalf("node %d: basic=%d byzantine=%d — verification rejected honest traffic",
				v, basic.Estimates[v], byzant.Estimates[v])
		}
	}
	if basic.Rounds != byzant.Rounds {
		t.Fatalf("round counts differ: %d vs %d", basic.Rounds, byzant.Rounds)
	}
}

func TestEstimateScalesWithN(t *testing.T) {
	// The estimate must grow with n: median estimate at 4096 strictly
	// above median at 256 (both ≈ diameter of H).
	med := func(n int, seed uint64) float64 {
		net := testNet(t, n, seed)
		res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var ests []int
		for v := 0; v < n; v++ {
			if e, ok := res.EstimateOf(v); ok {
				ests = append(ests, e)
			}
		}
		sum := 0
		for _, e := range ests {
			sum += e
		}
		return float64(sum) / float64(len(ests))
	}
	small := med(256, 31)
	large := med(4096, 32)
	if large <= small {
		t.Fatalf("estimates do not grow with n: %v (256) vs %v (4096)", small, large)
	}
	// Constant-factor check across a 16x size change: the ratio of
	// estimate to log2(n) should be stable within a factor ~2.
	rSmall := small / math.Log2(256)
	rLarge := large / math.Log2(4096)
	if rLarge/rSmall > 2 || rSmall/rLarge > 2 {
		t.Fatalf("estimate/log n ratio drifted: %v -> %v", rSmall, rLarge)
	}
}

func TestRoundsGrowPolylog(t *testing.T) {
	rounds := func(n int) float64 {
		net := testNet(t, n, uint64(n))
		res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Rounds)
	}
	r256 := rounds(256)
	r4096 := rounds(4096)
	// log³ scaling predicts (12/8)³ ≈ 3.4x; any superpolylog blowup or
	// flatline is a bug.
	ratio := r4096 / r256
	if ratio < 1.2 || ratio > 8 {
		t.Fatalf("rounds ratio 256→4096 = %v, want within [1.2, 8]", ratio)
	}
}

func TestSmallMessages(t *testing.T) {
	net := testNet(t, 1024, 17)
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// A message is a constant number of IDs (64 bits each) plus O(log n)
	// payload. The largest message in the protocol is the one-shot
	// adjacency-list exchange: d+1 IDs (Remark 3 allows a constant number
	// of IDs since d is a constant).
	if res.MaxMessageBits > int64(net.Params.D+2)*64 {
		t.Fatalf("max message = %d bits, too large", res.MaxMessageBits)
	}
}

func TestConfigValidation(t *testing.T) {
	net := testNet(t, 256, 19)
	if _, err := Run(net, nil, nil, Config{Epsilon: 1.5}); err == nil {
		t.Fatal("epsilon 1.5 accepted")
	}
	if _, err := Run(net, nil, nil, Config{Epsilon: -0.1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := Run(net, make([]bool, 7), nil, Config{}); err == nil {
		t.Fatal("wrong byz length accepted")
	}
	if _, err := Run(net, nil, nil, Config{Algorithm: Algorithm(9)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMaxPhaseCapReportsUndecided(t *testing.T) {
	// With MaxPhase 1 nearly everyone is still active (phase 1 almost
	// always continues), so most nodes must be reported undecided.
	net := testNet(t, 256, 23)
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 29, MaxPhase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.UndecidedCount < 200 {
		t.Fatalf("only %d undecided at MaxPhase=1", res.UndecidedCount)
	}
}

func TestRecordPhaseActivity(t *testing.T) {
	net := testNet(t, 256, 29)
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 31, RecordPhaseActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActivePerPhase) == 0 {
		t.Fatal("no activity recorded")
	}
	if res.ActivePerPhase[0] != 256 {
		t.Fatalf("phase 1 active = %d, want 256", res.ActivePerPhase[0])
	}
	last := res.ActivePerPhase[len(res.ActivePerPhase)-1]
	if last != 0 {
		t.Fatalf("last recorded activity = %d, want 0", last)
	}
}

func TestEpsilonControlsEarlyDeciders(t *testing.T) {
	// Smaller ε means more repetitions per phase, so fewer nodes should
	// decide strictly before the modal phase.
	early := func(eps float64) float64 {
		net := testNet(t, 1024, 37)
		res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 41, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int32]int{}
		for _, e := range res.Estimates {
			counts[e]++
		}
		var mode int32
		for e, c := range counts {
			if c > counts[mode] {
				mode = e
			}
		}
		earlyCount := 0
		for _, e := range res.Estimates {
			if e > 0 && e < mode {
				earlyCount++
			}
		}
		return float64(earlyCount) / float64(res.N)
	}
	strict := early(0.01)
	loose := early(0.4)
	if strict > loose+0.02 {
		t.Fatalf("early-decider fraction: ε=0.01 gives %v, ε=0.4 gives %v", strict, loose)
	}
}

// nil2 returns a fresh deterministic rng for Byzantine placement in tests.
func nil2() *rng.Source { return rng.New(99) }
