package core

import (
	"math"
	"testing"

	"repro/internal/hgraph"
)

func TestCalibratedEstimateFormula(t *testing.T) {
	// (i-1)·log2(d-1); d=8: log2(7) ≈ 2.807.
	if got := CalibratedEstimate(5, 8); math.Abs(got-4*math.Log2(7)) > 1e-12 {
		t.Fatalf("calibrated(5, 8) = %v", got)
	}
	if got := CalibratedEstimate(0, 8); got != 0 {
		t.Fatalf("calibrated(0) = %v, want 0", got)
	}
	if got := CalibratedEstimate(-3, 8); got != 0 {
		t.Fatalf("calibrated(-3) = %v, want 0", got)
	}
	if got := CalibratedEstimate(1, 8); got != 0 {
		t.Fatalf("calibrated(1) = %v, want 0 (phase 1 carries no range information)", got)
	}
}

func TestCalibratedRatioConcentratesNearOne(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 2048, D: 8, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmByzantine, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	good, honest := 0, 0
	for v := 0; v < res.N; v++ {
		if res.Byzantine[v] {
			continue
		}
		honest++
		if c, ok := res.CalibratedRatio(v); ok && c >= 0.6 && c <= 1.4 {
			good++
		}
	}
	if frac := float64(good) / float64(honest); frac < 0.8 {
		t.Fatalf("only %v of calibrated ratios within ±40%% of 1", frac)
	}
}

func TestCalibratedRatioNoEstimate(t *testing.T) {
	r := &Result{N: 1, LogN: 10, D: 8, Estimates: []int32{0}}
	if _, ok := r.CalibratedRatio(0); ok {
		t.Fatal("node without estimate produced a calibrated ratio")
	}
}
