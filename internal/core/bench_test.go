package core

import (
	"testing"

	"repro/internal/hgraph"
	"repro/internal/rng"
)

// benchNet memoizes generated networks across benchmarks in one process.
var benchNets = map[int]*hgraph.Network{}

func benchNet(n int) *hgraph.Network {
	if net, ok := benchNets[n]; ok {
		return net
	}
	net := hgraph.MustNew(hgraph.Params{N: n, D: 8, Seed: 11})
	benchNets[n] = net
	return net
}

func benchByz(n int) []bool {
	return hgraph.PlaceByzantine(n, hgraph.ByzantineBudget(n, 0.75), rng.New(12))
}

// BenchmarkRunFresh measures the one-shot entry point: every iteration
// pays full arena construction (the seed engine's only mode).
func BenchmarkRunFresh(b *testing.B) {
	net := benchNet(1024)
	byz := benchByz(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, byz, nil, Config{Algorithm: AlgorithmByzantine, Seed: 13, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun measures the arena path the sweep runner uses on a network
// cache hit: one World reused across runs, topology tables precomputed
// once. This is the acceptance benchmark — compare ns/op against the seed
// engine's per-run construction at the same n.
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		n := n
		b.Run(map[int]string{1024: "n=1024", 4096: "n=4096"}[n], func(b *testing.B) {
			net := benchNet(n)
			byz := benchByz(n)
			topo := NewTopology(net)
			w := NewWorld()
			defer w.Close()
			cfg := Config{Algorithm: AlgorithmByzantine, Seed: 13, Workers: 1}
			if _, err := w.RunTopology(topo, byz, nil, cfg); err != nil {
				b.Fatal(err) // warm the arena before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.RunTopology(topo, byz, nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubphase isolates the round loop: the steady-state cost of one
// i=4 subphase on a warm arena. Allocations here must be zero — the
// TestRoundLoopZeroAlloc guard pins that; the benchmark reports the rate.
func BenchmarkSubphase(b *testing.B) {
	net := benchNet(1024)
	byz := benchByz(1024)
	w := NewWorld()
	defer w.Close()
	if err := w.Reset(net, byz, nil, Config{Algorithm: AlgorithmByzantine, Seed: 13, Workers: 1}); err != nil {
		b.Fatal(err)
	}
	w.runSubphase(4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.runSubphase(4, 1)
	}
}

// BenchmarkSubphaseQuiescent isolates the frontier engine's regime: a
// 16-round subphase on a freshly Reset arena, where the flood stabilizes
// within the graph diameter (~4 rounds at n=1024) and the remaining
// rounds are pure quiescence. The dense loop re-scans every edge of
// every node in those rounds; the frontier engine skips them.
func BenchmarkSubphaseQuiescent(b *testing.B) {
	net := benchNet(1024)
	byz := benchByz(1024)
	for _, mode := range []struct {
		name string
		fm   FrontierMode
	}{{"frontier", FrontierOn}, {"dense", FrontierOff}} {
		b.Run(mode.name, func(b *testing.B) {
			w := NewWorld()
			defer w.Close()
			cfg := Config{Algorithm: AlgorithmByzantine, Seed: 13, Workers: 1, FrontierRounds: mode.fm}
			if err := w.Reset(net, byz, nil, cfg); err != nil {
				b.Fatal(err)
			}
			w.runSubphase(16, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.runSubphase(16, 1)
			}
		})
	}
}

// TestRoundLoopZeroAlloc is the acceptance guard for the arena: once a
// run is set up, executing subphases — color generation, Byzantine send
// latching, the full stepNode/verify loop, bookkeeping — must not
// allocate, serial or parallel, with reliable links or under the
// message-loss fault model (whose per-edge coin is pure arithmetic).
func TestRoundLoopZeroAlloc(t *testing.T) {
	net := benchNet(512)
	byz := benchByz(512)
	for _, tc := range []struct {
		name   string
		faults []FaultModel
	}{
		{name: "reliable", faults: nil},
		{name: "loss", faults: []FaultModel{MessageLoss{Prob: 0.1}}},
	} {
		for _, workers := range []int{1, 4} {
			w := NewWorld()
			cfg := Config{Algorithm: AlgorithmByzantine, Seed: 13, Workers: workers, Faults: tc.faults}
			if err := w.Reset(net, byz, nil, cfg); err != nil {
				t.Fatal(err)
			}
			w.scheduleFaults()  // arm the loss plan as run() would
			w.runSubphase(4, 1) // warm any lazy state
			allocs := testing.AllocsPerRun(50, func() {
				w.runSubphase(4, 1)
			})
			if tc.faults != nil && w.dropped.Load() == 0 {
				t.Errorf("%s: loss model armed but nothing dropped — guard is vacuous", tc.name)
			}
			w.Close()
			if allocs != 0 {
				t.Errorf("%s workers=%d: round loop allocates %.1f objects per subphase, want 0", tc.name, workers, allocs)
			}
		}
	}
}
