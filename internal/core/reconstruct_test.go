package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
)

// buildTree builds a rooted tree where the root has d children and every
// internal node has d-1 children, to the given depth. Returns the graph
// and the parent array (parent[root] = -1).
func buildTree(d, depth int) (*graph.Graph, []int32) {
	type level struct{ start, end int }
	var parents []int32
	parents = append(parents, -1) // root = 0
	levels := []level{{0, 1}}
	next := 1
	for l := 1; l <= depth; l++ {
		prev := levels[l-1]
		start := next
		for p := prev.start; p < prev.end; p++ {
			kids := d - 1
			if p == 0 {
				kids = d
			}
			for c := 0; c < kids; c++ {
				parents = append(parents, int32(p))
				next++
			}
		}
		levels = append(levels, level{start, next})
	}
	b := graph.NewBuilder(len(parents))
	for v := 1; v < len(parents); v++ {
		b.AddEdge(v, int(parents[v]))
	}
	return b.Build(), parents
}

// TestDeriveHFromGOnExactTree checks the Lemma 3 subset rules on a graph
// that *is* a tree: the derivation must be exact at the root.
func TestDeriveHFromGOnExactTree(t *testing.T) {
	const d, k = 4, 2
	h, parents := buildTree(d, 2*k)
	g := hgraph.BuildG(h, k)
	ball := DeriveHFromG(g, 0, k)
	if ball.Ambiguous {
		t.Fatal("derivation ambiguous on an exact tree")
	}
	if len(ball.HNeighbors) != d {
		t.Fatalf("derived %d H-neighbors at the root, want %d (%v)", len(ball.HNeighbors), d, ball.HNeighbors)
	}
	for _, u := range ball.HNeighbors {
		if parents[u] != 0 {
			t.Fatalf("derived root H-neighbor %d is not a child of the root", u)
		}
	}
	for child, parent := range ball.Parent {
		if parent == 0 && parents[child] == 0 {
			continue
		}
		if parents[child] != parent {
			t.Fatalf("derived parent of %d is %d, want %d", child, parent, parents[child])
		}
	}
}

// TestDeriveHFromGSucceedsMoreOftenAsNGrows is the statistical Lemma 3
// shape (experiment E4 in miniature): the derivation is exact iff the
// radius-2k ball is shortcut-free, whose probability → 1 as n grows. Use
// d=4 (k=2) so the 2k-ball is small enough for laptop-scale n.
func TestDeriveHFromGSucceedsMoreOftenAsNGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	success := func(n int) float64 {
		net, err := hgraph.New(hgraph.Params{N: n, D: 4, Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(42)
		const samples = 150
		matched := 0
		for s := 0; s < samples; s++ {
			v := src.Intn(n)
			ball := DeriveHFromG(net.G, v, net.K)
			if DerivationMatches(net.H, v, ball) {
				matched++
			}
		}
		return float64(matched) / samples
	}
	small := success(30000)
	large := success(240000)
	if large < 0.85 {
		t.Fatalf("derivation success at n=240k is %v, want >= 0.85", large)
	}
	if large <= small-0.05 {
		t.Fatalf("derivation success did not improve with n: %v -> %v", small, large)
	}
}

// TestDeriverReuseMatchesFreshCalls sweeps every node of a network
// through one reused Deriver and through the package-level function,
// asserting identical output — the arena's stamped membership state must
// rewind completely between calls.
func TestDeriverReuseMatchesFreshCalls(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 400, D: 4, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeriver()
	for v := 0; v < 400; v++ {
		reused := d.DeriveHFromG(net.G, v, net.K)
		fresh := DeriveHFromG(net.G, v, net.K)
		if reused.Ambiguous != fresh.Ambiguous {
			t.Fatalf("node %d: ambiguity %v vs %v", v, reused.Ambiguous, fresh.Ambiguous)
		}
		if len(reused.HNeighbors) != len(fresh.HNeighbors) {
			t.Fatalf("node %d: %d vs %d derived H-neighbors", v, len(reused.HNeighbors), len(fresh.HNeighbors))
		}
		for i := range fresh.HNeighbors {
			if reused.HNeighbors[i] != fresh.HNeighbors[i] {
				t.Fatalf("node %d: H-neighbors diverge: %v vs %v", v, reused.HNeighbors, fresh.HNeighbors)
			}
		}
		if len(reused.Parent) != len(fresh.Parent) {
			t.Fatalf("node %d: parent maps differ in size", v)
		}
		for c, p := range fresh.Parent {
			if reused.Parent[c] != p {
				t.Fatalf("node %d: parent of %d is %d, want %d", v, c, reused.Parent[c], p)
			}
		}
	}
}

// TestDeriverReuseAllocatesLess pins the point of the arena: a warmed
// Deriver allocates strictly less per call than the fresh path (which
// rebuilds the membership vectors and intersection storage every time);
// only the returned DerivedBall should remain.
func TestDeriverReuseAllocatesLess(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 2000, D: 8, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeriver()
	v := 0
	d.DeriveHFromG(net.G, v, net.K) // warm the slabs
	reused := testing.AllocsPerRun(50, func() {
		v = (v + 17) % 2000
		d.DeriveHFromG(net.G, v, net.K)
	})
	v = 0
	fresh := testing.AllocsPerRun(50, func() {
		v = (v + 17) % 2000
		DeriveHFromG(net.G, v, net.K)
	})
	if reused >= fresh {
		t.Fatalf("reused deriver allocates %.1f/call, fresh path %.1f/call — arena buys nothing", reused, fresh)
	}
	// The output (struct, parent map, neighbor slice) is all that should
	// remain on the reused path, give or take map internals.
	if reused > 10 {
		t.Fatalf("reused deriver allocates %.1f/call, want only the returned DerivedBall (<= 10)", reused)
	}
}

func TestDerivationMatchesRejectsAmbiguity(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	ball := &DerivedBall{Ambiguous: true}
	if DerivationMatches(g, 0, ball) {
		t.Fatal("ambiguous derivation accepted")
	}
}

func TestDeriveHFromGParentEdgesAreGEdges(t *testing.T) {
	// Structural invariant regardless of tree-likeness: every derived
	// parent relation connects G-adjacent nodes.
	net, err := hgraph.New(hgraph.Params{N: 300, D: 8, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		v := src.Intn(300)
		ball := DeriveHFromG(net.G, v, net.K)
		for child, parent := range ball.Parent {
			if parent == int32(v) {
				if !net.G.HasEdge(v, int(child)) {
					t.Fatalf("root %d not G-adjacent to %d", child, v)
				}
				continue
			}
			if !net.G.HasEdge(int(parent), int(child)) {
				t.Fatalf("derived parent edge (%d,%d) not in G", parent, child)
			}
		}
	}
}
