// Package core implements the paper's primary contribution: the Byzantine
// counting protocol of "Network Size Estimation in Small-World Networks
// under Byzantine Faults" (Chatterjee, Pandurangan, Robinson; IPDPS 2019).
//
// Two algorithms are provided, selected by Config.Algorithm:
//
//   - AlgorithmBasic — Algorithm 1: phase-based geometric-color flooding on
//     the H edges, with the fresh-maximum/threshold termination rule. Its
//     analysis assumes no Byzantine influence; running it against an active
//     adversary demonstrates why Algorithm 2 is needed.
//
//   - AlgorithmByzantine — Algorithm 2: Algorithm 1 plus the two defenses:
//     the pre-phase topology exchange with crash-on-conflict (Lemma 3 /
//     Lemma 15) and per-color chain attestation over the lattice edges
//     (Lemma 16), which confines Byzantine color injection to the first
//     k−1 rounds of a subphase.
//
// The simulation is synchronous and faithful to the paper's full-information
// model: the Adversary interface receives a read view of the entire world
// state (including every honest node's clonable coin stream) and chooses
// Byzantine behaviour per edge, per round.
//
// Runtime fault regimes beyond the paper's static reliable network are
// pluggable via Config.Faults (see fault.go): scheduled crash churn,
// oblivious join/rejoin churn (arXiv:2204.11951), and per-edge message
// omission, all preserving determinism and the zero-allocation round loop.
//
// # Modeling choices
//
// Nodes are granted knowledge of their own H-incident edges, and the
// topology exchange is simulated at the level of per-victim H-adjacency
// claims with the paper's crash-on-conflict rule, rather than re-deriving
// H from raw G-lists inside every node. Lemma 3 proves the derivation is
// exact for honest neighborhoods and Lemma 15 proves the only outcomes
// under attack are "exact" or "crash", so the downstream dynamics are
// unchanged; the literal G→H derivation is implemented separately as
// DeriveHFromG and validated in experiment E4. See DESIGN.md §1 for the
// full argument.
package core
