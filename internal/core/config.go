package core

import (
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/sim"
)

// Algorithm selects which protocol variant Run executes.
type Algorithm int

const (
	// AlgorithmBasic is Algorithm 1: no topology exchange, no color
	// verification. Correct only absent Byzantine influence.
	AlgorithmBasic Algorithm = iota
	// AlgorithmByzantine is Algorithm 2: topology exchange with
	// crash-on-conflict plus chain-attestation color verification.
	AlgorithmByzantine
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmBasic:
		return "basic"
	case AlgorithmByzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// FrontierMode selects the round-engine scheduling strategy (see
// frontier.go and DESIGN.md §"Round engine").
type FrontierMode int

const (
	// FrontierAuto resolves to the frontier engine unless the
	// REPRO_FRONTIER=off environment override is set (the CI test matrix
	// uses the override to run the whole suite against the dense loop).
	FrontierAuto FrontierMode = iota
	// FrontierOn forces quiescence-aware frontier scheduling: only nodes
	// whose inputs may have changed are stepped each round.
	FrontierOn
	// FrontierOff forces the dense reference loop: every node is stepped
	// every round. Byte-identical Results to FrontierOn, forever — the
	// equivalence suite in frontier_test.go pins it.
	FrontierOff
)

// String implements fmt.Stringer.
func (m FrontierMode) String() string {
	switch m {
	case FrontierAuto:
		return "auto"
	case FrontierOn:
		return "on"
	case FrontierOff:
		return "off"
	default:
		return fmt.Sprintf("FrontierMode(%d)", int(m))
	}
}

// frontierEnvDefault resolves FrontierAuto once per process.
var frontierEnvDefault = sync.OnceValue(func() FrontierMode {
	if os.Getenv("REPRO_FRONTIER") == "off" {
		return FrontierOff
	}
	return FrontierOn
})

// enabled reports whether the mode selects frontier scheduling.
func (m FrontierMode) enabled() bool {
	if m == FrontierAuto {
		m = frontierEnvDefault()
	}
	return m == FrontierOn
}

// Config parameterizes a protocol run.
type Config struct {
	Algorithm Algorithm
	// Epsilon is the paper's error parameter ε ∈ (0,1): at most an
	// ε-fraction of honest nodes may decide wrongly. Default 0.1.
	Epsilon float64
	// MaxPhase is the simulator's safety cap on phases. Nodes still active
	// past it are reported as undecided. 0 selects 4·log₂(n)+16.
	MaxPhase int
	// Seed drives all honest protocol coins (per-node streams are split
	// from it). The network topology has its own seed in hgraph.Params.
	Seed uint64
	// Workers sets simulator parallelism; 0 selects GOMAXPROCS. Ignored
	// when Pool is set.
	Workers int
	// Pool, if non-nil, is a caller-owned sim.Pool the run executes on,
	// shared across runs (and Worlds) instead of constructed per run. The
	// engine never closes a supplied Pool. Nil: the arena creates and
	// owns a pool of Workers goroutines, reused across its Resets.
	//
	// A Pool serializes its parallel-for calls, so Worlds sharing one
	// must not Run concurrently — share across sequential runs; give
	// concurrent Worlds (e.g. one per sweep worker) their own pools.
	Pool *sim.Pool
	// RecordPhaseActivity, when set, records how many honest nodes were
	// still active at the start of each phase (used by experiment E6/E11).
	RecordPhaseActivity bool
	// Observer, if non-nil, is called serially after every synchronous
	// round with the full world state (Clock identifies the position).
	// Experiments use it to watch color propagation, e.g. to detect
	// whether Byzantine injections were ever accepted.
	Observer Observer
	// InjectionThreshold, when > 0, instruments the engine to record the
	// round at which a color >= the threshold FIRST enters the honest
	// population in each subphase — the quantity Lemma 16 bounds by k−1.
	// (Later holds are legitimate honest flooding, per Lemma 17.)
	InjectionThreshold int64
	// Churn injects crash failures during the run (an extension beyond the
	// paper, which handles crashes only at the exchange): the configured
	// number of random honest nodes permanently stop participating at the
	// starts of random early phases. Estimation must survive on the
	// remaining expander (experiment E15). Internally this is the
	// CrashChurn fault model; the field remains for compatibility and is
	// scheduled before any Faults entry.
	Churn ChurnConfig
	// Faults composes pluggable runtime fault models beyond Churn: each
	// entry contributes scheduled crash/rejoin transitions (CrashChurn,
	// JoinChurn) or per-edge message omission (MessageLoss) to the run.
	// Models are scheduled in slice order; nil entries are ignored. Empty
	// Faults is the paper's static reliable-network regime.
	Faults []FaultModel
	// FrontierRounds selects the round-engine scheduling strategy. The
	// default (FrontierAuto) runs the quiescence-aware frontier engine,
	// which skips nodes whose inputs cannot have changed; FrontierOff
	// forces the dense reference loop. Both produce byte-identical
	// Results — the toggle exists so the equivalence is testable forever.
	FrontierRounds FrontierMode
	// RecordFrontierOccupancy, when set, records the fraction of
	// node-rounds actually stepped in each phase (experiment E20). Under
	// FrontierOff every phase records 1.
	RecordFrontierOccupancy bool
}

// ChurnConfig schedules mid-run crash failures.
type ChurnConfig struct {
	// Crashes is how many honest nodes crash-fail during the run.
	Crashes int
	// Seed drives victim and timing selection.
	Seed uint64
	// LastPhase bounds the phases at which crashes may fire (phases
	// 2..LastPhase); 0 selects 6.
	LastPhase int
}

// Observer receives a serial callback at the end of every round.
type Observer interface {
	RoundEnd(w *World)
}

// PhaseObserver is an optional extension of Observer: implementations are
// additionally called after each phase's decision step (decisions are
// assigned after the phase's last round, so a pure RoundEnd observer would
// see the final phase's deciders only at the next phase — or never, for
// the last phase).
type PhaseObserver interface {
	PhaseEnd(w *World)
}

func (c Config) withDefaults(n int) Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.MaxPhase == 0 {
		c.MaxPhase = int(4*math.Log2(float64(n))) + 16
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Epsilon < 0 || c.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v outside [0,1)", c.Epsilon)
	}
	if c.MaxPhase < 0 {
		return fmt.Errorf("core: negative MaxPhase %d", c.MaxPhase)
	}
	if c.Algorithm != AlgorithmBasic && c.Algorithm != AlgorithmByzantine {
		return fmt.Errorf("core: unknown algorithm %d", c.Algorithm)
	}
	if c.Churn.Crashes < 0 {
		return fmt.Errorf("core: negative churn crashes %d", c.Churn.Crashes)
	}
	if c.FrontierRounds < FrontierAuto || c.FrontierRounds > FrontierOff {
		return fmt.Errorf("core: unknown frontier mode %d", int(c.FrontierRounds))
	}
	for _, fm := range c.Faults {
		if fm == nil {
			continue
		}
		if err := fm.Validate(); err != nil {
			return err
		}
	}
	return nil
}
