package core

// verify.go implements Algorithm 2 line 15: before accepting a color c
// received from H-neighbor x0 in round t, node v checks with the nodes in
// B(x0, k−1) — all of which are v's direct G-neighbors — that c travelled a
// legitimate path.
//
// Concretely, v accepts iff there is a simple path x0, x1, …, xm in v's
// believed H-topology, m = min(t, k) − 1, where every xs attests to having
// held a color ≥ c at round t−1−s of the current subphase (round 0 means
// "generated such a color"). Honest nodes attest from their held logs;
// Byzantine nodes attest however the adversary likes.
//
// Soundness (Lemma 16 reproduced): colors relayed by honest flooding always
// have such a path (held values are monotone within a subphase, and a fresh
// improvement's first-arrival chain grounds out at a generator within the
// horizon), while a fabricated color at round t ≥ k requires all of
// x0..x_{k−1} to lie — a k-node Byzantine chain in the believed ball, which
// Observation 6 rules out w.h.p. The path must be simple: allowing revisits
// would let two Byzantine nodes simulate an arbitrarily long chain.

// verifyColor is the entry point used by the engine. v is the verifier,
// from the sending H-neighbor, c the received color, t the current round.
func (w *World) verifyColor(v int, from int32, c int64, t int) bool {
	m := t
	if m > w.Net.K {
		m = w.Net.K
	}
	m-- // chain length beyond the sender
	var visited [8]int32
	ok := w.attestChain(v, from, c, t-1, m, visited[:0])
	return ok
}

// attest asks node x whether it held a color >= c after round r.
func (w *World) attest(v int, x int32, c int64, r int) bool {
	if r < 0 {
		return false
	}
	// Each query/response pair travels over an L edge: constant IDs plus
	// O(log) payload.
	w.counters.CountMessages(2, messageBits(c)+64)
	if w.Byz[x] {
		return w.adv.Attest(w, int(x), v, c, r)
	}
	if w.crashed[x] {
		return false // crashed nodes answer nothing
	}
	return w.logAt(x, r) >= c
}

// attestChain checks x's attestation for round r and, if the budget is not
// exhausted, searches x's believed neighbors for the rest of the chain.
func (w *World) attestChain(v int, x int32, c int64, r int, budget int, path []int32) bool {
	for _, p := range path {
		if p == x {
			return false // simple paths only
		}
	}
	if !w.attest(v, x, c, r) {
		return false
	}
	if budget == 0 {
		return true
	}
	path = append(path, x)
	for _, y := range w.viewNeighbors(v, x) {
		if w.attestChain(v, y, c, r-1, budget-1, path) {
			return true
		}
	}
	return false
}
