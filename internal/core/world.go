package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/sim"
)

// World holds the full simulation state of one protocol run. The Adversary
// reads it freely (full-information model); honest node logic lives in the
// engine (run.go) and only touches its own node's state within a round.
//
// A World is a reusable arena: NewWorld returns an empty one, Reset (or
// ResetTopology) rewinds it for a run without reallocating steady-state
// buffers, and Close releases its worker pool. The sweep runner keeps one
// World per worker and reuses it across jobs; one-shot callers go through
// the package-level Run, which wraps the same lifecycle.
type World struct {
	Net   *hgraph.Network
	Byz   []bool
	Cfg   Config
	Sched Schedule
	Clock Clock

	// topo is the immutable per-network half of the arena (CSR adjacency,
	// reverse-edge index); everything below is mutable per-run state.
	topo *Topology

	held         *sim.Exchange[int64]
	heldBuf      []int64   // slab backing heldLog, zeroed on Reset
	heldLog      [][]int64 // [node][round] held value after each round of the current subphase
	logN, logLen int       // dimensions heldBuf/heldLog were built for
	color        []int64   // color drawn this subphase (0 if not generating)
	decided      []int32   // phase at which the node decided; 0 = still active
	decidedRound []int64   // global round at which the node decided
	crashed      []bool    // honest nodes that shut down in the exchange
	continueFlag []bool    // per-phase: some subphase satisfied the continue criterion
	maxEarly     []int64   // per-subphase: max_{t<i} k_t
	kFinal       []int64   // per-subphase: k_i
	colorSrc     []rng.Source
	zeroByz      []bool // reusable all-false vector for byz == nil

	// views[v] maps a lying node to the H-adjacency it claimed to v during
	// the exchange; nil means v's view of the topology is ground truth.
	views []map[int32][]int32

	byzList []int32
	// byzIn is the CSR-aligned Byzantine send-slot index: for every H CSR
	// entry e owned by receiver v, byzIn[e] is the byzSends slot of the
	// sender hAdj[e] on the edge (hAdj[e] → v), or -1 if that sender is
	// honest. It replaces the seed engine's (b<<32|v) hash-map lookup in
	// stepNode with one array index. Parallel edges share a slot, exactly
	// as the map deduplicated them.
	byzIn    []int32
	byzSends []int64 // latched adversary sends for the current round

	counters       sim.Counters
	pool           *sim.Pool
	poolOwned      bool // whether Close should shut the pool down
	globalRound    int64
	adv            Adversary
	activePerPhase []int

	// Allocation-free round dispatch: runSubphase parks its loop variables
	// here and hands the pool one persistent closure instead of capturing
	// a fresh one (which would escape to the heap) every round. stepFn
	// walks node ids directly (full sweeps); stepListFn walks the frontier
	// worklist (see frontier.go).
	stepFn     func(start, end int)
	stepListFn func(start, end int)
	stepRound  int
	stepPhase  int
	stepVerify bool

	// fr is the quiescence-aware frontier scheduler's reusable state
	// (worklists, dirty stamps, the quiet flood-cost aggregate); hasCand[v]
	// marks nodes that saw improvement candidates this round and so must
	// be re-stepped next round (verification outcomes and attestation
	// costs depend on the round index). logUpTo[v] is the last round of
	// the current subphase whose heldLog entry was actually written —
	// skipped nodes stop writing their (unchanged) log, and every reader
	// goes through the clamped logAt accessor instead. See frontier.go.
	fr      frontier
	hasCand []bool
	logUpTo []int32

	// Frontier-occupancy instrumentation (Config.RecordFrontierOccupancy):
	// node-rounds stepped and rounds executed in the current phase, and
	// the per-phase fractions accumulated so far.
	occStepped  int64
	occRounds   int64
	occPerPhase []float64

	// Reusable exchange scratch (Algorithm 2 preprocessing).
	exchBFS  *graph.BFS
	exchCand []bool

	// candOverflows counts rounds in which a node saw more than
	// maxCandidates improvement candidates (possible only at H-degree
	// > maxCandidates); the bounded selection then keeps the best rather
	// than the first arrivals. Diagnostic only — not part of Result.
	candOverflows atomic.Int64

	// Lemma 16 instrumentation (Config.InjectionThreshold > 0):
	// entryRound is the round the current subphase first saw an injected
	// color in honest hands; injectionEntries histograms those per run.
	entryRound       int
	injectionEntries map[int]int

	// churnCrashes counts mid-run crash failures injected by the fault
	// models (Config.Churn and Config.Faults); rejoins counts nodes a
	// JoinChurn model brought back.
	churnCrashes int
	rejoins      int

	// plan is the run's fault schedule (crash/rejoin events, message-loss
	// parameters), rebuilt from the configured FaultModels each run inside
	// reusable scratch. dropped counts honest-side receptions omitted by
	// message loss (atomic: stepNode runs in parallel).
	plan    FaultPlan
	dropped atomic.Int64

	// batch/lane bind this World as lane `lane` of a BatchWorld run (see
	// batch.go): the hot flood state then lives lane-major in the batch's
	// struct-of-arrays boards, and the Held/CoinStream accessors redirect
	// there so adversaries and observers see the batch state through the
	// unchanged scalar API. nil outside batch execution.
	batch *BatchWorld
	lane  int
}

// NewWorld returns an empty arena. Reset it before running; Close it when
// done (Close only releases the worker pool — a closed arena can be Reset
// and used again).
func NewWorld() *World { return &World{} }

// resetSlice returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Reset rewinds the arena for a run of cfg on (net, byz, adv), reusing
// every steady-state buffer from the previous run. Topology tables are
// recomputed only when net differs from the previous Reset's network;
// callers that already hold a Topology (the sweep cache) should use
// ResetTopology instead.
func (w *World) Reset(net *hgraph.Network, byz []bool, adv Adversary, cfg Config) error {
	topo := w.topo
	if topo == nil || topo.Net != net {
		topo = NewTopology(net)
	}
	return w.ResetTopology(topo, byz, adv, cfg)
}

// ResetTopology is Reset with the per-network tables supplied by the
// caller. topo may be shared across arenas and goroutines; the World only
// reads it.
func (w *World) ResetTopology(topo *Topology, byz []bool, adv Adversary, cfg Config) error {
	net := topo.Net
	n := net.H.N()
	if byz == nil {
		w.zeroByz = resetSlice(w.zeroByz, n)
		byz = w.zeroByz
	}
	if len(byz) != n {
		return fmt.Errorf("core: byz vector length %d != n %d", len(byz), n)
	}
	cfg = cfg.withDefaults(n)
	if err := cfg.Validate(); err != nil {
		return err
	}
	if adv == nil {
		adv = HonestAdversary{}
	}

	// Unmark the previous run's Byzantine slots before the topology or
	// fault set underneath them changes.
	w.clearByzIn()
	topoChanged := w.topo != topo
	w.topo = topo
	w.Net = net
	w.Byz = byz
	w.Cfg = cfg
	w.Sched = Schedule{D: net.Params.D, Epsilon: cfg.Epsilon}
	w.Clock = Clock{}
	w.adv = adv

	if w.held == nil || len(w.held.Cur()) != n {
		w.held = sim.NewExchange[int64](n)
	} else {
		w.held.Reset()
	}
	logLen := cfg.MaxPhase + 1
	if w.logN != n || w.logLen != logLen {
		w.heldBuf = resetSlice(w.heldBuf, n*logLen)
		w.heldLog = resetSlice(w.heldLog, n)
		for v := 0; v < n; v++ {
			w.heldLog[v] = w.heldBuf[v*logLen : (v+1)*logLen]
		}
		w.logN, w.logLen = n, logLen
	} else {
		clear(w.heldBuf)
	}
	w.color = resetSlice(w.color, n)
	w.decided = resetSlice(w.decided, n)
	w.decidedRound = resetSlice(w.decidedRound, n)
	w.crashed = resetSlice(w.crashed, n)
	w.continueFlag = resetSlice(w.continueFlag, n)
	w.maxEarly = resetSlice(w.maxEarly, n)
	w.kFinal = resetSlice(w.kFinal, n)
	w.views = resetSlice(w.views, n)
	w.exchCand = resetSlice(w.exchCand, n)
	if cap(w.colorSrc) < n {
		w.colorSrc = make([]rng.Source, n)
	} else {
		w.colorSrc = w.colorSrc[:n]
	}
	for v := 0; v < n; v++ {
		w.colorSrc[v].SeedSplit(cfg.Seed, uint64(v))
	}

	w.rebuildByzTables(topoChanged)

	w.counters.Reset()
	w.globalRound = 0
	w.churnCrashes = 0
	w.rejoins = 0
	w.plan.reset(n)
	w.dropped.Store(0)
	w.entryRound = 0
	w.injectionEntries = nil
	w.activePerPhase = w.activePerPhase[:0]
	w.candOverflows.Store(0)
	w.fr.reset(n)
	w.hasCand = resetSlice(w.hasCand, n)
	w.logUpTo = resetSlice(w.logUpTo, n)
	w.occStepped, w.occRounds = 0, 0
	w.occPerPhase = w.occPerPhase[:0]
	w.batch, w.lane = nil, 0

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.Pool != nil:
		if w.poolOwned && w.pool != nil {
			w.pool.Close()
		}
		w.pool, w.poolOwned = cfg.Pool, false
	case w.pool != nil && w.poolOwned && w.pool.Workers() == workers:
		// Reuse the arena's pool from the previous run.
	default:
		if w.poolOwned && w.pool != nil {
			w.pool.Close()
		}
		w.pool, w.poolOwned = sim.NewPool(workers), true
	}

	if w.stepFn == nil {
		w.stepFn = func(start, end int) {
			for v := start; v < end; v++ {
				w.stepNode(v, w.stepRound, w.stepPhase, w.stepVerify)
			}
		}
		w.stepListFn = func(start, end int) {
			for idx := start; idx < end; idx++ {
				w.stepNode(int(w.fr.list[idx]), w.stepRound, w.stepPhase, w.stepVerify)
			}
		}
	}
	if topoChanged || w.exchBFS == nil {
		w.exchBFS = graph.NewBFS(net.H)
	}
	return nil
}

// clearByzIn resets the slot marks left by the previous run's Byzantine
// set, touching only the entries adjacent to those nodes (via the
// reverse-edge index) instead of the whole O(E) table.
func (w *World) clearByzIn() {
	if w.topo == nil || len(w.byzIn) != len(w.topo.hAdj) {
		return
	}
	for _, b := range w.byzList {
		for e := w.topo.hOff[b]; e < w.topo.hOff[b+1]; e++ {
			w.byzIn[w.topo.rev[e]] = -1
		}
	}
}

// rebuildByzTables assigns send slots for the current Byzantine set. Slot
// numbering matches the seed engine's map-insertion order (Byzantine nodes
// ascending, CSR adjacency order, parallel edges deduplicated), so latched
// values land in the same slots the hash map would have used.
func (w *World) rebuildByzTables(topoChanged bool) {
	topo := w.topo
	if topoChanged || len(w.byzIn) != len(topo.hAdj) {
		w.byzIn = resetSlice(w.byzIn, len(topo.hAdj))
		for i := range w.byzIn {
			w.byzIn[i] = -1
		}
	}
	w.byzList = w.byzList[:0]
	slots := int32(0)
	n := topo.Net.H.N()
	for v := 0; v < n; v++ {
		if !w.Byz[v] {
			continue
		}
		w.byzList = append(w.byzList, int32(v))
		prev := int32(-1)
		var s int32
		for e := topo.hOff[v]; e < topo.hOff[v+1]; e++ {
			nb := topo.hAdj[e]
			if nb != prev {
				s = slots
				slots++
				prev = nb
			}
			w.byzIn[topo.rev[e]] = s
		}
	}
	w.byzSends = resetSlice(w.byzSends, int(slots))
}

// Close releases the arena's worker pool (if it owns one — a pool supplied
// via Config.Pool belongs to the caller). The arena can be Reset and used
// again afterwards.
func (w *World) Close() {
	if w.poolOwned && w.pool != nil {
		w.pool.Close()
	}
	w.pool, w.poolOwned = nil, false
}

// --- Read accessors (used by adversaries and reports) ---

// N returns the network size (which honest nodes, of course, do not know).
func (w *World) N() int { return w.Net.H.N() }

// Held returns the color node v currently holds (after the last completed
// round of the current subphase).
func (w *World) Held(v int) int64 {
	if bw := w.batch; bw != nil {
		return bw.cur[v*bw.nl+w.lane]
	}
	return w.held.Cur()[v]
}

// HeldLogAt returns the color node v held after round r of the current
// subphase; r = 0 is the node's own generated color.
func (w *World) HeldLogAt(v, r int) int64 {
	if r < 0 || r >= len(w.heldLog[v]) {
		return 0
	}
	return w.logAt(int32(v), r)
}

// logAt reads node x's held log at round r through the frontier's
// watermark: rounds the scheduler skipped were never written, but a
// skipped node's held value is by construction unchanged since its last
// written round, so the clamp reproduces exactly what an eager write
// would have stored. logUpTo is only advanced serially between rounds,
// and heldLog entries at or below it are never written again, so this is
// safe to call from the round's worker goroutines.
func (w *World) logAt(x int32, r int) int64 {
	if bw := w.batch; bw != nil {
		// Batch-bound lanes log into the shared round-major board (one
		// contiguous row per round) with a lane-major watermark instead
		// of per-lane slabs; the clamp rule is unchanged.
		idx := int(x)*bw.nl + w.lane
		if u := int(bw.blogUp[idx]); r > u {
			r = u
		}
		return bw.blog[r][idx]
	}
	if u := int(w.logUpTo[x]); r > u {
		r = u
	}
	return w.heldLog[x][r]
}

// OwnColor returns the color v generated this subphase (0 if v is not
// generating: decided, crashed, or Byzantine).
func (w *World) OwnColor(v int) int64 { return w.color[v] }

// DecidedPhase returns the phase at which v decided, or 0 if still active.
func (w *World) DecidedPhase(v int) int { return int(w.decided[v]) }

// IsCrashed reports whether honest node v shut itself down in the exchange.
func (w *World) IsCrashed(v int) bool { return w.crashed[v] }

// IsActive reports whether v is an honest, uncrashed, undecided node.
func (w *World) IsActive(v int) bool {
	return !w.Byz[v] && !w.crashed[v] && w.decided[v] == 0
}

// CoinStream returns a clone of v's protocol coin stream: the adversary can
// replay every future color v will draw (the paper's adversary knows all
// current and future random choices).
func (w *World) CoinStream(v int) *rng.Source {
	if bw := w.batch; bw != nil {
		return bw.colorSrc[v*bw.nl+w.lane].Clone()
	}
	return w.colorSrc[v].Clone()
}

// ByzantineNodes returns the indices of the Byzantine nodes.
func (w *World) ByzantineNodes() []int32 { return w.byzList }

// GlobalRound returns the number of synchronous rounds elapsed.
func (w *World) GlobalRound() int64 { return w.globalRound }

// Counters returns the communication-cost counters.
func (w *World) Counters() *sim.Counters { return &w.counters }

// viewNeighbors returns node x's H-adjacency as believed by verifier v:
// the claim x made to v during the exchange if x lied to v, else ground
// truth.
func (w *World) viewNeighbors(v int, x int32) []int32 {
	if ov := w.views[v]; ov != nil {
		if claimed, ok := ov[x]; ok {
			return claimed
		}
	}
	return w.topo.hAdj[w.topo.hOff[x]:w.topo.hOff[x+1]]
}

// activeCount returns the number of honest, uncrashed, undecided nodes.
func (w *World) activeCount() int {
	count := 0
	for v := 0; v < w.N(); v++ {
		if w.IsActive(v) {
			count++
		}
	}
	return count
}
