package core

import (
	"repro/internal/hgraph"
	"repro/internal/rng"
	"repro/internal/sim"
)

// World holds the full simulation state of one protocol run. The Adversary
// reads it freely (full-information model); honest node logic lives in the
// engine (run.go) and only touches its own node's state within a round.
type World struct {
	Net   *hgraph.Network
	Byz   []bool
	Cfg   Config
	Sched Schedule
	Clock Clock

	held         *sim.Exchange[int64]
	heldLog      [][]int64 // [node][round] held value after each round of the current subphase
	color        []int64   // color drawn this subphase (0 if not generating)
	decided      []int32   // phase at which the node decided; 0 = still active
	decidedRound []int64   // global round at which the node decided
	crashed      []bool    // honest nodes that shut down in the exchange
	continueFlag []bool    // per-phase: some subphase satisfied the continue criterion
	maxEarly     []int64   // per-subphase: max_{t<i} k_t
	kFinal       []int64   // per-subphase: k_i
	colorSrc     []*rng.Source

	// views[v] maps a lying node to the H-adjacency it claimed to v during
	// the exchange; nil means v's view of the topology is ground truth.
	views []map[int32][]int32

	byzList  []int32
	byzSlot  map[int64]int32 // (b<<32 | v) -> index into byzSends
	byzSends []int64         // latched adversary sends for the current round

	counters       sim.Counters
	pool           *sim.Pool
	globalRound    int64
	adv            Adversary
	activePerPhase []int

	// Lemma 16 instrumentation (Config.InjectionThreshold > 0):
	// entryRound is the round the current subphase first saw an injected
	// color in honest hands; injectionEntries histograms those per run.
	entryRound       int
	injectionEntries map[int]int

	// churnCrashes counts mid-run crash failures injected by Config.Churn.
	churnCrashes int
}

func byzKey(b, v int32) int64 { return int64(b)<<32 | int64(v) }

func newWorld(net *hgraph.Network, byz []bool, adv Adversary, cfg Config) *World {
	n := net.H.N()
	w := &World{
		Net:          net,
		Byz:          byz,
		Cfg:          cfg,
		Sched:        Schedule{D: net.Params.D, Epsilon: cfg.Epsilon},
		held:         sim.NewExchange[int64](n),
		heldLog:      make([][]int64, n),
		color:        make([]int64, n),
		decided:      make([]int32, n),
		decidedRound: make([]int64, n),
		crashed:      make([]bool, n),
		continueFlag: make([]bool, n),
		maxEarly:     make([]int64, n),
		kFinal:       make([]int64, n),
		colorSrc:     make([]*rng.Source, n),
		views:        make([]map[int32][]int32, n),
		adv:          adv,
	}
	logLen := cfg.MaxPhase + 1
	logs := make([]int64, n*logLen)
	for v := 0; v < n; v++ {
		w.heldLog[v] = logs[v*logLen : (v+1)*logLen]
		w.colorSrc[v] = rng.Split(cfg.Seed, uint64(v))
	}
	w.pool = sim.NewPool(cfg.Workers)
	var slots int32
	w.byzSlot = make(map[int64]int32)
	for v := 0; v < n; v++ {
		if !byz[v] {
			continue
		}
		w.byzList = append(w.byzList, int32(v))
		for _, nb := range net.H.Neighbors(v) {
			key := byzKey(int32(v), nb)
			if _, ok := w.byzSlot[key]; !ok {
				w.byzSlot[key] = slots
				slots++
			}
		}
	}
	w.byzSends = make([]int64, slots)
	return w
}

// Close releases the worker pool. Run calls it automatically.
func (w *World) Close() { w.pool.Close() }

// --- Read accessors (used by adversaries and reports) ---

// N returns the network size (which honest nodes, of course, do not know).
func (w *World) N() int { return w.Net.H.N() }

// Held returns the color node v currently holds (after the last completed
// round of the current subphase).
func (w *World) Held(v int) int64 { return w.held.Cur()[v] }

// HeldLogAt returns the color node v held after round r of the current
// subphase; r = 0 is the node's own generated color.
func (w *World) HeldLogAt(v, r int) int64 {
	if r < 0 || r >= len(w.heldLog[v]) {
		return 0
	}
	return w.heldLog[v][r]
}

// OwnColor returns the color v generated this subphase (0 if v is not
// generating: decided, crashed, or Byzantine).
func (w *World) OwnColor(v int) int64 { return w.color[v] }

// DecidedPhase returns the phase at which v decided, or 0 if still active.
func (w *World) DecidedPhase(v int) int { return int(w.decided[v]) }

// IsCrashed reports whether honest node v shut itself down in the exchange.
func (w *World) IsCrashed(v int) bool { return w.crashed[v] }

// IsActive reports whether v is an honest, uncrashed, undecided node.
func (w *World) IsActive(v int) bool {
	return !w.Byz[v] && !w.crashed[v] && w.decided[v] == 0
}

// CoinStream returns a clone of v's protocol coin stream: the adversary can
// replay every future color v will draw (the paper's adversary knows all
// current and future random choices).
func (w *World) CoinStream(v int) *rng.Source { return w.colorSrc[v].Clone() }

// ByzantineNodes returns the indices of the Byzantine nodes.
func (w *World) ByzantineNodes() []int32 { return w.byzList }

// GlobalRound returns the number of synchronous rounds elapsed.
func (w *World) GlobalRound() int64 { return w.globalRound }

// Counters returns the communication-cost counters.
func (w *World) Counters() *sim.Counters { return &w.counters }

// viewNeighbors returns node x's H-adjacency as believed by verifier v:
// the claim x made to v during the exchange if x lied to v, else ground
// truth.
func (w *World) viewNeighbors(v int, x int32) []int32 {
	if ov := w.views[v]; ov != nil {
		if claimed, ok := ov[x]; ok {
			return claimed
		}
	}
	return w.Net.H.Neighbors(int(x))
}

// activeCount returns the number of honest, uncrashed, undecided nodes.
func (w *World) activeCount() int {
	count := 0
	for v := 0; v < w.N(); v++ {
		if w.IsActive(v) {
			count++
		}
	}
	return count
}
