package core

import "fmt"

// Result is the immutable outcome of one protocol run.
type Result struct {
	N         int
	D         int
	K         int
	LogN      float64 // log₂ n, the quantity the protocol estimates
	Algorithm Algorithm
	Epsilon   float64

	// Estimates[v] is the phase at which node v decided — its estimate of
	// log n — or 0 for Byzantine, crashed, or undecided nodes.
	Estimates []int32
	// DecidedAt[v] is the global round at which v decided (0 if it never did).
	DecidedAt []int64
	Crashed   []bool
	Byzantine []bool

	Rounds         int64 // total synchronous rounds executed
	Phases         int   // largest phase any honest node reached before deciding
	Messages       int64 // honest-side messages (floods, exchange, attestations)
	Bits           int64 // total honest-side bits
	MaxMessageBits int64 // largest single message

	HonestCount    int
	ByzantineCount int
	CrashedCount   int // includes exchange crashes and churn crashes
	ChurnCrashes   int // mid-run crash failures injected by the fault models
	UndecidedCount int

	// Rejoins counts nodes a JoinChurn fault model brought back after a
	// scheduled leave; DroppedMessages counts honest-side receptions
	// omitted by a MessageLoss model. Both are zero (and absent from the
	// canonical JSON, keeping fault-off digests stable) without fault
	// models configured.
	Rejoins         int   `json:"Rejoins,omitempty"`
	DroppedMessages int64 `json:"DroppedMessages,omitempty"`

	// ActivePerPhase[i-1] is the number of active honest nodes at the start
	// of phase i (only recorded with Config.RecordPhaseActivity).
	ActivePerPhase []int

	// FrontierOccupancy[i-1] is the fraction of node-rounds the round
	// engine actually stepped during phase i (only recorded with
	// Config.RecordFrontierOccupancy; 1.0 under the dense loop). Absent
	// from the canonical JSON when not recorded, keeping digests stable.
	FrontierOccupancy []float64 `json:"FrontierOccupancy,omitempty"`

	// InjectionEntryRounds histograms, per subphase that saw one, the round
	// at which an injected color (>= Config.InjectionThreshold) first
	// entered the honest population. Lemma 16: all keys are <= k−1.
	// Nil unless Config.InjectionThreshold was set.
	InjectionEntryRounds map[int]int
}

// MaxInjectionEntryRound returns the latest subphase round at which an
// injected color entered the honest population (0 if never).
func (r *Result) MaxInjectionEntryRound() int {
	max := 0
	for t := range r.InjectionEntryRounds {
		if t > max {
			max = t
		}
	}
	return max
}

// EstimateOf returns node v's estimate and whether it produced one.
func (r *Result) EstimateOf(v int) (int, bool) {
	e := r.Estimates[v]
	return int(e), e > 0
}

// Ratio returns node v's estimate divided by log₂ n, the quantity whose
// constant-factor concentration Theorem 1 asserts. ok is false for nodes
// without an estimate.
func (r *Result) Ratio(v int) (ratio float64, ok bool) {
	e, ok := r.EstimateOf(v)
	if !ok || r.LogN == 0 {
		return 0, false
	}
	return float64(e) / r.LogN, true
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("core.Result{n=%d alg=%s honest=%d byz=%d crashed=%d undecided=%d rounds=%d maxphase=%d}",
		r.N, r.Algorithm, r.HonestCount, r.ByzantineCount, r.CrashedCount, r.UndecidedCount, r.Rounds, r.Phases)
}
