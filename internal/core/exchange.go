package core

import "repro/internal/graph"

// runExchange simulates Algorithm 2 lines 1–2: every node asks its
// G-neighbors for adjacency information, reconstructs its k-ball in H, and
// crashes itself if it receives conflicting or contradictory reports.
//
// Honest nodes report truthfully; Byzantine nodes report whatever the
// adversary chooses per victim. A victim v crashes if, within its radius-k
// claimed ball,
//
//   - a claimed H-edge names a node outside v's channel set (v has a direct
//     G-channel to every node within H-distance k, so a phantom claim is
//     immediately inconsistent),
//   - a claimed edge is denied by its other endpoint (Figure 1: hiding a
//     real child or inventing a fake one always contradicts some honest
//     reporter), or
//   - a claimed adjacency list does not have exactly d entries (H is
//     d-regular "in v's eyes", as the Lemma 15 proof requires).
//
// Consistent lies between pairs of Byzantine nodes survive, exactly as in
// the paper; they can only fabricate all-Byzantine structures, which
// Observation 6 bounds.
func (w *World) runExchange() {
	// Exchange cost: every uncrashed node ships its adjacency list to all
	// G-neighbors (constant rounds, constant-ID messages: Remark 3).
	n := w.N()
	d := w.Net.Params.D
	for v := 0; v < n; v++ {
		if !w.Byz[v] {
			w.counters.CountMessages(w.Net.G.Degree(v), (d+1)*64)
		}
	}
	w.counters.CountRound()

	if len(w.byzList) == 0 {
		return
	}

	// Only nodes with a Byzantine node inside their radius-k H-ball can
	// receive a lie; everyone else reconstructs the truth trivially.
	// Scratch comes from the arena: the BFS workspace survives across
	// runs on the same network, and the candidate vector is zeroed by
	// Reset.
	scratch := w.exchBFS
	candidate := w.exchCand
	for _, b := range w.byzList {
		nodes, _ := graph.BallWith(scratch, int(b), w.Net.K)
		for _, v := range nodes {
			if !w.Byz[v] {
				candidate[v] = true
			}
		}
	}

	for v := 0; v < n; v++ {
		if !candidate[v] {
			continue
		}
		w.exchangeAtVictim(v, scratch)
	}
}

// exchangeAtVictim collects the claims made to v, builds v's believed ball,
// and applies the crash rule.
func (w *World) exchangeAtVictim(v int, scratch *graph.BFS) {
	h := w.Net.H
	k := w.Net.K
	d := w.Net.Params.D

	// v's channel set: ground truth, the adversary cannot fabricate wires.
	ballNodes, _ := graph.BallWith(scratch, v, k)
	channels := make(map[int32]bool, len(ballNodes))
	for _, x := range ballNodes {
		channels[x] = true
	}

	// Collect per-victim claims from every Byzantine node v can hear.
	var claims map[int32][]int32
	for _, x := range ballNodes {
		if !w.Byz[x] {
			continue
		}
		claimed := w.adv.ClaimHNeighbors(w, int(x), v)
		if claimed == nil {
			continue
		}
		if claims == nil {
			claims = make(map[int32][]int32)
		}
		claims[x] = claimed
	}
	if claims == nil {
		return // everyone reported truthfully; reconstruction is exact
	}

	adjOf := func(x int32) []int32 {
		if c, ok := claims[x]; ok {
			return c
		}
		return h.Neighbors(int(x))
	}
	contains := func(list []int32, y int32) bool {
		for _, e := range list {
			if e == y {
				return true
			}
		}
		return false
	}

	// BFS over the claimed topology, radius k, validating as we go.
	dist := map[int32]int{int32(v): 0}
	queue := []int32{int32(v)}
	crash := false
	for head := 0; head < len(queue) && !crash; head++ {
		x := queue[head]
		dx := dist[x]
		if dx >= k {
			continue
		}
		adj := adjOf(x)
		if len(adj) != d {
			// A node whose claimed degree differs from d cannot be a node
			// of the d-regular H.
			crash = true
			break
		}
		for _, y := range adj {
			if !channels[y] && y != int32(v) {
				crash = true // phantom: claimed within distance k, no channel
				break
			}
			if !contains(adjOf(y), x) {
				crash = true // the endpoint denies the edge
				break
			}
			if _, seen := dist[y]; !seen {
				dist[y] = dx + 1
				queue = append(queue, y)
			}
		}
	}

	if crash {
		w.crashed[v] = true
		return
	}
	w.views[v] = claims
}
