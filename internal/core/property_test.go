package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
)

// Property: for any valid (d, ε, i), the schedule's α_i drives the
// per-subphase failure bound below ε/2^{i+1} and is minimal-ish (α−1
// would not suffice, except where clamped to 1).
func TestScheduleAlphaProperty(t *testing.T) {
	f := func(dRaw, iRaw uint8, epsRaw uint16) bool {
		d := 4 + 2*int(dRaw%7)                 // 4..16 even
		i := 1 + int(iRaw%30)                  // 1..30
		eps := 0.01 + float64(epsRaw%90)/100.0 // 0.01..0.90
		s := Schedule{D: d, Epsilon: eps}
		a := s.Alpha(i)
		if a < 1 {
			return false
		}
		p := s.failureBound(i)
		budget := eps / math.Exp2(float64(i+1))
		if math.Pow(p, float64(a)) > budget*(1+1e-9) {
			return false
		}
		if a > 1 && math.Pow(p, float64(a-1)) <= budget {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: thresholds are strictly increasing in the phase and positive
// from phase 1 for all supported degrees.
func TestScheduleThresholdProperty(t *testing.T) {
	f := func(dRaw uint8) bool {
		d := 6 + 2*int(dRaw%6) // 6..16
		s := Schedule{D: d, Epsilon: 0.1}
		prev := 0.0
		for i := 1; i <= 25; i++ {
			th := s.Threshold(i)
			if th <= prev || math.IsNaN(th) {
				return false
			}
			prev = th
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: messageBits is monotone in the color and always includes the
// 64-bit sender ID.
func TestMessageBitsProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		bx, by := messageBits(x), messageBits(y)
		return bx >= 64 && bx <= by
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: complete protocol runs on random small networks always
// produce a consistent partition and in-range estimates.
func TestRunInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint16) bool {
		s := uint64(seed)
		net, err := hgraph.New(hgraph.Params{N: 128, D: 8, Seed: s})
		if err != nil {
			return false
		}
		res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: s + 1, MaxPhase: 24})
		if err != nil {
			return false
		}
		decided := 0
		for v := 0; v < res.N; v++ {
			e := res.Estimates[v]
			if e < 0 || int(e) > 24 {
				return false
			}
			if e > 0 {
				decided++
			}
		}
		return decided == res.HonestCount-res.UndecidedCount &&
			res.CrashedCount == 0 &&
			res.Rounds > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: the held values of any single run are monotone within each
// subphase (verified through the public log accessor using a spy
// observer).
func TestHeldMonotoneProperty(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 256, D: 8, Seed: 501})
	if err != nil {
		t.Fatal(err)
	}
	spy := &monotoneSpy{t: t}
	if _, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 503, Observer: spy}); err != nil {
		t.Fatal(err)
	}
	if !spy.sawRounds {
		t.Fatal("observer never fired")
	}
}

type monotoneSpy struct {
	t         *testing.T
	prev      []int64
	prevRound int
	sawRounds bool
}

func (m *monotoneSpy) RoundEnd(w *World) {
	m.sawRounds = true
	n := w.N()
	if m.prev == nil {
		m.prev = make([]int64, n)
	}
	if w.Clock.Round > m.prevRound { // same subphase: monotone holds
		for v := 0; v < n; v++ {
			if h := w.Held(v); h < m.prev[v] {
				m.t.Errorf("held decreased within a subphase at node %d: %d -> %d", v, m.prev[v], h)
			}
		}
	}
	for v := 0; v < n; v++ {
		m.prev[v] = w.Held(v)
	}
	m.prevRound = w.Clock.Round
}
