package core

import (
	"reflect"
	"testing"

	"repro/internal/hgraph"
	"repro/internal/sim"
)

// newTestPool returns a small caller-owned pool closed at test cleanup.
func newTestPool(t *testing.T) *sim.Pool {
	t.Helper()
	p := sim.NewPool(2)
	t.Cleanup(p.Close)
	return p
}

// assertResultsEqual fails unless the two results are deeply identical.
func assertResultsEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("results differ:\nwant %v\n got %v", want, got)
	}
}

// newWorld preserves the seed engine's test-facing constructor: a fresh
// arena Reset for the given run. Production code goes through Run or an
// explicitly reused World.
func newWorld(net *hgraph.Network, byz []bool, adv Adversary, cfg Config) *World {
	w := NewWorld()
	if err := w.Reset(net, byz, adv, cfg); err != nil {
		panic(err)
	}
	return w
}
