package core

import (
	"strings"
	"testing"

	"repro/internal/hgraph"
)

func TestAlgorithmString(t *testing.T) {
	if AlgorithmBasic.String() != "basic" || AlgorithmByzantine.String() != "byzantine" {
		t.Fatal("algorithm names")
	}
	if !strings.Contains(Algorithm(7).String(), "7") {
		t.Fatal("unknown algorithm string")
	}
}

func TestResultString(t *testing.T) {
	net, err := hgraph.New(hgraph.Params{N: 128, D: 8, Seed: 701})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, nil, nil, Config{Algorithm: AlgorithmBasic, Seed: 703})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"n=128", "alg=basic", "honest=128"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String() = %q missing %q", s, want)
		}
	}
}

func TestRatioEdgeCases(t *testing.T) {
	r := &Result{N: 2, LogN: 0, Estimates: []int32{5, 0}}
	if _, ok := r.Ratio(0); ok {
		t.Fatal("LogN=0 produced a ratio")
	}
	if _, ok := r.Ratio(1); ok {
		t.Fatal("no estimate produced a ratio")
	}
}

func TestMaxInjectionEntryRoundEmpty(t *testing.T) {
	r := &Result{}
	if r.MaxInjectionEntryRound() != 0 {
		t.Fatal("empty injection map should report 0")
	}
	r.InjectionEntryRounds = map[int]int{1: 3, 2: 1}
	if r.MaxInjectionEntryRound() != 2 {
		t.Fatal("max entry round wrong")
	}
}

// The HonestAdversary trivial hooks are exercised through a run with a
// Byzantine set, keeping the null strategy honest by construction.
func TestHonestAdversaryHooks(t *testing.T) {
	adv := HonestAdversary{}
	if adv.Name() != "honest" {
		t.Fatal("name")
	}
	net, err := hgraph.New(hgraph.Params{N: 128, D: 8, Seed: 705})
	if err != nil {
		t.Fatal(err)
	}
	byz := make([]bool, 128)
	byz[3] = true
	cfg := Config{Algorithm: AlgorithmByzantine, Seed: 707}.withDefaults(128)
	w := newWorld(net, byz, adv, cfg)
	defer w.Close()
	adv.Init(w)
	adv.SubphaseStart(w)
	if got := adv.ClaimHNeighbors(w, 3, 0); got != nil {
		t.Fatal("honest adversary lied about topology")
	}
	if adv.Send(w, 3, 0, 1) != w.Held(3) {
		t.Fatal("honest adversary send mismatch")
	}
	// World accessor smoke checks along the way.
	if w.DecidedPhase(0) != 0 {
		t.Fatal("fresh node decided")
	}
	if w.IsCrashed(0) {
		t.Fatal("fresh node crashed")
	}
	if w.Counters() == nil {
		t.Fatal("counters nil")
	}
}
