package core

import "testing"

// TestBatchRoundLoopZeroAlloc is the batched counterpart of
// TestRoundLoopZeroAlloc: once a batched invocation is set up, executing
// subphases — lane-major color generation, Byzantine send latching across
// every lane, the mask-parallel kernel, quiet-loss replay, frontier
// builds, watermark advances, and the per-chunk counter folds — must not
// allocate, serial or parallel, with reliable links or under message
// loss.
func TestBatchRoundLoopZeroAlloc(t *testing.T) {
	net := benchNet(512)
	byz := benchByz(512)
	topo := NewTopology(net)
	for _, tc := range []struct {
		name   string
		faults []FaultModel
	}{
		{name: "reliable", faults: nil},
		{name: "loss", faults: []FaultModel{MessageLoss{Prob: 0.1}}},
	} {
		for _, workers := range []int{1, 4} {
			bw := NewBatchWorld()
			specs := make([]LaneSpec, 8)
			for l := range specs {
				specs[l] = LaneSpec{
					Byz: byz,
					Cfg: Config{Algorithm: AlgorithmByzantine, Seed: uint64(13 + l), Workers: workers, Faults: tc.faults},
				}
			}
			if err := bw.reset(topo, specs); err != nil {
				t.Fatal(err)
			}
			// Replay runBatch's prelude so the subphase runs on armed
			// lanes, as it would mid-run.
			for _, w := range bw.lanes {
				w.adv.Init(w)
			}
			if bw.verify {
				for _, w := range bw.lanes {
					w.runExchange()
				}
			}
			for _, w := range bw.lanes {
				w.scheduleFaults()
			}
			bw.rebuildMasks()
			bw.liveM = (uint64(1) << uint(bw.nl-1) << 1) - 1
			bw.runSubphaseBatch(4, 1) // warm any lazy state
			allocs := testing.AllocsPerRun(50, func() {
				bw.runSubphaseBatch(4, 1)
			})
			if tc.faults != nil {
				var dropped int64
				for _, w := range bw.lanes {
					dropped += w.dropped.Load()
				}
				if dropped == 0 {
					t.Errorf("%s: loss model armed but nothing dropped — guard is vacuous", tc.name)
				}
			}
			bw.Close()
			if allocs != 0 {
				t.Errorf("%s workers=%d: batched round loop allocates %.1f objects per subphase, want 0", tc.name, workers, allocs)
			}
		}
	}
}
