package core

// frontier.go is the quiescence-aware round scheduler. The protocol's
// flooding is a repeated max-flood: within an i-round subphase a node's
// held color only changes when a strictly larger color arrives, so once
// the flood has propagated (typically within the graph diameter, long
// before round i in late phases) the dense loop re-scans every CSR edge of
// every node for nothing. The frontier engine steps node v in round t iff
// its round-t computation could differ from "nothing happened":
//
//   - a neighbor's held value changed in round t−1 (v's inputs changed);
//   - v's own held value changed in round t−1 (candidates are compared
//     against it, and sub-held receptions become unverified echoes);
//   - a Byzantine in-slot of v latched a different send this round;
//   - v saw an improvement candidate last round (hasCand): failed
//     candidates are re-verified every round by the dense loop, paying
//     per-round attestation messages with round-dependent outcomes, so a
//     node with a standing candidate can never be skipped;
//   - t == 1 (every node's held was rewritten by color generation) or
//     t == i (kFinal is captured on a full final-round sweep);
//   - message loss is armed and v is Byzantine (loss coins re-randomize
//     every round, and the Byzantine bookkeeping max can rise whenever a
//     previously-dropped neighbor value gets through).
//
// Everything else is provably quiescent, and the engine keeps the
// bookkeeping the dense loop would have produced for those nodes at O(1)
// per round — not O(skipped) — while staying byte-identical in Result:
//
//   - held-log entries for skipped rounds are never written; readers go
//     through the clamped logAt accessor, which resolves a round above
//     the node's logUpTo watermark to the last written entry — exactly
//     the (unchanged) value an eager write would have stored. Crashed
//     nodes get no watermark advance, matching the dense loop's refusal
//     to write their log;
//   - flooding-cost counters are maintained as an incremental aggregate:
//     when a node goes quiet its degree × messageBits(held) contribution
//     is added, when it is re-marked the same contribution is removed,
//     and each frontier round folds the aggregate into the totals in one
//     call. MaxMessageBits needs no update: a skipped node's (degree,
//     held) pair was already counted by a stepped round — held changes
//     always force a step in the following round — so the running
//     maximum already covers it;
//   - under MessageLoss the stateless (seed, edge, round) coins are
//     evaluated lazily for every potential reception of every skipped
//     node, keeping DroppedMessages and the k_t bookkeeping exact; a
//     delivered reception above the held value promotes the node to a
//     full (serial) stepNode call, whose own coin evaluation
//     deterministically reproduces the same outcomes, so nothing is
//     double-counted.
//
// Skipped nodes never write the exchange board, which is sound because a
// node only enters the skipped set when its value was unchanged in the
// previous round — so the stale back-buffer entry already equals the
// current one (see buildFrontier).
//
// The worklist is compacted (pool.ForChunks runs over dense indices into
// fr.list, not 0..n), membership is deduplicated by epoch stamps so no
// per-round clearing is needed, and every slice lives in World scratch:
// the round loop stays at 0 allocs/op with the frontier enabled, lossy
// included (TestRoundLoopZeroAlloc).

// frontier holds the scheduler's reusable per-run state.
type frontier struct {
	// stamp[v] == epoch marks v as a member of list.
	stamp []int64
	epoch int64
	// list is the worklist for the upcoming (or currently executing)
	// round; scratch is the ping-pong backing for the next build.
	list    []int32
	scratch []int32
	// nextFull declares the upcoming round a full sweep without a
	// worklist: buildFrontier sets it when so much of the network changed
	// that a worklist would cover ~everything, making the marking pass
	// pure overhead. This keeps the frontier engine within noise of the
	// dense loop on saturated rounds (the propagation regime before the
	// flood stabilizes) while preserving the multi-x win once it does.
	nextFull bool

	// The quiet flood-cost aggregate: quiet[v] marks nodes currently
	// accounted in quietMsgs/quietBits (honest, uncrashed, held > 0, not
	// in the worklist). Maintained at membership transitions and rebuilt
	// from scratch after full rounds.
	quiet     []bool
	quietMsgs int64
	quietBits int64
}

// reset rewinds the scheduler for a run on an n-node network.
func (f *frontier) reset(n int) {
	f.stamp = resetSlice(f.stamp, n)
	f.epoch = 0
	if cap(f.list) < n {
		f.list = make([]int32, 0, n)
	}
	if cap(f.scratch) < n {
		f.scratch = make([]int32, 0, n)
	}
	f.list = f.list[:0]
	f.scratch = f.scratch[:0]
	f.nextFull = false
	f.quiet = resetSlice(f.quiet, n)
	f.quietMsgs, f.quietBits = 0, 0
}

// resetQuiet zeroes the flood-cost aggregate (subphase starts: every node
// is about to be stepped by the full round-1 sweep).
func (f *frontier) resetQuiet() {
	// quiet[] flags may be stale, but nothing consults them until the
	// next buildFrontier, whose post-full-round rebuild overwrites them.
	f.quietMsgs, f.quietBits = 0, 0
}

// stepped reports whether v is in the current round's worklist.
func (f *frontier) stepped(v int) bool { return f.stamp[v] == f.epoch }

// mark adds v to the current worklist if it is not already a member,
// removing it from the quiet aggregate if it was accounted there.
func (w *World) mark(v int32) {
	f := &w.fr
	if f.stamp[v] == f.epoch {
		return
	}
	f.stamp[v] = f.epoch
	f.list = append(f.list, v)
	if f.quiet[v] {
		f.quiet[v] = false
		deg := int64(w.topo.hOff[v+1] - w.topo.hOff[v])
		f.quietMsgs -= deg
		f.quietBits -= deg * int64(messageBits(w.held.Cur()[v]))
	}
}

// markLatchedSend records that a Byzantine send slot latched a different
// value than the receiver last processed, dirtying the receiver for the
// current round. Called from the (serial) latch loop before dispatch.
func (w *World) markLatchedSend(receiver int32) {
	w.mark(receiver)
}

// setQuiet accounts held (the value v floods while it sleeps) into the
// quiet aggregate. Callers have established that v is honest, uncrashed,
// and outside the next round's worklist.
func (f *frontier) setQuiet(v int32, deg int32, held int64) {
	if held <= 0 {
		return // nothing flooded, nothing to account
	}
	f.quiet[v] = true
	f.quietMsgs += int64(deg)
	f.quietBits += int64(deg) * int64(messageBits(held))
}

// buildFrontier computes the round-(t+1) worklist from the round-t stepped
// set (the full node range when full is set, fr.list otherwise, including
// any nodes quietLossPass promoted). It runs after the round's stepNode
// calls and before the exchange Swap, so next[] holds the new values and
// cur[] the old ones.
//
// For every stepped node whose value changed, the node itself and all its
// H-neighbors are marked; a node with a standing improvement candidate
// re-marks itself. The self-mark on change is also what makes skipping
// sound: a node enters the skipped set only after a round in which it
// wrote next[v] == cur[v] (or was already skipped), so the stale
// back-buffer entry it stops refreshing is guaranteed equal to its
// current value.
func (w *World) buildFrontier(full bool) {
	f := &w.fr
	cur := w.held.Cur()
	next := w.held.Next()
	n := w.N()
	hOff, hAdj := w.topo.hOff, w.topo.hAdj

	// Saturation bail: count changes first, and when at least a quarter
	// of the network changed — the propagation regime, where the marked
	// neighborhoods would cover ~everything — declare the next round full
	// instead of paying the marking pass for a worklist of size ~n. The
	// quiet aggregate is left stale; the rebuild after that full round
	// recomputes it from scratch.
	changed := 0
	if full {
		for v := 0; v < n; v++ {
			if next[v] != cur[v] {
				changed++
			}
		}
	} else {
		for _, v := range f.list {
			if next[v] != cur[v] {
				changed++
			}
		}
	}
	if changed*4 >= n {
		f.nextFull = true
		return
	}

	// Swap the ping-pong backing and open a new epoch for the next round.
	f.list, f.scratch = f.scratch[:0], f.list
	f.epoch++

	markNode := func(v int32) {
		if w.hasCand[v] {
			w.mark(v)
		}
		if next[v] != cur[v] {
			w.mark(v)
			for e := hOff[v]; e < hOff[v+1]; e++ {
				w.mark(hAdj[e])
			}
		}
	}
	if full {
		for v := 0; v < n; v++ {
			markNode(int32(v))
		}
	} else {
		for _, v := range f.scratch { // scratch now holds the just-executed round's list
			markNode(v)
		}
	}
	if w.plan.lossThresh != 0 {
		// Loss coins re-randomize every round: Byzantine bookkeeping must
		// be recomputed even with unchanged inputs (honest skipped nodes
		// are covered by quietLossPass's lazy coin evaluation instead).
		for _, b := range w.byzList {
			w.mark(b)
		}
	}

	// Fold membership transitions into the quiet flood-cost aggregate.
	if full {
		// Everyone was stepped (and self-accounted); rebuild the quiet
		// set as the unmarked eligible nodes. This pass also clears any
		// flags left stale by a saturation bail.
		f.quietMsgs, f.quietBits = 0, 0
		for v := 0; v < n; v++ {
			f.quiet[v] = false
			if f.stamp[v] != f.epoch && !w.Byz[v] && !w.crashed[v] {
				f.setQuiet(int32(v), hOff[v+1]-hOff[v], next[v])
			}
		}
	} else {
		// Incremental: mark() already removed newly-dirty sleepers; add
		// the round-t stepped nodes that were not re-marked.
		for _, v := range f.scratch {
			if f.stamp[v] != f.epoch && !w.Byz[v] && !w.crashed[v] {
				f.setQuiet(v, hOff[v+1]-hOff[v], next[v])
			}
		}
	}
}

// advanceLogWatermark maintains the held-log invariant serially after
// round t's dispatch (before the exchange Swap): heldLog[v][0..logUpTo[v]]
// is contiguously written, and v's held value from round logUpTo[v]
// through the last completed round equals heldLog[v][logUpTo[v]] — which
// is what lets logAt clamp reads above the watermark.
//
// The watermark therefore only moves when a node's value CHANGED this
// round: the rounds it slept through (all holding the old constant) are
// backfilled in one burst and the watermark jumps to t, whose entry
// stepNode just wrote. Unchanged stepped nodes need nothing — their clamp
// already resolves to the value they rewrote. Each slept round is
// backfilled at most once per subphase, and quiet nodes that never change
// again are never backfilled at all (the clamp serves their readers), so
// the total log maintenance is O(changes + crossed holes), not
// O(n · rounds). Crashed nodes are excluded: the dense loop never writes
// their log, and logAt keeps resolving them to their round-0 zero.
func (w *World) advanceLogWatermark(t int, full bool) {
	cur := w.held.Cur()
	next := w.held.Next()
	bump := func(v int32) {
		if w.crashed[v] || next[v] == cur[v] {
			return
		}
		for r := w.logUpTo[v] + 1; r < int32(t); r++ {
			w.heldLog[v][r] = cur[v]
		}
		w.logUpTo[v] = int32(t)
	}
	if full {
		for v := 0; v < w.N(); v++ {
			bump(int32(v))
		}
		return
	}
	for _, v := range w.fr.list {
		bump(v)
	}
}

// quietLossPass replays the loss coins for every node the frontier
// skipped in round t (1 < t < i): under MessageLoss the coins
// re-randomize each round, so a sleeping node's received set — and with
// it the dropped count and the k_t bookkeeping — changes even when its
// inputs do not. It runs serially after the round's parallel dispatch and
// before the exchange Swap.
func (w *World) quietLossPass(t, i int) {
	n := w.N()
	for v := 0; v < n; v++ {
		if w.fr.stepped(v) || w.crashed[v] || w.Byz[v] {
			// Stepped nodes accounted themselves; crashed nodes receive
			// nothing (the dense loop returns before its reception
			// loop); lossy Byzantine nodes are always in the frontier.
			continue
		}
		w.quietLossNode(v, t, i)
	}
}

// quietLossNode mirrors the dense reception loop exactly for one skipped
// node: silent or crashed senders evaluate no coin, dropped receptions
// are counted, and delivered echoes fold into the k_t bookkeeping. A
// delivered reception above the held value means the skip prediction was
// wrong — the node is promoted into the stepped set and run through the
// full stepNode (whose deterministic re-evaluation of the same coins
// reproduces the partial scan, so the locally accumulated drop count is
// simply discarded).
func (w *World) quietLossNode(v, t, i int) {
	cur := w.held.Cur()
	hAdj := w.topo.hAdj
	begin, end := w.topo.hOff[v], w.topo.hOff[v+1]
	held := cur[v]
	var drops, kt int64
	for e := begin; e < end; e++ {
		nb := hAdj[e]
		var c int64
		if slot := w.byzIn[e]; slot >= 0 {
			c = w.byzSends[slot]
		} else if !w.crashed[nb] {
			c = cur[nb]
		}
		if c == 0 {
			continue
		}
		if w.dropRecv(e) {
			drops++
			continue
		}
		if c > held {
			// Promote: mark() pulls v out of the quiet aggregate (so the
			// round's aggregate fold does not double-count the flooding
			// cost stepNode is about to record) and into the stepped set
			// the next buildFrontier iterates.
			w.mark(int32(v))
			w.stepNode(v, t, i, w.stepVerify)
			return
		}
		if c > kt {
			kt = c
		}
	}
	if drops > 0 {
		w.dropped.Add(drops)
	}
	// t < i always holds here (final rounds are full sweeps), so kt feeds
	// the running early maximum, never kFinal.
	if kt > w.maxEarly[v] {
		w.maxEarly[v] = kt
	}
}
